"""Tests for the mempool."""

import pytest

from repro.chain.crypto import KeyPair
from repro.chain.mempool import Mempool
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.errors import MempoolError


@pytest.fixture
def alice():
    return KeyPair.from_seed("alice")


@pytest.fixture
def bob():
    return KeyPair.from_seed("bob")


@pytest.fixture
def state(alice, bob):
    ws = WorldState()
    ws.credit(alice.address, 10**12)
    ws.credit(bob.address, 10**12)
    return ws


def signed_tx(kp, nonce=0, gas_price=1, value=0, gas_limit=100_000):
    tx = Transaction(
        sender=kp.address,
        to="0x" + "99" * 20,
        nonce=nonce,
        value=value,
        gas_limit=gas_limit,
        gas_price=gas_price,
    )
    return tx.sign_with(kp)


class TestAdmission:
    def test_accepts_valid(self, alice, state):
        pool = Mempool()
        assert pool.add(signed_tx(alice), state)
        assert len(pool) == 1

    def test_duplicate_returns_false(self, alice, state):
        pool = Mempool()
        tx = signed_tx(alice)
        assert pool.add(tx, state)
        assert not pool.add(tx, state)
        assert len(pool) == 1

    def test_unsigned_rejected(self, alice, state):
        pool = Mempool()
        tx = Transaction(sender=alice.address, to=None, nonce=0)
        with pytest.raises(MempoolError):
            pool.add(tx, state)

    def test_stale_nonce_rejected(self, alice, state):
        state.bump_nonce(alice.address)
        pool = Mempool()
        with pytest.raises(MempoolError):
            pool.add(signed_tx(alice, nonce=0), state)

    def test_future_nonce_accepted(self, alice, state):
        # Gapped nonces park in the pool (they may become executable later).
        pool = Mempool()
        assert pool.add(signed_tx(alice, nonce=5), state)

    def test_unaffordable_rejected(self, alice, state):
        pool = Mempool()
        tx = signed_tx(alice, value=10**13, gas_limit=21_000)
        with pytest.raises(MempoolError):
            pool.add(tx, state)

    def test_pool_capacity(self, alice, state):
        pool = Mempool(max_size=2)
        pool.add(signed_tx(alice, nonce=0), state)
        pool.add(signed_tx(alice, nonce=1), state)
        with pytest.raises(MempoolError):
            pool.add(signed_tx(alice, nonce=2), state)

    def test_contains_by_hash(self, alice, state):
        pool = Mempool()
        tx = signed_tx(alice)
        pool.add(tx, state)
        assert tx.tx_hash in pool

    def test_stateless_add_checks_signature_only(self, alice):
        pool = Mempool()
        assert pool.add(signed_tx(alice, nonce=99))


class TestSelection:
    def test_orders_by_gas_price(self, alice, bob, state):
        pool = Mempool()
        cheap = signed_tx(alice, nonce=0, gas_price=1)
        rich = signed_tx(bob, nonce=0, gas_price=10)
        pool.add(cheap, state)
        pool.add(rich, state)
        chosen = pool.select(state)
        assert [tx.tx_hash for tx in chosen] == [rich.tx_hash, cheap.tx_hash]

    def test_respects_per_sender_nonce_order(self, alice, state):
        pool = Mempool()
        second = signed_tx(alice, nonce=1, gas_price=100)
        first = signed_tx(alice, nonce=0, gas_price=1)
        pool.add(second, state)
        pool.add(first, state)
        chosen = pool.select(state)
        assert [tx.nonce for tx in chosen] == [0, 1]

    def test_skips_gapped_nonces(self, alice, state):
        pool = Mempool()
        pool.add(signed_tx(alice, nonce=2), state)
        assert pool.select(state) == []

    def test_max_count(self, alice, state):
        pool = Mempool()
        for nonce in range(5):
            pool.add(signed_tx(alice, nonce=nonce), state)
        assert len(pool.select(state, max_count=3)) == 3

    def test_max_gas_budget(self, alice, bob, state):
        pool = Mempool()
        pool.add(signed_tx(alice, nonce=0, gas_limit=60_000), state)
        pool.add(signed_tx(bob, nonce=0, gas_limit=60_000), state)
        chosen = pool.select(state, max_gas=100_000)
        assert len(chosen) == 1

    def test_selection_does_not_remove(self, alice, state):
        pool = Mempool()
        pool.add(signed_tx(alice), state)
        pool.select(state)
        assert len(pool) == 1


class TestEviction:
    def test_remove(self, alice, state):
        pool = Mempool()
        tx = signed_tx(alice)
        pool.add(tx, state)
        assert pool.remove([tx.tx_hash]) == 1
        assert len(pool) == 0

    def test_remove_missing_counts_zero(self):
        assert Mempool().remove(["0xdeadbeef"]) == 0

    def test_drop_stale(self, alice, state):
        pool = Mempool()
        pool.add(signed_tx(alice, nonce=0), state)
        pool.add(signed_tx(alice, nonce=1), state)
        state.bump_nonce(alice.address)  # nonce 0 now consumed on-chain
        assert pool.drop_stale(state) == 1
        assert len(pool) == 1
