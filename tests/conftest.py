"""Shared fixtures: tiny datasets, funded chains, quick experiment configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chain.crypto import KeyPair
from repro.chain.node import GenesisSpec, Node, NodeConfig
from repro.chain.runtime import ContractRuntime
from repro.contracts import register_all
from repro.data.dataset import Dataset
from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator for deterministic tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_spec() -> SyntheticSpec:
    """A low-noise, easy synthetic spec for fast convergent tests."""
    return SyntheticSpec(noise_std=0.5, label_noise=0.0, seed=7)


@pytest.fixture
def tiny_factory(tiny_spec) -> SyntheticImageDataset:
    """Factory over the tiny spec."""
    return SyntheticImageDataset(tiny_spec)


@pytest.fixture
def tiny_dataset(tiny_factory, rng) -> Dataset:
    """120 easy samples, flattened."""
    return tiny_factory.sample(120, rng)


@pytest.fixture
def keypairs() -> dict[str, KeyPair]:
    """Three named keypairs (the paper's A/B/C peers)."""
    return {name: KeyPair.from_seed(f"test-{name}") for name in ("A", "B", "C")}


@pytest.fixture
def runtime() -> ContractRuntime:
    """Contract runtime with the full FL suite registered."""
    rt = ContractRuntime()
    register_all(rt)
    return rt


@pytest.fixture
def genesis_spec(keypairs) -> GenesisSpec:
    """Genesis allocating generous balances to A/B/C."""
    return GenesisSpec(allocations={kp.address: 10**15 for kp in keypairs.values()})


@pytest.fixture
def node(keypairs, genesis_spec, runtime) -> Node:
    """A single funded node owned by A."""
    return Node(keypairs["A"], genesis_spec, runtime, NodeConfig())


@pytest.fixture
def three_nodes(keypairs, genesis_spec, runtime) -> dict[str, Node]:
    """Three nodes sharing one genesis (not yet networked)."""
    return {
        name: Node(kp, genesis_spec, runtime, NodeConfig())
        for name, kp in keypairs.items()
    }


def make_weights(rng: np.random.Generator, scale: float = 1.0) -> dict[str, np.ndarray]:
    """Helper: a small arbitrary weight dict."""
    return {
        "layer/W": rng.normal(0, scale, size=(4, 3)),
        "layer/b": rng.normal(0, scale, size=(3,)),
    }
