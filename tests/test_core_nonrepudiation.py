"""Tests for the non-repudiation evidence machinery."""

import numpy as np
import pytest

from repro.core.decentralized import DecentralizedConfig, DecentralizedFL
from repro.core.nonrepudiation import collect_evidence, verify_evidence
from repro.core.peer import PeerConfig
from repro.data.dataset import Dataset
from repro.errors import ChainError
from repro.fl.trainer import TrainConfig
from repro.nn.layers import Dense
from repro.nn.model import Sequential
from repro.utils.rng import RngFactory


def easy_dataset(rng, n=80):
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] > 0).astype(np.int64)
    return Dataset(x, y)


def shared_builder(rng):
    return Sequential([Dense(2, name="out")]).build(np.random.default_rng(42), (4,))


@pytest.fixture(scope="module")
def finished_driver():
    data_rng = np.random.default_rng(0)
    peers = ("A", "B", "C")
    driver = DecentralizedFL(
        [
            PeerConfig(peer_id=p, train_config=TrainConfig(epochs=1), training_time=5.0)
            for p in peers
        ],
        {p: easy_dataset(data_rng) for p in peers},
        {p: easy_dataset(data_rng, n=40) for p in peers},
        shared_builder,
        DecentralizedConfig(rounds=1),
        rng_factory=RngFactory(3),
    )
    driver.run()
    return driver


class TestCollect:
    def test_evidence_found_for_every_peer(self, finished_driver):
        verifier = finished_driver.peers["A"].gateway.node
        store_address = finished_driver.peers["A"].model_store_address
        for peer in finished_driver.peers.values():
            evidence = collect_evidence(verifier, peer.address, 1, store_address)
            assert evidence.author == peer.address
            assert evidence.round_id == 1
            assert evidence.committed_hash.startswith("0x")

    def test_missing_submission_raises(self, finished_driver):
        verifier = finished_driver.peers["A"].gateway.node
        store_address = finished_driver.peers["A"].model_store_address
        with pytest.raises(ChainError):
            collect_evidence(verifier, "0x" + "77" * 20, 1, store_address)

    def test_wrong_round_raises(self, finished_driver):
        verifier = finished_driver.peers["A"].gateway.node
        store_address = finished_driver.peers["A"].model_store_address
        author = finished_driver.peers["B"].address
        with pytest.raises(ChainError):
            collect_evidence(verifier, author, 99, store_address)


class TestVerify:
    def _evidence(self, driver, author_id="B"):
        verifier = driver.peers["A"].gateway.node
        store = driver.peers["A"].model_store_address
        return verifier, collect_evidence(verifier, driver.peers[author_id].address, 1, store)

    def test_valid_evidence_verifies_on_other_nodes(self, finished_driver):
        _verifier, evidence = self._evidence(finished_driver)
        for peer in finished_driver.peers.values():
            assert verify_evidence(peer.gateway.node, evidence)

    def test_weights_binding(self, finished_driver):
        verifier, evidence = self._evidence(finished_driver)
        weights = finished_driver.offchain.get_weights(evidence.committed_hash)
        assert verify_evidence(verifier, evidence, weights=weights)

    def test_wrong_weights_rejected(self, finished_driver):
        verifier, evidence = self._evidence(finished_driver)
        weights = finished_driver.offchain.get_weights(evidence.committed_hash)
        forged = {key: value + 1.0 for key, value in weights.items()}
        assert not verify_evidence(verifier, evidence, weights=forged)

    def test_tampered_author_rejected(self, finished_driver):
        verifier, evidence = self._evidence(finished_driver)
        evidence.author = finished_driver.peers["C"].address
        assert not verify_evidence(verifier, evidence)

    def test_tampered_hash_rejected(self, finished_driver):
        verifier, evidence = self._evidence(finished_driver)
        evidence.committed_hash = "0x" + "00" * 32
        assert not verify_evidence(verifier, evidence)

    def test_tampered_round_rejected(self, finished_driver):
        verifier, evidence = self._evidence(finished_driver)
        evidence.round_id = 2
        assert not verify_evidence(verifier, evidence)

    def test_tampered_proof_rejected(self, finished_driver):
        verifier, evidence = self._evidence(finished_driver)
        if evidence.proof:  # single-tx blocks have empty proofs
            evidence.proof = [(side, b"\x00" * 32) for side, _sib in evidence.proof]
            assert not verify_evidence(verifier, evidence)

    def test_unknown_block_falls_back_to_tx_search(self, finished_driver):
        # Under PoW the same tx can be included in different blocks on
        # different nodes; evidence stays valid as long as the transaction
        # is canonical on the verifier, even if the cited block is unknown.
        verifier, evidence = self._evidence(finished_driver)
        evidence.block_hash = "0x" + "12" * 32
        assert verify_evidence(verifier, evidence)

    def test_transaction_absent_from_chain_rejected(self, finished_driver):
        verifier, evidence = self._evidence(finished_driver)
        evidence.block_hash = "0x" + "12" * 32
        # Remove the transaction identity: a never-broadcast but correctly
        # signed submission cannot verify anywhere.
        from repro.chain.transaction import Transaction

        clone = Transaction.from_dict(evidence.transaction.to_dict())
        clone.nonce += 1000  # changes the hash; signature now invalid too
        evidence.transaction = clone
        assert not verify_evidence(verifier, evidence)
