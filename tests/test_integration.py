"""Cross-module integration tests: poisoning defense, ban flow, larger cohorts."""

import numpy as np
import pytest

from repro.core.decentralized import DecentralizedConfig, DecentralizedFL
from repro.core.nonrepudiation import collect_evidence, verify_evidence
from repro.core.peer import PeerConfig
from repro.data.dataset import Dataset
from repro.fl.aggregation import ModelUpdate, fedavg
from repro.fl.poisoning import LabelFlipAttacker
from repro.fl.selection import best_combination, threshold_filter
from repro.fl.trainer import LocalTrainer, TrainConfig
from repro.fl.async_policy import WaitForK
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.utils.rng import RngFactory


def easy_dataset(rng, n=200):
    x = rng.normal(size=(n, 6))
    y = ((x[:, 0] + x[:, 1]) > 0).astype(np.int64)
    return Dataset(x, y)


def builder(rng):
    return Sequential([Dense(8, name="h"), ReLU(), Dense(2, name="out")]).build(
        np.random.default_rng(42), (6,)
    )


class TestPoisoningDefense:
    """The paper's abnormal-model claim: 'consider' excludes poisoned models."""

    def _trained_updates(self, poison_one=True):
        rng = np.random.default_rng(0)
        updates = []
        for index, client_id in enumerate(["A", "B", "C"]):
            dataset = easy_dataset(np.random.default_rng(10 + index))
            if poison_one and client_id == "C":
                attacker = LabelFlipAttacker(flip_fraction=1.0, target_class=0)
                dataset = attacker.poison_dataset(dataset, rng)
            model = builder(np.random.default_rng(42))
            trainer = LocalTrainer(TrainConfig(epochs=6, learning_rate=0.1), rng=np.random.default_rng(20 + index))
            trainer.train(model, dataset)
            updates.append(
                ModelUpdate(client_id=client_id, weights=model.get_weights(), num_samples=len(dataset))
            )
        return updates

    def test_consider_excludes_attacker(self):
        updates = self._trained_updates()
        scratch = builder(np.random.default_rng(42))
        test_set = easy_dataset(np.random.default_rng(99), n=300)
        best = best_combination(updates, scratch, test_set)
        assert "C" not in best.members

    def test_consider_beats_plain_fedavg_under_attack(self):
        updates = self._trained_updates()
        scratch = builder(np.random.default_rng(42))
        test_set = easy_dataset(np.random.default_rng(99), n=300)
        from repro.fl.evaluation import evaluate_weights

        best = best_combination(updates, scratch, test_set)
        plain = evaluate_weights(scratch, fedavg(updates), test_set)
        assert best.accuracy > plain

    def test_threshold_filter_drops_attacker(self):
        updates = self._trained_updates()
        scratch = builder(np.random.default_rng(42))
        test_set = easy_dataset(np.random.default_rng(99), n=300)
        kept = threshold_filter(updates, scratch, test_set, threshold=0.7)
        assert {u.client_id for u in kept} == {"A", "B"}


class TestEvidenceToBanFlow:
    """Detect an abnormal peer, prove authorship, ban it via the registry."""

    def test_full_flow(self):
        peers = ("A", "B", "C")
        data_rng = np.random.default_rng(0)
        driver = DecentralizedFL(
            [PeerConfig(peer_id=p, train_config=TrainConfig(epochs=1), training_time=5.0) for p in peers],
            {p: easy_dataset(data_rng, n=60) for p in peers},
            {p: easy_dataset(data_rng, n=40) for p in peers},
            lambda rng: Sequential([Dense(2, name="out")]).build(np.random.default_rng(42), (6,)),
            DecentralizedConfig(rounds=1),
            rng_factory=RngFactory(5),
        )
        driver.run()

        # A suspects C: gather evidence from A's own chain view.
        accuser = driver.peers["A"]
        suspect = driver.peers["C"]
        evidence = collect_evidence(
            accuser.gateway.node, suspect.address, 1, accuser.model_store_address
        )
        weights = driver.offchain.get_weights(evidence.committed_hash)
        assert verify_evidence(accuser.gateway.node, evidence, weights=weights)

        # The registry admin (the deployer, peer A) bans the suspect.
        registry = driver._registry_address()
        ban_tx = accuser.make_transaction(
            to=registry, method="ban", args={"address": suspect.address, "reason": "abnormal model"}
        )
        driver.network.broadcast_transaction(accuser.address, ban_tx)
        driver.network.start_mining()
        driver._wait_until(
            lambda: accuser.gateway.call(registry, "is_banned", address=suspect.address),
            "ban transaction",
        )
        driver.network.stop_mining()
        assert not accuser.gateway.call(registry, "is_member", address=suspect.address)

        # Banned peer's future submissions revert on-chain.
        submit_tx = suspect.make_transaction(
            to=suspect.model_store_address,
            method="submit_model",
            args={"round_id": 99, "weights_hash": "0xdead", "num_samples": 10},
        )
        driver.network.broadcast_transaction(suspect.address, submit_tx)
        driver.network.start_mining()
        driver._wait_until(
            lambda: any(
                peer.gateway.node.receipt_of(submit_tx.tx_hash) is not None
                for peer in driver.peers.values()
            ),
            "banned submission mined",
        )
        driver.network.stop_mining()
        receipts = [
            peer.gateway.node.receipt_of(submit_tx.tx_hash)
            for peer in driver.peers.values()
            if peer.gateway.node.receipt_of(submit_tx.tx_hash) is not None
        ]
        assert receipts and all(receipt.failed for receipt in receipts)


class TestFivePeerCohort:
    """The architecture is not hard-coded to three peers."""

    def test_five_peers_run(self):
        peers = tuple("ABCDE")
        data_rng = np.random.default_rng(0)
        driver = DecentralizedFL(
            [PeerConfig(peer_id=p, train_config=TrainConfig(epochs=1), training_time=5.0) for p in peers],
            {p: easy_dataset(data_rng, n=60) for p in peers},
            {p: easy_dataset(data_rng, n=40) for p in peers},
            lambda rng: Sequential([Dense(2, name="out")]).build(np.random.default_rng(42), (6,)),
            DecentralizedConfig(rounds=1),
            rng_factory=RngFactory(11),
        )
        logs = driver.run()
        assert len(logs) == 5
        for log in logs:
            # 2^5 - 1 = 31 subsets scored per peer.
            assert len(log.combination_accuracy) == 31

    def test_wait_for_two_of_five(self):
        peers = tuple("ABCDE")
        data_rng = np.random.default_rng(0)
        times = [5.0, 10.0, 120.0, 240.0, 360.0]
        driver = DecentralizedFL(
            [
                PeerConfig(
                    peer_id=p,
                    train_config=TrainConfig(epochs=1),
                    training_time=t,
                    training_time_jitter=0.0,
                )
                for p, t in zip(peers, times)
            ],
            {p: easy_dataset(data_rng, n=60) for p in peers},
            {p: easy_dataset(data_rng, n=40) for p in peers},
            lambda rng: Sequential([Dense(2, name="out")]).build(np.random.default_rng(42), (6,)),
            DecentralizedConfig(rounds=1, policy=WaitForK(2)),
            rng_factory=RngFactory(13),
        )
        logs = driver.run()
        models_used = {log.peer_id: log.models_used for log in logs}
        # The fast peers proceed with ~2 models; nobody waits for all five.
        assert models_used["A"] < 5
