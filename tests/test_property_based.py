"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.chain.crypto import KeyPair, verify
from repro.chain.gas import GasMeter, intrinsic_gas
from repro.chain.merkle import merkle_proof, merkle_root, verify_proof
from repro.fl.aggregation import ModelUpdate, coordinate_median, fedavg, uniform_average
from repro.fl.async_policy import Deadline, WaitForAll, WaitForK
from repro.nn.serialize import weights_from_bytes, weights_hash, weights_to_bytes
from repro.utils.hashing import hash_object
from repro.utils.serialization import canonical_dumps, canonical_loads

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.binary(max_size=32),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)

small_arrays = st.tuples(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
).flatmap(
    lambda shape: st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=shape[0] * shape[1],
        max_size=shape[0] * shape[1],
    ).map(lambda values: np.array(values, dtype=np.float64).reshape(shape))
)

weight_dicts = st.dictionaries(
    st.sampled_from(["a/W", "a/b", "b/W", "b/b"]),
    small_arrays,
    min_size=1,
    max_size=3,
)


# ---------------------------------------------------------------------------
# Serialization properties
# ---------------------------------------------------------------------------


@given(json_values)
@settings(max_examples=80)
def test_canonical_round_trip(value):
    restored = canonical_loads(canonical_dumps(value))
    # Tuples normalize to lists; everything else is preserved exactly.
    assert canonical_dumps(restored) == canonical_dumps(value)


@given(json_values)
@settings(max_examples=60)
def test_hash_object_deterministic(value):
    assert hash_object({"v": value}) == hash_object({"v": value})


@given(weight_dicts)
@settings(max_examples=40)
def test_weights_round_trip_and_hash(weights):
    payload = weights_to_bytes(weights)
    restored = weights_from_bytes(payload)
    assert set(restored) == set(weights)
    for key in weights:
        np.testing.assert_array_equal(restored[key], weights[key])
    assert weights_hash(restored) == weights_hash(weights)


# ---------------------------------------------------------------------------
# Merkle properties
# ---------------------------------------------------------------------------


@given(st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=24), st.data())
@settings(max_examples=60)
def test_merkle_every_leaf_verifies(leaves, data):
    root = merkle_root(leaves)
    index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
    proof = merkle_proof(leaves, index)
    assert verify_proof(leaves[index], proof, root)


@given(st.lists(st.binary(min_size=1, max_size=8), min_size=2, max_size=12), st.data())
@settings(max_examples=40)
def test_merkle_foreign_leaf_fails(leaves, data):
    root = merkle_root(leaves)
    index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
    proof = merkle_proof(leaves, index)
    foreign = b"\xff" + leaves[index]
    if foreign not in leaves:
        assert not verify_proof(foreign, proof, root)


# ---------------------------------------------------------------------------
# Crypto properties
# ---------------------------------------------------------------------------


@given(st.binary(min_size=32, max_size=32), st.text(min_size=1, max_size=8))
@settings(max_examples=40)
def test_sign_verify_round_trip(digest, seed):
    kp = KeyPair.from_seed(seed)
    assert verify(kp.public_bundle, digest, kp.sign(digest))


@given(st.binary(min_size=32, max_size=32), st.binary(min_size=32, max_size=32))
@settings(max_examples=40)
def test_signature_does_not_transfer(digest_a, digest_b):
    kp = KeyPair.from_seed("prop")
    sig = kp.sign(digest_a)
    if digest_a != digest_b:
        assert not verify(kp.public_bundle, digest_b, sig)


# ---------------------------------------------------------------------------
# Gas properties
# ---------------------------------------------------------------------------


@given(st.binary(max_size=200))
@settings(max_examples=60)
def test_intrinsic_gas_monotone_in_payload(payload):
    assert intrinsic_gas(payload + b"\x01") > intrinsic_gas(payload)
    assert intrinsic_gas(payload) >= 21_000


@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=20))
@settings(max_examples=40)
def test_gas_meter_never_exceeds_limit(charges):
    meter = GasMeter(5_000)
    for charge in charges:
        try:
            meter.charge(charge)
        except Exception:
            break
    assert 0 <= meter.used <= meter.limit


# ---------------------------------------------------------------------------
# Aggregation properties
# ---------------------------------------------------------------------------


def _updates_from(arrays, counts):
    return [
        ModelUpdate(client_id=f"c{i}", weights={"w": array}, num_samples=count)
        for i, (array, count) in enumerate(zip(arrays, counts))
    ]


@given(
    st.lists(small_arrays, min_size=1, max_size=5),
    st.data(),
)
@settings(max_examples=50)
def test_fedavg_within_bounds(arrays, data):
    """FedAvg output lies coordinate-wise within [min, max] of the inputs."""
    shape = arrays[0].shape
    arrays = [a.reshape(shape) if a.shape == shape else None for a in arrays]
    arrays = [a for a in arrays if a is not None]
    counts = data.draw(
        st.lists(st.integers(min_value=1, max_value=1000), min_size=len(arrays), max_size=len(arrays))
    )
    updates = _updates_from(arrays, counts)
    result = fedavg(updates)["w"]
    stacked = np.stack(arrays)
    # Tolerance must scale with magnitude: the convex combination holds
    # mathematically, but the weighted tensordot rounds by O(|x| * eps),
    # which exceeds any absolute epsilon for large coordinates (hypothesis
    # found |x| ~ 3e7 violating a flat 1e-9).
    tol = 1e-9 + 1e-12 * np.abs(stacked).max(axis=0)
    assert (result >= stacked.min(axis=0) - tol).all()
    assert (result <= stacked.max(axis=0) + tol).all()


@given(small_arrays, st.integers(min_value=1, max_value=100))
@settings(max_examples=40)
def test_fedavg_identity_on_single(array, count):
    result = fedavg(_updates_from([array], [count]))
    np.testing.assert_allclose(result["w"], array)


@given(st.lists(small_arrays, min_size=2, max_size=4), st.data())
@settings(max_examples=40)
def test_fedavg_permutation_invariant(arrays, data):
    shape = arrays[0].shape
    arrays = [a for a in arrays if a.shape == shape]
    counts = data.draw(
        st.lists(st.integers(min_value=1, max_value=50), min_size=len(arrays), max_size=len(arrays))
    )
    updates = _updates_from(arrays, counts)
    permuted = list(reversed(updates))
    np.testing.assert_allclose(fedavg(updates)["w"], fedavg(permuted)["w"], atol=1e-12)


@given(st.lists(small_arrays, min_size=1, max_size=5))
@settings(max_examples=40)
def test_uniform_equals_fedavg_for_equal_counts(arrays):
    shape = arrays[0].shape
    arrays = [a for a in arrays if a.shape == shape]
    updates = _updates_from(arrays, [10] * len(arrays))
    np.testing.assert_allclose(uniform_average(updates)["w"], fedavg(updates)["w"], atol=1e-12)


@given(st.lists(small_arrays, min_size=3, max_size=5))
@settings(max_examples=30)
def test_median_bounded_by_inputs(arrays):
    shape = arrays[0].shape
    arrays = [a for a in arrays if a.shape == shape]
    if len(arrays) < 2:
        return
    updates = _updates_from(arrays, [10] * len(arrays))
    result = coordinate_median(updates)["w"]
    stacked = np.stack(arrays)
    assert (result >= stacked.min(axis=0) - 1e-12).all()
    assert (result <= stacked.max(axis=0) + 1e-12).all()


# ---------------------------------------------------------------------------
# Async policy properties
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=0, max_value=10),
    st.integers(min_value=1, max_value=10),
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
)
@settings(max_examples=60)
def test_policies_monotone_in_submissions(submitted, expected, elapsed):
    """Once ready, adding more submissions can never unready a policy."""
    for policy in (WaitForAll(), WaitForK(2), Deadline(seconds=30.0)):
        if policy.ready(submitted, expected, elapsed):
            assert policy.ready(submitted + 1, expected, elapsed)


@given(st.integers(min_value=1, max_value=10), st.integers(min_value=1, max_value=10))
@settings(max_examples=40)
def test_wait_for_all_implies_wait_for_k(expected, k):
    """wait-for-all readiness implies wait-for-k readiness (k <= cohort)."""
    policy_all, policy_k = WaitForAll(), WaitForK(k)
    if policy_all.ready(expected, expected, 0.0):
        assert policy_k.ready(expected, expected, 0.0)
