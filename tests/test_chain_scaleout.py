"""The scale-out subsystem: parallel execution, cold storage, snapshots.

Covers the three pillars of ``repro.chain.scale`` plus the node plumbing
that threads them together:

* deterministic parallel transaction execution — byte-identical to
  serial at any worker count (deterministic fixtures plus a hypothesis
  property over random transfer blocks and workers in {0, 2, 4});
* the spillable cold store — round-trip, dedup, LRU, and the node-level
  guarantee that receipts and ``get_logs`` survive a spill/reload cycle;
* root-verified snapshots — encode/install round-trip, tamper
  rejection, deep reorgs restarting from the nearest checkpoint, and
  ``sync_from`` fast-forwarding a rejoining peer with replay cost bound
  by the snapshot interval rather than the chain length.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.crypto import KeyPair
from repro.chain.node import GenesisSpec, Node, NodeConfig
from repro.chain.runtime import ContractRuntime
from repro.chain.scale import (
    ColdStore,
    encode_snapshot,
    install_snapshot,
    snapshot_key,
    SnapshotError,
)
from repro.chain.scale.coldstore import ColdStoreError
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.contracts import register_all
from repro.errors import InvalidBlockError
from repro.scenarios.spec import ChainSpec, ConfigError

KEYPAIRS = [KeyPair.from_seed(f"scale-{i}") for i in range(8)]
GENESIS = GenesisSpec(allocations={kp.address: 10**15 for kp in KEYPAIRS})


def fresh_runtime() -> ContractRuntime:
    rt = ContractRuntime()
    register_all(rt)
    return rt


def make_node(owner: KeyPair, **cfg) -> Node:
    return Node(owner, GENESIS, fresh_runtime(), NodeConfig(**cfg))


def transfer(node: Node, sender: KeyPair, to, value, gas_price=1) -> Transaction:
    tx = Transaction(
        sender=sender.address,
        to=to,
        nonce=node.next_nonce_for(sender.address),
        value=value,
        gas_price=gas_price,
    )
    return tx.sign_with(sender)


def mine(node: Node) -> "Block":
    block = node.build_block_candidate(
        node.head.header.timestamp + 13.0, difficulty=1
    )
    node.seal_and_import(block, nonce=0)
    return block


def deploy_registry(node: Node, deployer: KeyPair):
    tx = Transaction(
        sender=deployer.address,
        to=None,
        nonce=node.next_nonce_for(deployer.address),
        args={"contract": "participant_registry"},
    ).sign_with(deployer)
    node.submit_transaction(tx)
    mine(node)
    return node.receipt_of(tx.tx_hash).contract_address


def register_tx(node: Node, kp: KeyPair, registry, name: str) -> Transaction:
    tx = Transaction(
        sender=kp.address,
        to=registry,
        nonce=node.next_nonce_for(kp.address),
        method="register",
        args={"display_name": name},
    ).sign_with(kp)
    return tx


def canonical_blocks(node: Node) -> list:
    """Ancestor-first canonical lineage above genesis (revives cold)."""
    return [
        node.store.get(node.store.canonical_hash(number))
        for number in range(1, node.height + 1)
    ]


# ---------------------------------------------------------------------------
# Cold store
# ---------------------------------------------------------------------------


class TestColdStore:
    def test_round_trip(self):
        store = ColdStore()
        store.put("a", {"x": 1, "y": [1, 2, 3]})
        assert store.get("a") == {"x": 1, "y": [1, 2, 3]}
        assert "a" in store and len(store) == 1 and list(store.keys()) == ["a"]

    def test_dedup_by_key(self):
        store = ColdStore()
        assert store.put("a", {"x": 1}) is True
        before = store.bytes_stored()
        assert store.put("a", {"x": 999}) is False  # content-addressed
        assert store.bytes_stored() == before
        assert store.stats.dedup_hits == 1 and store.stats.puts == 1
        assert store.get("a") == {"x": 1}

    def test_missing_key_raises(self):
        with pytest.raises(ColdStoreError):
            ColdStore().get("nope")

    def test_lru_caches_and_evicts(self):
        store = ColdStore(cache_size=1)
        store.put("a", 1)
        store.put("b", 2)
        assert store.get("a") == 1
        assert store.get("a") == 1  # served from cache
        assert store.stats.cache_hits == 1
        assert store.get("b") == 2  # evicts "a"
        assert store.get("a") == 1  # decoded again, not a cache hit
        assert store.stats.cache_hits == 1

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ValueError):
            ColdStore(cache_size=-1)


# ---------------------------------------------------------------------------
# Parallel execution: byte identity with serial
# ---------------------------------------------------------------------------


def assert_same_outcome(serial: Node, other: Node, txs):
    assert other.head.block_hash == serial.head.block_hash
    assert other.state.state_root() == serial.state.state_root()
    for tx in txs:
        a = serial.receipt_of(tx.tx_hash)
        b = other.receipt_of(tx.tx_hash)
        assert a is not None and b is not None
        assert a.to_dict() == b.to_dict()


class TestParallelExecution:
    def build_workload(self, serial: Node):
        """Two blocks: registry deploy, then a mixed contention block."""
        registry = deploy_registry(serial, KEYPAIRS[0])
        txs = []

        def submit(tx):
            serial.submit_transaction(tx)
            txs.append(tx)

        for kp in KEYPAIRS[1:]:
            submit(register_tx(serial, kp, registry, kp.address[:6]))
        # Second tx from the same sender: speculation against the
        # pre-block state fails the nonce check -> serial re-exec.
        submit(transfer(serial, KEYPAIRS[1], KEYPAIRS[2].address, 777))
        # The miner spends: any miner-balance touch forfeits the fast path.
        submit(transfer(serial, KEYPAIRS[0], KEYPAIRS[3].address, 5))
        mine(serial)
        return registry, txs

    def test_parallel_import_is_byte_identical(self):
        serial = make_node(KEYPAIRS[0])
        _registry, txs = self.build_workload(serial)
        for workers in (0, 2):
            par = make_node(
                KEYPAIRS[0],
                execution="parallel",
                execution_workers=workers,
                parallel_min_txs=1,
            )
            for block in canonical_blocks(serial):
                par.import_block(block)  # raises on any state-root drift
            assert_same_outcome(serial, par, txs)
            stats = par.execution_stats
            assert stats.parallel_blocks >= 1
            assert stats.clean_txs >= 1  # disjoint registrations merged fast
            assert stats.dirty_txs >= 2  # miner spend + same-sender follow-up
            assert stats.failed_speculations >= 1

    def test_small_blocks_stay_serial(self):
        par = make_node(
            KEYPAIRS[0], execution="parallel", parallel_min_txs=64
        )
        par.submit_transaction(transfer(par, KEYPAIRS[1], KEYPAIRS[2].address, 1))
        mine(par)
        assert par.execution_stats.parallel_blocks == 0
        assert par.execution_stats.serial_blocks >= 1

    def test_registrations_parallelize_cleanly(self):
        # The registry keeps no shared counter slot, so registrations from
        # distinct senders must all take the fast path.
        serial = make_node(KEYPAIRS[0])
        registry = deploy_registry(serial, KEYPAIRS[0])
        txs = [
            register_tx(serial, kp, registry, kp.address[:6])
            for kp in KEYPAIRS[1:]
        ]
        for tx in txs:
            serial.submit_transaction(tx)
        mine(serial)
        par = make_node(
            KEYPAIRS[0], execution="parallel", parallel_min_txs=1
        )
        for block in canonical_blocks(serial):
            par.import_block(block)
        assert_same_outcome(serial, par, txs)
        # All registrations merge fast; the only dirty tx is the deploy
        # (sent by the miner itself, in the single-tx first block).
        assert par.execution_stats.clean_txs == len(txs)
        assert par.execution_stats.dirty_txs == 1


class TestParallelSerialProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        moves=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=1000),
            ),
            min_size=2,
            max_size=10,
        ),
        workers=st.sampled_from([0, 2, 4]),
    )
    def test_random_transfer_blocks_match(self, moves, workers):
        serial = make_node(KEYPAIRS[0])
        txs = []
        for sender_i, to_i, value in moves:
            tx = transfer(
                serial, KEYPAIRS[sender_i], KEYPAIRS[to_i].address, value
            )
            serial.submit_transaction(tx)
            txs.append(tx)
        mine(serial)
        par = make_node(
            KEYPAIRS[0],
            execution="parallel",
            execution_workers=workers,
            parallel_min_txs=1,
        )
        for block in canonical_blocks(serial):
            par.import_block(block)
        assert_same_outcome(serial, par, txs)
        total_gas = sum(serial.receipt_of(tx.tx_hash).gas_used for tx in txs)
        assert total_gas == sum(
            par.receipt_of(tx.tx_hash).gas_used for tx in txs
        )


# ---------------------------------------------------------------------------
# Cold spilling: receipts and logs survive the segment file
# ---------------------------------------------------------------------------


class TestSpilledReceiptsAndLogs:
    def build_spilled_node(self):
        node = make_node(
            KEYPAIRS[0], cold_store=ColdStore(), hot_window=3
        )
        registry = deploy_registry(node, KEYPAIRS[0])
        txs = [
            register_tx(node, kp, registry, kp.address[:6])
            for kp in KEYPAIRS[1:3]
        ]
        for tx in txs:
            node.submit_transaction(tx)
        mine(node)
        logs_before = [entry.to_dict() for entry in node.get_logs(address=registry)]
        receipts_before = {tx.tx_hash: node.receipt_of(tx.tx_hash).to_dict() for tx in txs}
        for _ in range(8):
            mine(node)
        return node, registry, txs, logs_before, receipts_before

    def test_spill_happened(self):
        node, *_ = self.build_spilled_node()
        storage = node.scale_stats()["storage"]
        assert storage["spilled_blocks"] > 0
        assert storage["hot_blocks"] <= node.config.hot_window + 1
        assert storage["cold_receipt_txs"] > 0

    def test_get_logs_identical_after_spill(self):
        node, registry, _txs, logs_before, _ = self.build_spilled_node()
        assert logs_before  # the fixture really produced events
        logs_after = [entry.to_dict() for entry in node.get_logs(address=registry)]
        assert logs_after == logs_before

    def test_receipts_identical_after_spill(self):
        node, _registry, txs, _logs, receipts_before = self.build_spilled_node()
        for tx in txs:
            assert node.receipt_of(tx.tx_hash).to_dict() == receipts_before[tx.tx_hash]

    def test_spilled_block_revives_identically(self):
        node, *_ = self.build_spilled_node()
        block_hash = node.store.canonical_hash(2)
        assert node.store.spilled_count() > 0
        revived = node.store.get(block_hash)
        assert revived.block_hash == block_hash
        assert revived.body_matches_header()


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


class TestSnapshotCodec:
    def test_round_trip(self):
        state = GENESIS.build_state()
        genesis = GENESIS.build_genesis()
        payload = encode_snapshot(state, genesis)
        rebuilt = install_snapshot(
            payload, expected_state_root=genesis.header.state_root
        )
        assert rebuilt.state_root() == state.state_root()
        assert rebuilt.balance_of(KEYPAIRS[0].address) == 10**15

    def test_tampered_account_rejected(self):
        state = GENESIS.build_state()
        genesis = GENESIS.build_genesis()
        payload = copy.deepcopy(encode_snapshot(state, genesis))
        victim = sorted(payload["accounts"])[0]
        payload["accounts"][victim]["balance"] += 1
        with pytest.raises(SnapshotError):
            install_snapshot(payload)

    def test_wrong_expected_root_rejected(self):
        state = GENESIS.build_state()
        payload = encode_snapshot(state, GENESIS.build_genesis())
        with pytest.raises(SnapshotError):
            install_snapshot(payload, expected_state_root="0" * 64)

    def test_unknown_version_rejected(self):
        state = GENESIS.build_state()
        payload = copy.deepcopy(encode_snapshot(state, GENESIS.build_genesis()))
        payload["version"] = 999
        with pytest.raises(SnapshotError):
            install_snapshot(payload)


class TestSnapshotReplay:
    def test_replay_restarts_from_nearest_snapshot(self):
        node = make_node(
            KEYPAIRS[0],
            cold_store=ColdStore(),
            hot_window=4,
            snapshot_interval=5,
        )
        for _ in range(18):
            mine(node)
        assert node.snapshots_taken >= 3
        state = node._replay_to(node.head.block_hash)
        assert state.state_root() == node.head.header.state_root
        assert node.snapshot_replays == 1
        # 18 % 5 -> nearest checkpoint is block 15: replay 3, not 18.
        assert node.last_replay_blocks == 3

    def test_deep_reorg_replays_from_snapshot(self):
        cold = ColdStore()
        cfg = dict(
            cold_store=cold, hot_window=4, snapshot_interval=8, state_history=4
        )
        a = make_node(KEYPAIRS[0], **cfg)
        b = make_node(KEYPAIRS[1], **cfg)
        for _ in range(20):
            mine(a)
        for block in canonical_blocks(a):
            b.import_block(block)
        # The branches diverge at block 20: a extends by 6 (past its own
        # journal horizon), b by 8 (so b's branch wins fork choice).
        for _ in range(6):
            mine(a)
        for _ in range(8):
            mine(b)
        for block in canonical_blocks(b)[20:]:
            a.import_block(block)
        assert a.head.block_hash == b.head.block_hash
        assert a.state.state_root() == b.state.state_root()
        assert a.reorgs_seen >= 1
        # Rolling back 6 blocks overruns state_history=4: the ancestor's
        # journal mark is gone, so the node replays — from the nearest
        # cold checkpoint (block 16), not from genesis.
        assert a.snapshot_replays >= 1
        assert 0 < a.last_replay_blocks <= 8  # bounded by the interval


# ---------------------------------------------------------------------------
# Snapshot fast-sync
# ---------------------------------------------------------------------------


def synced_pair(height=27, interval=8):
    cold = ColdStore()
    provider = make_node(
        KEYPAIRS[0], cold_store=cold, hot_window=4, snapshot_interval=interval
    )
    for _ in range(height):
        mine(provider)
    lineage = canonical_blocks(provider)
    pivot = (height // interval) * interval
    payload = cold.get(snapshot_key(lineage[pivot - 1].block_hash))
    return provider, lineage, pivot, payload


class TestSyncFrom:
    def test_fast_forward_executes_only_the_tail(self):
        provider, lineage, pivot, payload = synced_pair()
        joiner = make_node(KEYPAIRS[1])
        executed = joiner.sync_from(payload, lineage[:pivot], lineage[pivot:])
        assert executed == len(lineage) - pivot
        assert executed < len(lineage) // 3  # replay cost << chain length
        assert joiner.head.block_hash == provider.head.block_hash
        assert joiner.state.state_root() == provider.state.state_root()
        assert joiner.balance_of(KEYPAIRS[0].address) == provider.balance_of(
            KEYPAIRS[0].address
        )
        storage = joiner.scale_stats()["storage"]
        assert storage["snap_syncs"] == 1
        assert storage["snap_skipped_blocks"] == pivot

    def test_synced_node_keeps_mining(self):
        provider, lineage, pivot, payload = synced_pair()
        joiner = make_node(KEYPAIRS[1])
        joiner.sync_from(payload, lineage[:pivot], lineage[pivot:])
        joiner.submit_transaction(
            transfer(joiner, KEYPAIRS[1], KEYPAIRS[2].address, 42)
        )
        mine(joiner)
        assert joiner.height == provider.height + 1
        assert joiner.balance_of(KEYPAIRS[2].address) == 10**15 + 42

    def test_tampered_snapshot_commits_nothing(self):
        _provider, lineage, pivot, payload = synced_pair()
        joiner = make_node(KEYPAIRS[1])
        bad = copy.deepcopy(payload)
        victim = sorted(bad["accounts"])[0]
        bad["accounts"][victim]["balance"] += 1
        with pytest.raises(SnapshotError):
            joiner.sync_from(bad, lineage[:pivot], lineage[pivot:])
        assert joiner.height == 0  # untouched: still at genesis

    def test_non_fast_forward_rejected(self):
        _provider, lineage, pivot, payload = synced_pair()
        joiner = make_node(KEYPAIRS[1])
        with pytest.raises(InvalidBlockError):
            joiner.sync_from(payload, lineage[1:pivot], lineage[pivot:])
        assert joiner.height == 0

    def test_mismatched_snapshot_rejected(self):
        _provider, lineage, pivot, payload = synced_pair()
        joiner = make_node(KEYPAIRS[1])
        with pytest.raises(InvalidBlockError):
            # Payload pinned to the pivot, pre blocks stop one short.
            joiner.sync_from(payload, lineage[: pivot - 1], lineage[pivot - 1 :])
        assert joiner.height == 0


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


class TestScaleConfigValidation:
    def test_unknown_execution_mode(self):
        with pytest.raises(ValueError):
            make_node(KEYPAIRS[0], execution="speculative")

    def test_hot_window_requires_cold_store(self):
        with pytest.raises(ValueError):
            make_node(KEYPAIRS[0], hot_window=8)

    def test_snapshot_interval_requires_cold_store(self):
        with pytest.raises(ValueError):
            make_node(KEYPAIRS[0], snapshot_interval=8)

    def test_parallel_min_txs_floor(self):
        with pytest.raises(ValueError):
            make_node(KEYPAIRS[0], parallel_min_txs=0)

    def test_chainspec_mirrors_the_same_rules(self):
        with pytest.raises(ConfigError):
            ChainSpec(execution="speculative")
        with pytest.raises(ConfigError):
            ChainSpec(snapshot_interval=8, cold_storage=False)
        with pytest.raises(ConfigError):
            ChainSpec(hot_window=0)
        spec = ChainSpec(
            execution="parallel", cold_storage=True, snapshot_interval=8
        )
        assert spec.hot_window == 16
