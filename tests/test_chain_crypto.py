"""Tests for the deterministic signature scheme."""

import pytest

from repro.chain.crypto import KeyPair, Signature, recover_check, verify
from repro.errors import InvalidSignatureError

DIGEST = b"\x11" * 32
OTHER_DIGEST = b"\x22" * 32


class TestKeyPair:
    def test_from_seed_deterministic(self):
        assert KeyPair.from_seed("alice").address == KeyPair.from_seed("alice").address

    def test_different_seeds_different_addresses(self):
        assert KeyPair.from_seed("alice").address != KeyPair.from_seed("bob").address

    def test_address_format(self):
        address = KeyPair.from_seed("alice").address
        assert address.startswith("0x")
        assert len(address) == 2 + 40

    def test_bad_private_key_length(self):
        with pytest.raises(ValueError):
            KeyPair(b"short")


class TestSignVerify:
    def test_valid_signature_verifies(self):
        kp = KeyPair.from_seed("alice")
        sig = kp.sign(DIGEST)
        assert verify(kp.public_bundle, DIGEST, sig)

    def test_wrong_digest_fails(self):
        kp = KeyPair.from_seed("alice")
        sig = kp.sign(DIGEST)
        assert not verify(kp.public_bundle, OTHER_DIGEST, sig)

    def test_wrong_key_fails(self):
        alice, bob = KeyPair.from_seed("alice"), KeyPair.from_seed("bob")
        sig = alice.sign(DIGEST)
        assert not verify(bob.public_bundle, DIGEST, sig)

    def test_tampered_mac_fails(self):
        kp = KeyPair.from_seed("alice")
        sig = kp.sign(DIGEST)
        tampered = Signature(mac=bytes(32), proof=sig.proof)
        assert not verify(kp.public_bundle, DIGEST, tampered)

    def test_tampered_proof_fails(self):
        kp = KeyPair.from_seed("alice")
        sig = kp.sign(DIGEST)
        tampered = Signature(mac=sig.mac, proof=bytes(32))
        assert not verify(kp.public_bundle, DIGEST, tampered)

    def test_sign_rejects_bad_digest_length(self):
        with pytest.raises(InvalidSignatureError):
            KeyPair.from_seed("alice").sign(b"short")

    def test_verify_rejects_bad_digest_length(self):
        kp = KeyPair.from_seed("alice")
        sig = kp.sign(DIGEST)
        assert not verify(kp.public_bundle, b"short", sig)

    def test_verify_with_malformed_bundle(self):
        kp = KeyPair.from_seed("alice")
        sig = kp.sign(DIGEST)
        assert not verify({}, DIGEST, sig)
        assert not verify({"verifier_key": "zz-not-hex"}, DIGEST, sig)

    def test_signature_deterministic(self):
        kp = KeyPair.from_seed("alice")
        assert kp.sign(DIGEST) == kp.sign(DIGEST)


class TestRecoverCheck:
    def test_correct_sender_accepted(self):
        kp = KeyPair.from_seed("alice")
        sig = kp.sign(DIGEST)
        assert recover_check(kp.public_bundle, DIGEST, sig, kp.address)

    def test_wrong_claimed_address_rejected(self):
        alice, bob = KeyPair.from_seed("alice"), KeyPair.from_seed("bob")
        sig = alice.sign(DIGEST)
        assert not recover_check(alice.public_bundle, DIGEST, sig, bob.address)

    def test_substituted_bundle_rejected(self):
        # Mallory tries to claim Alice's address with her own bundle.
        alice, mallory = KeyPair.from_seed("alice"), KeyPair.from_seed("mallory")
        sig = mallory.sign(DIGEST)
        assert not recover_check(mallory.public_bundle, DIGEST, sig, alice.address)

    def test_malformed_bundle_rejected(self):
        alice = KeyPair.from_seed("alice")
        sig = alice.sign(DIGEST)
        assert not recover_check({"pub": "zz"}, DIGEST, sig, alice.address)


class TestSignatureSerialization:
    def test_dict_round_trip(self):
        kp = KeyPair.from_seed("alice")
        sig = kp.sign(DIGEST)
        restored = Signature.from_dict(sig.to_dict())
        assert restored == sig
        assert verify(kp.public_bundle, DIGEST, restored)
