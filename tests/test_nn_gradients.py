"""Numerical gradient checks: backward passes against finite differences.

The training dynamics of the whole reproduction sit on these backward
passes, so each trainable layer (and the loss) is verified against central
finite differences.
"""

import numpy as np
import pytest

from repro.nn.layers import BatchNorm, Conv2D, Dense, Flatten, MaxPool2D, ReLU, Softmax
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.model import Sequential

EPS = 1e-5
TOL = 1e-4


def numeric_param_grad(layer, x, key, loss_of_output):
    """Finite-difference dLoss/dparam[key] for a layer."""
    param = layer.params[key]
    grad = np.zeros_like(param)
    flat = param.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + EPS
        plus = loss_of_output(layer.forward(x, training=True))
        flat[i] = original - EPS
        minus = loss_of_output(layer.forward(x, training=True))
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * EPS)
    return grad


def numeric_input_grad(forward, x, loss_of_output):
    """Finite-difference dLoss/dx."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + EPS
        plus = loss_of_output(forward(x))
        flat[i] = original - EPS
        minus = loss_of_output(forward(x))
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * EPS)
    return grad


def quadratic_loss(out):
    return float(0.5 * (out**2).sum())


class TestDenseGradients:
    def test_param_and_input_grads(self):
        rng = np.random.default_rng(0)
        layer = Dense(3)
        layer.build(rng, (4,))
        x = rng.normal(size=(5, 4))

        out = layer.forward(x, training=True)
        layer.zero_grads()
        input_grad = layer.backward(out)  # dL/dout = out for quadratic loss

        for key in ("W", "b"):
            numeric = numeric_param_grad(layer, x, key, quadratic_loss)
            np.testing.assert_allclose(layer.grads[key], numeric, atol=TOL)

        numeric_x = numeric_input_grad(lambda v: layer.forward(v, training=True), x, quadratic_loss)
        np.testing.assert_allclose(input_grad, numeric_x, atol=TOL)


class TestConvGradients:
    @pytest.mark.parametrize("padding", ["same", "valid"])
    def test_param_and_input_grads(self, padding):
        rng = np.random.default_rng(1)
        layer = Conv2D(2, kernel_size=3, padding=padding)
        layer.build(rng, (5, 5, 2))
        x = rng.normal(size=(2, 5, 5, 2))

        out = layer.forward(x, training=True)
        layer.zero_grads()
        input_grad = layer.backward(out)

        for key in ("W", "b"):
            numeric = numeric_param_grad(layer, x, key, quadratic_loss)
            np.testing.assert_allclose(layer.grads[key], numeric, atol=TOL)

        numeric_x = numeric_input_grad(lambda v: layer.forward(v, training=True), x, quadratic_loss)
        np.testing.assert_allclose(input_grad, numeric_x, atol=TOL)

    def test_strided_input_grad(self):
        rng = np.random.default_rng(2)
        layer = Conv2D(2, kernel_size=2, stride=2, padding="valid")
        layer.build(rng, (4, 4, 1))
        x = rng.normal(size=(1, 4, 4, 1))
        out = layer.forward(x, training=True)
        layer.zero_grads()
        input_grad = layer.backward(out)
        numeric_x = numeric_input_grad(lambda v: layer.forward(v, training=True), x, quadratic_loss)
        np.testing.assert_allclose(input_grad, numeric_x, atol=TOL)


class TestPoolAndActivationGradients:
    def test_maxpool_input_grad(self):
        rng = np.random.default_rng(3)
        layer = MaxPool2D(2)
        layer.build(rng, (4, 4, 2))
        x = rng.normal(size=(2, 4, 4, 2))
        out = layer.forward(x, training=True)
        input_grad = layer.backward(out)
        numeric_x = numeric_input_grad(lambda v: layer.forward(v, training=True), x, quadratic_loss)
        np.testing.assert_allclose(input_grad, numeric_x, atol=TOL)

    def test_relu_input_grad(self):
        rng = np.random.default_rng(4)
        layer = ReLU()
        x = rng.normal(size=(3, 6)) + 0.1  # keep away from the kink
        out = layer.forward(x, training=True)
        input_grad = layer.backward(out)
        numeric_x = numeric_input_grad(lambda v: layer.forward(v, training=True), x, quadratic_loss)
        np.testing.assert_allclose(input_grad, numeric_x, atol=TOL)

    def test_softmax_input_grad(self):
        rng = np.random.default_rng(5)
        layer = Softmax()
        x = rng.normal(size=(3, 4))
        out = layer.forward(x, training=True)
        input_grad = layer.backward(out)
        numeric_x = numeric_input_grad(lambda v: layer.forward(v, training=True), x, quadratic_loss)
        np.testing.assert_allclose(input_grad, numeric_x, atol=TOL)

    def test_batchnorm_grads(self):
        rng = np.random.default_rng(6)
        layer = BatchNorm()
        layer.build(rng, (3,))
        x = rng.normal(size=(8, 3))
        out = layer.forward(x, training=True)
        layer.zero_grads()
        input_grad = layer.backward(out)
        for key in ("gamma", "beta"):
            numeric = numeric_param_grad(layer, x, key, quadratic_loss)
            np.testing.assert_allclose(layer.grads[key], numeric, atol=TOL)
        numeric_x = numeric_input_grad(lambda v: layer.forward(v, training=True), x, quadratic_loss)
        np.testing.assert_allclose(input_grad, numeric_x, atol=1e-3)


class TestLossGradients:
    def test_cross_entropy_gradient(self):
        rng = np.random.default_rng(7)
        loss_fn = CrossEntropyLoss()
        logits = rng.normal(size=(6, 5))
        labels = rng.integers(0, 5, size=6)
        analytic = loss_fn.gradient(logits, labels)

        numeric = np.zeros_like(logits)
        flat = logits.ravel()
        num_flat = numeric.ravel()
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + EPS
            plus = loss_fn.loss(logits, labels)
            flat[i] = original - EPS
            minus = loss_fn.loss(logits, labels)
            flat[i] = original
            num_flat[i] = (plus - minus) / (2 * EPS)
        np.testing.assert_allclose(analytic, numeric, atol=TOL)

    def test_cross_entropy_with_smoothing(self):
        rng = np.random.default_rng(8)
        loss_fn = CrossEntropyLoss(label_smoothing=0.1)
        logits = rng.normal(size=(4, 3))
        labels = rng.integers(0, 3, size=4)
        analytic = loss_fn.gradient(logits, labels)
        numeric = np.zeros_like(logits)
        flat, num_flat = logits.ravel(), numeric.ravel()
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + EPS
            plus = loss_fn.loss(logits, labels)
            flat[i] = original - EPS
            minus = loss_fn.loss(logits, labels)
            flat[i] = original
            num_flat[i] = (plus - minus) / (2 * EPS)
        np.testing.assert_allclose(analytic, numeric, atol=TOL)

    def test_mse_gradient(self):
        rng = np.random.default_rng(9)
        loss_fn = MSELoss()
        pred = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 3))
        analytic = loss_fn.gradient(pred, target)
        np.testing.assert_allclose(analytic, 2 * (pred - target) / pred.size)


class TestEndToEndGradient:
    def test_mlp_chain(self):
        """Full model backward matches finite differences on the loss."""
        rng = np.random.default_rng(10)
        model = Sequential([Dense(6), ReLU(), Dense(3)]).build(rng, (4,))
        loss_fn = CrossEntropyLoss()
        x = rng.normal(size=(5, 4))
        y = rng.integers(0, 3, size=5)

        model.zero_grads()
        logits = model.forward(x, training=True)
        _loss, grad = loss_fn.loss_and_grad(logits, y)
        model.backward(grad)
        analytic = {k: v.copy() for k, v in model.gradients().items()}

        for key, param in model.parameters().items():
            numeric = np.zeros_like(param)
            flat, num_flat = param.ravel(), numeric.ravel()
            for i in range(flat.size):
                original = flat[i]
                flat[i] = original + EPS
                plus = loss_fn.loss(model.forward(x, training=True), y)
                flat[i] = original - EPS
                minus = loss_fn.loss(model.forward(x, training=True), y)
                flat[i] = original
                num_flat[i] = (plus - minus) / (2 * EPS)
            np.testing.assert_allclose(analytic[key], numeric, atol=TOL, err_msg=key)

    def test_flatten_conv_chain_shapes(self):
        rng = np.random.default_rng(11)
        model = Sequential(
            [Conv2D(2, kernel_size=3), ReLU(), MaxPool2D(2), Flatten(), Dense(3)]
        ).build(rng, (4, 4, 1))
        x = rng.normal(size=(2, 4, 4, 1))
        logits = model.forward(x, training=True)
        assert logits.shape == (2, 3)
        grad = model.backward(np.ones_like(logits))
        assert grad.shape == x.shape
