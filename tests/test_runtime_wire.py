"""Wire codec, typed errors, spec codec, and the served gateway.

Structure:

* frame codec round trips + every truncation/corruption path;
* golden-file fixtures (``tests/fixtures/wire_frames.json``) pinning the
  byte-exact wire format of a ``CallRequest`` rpc, a ``wait_for`` rpc,
  off-chain blob frames, and **every** registered error subtype — adding
  a :class:`~repro.errors.GatewayError` subclass to the registry without
  regenerating the fixtures fails loudly;
* the typed-error registry: type and message preserved across
  encode/decode for all 14 classes, graceful degradation for unknowns;
* :class:`~repro.runtime.wire.WireCondition` semantics;
* :mod:`repro.runtime.speccodec` round trips on real scenario specs;
* :class:`~repro.runtime.server.GatewayServer` +
  :class:`~repro.runtime.gateway.RemoteGateway` over a real socketpair —
  reads, submits, typed error parity, ``wait_for`` timeout crossing the
  boundary as the same class with the same message, and the
  :class:`~repro.runtime.gateway.RemoteOffchain` mirror.

Regenerate fixtures (deliberate format changes only)::

    PYTHONPATH=src python tests/test_runtime_wire.py --regenerate
"""

from __future__ import annotations

import dataclasses
import json
import socket
import threading
from pathlib import Path

import pytest

from repro.chain import GenesisSpec, Node, NodeConfig
from repro.chain.crypto import KeyPair
from repro.chain.gateway import CallRequest, InProcessGateway
from repro.chain.runtime import ContractRuntime
from repro.chain.transaction import Transaction
from repro.contracts import register_all
from repro.core.offchain import OffchainStore
from repro.errors import (
    GatewayError,
    GatewayTimeoutError,
    RoundError,
    SerializationError,
    UnknownContractError,
    WireProtocolError,
)
from repro.nn.serialize import weights_to_bytes
from repro.runtime.gateway import RemoteGateway, RemoteOffchain
from repro.runtime.server import GatewayServer
from repro.runtime.speccodec import decode_spec, encode_spec
from repro.runtime.wire import (
    WIRE_ERROR_TYPES,
    WireChannel,
    WireClosedError,
    WireCondition,
    decode_error,
    decode_frame,
    encode_error,
    encode_frame,
)
from repro.scenarios.spec import ScenarioSpec
from repro.utils.events import Simulator

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "wire_frames.json"


def golden_frames() -> dict:
    return json.loads(FIXTURE_PATH.read_text())["frames"]


def build_golden_frames() -> dict:
    """The checked-in frame set; the single source for --regenerate."""
    frames = {}

    def add(name, header, blobs=()):
        frames[name] = {
            "header": header,
            "blobs": [b.hex() for b in blobs],
            "hex": encode_frame(header, tuple(blobs)).hex(),
        }

    add(
        "rpc_call",
        {
            "kind": "rpc",
            "method": "call",
            "peer": "A",
            "params": {
                "contract": "0xmodelstore",
                "method": "round_submissions",
                "args": {"round_id": 3},
            },
        },
    )
    add(
        "rpc_batch_call",
        {
            "kind": "rpc",
            "method": "batch_call",
            "peer": "B",
            "params": {
                "requests": [
                    {"contract": "0xreputation", "method": "score_of", "args": {"address": "0xaa"}},
                    {"contract": "0xreputation", "method": "score_of", "args": {"address": "0xbb"}},
                ]
            },
        },
    )
    add(
        "rpc_wait_for",
        {
            "kind": "rpc",
            "method": "wait_for",
            "peer": "A",
            "params": {
                "condition": {"kind": "height_at_least", "value": 7},
                "what": "registration",
                "deadline": 50.0,
            },
        },
    )
    add(
        "rpc_offchain_put",
        {"kind": "rpc", "method": "offchain_put", "params": {}},
        [b"codec-v2 weight payload stand-in"],
    )
    add("rpc_result_with_blob", {"kind": "rpc-result", "value": None}, [b"fetched blob"])
    for name in sorted(WIRE_ERROR_TYPES):
        add(
            f"error_{name}",
            {"kind": "rpc-error", "error": {"type": name, "message": f"boom from {name}"}},
        )
    return frames


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------


class TestFrameCodec:
    def test_round_trip_with_blobs(self):
        header = {"kind": "task", "op": "train", "params": {"round": 2}}
        blobs = (b"alpha", b"", b"\x00" * 17)
        data = encode_frame(header, blobs)
        assert decode_frame(data) == (header, blobs)

    def test_round_trip_header_only(self):
        assert decode_frame(encode_frame({"kind": "hello", "worker": 0})) == (
            {"kind": "hello", "worker": 0},
            (),
        )

    def test_blobs_key_is_reserved(self):
        with pytest.raises(WireProtocolError):
            encode_frame({"kind": "rpc", "blobs": [1]})

    def test_missing_length_prefix(self):
        with pytest.raises(WireProtocolError):
            decode_frame(b"\x00")

    def test_truncated_header(self):
        data = encode_frame({"kind": "rpc", "method": "now", "params": {}})
        with pytest.raises(WireProtocolError):
            decode_frame(data[:10])

    def test_truncated_blob(self):
        data = encode_frame({"kind": "rpc-result", "value": None}, (b"payload",))
        with pytest.raises(WireProtocolError):
            decode_frame(data[:-3])

    def test_trailing_garbage(self):
        data = encode_frame({"kind": "rpc-result", "value": 1})
        with pytest.raises(WireProtocolError):
            decode_frame(data + b"x")

    def test_header_must_carry_kind(self):
        with pytest.raises(WireProtocolError):
            decode_frame(encode_frame({"kind": "x"}).replace(b'"kind":"x"', b'"king":"x"'))

    def test_unparseable_header(self):
        bad = b"\x00\x00\x00\x04}}}}"
        with pytest.raises(WireProtocolError):
            decode_frame(bad)


class TestWireChannel:
    def test_send_recv_and_byte_accounting(self):
        left_sock, right_sock = socket.socketpair()
        left, right = WireChannel(left_sock), WireChannel(right_sock)
        try:
            sent = left.send({"kind": "rpc", "method": "now", "params": {}}, (b"blob",))
            header, blobs, received = right.recv()
            assert header == {"kind": "rpc", "method": "now", "params": {}}
            assert blobs == (b"blob",)
            assert sent == received == left.bytes_sent == right.bytes_received
        finally:
            left.close()
            right.close()

    def test_eof_mid_frame_raises_closed(self):
        left_sock, right_sock = socket.socketpair()
        right = WireChannel(right_sock)
        try:
            left_sock.sendall(b"\x00\x00\x00\xff")  # promises a 255-byte header
            left_sock.close()
            with pytest.raises(WireClosedError):
                right.recv()
        finally:
            right.close()


# ---------------------------------------------------------------------------
# Golden fixtures
# ---------------------------------------------------------------------------


class TestGoldenFrames:
    def test_fixture_file_matches_builder(self):
        # The checked-in file IS the builder's output: any wire-format
        # drift (codec, key order, error registry) shows up as a diff.
        assert golden_frames() == build_golden_frames()

    @pytest.mark.parametrize("name", sorted(build_golden_frames()))
    def test_encode_reproduces_pinned_bytes(self, name):
        entry = golden_frames()[name]
        blobs = tuple(bytes.fromhex(b) for b in entry["blobs"])
        assert encode_frame(entry["header"], blobs).hex() == entry["hex"]

    @pytest.mark.parametrize("name", sorted(build_golden_frames()))
    def test_decode_recovers_header_and_blobs(self, name):
        entry = golden_frames()[name]
        header, blobs = decode_frame(bytes.fromhex(entry["hex"]))
        assert header == entry["header"]
        assert [b.hex() for b in blobs] == entry["blobs"]

    def test_every_registered_error_has_a_fixture(self):
        frames = golden_frames()
        for name in WIRE_ERROR_TYPES:
            assert f"error_{name}" in frames, (
                f"{name} is wire-registered but has no golden frame — "
                "regenerate tests/fixtures/wire_frames.json"
            )

    @pytest.mark.parametrize("name", sorted(WIRE_ERROR_TYPES))
    def test_error_fixture_decodes_to_typed_exception(self, name):
        entry = golden_frames()[f"error_{name}"]
        header, _ = decode_frame(bytes.fromhex(entry["hex"]))
        exc = decode_error(header["error"])
        assert type(exc) is WIRE_ERROR_TYPES[name]
        assert str(exc) == f"boom from {name}"


# ---------------------------------------------------------------------------
# Typed-error registry
# ---------------------------------------------------------------------------


class TestErrorCodec:
    @pytest.mark.parametrize("name", sorted(WIRE_ERROR_TYPES))
    def test_type_and_message_preserved(self, name):
        original = WIRE_ERROR_TYPES[name](f"failure detail for {name}")
        rebuilt = decode_error(encode_error(original))
        assert type(rebuilt) is type(original)
        assert str(rebuilt) == str(original)

    def test_unregistered_exception_degrades_to_gateway_error(self):
        payload = encode_error(ValueError("odd"))
        assert payload["type"] == "GatewayError"
        assert isinstance(decode_error(payload), GatewayError)

    def test_unknown_remote_type_keeps_name_in_message(self):
        exc = decode_error({"type": "FutureError", "message": "from v99"})
        assert type(exc) is GatewayError
        assert "FutureError" in str(exc) and "from v99" in str(exc)


class TestWireCondition:
    def test_round_trip(self):
        cond = WireCondition("height_at_least", 12)
        assert WireCondition.from_dict(cond.to_dict()) == cond

    def test_height_at_least_predicate(self):
        class FakeGateway:
            def height(self):
                return 5

        assert WireCondition("height_at_least", 5).build(FakeGateway())()
        assert not WireCondition("height_at_least", 6).build(FakeGateway())()

    def test_contract_deployed_predicate(self):
        class FakeGateway:
            def has_contract(self, address):
                return address == "0xdeployed"

        assert WireCondition("contract_deployed", "0xdeployed").build(FakeGateway())()
        assert not WireCondition("contract_deployed", "0xother").build(FakeGateway())()

    def test_never_predicate(self):
        assert not WireCondition("never").build(object())()

    def test_unknown_kind_raises(self):
        with pytest.raises(WireProtocolError):
            WireCondition("until_tuesday").build(object())


# ---------------------------------------------------------------------------
# Spec codec
# ---------------------------------------------------------------------------


class TestSpecCodec:
    def test_quick_spec_round_trips_equal(self):
        spec = ScenarioSpec(name="wire", kind="decentralized", seed=3).quick()
        rebuilt = decode_spec(encode_spec(spec))
        assert rebuilt == spec

    def test_multiprocess_fields_survive(self):
        spec = dataclasses.replace(
            ScenarioSpec(name="wire", kind="decentralized", seed=3).quick(),
            runtime="multiprocess",
            runtime_workers=4,
        )
        rebuilt = decode_spec(encode_spec(spec))
        assert rebuilt.runtime == "multiprocess"
        assert rebuilt.runtime_workers == 4
        assert rebuilt == spec

    def test_payload_survives_json_round_trip(self):
        # The encoded form is exactly what rides the init task frame.
        spec = ScenarioSpec(name="wire", kind="decentralized", seed=9).quick()
        payload = json.loads(json.dumps(encode_spec(spec)))
        assert decode_spec(payload) == spec


# ---------------------------------------------------------------------------
# Served gateway over a real socketpair
# ---------------------------------------------------------------------------


def make_node(seed: str = "wire-node"):
    runtime = ContractRuntime()
    register_all(runtime)
    kp = KeyPair.from_seed(seed)
    genesis = GenesisSpec(allocations={kp.address: 10**15})
    return Node(kp, genesis, runtime, NodeConfig()), kp


def deploy_registry(node, kp, timestamp: float = 13.0) -> str:
    tx = Transaction(
        sender=kp.address,
        to=None,
        nonce=node.next_nonce_for(kp.address),
        args={"contract": "participant_registry", "open_enrollment": True},
    ).sign_with(kp)
    node.submit_transaction(tx)
    block = node.build_block_candidate(timestamp, difficulty=1)
    node.seal_and_import(block, nonce=0)
    return node.receipt_of(tx.tx_hash).contract_address


class ServedGateway:
    """A GatewayServer pumping one socketpair end on a daemon thread."""

    def __init__(self, gateway, offchain=None):
        self.offchain = offchain if offchain is not None else OffchainStore()
        self.server = GatewayServer({"A": gateway}, self.offchain)
        server_sock, client_sock = socket.socketpair()
        self.server_channel = WireChannel(server_sock)
        self.client_channel = WireChannel(client_sock)
        self.thread = threading.Thread(
            target=self.server.serve_channel, args=(self.server_channel,), daemon=True
        )
        self.thread.start()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.client_channel.close()
        self.server_channel.close()
        self.thread.join(timeout=10)


class TestServedGateway:
    def test_reads_match_direct_gateway(self):
        node, kp = make_node()
        registry = deploy_registry(node, kp)
        gateway = InProcessGateway(node)
        with ServedGateway(gateway) as served:
            remote = RemoteGateway(served.client_channel, "A")
            assert remote.height() == gateway.height()
            assert remote.head_hash() == gateway.head_hash()
            assert remote.has_contract(registry)
            assert remote.next_nonce(kp.address) == gateway.next_nonce(kp.address)
            assert remote.call(registry, "member_count") == gateway.call(
                registry, "member_count"
            )
            assert remote.batch_call(
                [CallRequest(registry, "member_count", {})] * 2
            ) == [0, 0]
            head, now = remote.observe_head()
            assert head == gateway.head_hash()
            assert remote.stats.rpc_round_trips >= 7
            assert remote.stats.wire_bytes_sent > 0
            assert remote.stats.wire_bytes_received > 0

    def test_submit_reaches_mempool(self):
        node, kp = make_node()
        registry = deploy_registry(node, kp)
        with ServedGateway(InProcessGateway(node)) as served:
            remote = RemoteGateway(served.client_channel, "A")
            tx = Transaction(
                sender=kp.address,
                to=registry,
                nonce=remote.next_nonce(kp.address),
                method="register",
                args={"display_name": "A"},
            ).sign_with(kp)
            assert remote.submit(tx) == tx.tx_hash

    def test_typed_errors_cross_the_wire(self):
        node, _ = make_node()
        with ServedGateway(InProcessGateway(node)) as served:
            remote = RemoteGateway(served.client_channel, "A")
            with pytest.raises(UnknownContractError):
                remote.call("0xnope", "anything")

    def test_unknown_peer_is_a_protocol_error(self):
        node, _ = make_node()
        with ServedGateway(InProcessGateway(node)) as served:
            remote = RemoteGateway(served.client_channel, "Z")
            with pytest.raises(WireProtocolError):
                remote.height()

    def test_wait_for_requires_wire_condition(self):
        node, _ = make_node()
        with ServedGateway(InProcessGateway(node)) as served:
            remote = RemoteGateway(served.client_channel, "A")
            with pytest.raises(WireProtocolError):
                remote.wait_for(lambda: True, "callable")

    @staticmethod
    def _timed_out_wait(remote: bool) -> GatewayTimeoutError:
        """One fresh deployment whose 5s wait times out, locally or served."""
        node, _ = make_node()
        sim = Simulator()
        gateway = InProcessGateway(node, simulator=sim)

        def tick():
            sim.schedule_in(1.0, tick)

        tick()
        with pytest.raises(GatewayTimeoutError) as excinfo:
            if remote:
                with ServedGateway(gateway) as served:
                    RemoteGateway(served.client_channel, "A").wait_for(
                        WireCondition("never"), "nothing", deadline=5.0
                    )
            else:
                gateway.wait_for(lambda: False, "nothing", deadline=5.0)
        return excinfo.value

    def test_wait_for_timeout_type_and_message_preserved(self):
        # Two identical deployments: one waits through the wire, one
        # directly — the remote timeout must be the same class carrying
        # the same message.
        remote_exc = self._timed_out_wait(remote=True)
        local_exc = self._timed_out_wait(remote=False)
        assert type(remote_exc) is type(local_exc) is GatewayTimeoutError
        assert str(remote_exc) == str(local_exc)
        assert isinstance(remote_exc, RoundError)

    def test_wait_for_returns_elapsed(self):
        node, _ = make_node()
        sim = Simulator()
        gateway = InProcessGateway(node, simulator=sim)
        # The genesis block is already on chain, so the condition holds
        # on the first check and zero simulated time elapses.
        with ServedGateway(gateway) as served:
            remote = RemoteGateway(served.client_channel, "A")
            elapsed = remote.wait_for(
                WireCondition("height_at_least", gateway.height()),
                "already true",
                deadline=10.0,
            )
        assert elapsed == 0.0
        assert remote.stats.waits == 1


class TestRemoteOffchain:
    def test_put_get_contains_round_trip(self):
        node, _ = make_node()
        store = OffchainStore()
        with ServedGateway(InProcessGateway(node), offchain=store) as served:
            remote = RemoteOffchain(served.client_channel)
            key = remote.put(b"payload bytes")
            assert key in store  # pushed upstream
            assert key in remote  # mirrored locally
            assert remote.get(key) == b"payload bytes"

    def test_missing_blob_is_serialization_error(self):
        node, _ = make_node()
        with ServedGateway(InProcessGateway(node)) as served:
            remote = RemoteOffchain(served.client_channel)
            with pytest.raises(SerializationError):
                remote.get("0" * 64)

    def test_fetch_available_matches_local_store_semantics(self):
        import numpy as np

        node, _ = make_node()
        store = OffchainStore()
        weights_a = {"w": np.arange(4, dtype=np.float32)}
        weights_b = {"w": np.ones(4, dtype=np.float32)}
        key_a = store.put(weights_to_bytes(weights_a))
        key_b = store.put(weights_to_bytes(weights_b))
        with ServedGateway(InProcessGateway(node), offchain=store) as served:
            remote = RemoteOffchain(served.client_channel)
            trips_before = remote.stats.rpc_round_trips
            got = remote.fetch_available([key_a, "f" * 64, key_b, key_a])
            assert list(got) == [key_a, key_b]  # present-only, first-seen order
            np.testing.assert_array_equal(got[key_a]["w"], weights_a["w"])
            np.testing.assert_array_equal(got[key_b]["w"], weights_b["w"])
            assert remote.stats.rpc_round_trips == trips_before + 1  # one batch RPC
            # Mirrored: a re-fetch costs zero additional round trips.
            trips = remote.stats.rpc_round_trips
            again = remote.fetch_available([key_a, key_b])
            assert list(again) == [key_a, key_b]
            assert remote.stats.rpc_round_trips == trips


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        payload = {
            "_comment": (
                "Golden wire frames for repro.runtime.wire. Regenerate only on a "
                "deliberate wire-format change: "
                "PYTHONPATH=src python tests/test_runtime_wire.py --regenerate"
            ),
            "frames": build_golden_frames(),
        }
        FIXTURE_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {FIXTURE_PATH}")
    else:
        sys.exit(pytest.main([__file__, "-q"]))
