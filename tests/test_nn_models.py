"""Tests for the paper's two evaluation models and the metrics module."""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec
from repro.errors import ConfigError, ShapeError
from repro.nn.metrics import accuracy, confusion_matrix, per_class_accuracy, top_k_accuracy
from repro.nn.models import (
    build_efficientnet_b0_sim,
    build_model,
    build_simple_cnn,
    build_simple_nn,
    count_parameters,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestSimpleNN:
    def test_parameter_count_matches_paper(self, rng):
        """The paper reports 'only 62K parameters'; ours is 62,214."""
        model = build_simple_nn(rng)
        assert count_parameters(model) == 62_214

    def test_output_shape(self, rng):
        model = build_simple_nn(rng)
        out = model.predict(rng.normal(size=(4, 3072)))
        assert out.shape == (4, 10)

    def test_fully_trainable(self, rng):
        model = build_simple_nn(rng)
        assert model.parameter_count(trainable_only=True) == model.parameter_count()

    def test_init_seeded(self):
        a = build_simple_nn(np.random.default_rng(1)).get_weights()
        b = build_simple_nn(np.random.default_rng(1)).get_weights()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])


class TestEfficientNetB0Sim:
    def test_generic_backbone_fallback(self, rng):
        model = build_efficientnet_b0_sim(rng)
        out = model.predict(rng.normal(size=(2, 3072)))
        assert out.shape == (2, 10)

    def test_domain_backbone(self, rng):
        factory = SyntheticImageDataset(SyntheticSpec())
        backbone = factory.pretrained_backbone()
        model = build_efficientnet_b0_sim(rng, backbone=backbone)
        out = model.predict(rng.normal(size=(2, 3072)))
        assert out.shape == (2, 10)

    def test_only_head_trains(self, rng):
        factory = SyntheticImageDataset(SyntheticSpec())
        model = build_efficientnet_b0_sim(rng, backbone=factory.pretrained_backbone())
        trainable = model.trainable_parameters()
        assert set(trainable) == {"head/W", "head/b"}

    def test_backbone_shared_across_peers(self):
        factory = SyntheticImageDataset(SyntheticSpec())
        backbone = factory.pretrained_backbone()
        a = build_efficientnet_b0_sim(np.random.default_rng(1), backbone=backbone)
        b = build_efficientnet_b0_sim(np.random.default_rng(2), backbone=backbone)
        x = np.random.default_rng(3).normal(size=(4, 3072))
        feats_a = a.layers[0].forward(x)
        feats_b = b.layers[0].forward(x)
        np.testing.assert_array_equal(feats_a, feats_b)

    def test_domain_backbone_beats_generic_quickly(self, rng):
        """The domain-pretrained trunk is what gives the paper's fast start."""
        from repro.data.dataset import Dataset
        from repro.fl.trainer import LocalTrainer, TrainConfig

        spec = SyntheticSpec()
        factory = SyntheticImageDataset(spec)
        train = factory.sample(800, np.random.default_rng(1))
        test = factory.sample(300, np.random.default_rng(2))
        del Dataset

        domain = build_efficientnet_b0_sim(
            np.random.default_rng(42), backbone=factory.pretrained_backbone(mismatch=0.0)
        )
        trainer = LocalTrainer(TrainConfig(epochs=5, batch_size=32, learning_rate=0.5), rng=np.random.default_rng(3))
        trainer.train(domain, train)
        assert domain.evaluate_accuracy(test.x, test.y) > 0.6


class TestSimpleCNN:
    def test_forward_backward(self, rng):
        model = build_simple_cnn(rng)
        x = rng.normal(size=(2, 32, 32, 3))
        out = model.forward(x, training=True)
        assert out.shape == (2, 10)
        grad = model.backward(np.ones_like(out) / out.size)
        assert grad.shape == x.shape


class TestRegistry:
    def test_build_model_by_name(self, rng):
        assert build_model("simple_nn", rng).name == "simple_nn"

    def test_unknown_kind(self, rng):
        with pytest.raises(ConfigError):
            build_model("resnet152", rng)


class TestMetrics:
    def test_accuracy_from_logits(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(2 / 3)

    def test_accuracy_from_class_ids(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)

    def test_accuracy_empty(self):
        assert accuracy(np.zeros((0, 3)), np.zeros(0, dtype=int)) == 0.0

    def test_accuracy_shape_errors(self):
        with pytest.raises(ShapeError):
            accuracy(np.zeros((2, 2, 2)), np.zeros(2, dtype=int))
        with pytest.raises(ShapeError):
            accuracy(np.zeros((3, 2)), np.zeros(2, dtype=int))

    def test_top_k(self):
        logits = np.array([[0.5, 0.3, 0.2], [0.1, 0.2, 0.7]])
        labels = np.array([1, 0])
        assert top_k_accuracy(logits, labels, k=1) == 0.0
        assert top_k_accuracy(logits, labels, k=2) == pytest.approx(0.5)
        assert top_k_accuracy(logits, labels, k=3) == 1.0

    def test_top_k_validation(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(2, dtype=int), k=4)
        with pytest.raises(ShapeError):
            top_k_accuracy(np.zeros(3), np.zeros(3, dtype=int))

    def test_confusion_matrix(self):
        predictions = np.array([0, 1, 1, 2])
        labels = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(predictions, labels, num_classes=3)
        assert matrix[0, 0] == 1
        assert matrix[1, 1] == 1
        assert matrix[2, 1] == 1
        assert matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_confusion_matrix_from_logits(self):
        logits = np.array([[0.9, 0.1], [0.1, 0.9]])
        labels = np.array([0, 1])
        matrix = confusion_matrix(logits, labels, num_classes=2)
        assert np.trace(matrix) == 2

    def test_per_class_accuracy(self):
        predictions = np.array([0, 0, 1, 1])
        labels = np.array([0, 0, 0, 1])
        per_class = per_class_accuracy(predictions, labels, num_classes=3)
        assert per_class[0] == pytest.approx(2 / 3)
        assert per_class[1] == 1.0
        assert per_class[2] == 0.0  # no samples: reported as 0, not NaN
