"""Tests for gas accounting."""

import pytest

from repro.chain.gas import DEFAULT_SCHEDULE, GasMeter, GasSchedule, intrinsic_gas
from repro.errors import OutOfGasError


class TestIntrinsicGas:
    def test_base_cost_for_empty_payload(self):
        assert intrinsic_gas(b"") == DEFAULT_SCHEDULE.tx_base

    def test_zero_bytes_cheaper(self):
        zeros = intrinsic_gas(b"\x00" * 10)
        nonzeros = intrinsic_gas(b"\x01" * 10)
        assert zeros < nonzeros

    def test_exact_data_cost(self):
        payload = b"\x00\x01\x00\x02"
        expected = (
            DEFAULT_SCHEDULE.tx_base
            + 2 * DEFAULT_SCHEDULE.tx_data_zero_byte
            + 2 * DEFAULT_SCHEDULE.tx_data_nonzero_byte
        )
        assert intrinsic_gas(payload) == expected

    def test_create_surcharge(self):
        assert (
            intrinsic_gas(b"", is_create=True)
            == DEFAULT_SCHEDULE.tx_base + DEFAULT_SCHEDULE.tx_create
        )

    def test_custom_schedule(self):
        schedule = GasSchedule(tx_base=100, tx_data_zero_byte=1, tx_data_nonzero_byte=2)
        assert intrinsic_gas(b"\x00\x01", schedule=schedule) == 103


class TestGasMeter:
    def test_charges_accumulate(self):
        meter = GasMeter(1000)
        meter.charge(300)
        meter.charge(200)
        assert meter.used == 500
        assert meter.remaining == 500

    def test_out_of_gas_raises(self):
        meter = GasMeter(100)
        with pytest.raises(OutOfGasError):
            meter.charge(101)

    def test_out_of_gas_consumes_everything(self):
        meter = GasMeter(100)
        with pytest.raises(OutOfGasError):
            meter.charge(500)
        assert meter.used == 100
        assert meter.remaining == 0

    def test_exact_limit_ok(self):
        meter = GasMeter(100)
        meter.charge(100)
        assert meter.remaining == 0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            GasMeter(100).charge(-1)

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            GasMeter(-1)

    def test_sstore_fresh_vs_update(self):
        meter = GasMeter(10**6)
        meter.charge_sstore(fresh=True)
        fresh_cost = meter.used
        meter.charge_sstore(fresh=False)
        update_cost = meter.used - fresh_cost
        assert fresh_cost > update_cost

    def test_sstore_value_size_charged(self):
        small, large = GasMeter(10**9), GasMeter(10**9)
        small.charge_sstore(fresh=True, value_size=10)
        large.charge_sstore(fresh=True, value_size=10_000)
        assert large.used > small.used

    def test_sload_and_log_charges(self):
        meter = GasMeter(10**6)
        meter.charge_sload()
        assert meter.used == DEFAULT_SCHEDULE.sload
        meter.charge_log(data_size=10)
        assert meter.used == (
            DEFAULT_SCHEDULE.sload
            + DEFAULT_SCHEDULE.log_base
            + 10 * DEFAULT_SCHEDULE.log_data_byte
        )
