"""Fault harness tests: plans, injection, resilience, graceful degradation.

Covers the reproducibility contract (same seed -> same injected-fault
trace), the typed fault/retry semantics of the gateway decorators, the
byte-equivalence guarantee (transient-only plans behind the resilient
gateway change nothing), and round-level degradation (quorum rounds with
crashed peers, rejoin catch-up).
"""

import numpy as np
import pytest

from repro.chain.network import NetworkStats, P2PNetwork
from repro.core.decentralized import DecentralizedConfig, DecentralizedFL
from repro.core.peer import PeerConfig
from repro.data.dataset import Dataset
from repro.errors import (
    ConfigError,
    GatewayTimeoutError,
    GatewayUnavailableError,
    TransactionRejectedError,
    TransientGatewayError,
)
from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultyGateway,
    MIN_LIVE_PEERS,
    ResilientGateway,
    RetryPolicy,
)
from repro.fl.scoring import weights_fingerprint
from repro.fl.trainer import TrainConfig
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.scenarios import ScenarioSpec, fault_scenario
from repro.scenarios.spec import ChainSpec
from repro.utils.events import Simulator
from repro.utils.rng import RngFactory


# ---------------------------------------------------------------------------
# Specs and plans
# ---------------------------------------------------------------------------


class TestFaultSpec:
    def test_inactive_by_default(self):
        spec = FaultSpec()
        assert not spec.active
        assert not spec.call_faults_active

    def test_rates_in_kind_order(self):
        spec = FaultSpec(
            transient_rate=0.1,
            timeout_rate=0.2,
            latency_rate=0.3,
            duplicate_rate=0.05,
            stale_read_rate=0.15,
        )
        assert spec.rates() == (0.1, 0.2, 0.3, 0.05, 0.15)
        assert len(FAULT_KINDS) == len(spec.rates())

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(transient_rate=1.0)
        with pytest.raises(ConfigError):
            FaultSpec(timeout_rate=-0.1)

    def test_rate_sum_must_stay_below_one(self):
        with pytest.raises(ConfigError):
            FaultSpec(transient_rate=0.5, timeout_rate=0.3, latency_rate=0.25)

    def test_crash_fraction_bounds(self):
        with pytest.raises(ConfigError):
            FaultSpec(crash_fraction=1.5)
        assert FaultSpec(crash_fraction=1.0).active

    def test_resilient_retries_must_outnumber_consecutive_faults(self):
        with pytest.raises(ConfigError):
            FaultSpec(
                transient_rate=0.1,
                max_consecutive=4,
                retry=RetryPolicy(max_attempts=4),
            )
        # With resilience off the bound is irrelevant.
        FaultSpec(transient_rate=0.1, max_consecutive=4, resilience=False)

    def test_retry_policy_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_base=2.0, backoff_cap=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(breaker_cooldown=0.0)

    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_cap=3.0)
        assert [policy.backoff(k) for k in (1, 2, 3, 4, 5)] == [
            0.5,
            1.0,
            2.0,
            3.0,
            3.0,
        ]

    def test_budget_per_method(self):
        policy = RetryPolicy(read_budget=10.0, submit_budget=20.0)
        assert policy.budget_for("submit") == 20.0
        assert policy.budget_for("call") == 10.0


class TestFaultPlan:
    def test_tail_of_cohort_crashes(self):
        plan = FaultPlan(FaultSpec(crash_fraction=0.4), ["A", "B", "C", "D", "E"])
        assert plan.crashed_peers == ("D", "E")

    def test_min_live_peers_cap(self):
        plan = FaultPlan(FaultSpec(crash_fraction=1.0), ["A", "B", "C"])
        assert len(plan.crashed_peers) == 3 - MIN_LIVE_PEERS
        assert "A" not in plan.crashed_peers

    def test_down_only_inside_window(self):
        spec = FaultSpec(crash_fraction=0.5, crash_round=2, crash_rounds=2)
        plan = FaultPlan(spec, ["A", "B", "C", "D"])
        assert plan.down(1) == frozenset()
        assert plan.down(2) == frozenset(plan.crashed_peers)
        assert plan.down(3) == frozenset(plan.crashed_peers)
        assert plan.down(4) == frozenset()

    def test_zero_fraction_crashes_nobody(self):
        plan = FaultPlan(FaultSpec(), ["A", "B", "C"])
        assert plan.crashed_peers == ()
        assert plan.down(2) == frozenset()


# ---------------------------------------------------------------------------
# Injector
# ---------------------------------------------------------------------------


def make_injector(spec, peers=("A", "B"), seed=7):
    plan = FaultPlan(spec, list(peers))
    return FaultInjector(plan, RngFactory(seed))


class TestFaultInjector:
    def test_same_seed_same_trace(self):
        spec = FaultSpec(transient_rate=0.2, timeout_rate=0.1)
        first, second = make_injector(spec), make_injector(spec)
        for injector in (first, second):
            injector.begin_round(1)
            for _ in range(40):
                injector.decide("A", "call")
                injector.decide("B", "submit")
        assert first.trace == second.trace
        assert first.trace  # the rates are high enough to fire

    def test_zero_rates_draw_nothing(self):
        injector = make_injector(FaultSpec(crash_fraction=0.5), peers=("A", "B", "C"))
        injector.begin_round(1)
        for _ in range(10):
            assert injector.decide("A", "call") is None
        # The faults/A stream was never touched: a fresh factory with the
        # same seed yields the very first draw of that stream.
        expected = float(RngFactory(7).get("faults", "A").random())
        actual = float(injector._rngs.get("faults", "A").random())
        assert actual == expected

    def test_per_peer_streams_are_independent(self):
        spec = FaultSpec(transient_rate=0.3)
        solo = make_injector(spec)
        solo.begin_round(1)
        solo_kinds = [solo.decide("A", "call") for _ in range(30)]
        interleaved = make_injector(spec)
        interleaved.begin_round(1)
        mixed_kinds = []
        for _ in range(30):
            mixed_kinds.append(interleaved.decide("A", "call"))
            interleaved.decide("B", "call")  # must not perturb A's stream
        assert solo_kinds == mixed_kinds

    def test_consecutive_error_bound(self):
        # Rate ~1: every draw would be a transient error, but the bound
        # forces a clean call after max_consecutive.
        spec = FaultSpec(transient_rate=0.99, max_consecutive=2)
        injector = make_injector(spec)
        injector.begin_round(1)
        kinds = [injector.decide("A", "call") for _ in range(9)]
        assert kinds == ["transient", "transient", None] * 3

    def test_duplicate_only_fires_on_submit(self):
        spec = FaultSpec(duplicate_rate=0.99)
        injector = make_injector(spec)
        injector.begin_round(1)
        assert injector.decide("A", "call") is None
        assert injector.decide("A", "submit") == "duplicate"

    def test_stale_only_fires_on_reads(self):
        spec = FaultSpec(stale_read_rate=0.99)
        injector = make_injector(spec)
        injector.begin_round(1)
        assert injector.decide("A", "submit") is None
        assert injector.decide("A", "call") == "stale"

    def test_crashed_tracks_round_window(self):
        spec = FaultSpec(crash_fraction=0.5, crash_round=2)
        injector = make_injector(spec, peers=("A", "B", "C", "D"))
        assert not injector.crashed("D")  # before any round
        injector.begin_round(2)
        assert injector.crashed("D") and not injector.crashed("A")
        injector.begin_round(3)
        assert not injector.crashed("D")

    def test_end_run_goes_inert(self):
        spec = FaultSpec(transient_rate=0.99, crash_fraction=0.5, crash_round=1)
        injector = make_injector(spec, peers=("A", "B", "C", "D"))
        injector.begin_round(1)
        assert injector.crashed("D")
        assert injector.decide("A", "call") == "transient"
        injector.end_run()
        assert not injector.crashed("D")
        assert all(injector.decide("A", "call") is None for _ in range(5))


# ---------------------------------------------------------------------------
# FaultyGateway (scripted injector, stub transport)
# ---------------------------------------------------------------------------


class ScriptedInjector:
    """Duck-typed injector replaying a scripted decision sequence."""

    def __init__(self, script, spec=None, down=()):
        self.script = list(script)
        self.spec = spec if spec is not None else FaultSpec()
        self._down = set(down)

    def crashed(self, peer_id):
        return peer_id in self._down

    def decide(self, peer_id, method):
        return self.script.pop(0) if self.script else None


class StubTransport:
    """Minimal in-memory ChainGateway backend for decorator unit tests."""

    def __init__(self, simulator=None):
        self.sim = simulator if simulator is not None else Simulator()
        self.submits = []
        self.reject_next = 0
        self.value = 0

    def call(self, contract, method, **args):
        self.value += 1
        return self.value

    def submit(self, tx):
        if self.reject_next > 0:
            self.reject_next -= 1
            raise TransactionRejectedError("nonce already used")
        self.submits.append(tx)
        return tx.tx_hash

    def height(self):
        return len(self.submits)

    def now(self):
        return self.sim.now

    def wait_for(self, predicate, what, deadline=None):
        return self.now()


class FakeTx:
    def __init__(self, tx_hash="0xabc"):
        self.tx_hash = tx_hash


class TestFaultyGateway:
    def test_transient_raised_before_transport_effect(self):
        inner = StubTransport()
        gateway = FaultyGateway(inner, "A", ScriptedInjector(["transient"]))
        with pytest.raises(TransientGatewayError):
            gateway.submit(FakeTx())
        assert inner.submits == []  # pre-effect: the ledger never saw it
        assert gateway.stats.faults_injected == 1

    def test_timeout_is_typed(self):
        gateway = FaultyGateway(StubTransport(), "A", ScriptedInjector(["timeout"]))
        with pytest.raises(GatewayTimeoutError):
            gateway.call("0x1", "height")

    def test_latency_spike_advances_sim_clock(self):
        sim = Simulator()
        stats = NetworkStats()
        injector = ScriptedInjector(["latency"], spec=FaultSpec(latency_rate=0.1, latency_spike=4.0))
        gateway = FaultyGateway(
            StubTransport(sim), "A", injector, simulator=sim, network_stats=stats
        )
        before = sim.now
        gateway.call("0x1", "height")
        assert sim.now == pytest.approx(before + 4.0)
        assert stats.messages_delayed == 1

    def test_duplicate_delivers_twice_and_swallows_rejection(self):
        inner = StubTransport()
        stats = NetworkStats()
        gateway = FaultyGateway(
            inner, "A", ScriptedInjector(["duplicate"]), network_stats=stats
        )
        tx = FakeTx()
        assert gateway.submit(tx) == tx.tx_hash
        assert len(inner.submits) == 2  # at-least-once delivery
        assert stats.messages_duplicated == 1

    def test_duplicate_rejection_is_swallowed(self):
        inner = StubTransport()
        gateway = FaultyGateway(inner, "A", ScriptedInjector(["duplicate"]))
        tx = FakeTx()
        # First delivery accepted, the duplicate rejected: still success.
        original_submit = inner.submit
        delivered = []

        def submit_once_then_reject(t):
            if delivered:
                raise TransactionRejectedError("duplicate")
            delivered.append(t)
            return original_submit(t)

        inner.submit = submit_once_then_reject
        assert gateway.submit(tx) == tx.tx_hash
        assert delivered == [tx]

    def test_stale_read_served_within_window(self):
        inner = StubTransport()
        spec = FaultSpec(stale_read_rate=0.1, stale_window=30.0)
        gateway = FaultyGateway(inner, "A", ScriptedInjector([None, "stale"], spec=spec))
        first = gateway.call("0x1", "get", k=1)
        assert gateway.call("0x1", "get", k=1) == first  # served stale
        assert gateway.stats.cache_hits == 1
        assert inner.value == 1  # transport touched once

    def test_stale_beyond_window_reads_fresh(self):
        sim = Simulator()
        inner = StubTransport(sim)
        spec = FaultSpec(stale_read_rate=0.1, stale_window=5.0)
        gateway = FaultyGateway(
            inner, "A", ScriptedInjector([None, "stale"], spec=spec), simulator=sim
        )
        first = gateway.call("0x1", "get", k=1)
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        assert gateway.call("0x1", "get", k=1) == first + 1  # too old: fresh read
        assert gateway.stats.cache_hits == 0

    def test_crashed_peer_refuses_everything(self):
        gateway = FaultyGateway(StubTransport(), "A", ScriptedInjector([], down=("A",)))
        with pytest.raises(GatewayUnavailableError):
            gateway.height()
        with pytest.raises(GatewayUnavailableError):
            gateway.submit(FakeTx())


# ---------------------------------------------------------------------------
# ResilientGateway
# ---------------------------------------------------------------------------


class FlakyTransport(StubTransport):
    """Raises scripted errors before succeeding."""

    def __init__(self, errors=(), simulator=None):
        super().__init__(simulator)
        self.errors = list(errors)
        self.attempts = 0

    def _maybe_raise(self):
        self.attempts += 1
        if self.errors:
            raise self.errors.pop(0)

    def call(self, contract, method, **args):
        self._maybe_raise()
        return super().call(contract, method, **args)

    def submit(self, tx):
        self._maybe_raise()
        return super().submit(tx)


class TestResilientGateway:
    def test_retries_to_success_with_accounted_backoff(self):
        inner = FlakyTransport([TransientGatewayError("x"), GatewayTimeoutError("y")])
        gateway = ResilientGateway(inner, RetryPolicy(backoff_base=0.5))
        assert gateway.call("0x1", "get") == 1
        assert inner.attempts == 3
        assert gateway.stats.retries == 2
        assert gateway.stats.deadline_misses == 1
        assert gateway.stats.backoff_seconds == pytest.approx(0.5 + 1.0)
        # Backoff is budget accounting, never simulated time.
        assert inner.now() == 0.0

    def test_gives_up_after_max_attempts(self):
        inner = FlakyTransport([TransientGatewayError("x")] * 10)
        gateway = ResilientGateway(inner, RetryPolicy(max_attempts=3))
        with pytest.raises(GatewayUnavailableError):
            gateway.call("0x1", "get")
        assert inner.attempts == 3
        assert gateway.stats.gave_up == 1

    def test_budget_exhaustion_gives_up_early(self):
        inner = FlakyTransport([TransientGatewayError("x")] * 10)
        policy = RetryPolicy(max_attempts=8, backoff_base=2.0, read_budget=3.0)
        gateway = ResilientGateway(inner, policy)
        with pytest.raises(GatewayUnavailableError):
            gateway.call("0x1", "get")
        # First backoff (2.0) fits the 3.0 budget, the second (4.0) does not.
        assert inner.attempts == 2

    def test_non_retryable_errors_pass_through(self):
        inner = FlakyTransport([TransactionRejectedError("bad nonce")])
        gateway = ResilientGateway(inner)
        with pytest.raises(TransactionRejectedError):
            gateway.submit(FakeTx())
        assert inner.attempts == 1

    def test_submit_is_idempotent_after_ack(self):
        inner = FlakyTransport()
        gateway = ResilientGateway(inner)
        tx = FakeTx()
        gateway.submit(tx)
        gateway.submit(tx)
        assert len(inner.submits) == 1
        assert gateway.stats.deduped_submits == 1

    def test_rejection_after_ambiguous_failure_counts_as_applied(self):
        # Attempt 1 times out (ambiguously — it may have landed), the
        # retry is rejected because the nonce was consumed: success.
        inner = FlakyTransport([GatewayTimeoutError("maybe landed")])
        inner.reject_next = 1
        gateway = ResilientGateway(inner)
        tx = FakeTx()
        assert gateway.submit(tx) == tx.tx_hash
        assert gateway.stats.deduped_submits == 1
        assert gateway.stats.gave_up == 0

    def test_breaker_trips_and_cools_down(self):
        sim = Simulator()
        inner = FlakyTransport([TransientGatewayError("x")] * 100, simulator=sim)
        policy = RetryPolicy(
            max_attempts=2, breaker_threshold=1, breaker_cooldown=60.0
        )
        gateway = ResilientGateway(inner, policy)
        with pytest.raises(GatewayUnavailableError):
            gateway.call("0x1", "get")
        attempts_after_trip = inner.attempts
        # Circuit open: refused without touching the transport.
        with pytest.raises(GatewayUnavailableError):
            gateway.call("0x1", "get")
        assert inner.attempts == attempts_after_trip
        # Past cooldown the half-open probe goes through and succeeds.
        sim.schedule_at(61.0, lambda: None)
        sim.run()
        inner.errors = []
        assert gateway.call("0x1", "get") == 1
        assert gateway._tripped_at is None  # breaker closed again

    def test_half_open_probe_failure_retrips(self):
        sim = Simulator()
        inner = FlakyTransport([TransientGatewayError("x")] * 100, simulator=sim)
        policy = RetryPolicy(
            max_attempts=2, breaker_threshold=1, breaker_cooldown=60.0
        )
        gateway = ResilientGateway(inner, policy)
        with pytest.raises(GatewayUnavailableError):
            gateway.call("0x1", "get")
        sim.schedule_at(61.0, lambda: None)
        sim.run()
        with pytest.raises(GatewayUnavailableError):
            gateway.call("0x1", "get")  # probe fails -> re-tripped from now
        before = inner.attempts
        with pytest.raises(GatewayUnavailableError):
            gateway.call("0x1", "get")
        assert inner.attempts == before  # open again, transport untouched

    def test_wait_for_passes_through(self):
        inner = FlakyTransport()
        gateway = ResilientGateway(inner)
        gateway.wait_for(lambda: True, "anything")
        assert gateway.stats.waits == 1


# ---------------------------------------------------------------------------
# End-to-end: driver under faults
# ---------------------------------------------------------------------------


def easy_dataset(rng, n=100):
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return Dataset(x, y)


def shared_builder(rng):
    return Sequential([Dense(6, name="h"), ReLU(), Dense(2, name="out")]).build(
        np.random.default_rng(42), (4,)
    )


def make_driver(rounds=2, peers=("A", "B", "C"), **config_kwargs):
    data_rng = np.random.default_rng(0)
    config = DecentralizedConfig(rounds=rounds, **config_kwargs)
    peer_configs = [
        PeerConfig(
            peer_id=p,
            train_config=TrainConfig(epochs=1, learning_rate=0.1),
            training_time=10.0,
            training_time_jitter=2.0,
        )
        for p in peers
    ]
    return DecentralizedFL(
        peer_configs,
        {p: easy_dataset(data_rng) for p in peers},
        {p: easy_dataset(data_rng, n=60) for p in peers},
        shared_builder,
        config,
        rng_factory=RngFactory(7),
    )


def run_fingerprints(driver):
    driver.run()
    return {
        peer_id: weights_fingerprint(peer.client.model.get_weights())
        for peer_id, peer in driver.peers.items()
    }


TRANSIENT_FAULTS = FaultSpec(transient_rate=0.15, timeout_rate=0.05)


class TestDriverByteEquivalence:
    def test_transient_plan_changes_nothing(self):
        """The acceptance criterion: transient faults + resilience leave
        final weights, reputation scores, and chain heights identical to
        the faults-disabled run."""
        faulty = make_driver(rounds=2, faults=TRANSIENT_FAULTS, enable_reputation=True)
        clean = make_driver(rounds=2, enable_reputation=True)
        faulty_weights = run_fingerprints(faulty)
        clean_weights = run_fingerprints(clean)
        assert faulty_weights == clean_weights
        assert faulty.reputation_scores() == clean.reputation_scores()
        assert faulty.chain_stats()["heights"] == clean.chain_stats()["heights"]
        assert faulty.abort_reason == ""
        assert faulty.completed_rounds == clean.completed_rounds == 2
        # The faults were real (injected and absorbed), not vacuous.
        stats = faulty.gateway_stats()["resilience"]
        assert stats["faults_injected"] > 0
        assert stats["retries"] > 0
        assert stats["gave_up"] == 0

    def test_fault_trace_is_reproducible(self):
        first = make_driver(rounds=2, faults=TRANSIENT_FAULTS)
        second = make_driver(rounds=2, faults=TRANSIENT_FAULTS)
        first.run()
        second.run()
        assert first.fault_injector.trace == second.fault_injector.trace
        assert first.fault_injector.trace

    def test_batching_backend_composes_with_faults(self):
        faulty = make_driver(rounds=2, faults=TRANSIENT_FAULTS, gateway="batching")
        clean = make_driver(rounds=2, gateway="batching")
        assert run_fingerprints(faulty) == run_fingerprints(clean)
        assert faulty.abort_reason == ""

    def test_unshielded_faults_abort_instead_of_raising(self):
        spec = FaultSpec(transient_rate=0.25, timeout_rate=0.1, resilience=False)
        driver = make_driver(rounds=2, faults=spec)
        logs = driver.run()
        assert driver.abort_reason != ""
        assert driver.completed_rounds < 2
        assert logs is driver.round_logs  # partial logs still returned


class TestCrashDegradation:
    CRASH = FaultSpec(crash_fraction=0.25, crash_round=2, crash_rounds=1)

    def test_quorum_round_proceeds_without_crashed_peer(self):
        driver = make_driver(rounds=3, peers=("A", "B", "C", "D"), faults=self.CRASH)
        driver.run()
        assert driver.abort_reason == ""
        assert driver.completed_rounds == 3
        assert driver.fault_plan.crashed_peers == ("D",)
        round2_logs = [log for log in driver.round_logs if log.round_id == 2]
        assert sorted(log.peer_id for log in round2_logs) == ["A", "B", "C"]
        round3_logs = [log for log in driver.round_logs if log.round_id == 3]
        assert sorted(log.peer_id for log in round3_logs) == ["A", "B", "C", "D"]

    def test_rejoining_peer_catches_up(self):
        driver = make_driver(rounds=3, peers=("A", "B", "C", "D"), faults=self.CRASH)
        driver.run()
        assert [entry["peer"] for entry in driver.catch_ups] == ["D"]
        assert driver.catch_ups[0]["round"] == 3
        assert driver.catch_ups[0]["models"] > 0
        heights = driver.chain_stats()["heights"]
        assert heights["D"] == heights["A"]  # chain caught up via sync

    def test_crash_window_reaching_final_round_still_finalizes(self):
        spec = FaultSpec(crash_fraction=0.25, crash_round=2, crash_rounds=5)
        driver = make_driver(rounds=3, peers=("A", "B", "C", "D"), faults=spec)
        driver.run()
        assert driver.abort_reason == ""
        assert driver.completed_rounds == 3
        heights = driver.chain_stats()["heights"]
        assert heights["D"] == heights["A"]  # rejoined during finalization
        assert [entry["peer"] for entry in driver.catch_ups] == ["D"]

    def test_faults_block_in_chain_stats(self):
        driver = make_driver(rounds=3, peers=("A", "B", "C", "D"), faults=self.CRASH)
        driver.run()
        block = driver.chain_stats()["faults"]
        assert block["crashed_peers"] == ["D"]
        assert block["completed_rounds"] == 3
        assert block["catch_ups"] == 1
        assert block["abort_reason"] == ""


# ---------------------------------------------------------------------------
# Satellites: network streams, stats keys, spec threading
# ---------------------------------------------------------------------------


class TestNetworkDropStream:
    def test_drop_decisions_use_dedicated_stream(self):
        from repro.chain.pow import ProofOfWork

        def build(drop_rate):
            sim = Simulator()
            return P2PNetwork(
                sim,
                ProofOfWork(np.random.default_rng(1)),
                rng=np.random.default_rng(5),
                drop_rate=drop_rate,
                drop_rng=np.random.default_rng(11),
            )

        lossy = build(0.5)
        draws = [lossy._should_drop() for _ in range(20)]
        expected_rng = np.random.default_rng(11)
        assert draws == [float(expected_rng.random()) < 0.5 for _ in range(20)]
        # The latency stream was never consumed by drop decisions.
        assert float(lossy.rng.random()) == float(np.random.default_rng(5).random())

    def test_zero_drop_rate_draws_nothing(self):
        from repro.chain.pow import ProofOfWork

        sim = Simulator()
        network = P2PNetwork(
            sim,
            ProofOfWork(np.random.default_rng(1)),
            drop_rate=0.0,
            drop_rng=np.random.default_rng(11),
        )
        assert not any(network._should_drop() for _ in range(10))
        assert float(network.drop_rng.random()) == float(
            np.random.default_rng(11).random()
        )

    def test_network_stats_dict_has_fault_counters(self):
        payload = NetworkStats().as_dict()
        assert payload["messages_duplicated"] == 0
        assert payload["messages_delayed"] == 0


class TestSpecThreading:
    def test_chain_spec_drop_rate_validated(self):
        with pytest.raises(ConfigError):
            ChainSpec(drop_rate=1.0)
        assert ChainSpec(drop_rate=0.3).drop_rate == 0.3

    def test_fault_scenario_threads_the_axes(self):
        spec = fault_scenario(
            "x", FaultSpec(transient_rate=0.1), seed=3, drop_rate=0.2
        )
        assert spec.faults.transient_rate == 0.1
        assert spec.chain.drop_rate == 0.2

    def test_vanilla_scenarios_reject_faults(self):
        with pytest.raises(ConfigError):
            ScenarioSpec(kind="vanilla", faults=FaultSpec(transient_rate=0.1))

    def test_driver_drop_rate_validated(self):
        with pytest.raises(ConfigError):
            DecentralizedConfig(drop_rate=1.0)
