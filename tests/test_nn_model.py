"""Tests for the Sequential container, optimizers, losses, serialization."""

import numpy as np
import pytest

from repro.errors import NotBuiltError, SerializationError, ShapeError
from repro.nn.layers import Dense, ReLU
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD, Adam, Momentum
from repro.nn.serialize import (
    weights_from_bytes,
    weights_hash,
    weights_to_bytes,
    weights_size_bytes,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def small_model(rng):
    return Sequential([Dense(6, name="h"), ReLU(), Dense(3, name="out")]).build(rng, (4,))


class TestSequential:
    def test_build_tracks_shapes(self, rng):
        model = small_model(rng)
        assert model.input_shape == (4,)
        assert model.output_shape == (3,)

    def test_use_before_build_raises(self, rng):
        model = Sequential([Dense(3)])
        with pytest.raises(NotBuiltError):
            model.forward(rng.normal(size=(2, 4)))

    def test_duplicate_layer_names_deduplicated(self, rng):
        model = Sequential([Dense(3, name="d"), ReLU(), Dense(3, name="d")]).build(rng, (4,))
        keys = model.parameters().keys()
        assert "d/W" in keys and "d_2/W" in keys

    def test_parameter_count(self, rng):
        model = small_model(rng)
        assert model.parameter_count() == (4 * 6 + 6) + (6 * 3 + 3)

    def test_predict_matches_forward_inference(self, rng):
        model = small_model(rng)
        x = rng.normal(size=(5, 4))
        np.testing.assert_array_equal(model.predict(x), model.forward(x, training=False))


class TestWeightsRoundTrip:
    def test_get_set_round_trip(self, rng):
        model = small_model(rng)
        weights = model.get_weights()
        other = small_model(np.random.default_rng(99))
        other.set_weights(weights)
        x = rng.normal(size=(3, 4))
        np.testing.assert_array_equal(model.predict(x), other.predict(x))

    def test_get_weights_is_copy(self, rng):
        model = small_model(rng)
        weights = model.get_weights()
        weights["h/W"][...] = 0.0
        assert not np.allclose(model.parameters()["h/W"], 0.0)

    def test_set_weights_key_mismatch(self, rng):
        model = small_model(rng)
        with pytest.raises(ShapeError):
            model.set_weights({"bogus": np.zeros(3)})

    def test_set_weights_shape_mismatch(self, rng):
        model = small_model(rng)
        weights = model.get_weights()
        weights["h/W"] = np.zeros((2, 2))
        with pytest.raises(ShapeError):
            model.set_weights(weights)


class TestTraining:
    def test_train_step_reduces_loss(self, rng):
        model = small_model(rng)
        loss_fn = CrossEntropyLoss()
        optimizer = SGD(0.5)
        x = rng.normal(size=(32, 4))
        y = (x[:, 0] > 0).astype(np.int64)  # learnable binary-ish task
        first = model.train_step(x, y, loss_fn, optimizer)
        for _ in range(50):
            last = model.train_step(x, y, loss_fn, optimizer)
        assert last < first

    def test_evaluate_accuracy_batched(self, rng):
        model = small_model(rng)
        x = rng.normal(size=(100, 4))
        y = rng.integers(0, 3, size=100)
        full = model.evaluate_accuracy(x, y, batch_size=1000)
        batched = model.evaluate_accuracy(x, y, batch_size=7)
        assert full == batched

    def test_empty_dataset_accuracy_zero(self, rng):
        model = small_model(rng)
        assert model.evaluate_accuracy(np.zeros((0, 4)), np.zeros(0, dtype=int)) == 0.0


class TestOptimizers:
    def _quadratic_steps(self, optimizer, steps=60):
        # Minimize f(w) = ||w||^2 by following its gradient.
        params = {"w": np.array([5.0, -3.0])}
        for _ in range(steps):
            grads = {"w": 2 * params["w"]}
            optimizer.step(params, grads)
        return params["w"]

    def test_sgd_converges(self):
        w = self._quadratic_steps(SGD(0.1))
        np.testing.assert_allclose(w, 0.0, atol=1e-4)

    def test_momentum_converges(self):
        w = self._quadratic_steps(Momentum(0.05, momentum=0.9), steps=200)
        np.testing.assert_allclose(w, 0.0, atol=1e-2)

    def test_adam_converges(self):
        w = self._quadratic_steps(Adam(0.3), steps=200)
        np.testing.assert_allclose(w, 0.0, atol=1e-3)

    def test_weight_decay_shrinks(self):
        optimizer = SGD(0.1, weight_decay=0.5)
        params = {"w": np.array([1.0])}
        optimizer.step(params, {"w": np.array([0.0])})
        assert params["w"][0] < 1.0

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD(0.0)
        with pytest.raises(ValueError):
            Adam(-1.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            Momentum(0.1, momentum=1.0)

    def test_steps_counted(self):
        optimizer = SGD(0.1)
        params = {"w": np.zeros(2)}
        optimizer.step(params, {"w": np.zeros(2)})
        optimizer.step(params, {"w": np.zeros(2)})
        assert optimizer.steps == 2


class TestLosses:
    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        labels = np.array([0, 1])
        assert CrossEntropyLoss().loss(logits, labels) < 1e-6

    def test_cross_entropy_uniform_is_log_k(self):
        logits = np.zeros((4, 10))
        labels = np.arange(4)
        assert CrossEntropyLoss().loss(logits, labels) == pytest.approx(np.log(10))

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            CrossEntropyLoss().loss(np.zeros((3,)), np.zeros(3, dtype=int))
        with pytest.raises(ShapeError):
            CrossEntropyLoss().loss(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss(label_smoothing=1.0)

    def test_mse_zero_for_equal(self):
        x = np.ones((3, 2))
        assert MSELoss().loss(x, x) == 0.0

    def test_mse_shape_mismatch(self):
        with pytest.raises(ShapeError):
            MSELoss().loss(np.zeros((2, 2)), np.zeros((3, 2)))


class TestSerialization:
    def test_round_trip(self, rng):
        model = small_model(rng)
        weights = model.get_weights()
        restored = weights_from_bytes(weights_to_bytes(weights))
        assert set(restored) == set(weights)
        for key in weights:
            np.testing.assert_array_equal(restored[key], weights[key])

    def test_hash_stable(self, rng):
        weights = small_model(rng).get_weights()
        assert weights_hash(weights) == weights_hash(weights)

    def test_hash_detects_change(self, rng):
        weights = small_model(rng).get_weights()
        before = weights_hash(weights)
        weights["h/W"][0, 0] += 1e-9
        assert weights_hash(weights) != before

    def test_non_ndarray_rejected(self):
        with pytest.raises(SerializationError):
            weights_to_bytes({"w": [1, 2, 3]})

    def test_bad_payload_rejected(self):
        with pytest.raises(SerializationError):
            weights_from_bytes(b"garbage")

    def test_version_checked(self, rng):
        from repro.utils.serialization import canonical_dumps

        payload = canonical_dumps({"version": 999, "weights": {}})
        with pytest.raises(SerializationError):
            weights_from_bytes(payload)

    def test_size_reported(self, rng):
        weights = small_model(rng).get_weights()
        assert weights_size_bytes(weights) == len(weights_to_bytes(weights))
