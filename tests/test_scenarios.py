"""Tests for the declarative scenario API (spec, registry, runner, sweep)."""

from dataclasses import replace

import pytest

from repro.core.config import quick_config
from repro.core.decentralized import DecentralizedConfig
from repro.core.experiment import run_decentralized_experiment, run_vanilla_experiment
from repro.errors import ConfigError
from repro.fl.async_policy import WaitForK
from repro.fl.poisoning import LabelFlipAttacker, NoiseAttacker, ScaleAttacker
from repro.scenarios import (
    AdversarySpec,
    CohortSpec,
    HeterogeneitySpec,
    ScenarioContext,
    ScenarioSpec,
    cohort_scenario,
    cohort_sweep,
    default_client_ids,
    get_scenario,
    grid,
    list_scenarios,
    replace_axis,
    run_grid,
    run_scenario,
)
from repro.utils.rng import RngFactory


def tiny_spec(**overrides) -> ScenarioSpec:
    """A seconds-scale decentralized spec for runner tests."""
    defaults = dict(
        kind="decentralized",
        rounds=1,
        local_epochs=1,
        cohort=CohortSpec(size=3, train_samples=60, test_samples=40),
        aggregator_test_samples=40,
        seed=11,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestSpecValidation:
    def test_cohort_size_floor(self):
        with pytest.raises(ConfigError):
            CohortSpec(size=1)

    def test_cohort_ids_must_match_size(self):
        with pytest.raises(ConfigError):
            CohortSpec(size=3, client_ids=("A", "B"))

    def test_cohort_volumes_must_match_size(self):
        with pytest.raises(ConfigError):
            CohortSpec(size=3, volumes=(100, 100))

    def test_attacker_fraction_range(self):
        with pytest.raises(ConfigError):
            AdversarySpec(kind="label_flip", fraction=1.5)
        with pytest.raises(ConfigError):
            AdversarySpec(kind="label_flip", fraction=-0.1)

    def test_attacker_kind_needs_fraction(self):
        with pytest.raises(ConfigError):
            AdversarySpec(kind="noise", fraction=0.0)

    def test_unknown_attacker_kind(self):
        with pytest.raises(ConfigError):
            AdversarySpec(kind="gradient_inversion", fraction=0.5)

    def test_attacker_fraction_needs_a_kind(self):
        with pytest.raises(ConfigError):
            AdversarySpec(kind="none", fraction=0.3)

    def test_attacker_knobs_validated_at_construction(self):
        with pytest.raises(ConfigError):
            AdversarySpec(kind="noise", fraction=0.5, noise_std=0.0)
        with pytest.raises(ConfigError):
            AdversarySpec(kind="scale", fraction=0.5, scale=1.0)
        with pytest.raises(ConfigError):
            AdversarySpec(kind="label_flip", fraction=0.5, flip_fraction=0.0)

    def test_unknown_heterogeneity_kind(self):
        with pytest.raises(ConfigError):
            HeterogeneitySpec(kind="bimodal")

    def test_custom_heterogeneity_needs_times(self):
        with pytest.raises(ConfigError):
            HeterogeneitySpec(kind="custom")

    def test_hetero_times_must_match_cohort(self):
        with pytest.raises(ConfigError):
            tiny_spec(heterogeneity=HeterogeneitySpec(kind="custom", times=(10.0, 20.0)))

    def test_unknown_selection(self):
        with pytest.raises(ConfigError):
            tiny_spec(selection="simulated_annealing")

    def test_unknown_kind_and_mode(self):
        with pytest.raises(ConfigError):
            tiny_spec(kind="hierarchical")
        with pytest.raises(ConfigError):
            tiny_spec(mode="dictatorship")

    def test_experiment_config_validation(self):
        with pytest.raises(ConfigError):
            replace(quick_config("simple_nn"), learning_rate=0.0)
        with pytest.raises(ConfigError):
            replace(quick_config("simple_nn"), local_epochs=0)
        with pytest.raises(ConfigError):
            replace(quick_config("simple_nn"), client_ids=("A", "A", "B"))
        with pytest.raises(ConfigError):
            replace(quick_config("simple_nn"), client_skew=-1.0)


class TestSpecAxes:
    def test_default_client_ids(self):
        assert default_client_ids(3) == ("A", "B", "C")
        assert default_client_ids(26)[-1] == "Z"
        assert default_client_ids(30)[:2] == ("P00", "P01")

    def test_linear_volume_profile(self):
        cohort = CohortSpec(size=5, train_samples=100, volume_profile="linear")
        volumes = [cohort.volume_of(i) for i in range(5)]
        assert volumes[0] == 50 and volumes[-1] == 150
        assert volumes == sorted(volumes)

    def test_adversary_ids_are_last_clients(self):
        ids = default_client_ids(3)
        assert AdversarySpec(kind="label_flip", fraction=1 / 3).adversary_ids(ids) == ("C",)
        assert AdversarySpec(kind="noise", fraction=1.0).adversary_ids(ids) == ids
        assert AdversarySpec().adversary_ids(ids) == ()

    def test_build_attacker_types(self):
        assert isinstance(
            AdversarySpec(kind="label_flip", fraction=0.5).build_attacker(), LabelFlipAttacker
        )
        assert isinstance(
            AdversarySpec(kind="noise", fraction=0.5).build_attacker(), NoiseAttacker
        )
        assert isinstance(
            AdversarySpec(kind="scale", fraction=0.5).build_attacker(), ScaleAttacker
        )
        assert AdversarySpec().build_attacker() is None

    def test_straggler_times_deterministic(self):
        hetero = HeterogeneitySpec(
            kind="stragglers", base_time=10.0, straggler_fraction=0.4, straggler_factor=3.0
        )
        times = hetero.training_times(default_client_ids(5), RngFactory(0).get("hetero"))
        assert times["A"] == 10.0 and times["D"] == 30.0 and times["E"] == 30.0

    def test_zero_straggler_fraction_is_homogeneous(self):
        hetero = HeterogeneitySpec(kind="stragglers", base_time=10.0, straggler_fraction=0.0)
        times = hetero.training_times(default_client_ids(4), RngFactory(0).get("hetero"))
        assert set(times.values()) == {10.0}

    def test_uniform_times_draw_from_stream(self):
        hetero = HeterogeneitySpec(kind="uniform", base_time=30.0, spread=10.0)
        a = hetero.training_times(("A", "B"), RngFactory(1).get("hetero"))
        b = hetero.training_times(("A", "B"), RngFactory(1).get("hetero"))
        assert a == b
        assert all(20.0 <= t <= 40.0 for t in a.values())

    def test_replace_axis_nested(self):
        spec = tiny_spec()
        bigger = replace_axis(spec, "cohort.size", 5)
        assert bigger.cohort.size == 5
        assert bigger.client_ids() == ("A", "B", "C", "D", "E")
        assert replace_axis(spec, "policy", WaitForK(1)).policy == WaitForK(1)

    def test_replace_axis_unknown_path(self):
        with pytest.raises(ConfigError):
            replace_axis(tiny_spec(), "cohort.flavour", 1)
        with pytest.raises(ConfigError):
            replace_axis(tiny_spec(), "warp_factor", 9)

    def test_experiment_config_round_trip(self):
        config = quick_config("simple_nn", seed=9)
        spec = ScenarioSpec.from_experiment_config(config, kind="vanilla")
        assert spec.to_experiment_config() == config


class TestRegistry:
    def test_expected_names_registered(self):
        names = {definition.name for definition in list_scenarios()}
        assert {
            "paper/table1",
            "paper/tables234",
            "paper/tradeoff",
            "cohort/10",
            "cohort/25",
            "cohort/50",
            "adversarial/label_flip",
            "adversarial/reputation",
            "hetero/stragglers",
        } <= names

    def test_unknown_name_did_you_mean(self):
        with pytest.raises(ConfigError, match="paper/table1"):
            get_scenario("paper/tabel1")

    def test_dynamic_cohort_names(self):
        definition = get_scenario("cohort/17")
        (spec,) = definition.build(seed=1, quick=True)
        assert spec.cohort.size == 17
        with pytest.raises(ConfigError):
            get_scenario("cohort/1")

    def test_dynamic_and_registered_cohorts_described_identically(self):
        registered = get_scenario("cohort/25")
        dynamic = get_scenario("cohort/12")
        assert registered.description.replace("25", "12") == dynamic.description

    def test_every_registered_scenario_builds(self):
        for definition in list_scenarios():
            specs = definition.build(seed=1, quick=True)
            assert specs, definition.name
            for spec in specs:
                assert isinstance(spec, ScenarioSpec)

    def test_builds_honor_every_requested_model(self):
        both = ("simple_nn", "efficientnet_b0_sim")
        for definition in list_scenarios():
            specs = definition.build(seed=1, quick=True, models=both)
            assert {spec.model_kind for spec in specs} == set(both), definition.name

    @pytest.mark.parametrize(
        "name", [definition.name for definition in list_scenarios()]
    )
    def test_every_registered_scenario_runs_quick(self, name):
        definition = get_scenario(name)
        specs = [
            # Big cohorts additionally shrink data/rounds (size is the point).
            replace(
                spec,
                rounds=1,
                cohort=replace(spec.cohort, train_samples=50, test_samples=40),
                aggregator_test_samples=40,
            )
            if spec.cohort.size > 6
            else spec
            for spec in definition.build(seed=1, quick=True, models=("simple_nn",))
        ]
        context = ScenarioContext()
        results = [run_scenario(spec, context=context) for spec in specs]
        for spec, result in zip(specs, results):
            assert set(result.client_accuracy) == set(spec.client_ids())
        blocks = definition.render(specs, results)
        assert blocks and all(isinstance(block, str) for block in blocks)


class TestRunner:
    def test_same_seed_identical_result(self):
        spec = tiny_spec(
            cohort=CohortSpec(size=4, train_samples=60, test_samples=40),
            adversary=AdversarySpec(kind="noise", fraction=0.25, noise_std=0.3),
            heterogeneity=HeterogeneitySpec(kind="uniform", base_time=30.0, spread=15.0),
        )
        assert run_scenario(spec) == run_scenario(spec)

    def test_seed_changes_result(self):
        spec = tiny_spec()
        assert run_scenario(spec) != run_scenario(replace(spec, seed=spec.seed + 1))

    def test_adversaries_recorded_and_effective(self):
        honest = tiny_spec()
        attacked = replace(
            honest, adversary=AdversarySpec(kind="scale", fraction=1 / 3, scale=50.0)
        )
        honest_result = run_scenario(honest)
        attacked_result = run_scenario(attacked)
        assert honest_result.adversaries == ()
        assert attacked_result.adversaries == ("C",)
        # The attacker's committed update really is scaled: any combination
        # containing C scores differently than in the honest run.
        assert attacked_result.combination_accuracy != honest_result.combination_accuracy

    def test_label_flip_poisons_training_data(self):
        spec = tiny_spec(adversary=AdversarySpec(kind="label_flip", fraction=1 / 3))
        from repro.scenarios.runner import _cohort_datasets

        train_sets, _, _ = _cohort_datasets(spec, RngFactory(spec.seed), ScenarioContext())
        assert train_sets["C"].name.endswith("label_flipped")
        assert (train_sets["C"].y == 0).all()
        assert not (train_sets["A"].y == 0).all()

    def test_custom_heterogeneity_reaches_wait_times(self):
        spec = tiny_spec(
            heterogeneity=HeterogeneitySpec(kind="custom", times=(5.0, 5.0, 500.0)),
            rounds=1,
        )
        result = run_scenario(spec)
        assert result.training_times == {"A": 5.0, "B": 5.0, "C": 500.0}
        # The two fast peers wait for the straggler under wait-for-all.
        assert result.wait_times["A"] > 400.0
        assert result.wait_times["C"] < 100.0

    def test_greedy_selection_engages(self):
        spec = tiny_spec(selection="greedy")
        result = run_scenario(spec)
        for log in result.round_logs:
            assert len(log.combination_accuracy) == 1

    def test_global_vote_mode(self):
        spec = tiny_spec(mode="global_vote")
        result = run_scenario(spec)
        for log in result.round_logs:
            assert log.chosen_combination == ("A", "B", "C")

    def test_vanilla_kind(self):
        spec = tiny_spec(kind="vanilla", consider=False)
        result = run_scenario(spec)
        assert set(result.client_accuracy) == {"A", "B", "C"}
        assert result.combination_accuracy == {}
        assert result.mean_wait() == 0.0


class TestLegacyShims:
    """The legacy runners are shims over run_scenario and must agree with it."""

    def test_vanilla_shim_equals_scenario(self):
        config = quick_config("simple_nn", seed=3)
        shim = run_vanilla_experiment(config, consider=True)
        direct = run_scenario(
            ScenarioSpec.from_experiment_config(config, kind="vanilla", consider=True)
        )
        assert shim.client_accuracy == direct.client_accuracy
        assert shim.round_logs == direct.round_logs

    def test_decentralized_shim_equals_scenario(self):
        config = quick_config("simple_nn", seed=3)
        shim = run_decentralized_experiment(config)
        direct = run_scenario(ScenarioSpec.from_experiment_config(config))
        assert shim.combination_accuracy == direct.combination_accuracy
        assert shim.wait_times == direct.wait_times
        assert shim.chain_stats == direct.chain_stats

    def test_policy_override_preserves_chain_config(self):
        """The seed bug: passing policy= used to silently reset mode and
        gossip settings back to defaults.  Every field must survive now."""
        config = quick_config("simple_nn", seed=3)
        merged = run_decentralized_experiment(
            config,
            policy=WaitForK(1),
            chain_config=DecentralizedConfig(mode="global_vote", gossip_batch_window=0.02),
        )
        baked = run_decentralized_experiment(
            config,
            chain_config=DecentralizedConfig(
                policy=WaitForK(1), mode="global_vote", gossip_batch_window=0.02
            ),
        )
        assert merged.combination_accuracy == baked.combination_accuracy
        assert merged.wait_times == baked.wait_times
        # global_vote really ran: every adopted combination is the full set.
        for log in merged.round_logs:
            assert log.chosen_combination == ("A", "B", "C")

    def test_policy_override_does_not_mutate_caller_config(self):
        config = quick_config("simple_nn", seed=3)
        chain_config = DecentralizedConfig()
        run_decentralized_experiment(config, policy=WaitForK(1), chain_config=chain_config)
        assert chain_config.policy != WaitForK(1)
        assert chain_config.rounds == 10

    def test_training_times_shim(self):
        config = quick_config("simple_nn", seed=3)
        result = run_decentralized_experiment(
            config, training_times={"A": 5.0, "B": 5.0, "C": 200.0}
        )
        assert result.wait_times["A"] > result.wait_times["C"]

    def test_training_times_missing_entry_rejected(self):
        config = quick_config("simple_nn", seed=3)
        with pytest.raises(ConfigError):
            run_decentralized_experiment(config, training_times={"A": 5.0})


class TestSweepDriver:
    def test_grid_product_labels(self):
        points = grid(tiny_spec(), {"cohort.size": [3, 4], "selection": ["greedy"]})
        assert [label for label, _ in points] == [
            "cohort.size=3,selection=greedy",
            "cohort.size=4,selection=greedy",
        ]
        assert points[1][1].cohort.size == 4

    def test_grid_needs_axes(self):
        with pytest.raises(ConfigError):
            grid(tiny_spec(), {})

    def test_cohort_sweep_rows_deterministic(self):
        base = replace(
            cohort_scenario(3, seed=2).quick(),
            rounds=1,
            cohort=CohortSpec(size=3, train_samples=60, test_samples=40),
            aggregator_test_samples=40,
        )
        rows = cohort_sweep([3, 4], base=base, seed=2)
        again = cohort_sweep([3, 4], base=base, seed=2)
        assert [row["cohort"] for row in rows] == [3, 4]
        for row, row2 in zip(rows, again):
            assert row["mean_wait_s"] == row2["mean_wait_s"]
            assert row["final_accuracy"] == row2["final_accuracy"]
            assert 0.0 < row["final_accuracy"] <= 1.0

    def test_context_shares_datasets_across_points(self):
        base = tiny_spec()
        context = ScenarioContext()
        run_grid(grid(base, {"policy": [WaitForK(1), WaitForK(2)]}), context=context)
        # Same cohort and data axes: the second point re-uses every split.
        assert context.stats["dataset_hits"] >= context.stats["dataset_misses"]


class TestGatewayAxis:
    """The ledger-gateway knobs on the chain axis."""

    def test_unknown_gateway_rejected(self):
        with pytest.raises(ConfigError, match="gateway"):
            replace_axis(tiny_spec(), "chain.gateway", "carrier-pigeon")

    def test_nonpositive_staleness_rejected(self):
        with pytest.raises(ConfigError, match="staleness"):
            replace_axis(tiny_spec(), "chain.gateway_staleness", 0.0)

    def test_batching_backend_matches_inprocess(self):
        base = tiny_spec(rounds=2, enable_reputation=True)
        raw = run_scenario(base)
        batched = run_scenario(replace_axis(base, "chain.gateway", "batching"))
        assert raw.client_accuracy == batched.client_accuracy
        assert raw.combination_accuracy == batched.combination_accuracy
        assert raw.wait_times == batched.wait_times
        assert raw.reputation == batched.reputation
        raw_gw = raw.chain_stats["gateway"]
        batched_gw = batched.chain_stats["gateway"]
        assert raw_gw["backend"] == "inprocess"
        assert batched_gw["backend"] == "batching"
        # Same reads requested; strictly fewer reach the transport.
        assert (
            batched_gw["requested"]["requested_reads"]
            == raw_gw["requested"]["requested_reads"]
        )
        assert (
            batched_gw["transport"]["contract_call_round_trips"]
            < raw_gw["transport"]["contract_call_round_trips"]
        )

    def test_cohort_sweep_gateway_override(self):
        base = replace(
            cohort_scenario(3, seed=2).quick(),
            rounds=1,
            cohort=CohortSpec(size=3, train_samples=60, test_samples=40),
            aggregator_test_samples=40,
        )
        rows = cohort_sweep([3], base=base, seed=2)
        batched = cohort_sweep([3], base=base, seed=2, gateway="batching")
        assert rows[0]["final_accuracy"] == batched[0]["final_accuracy"]
        assert rows[0]["mean_wait_s"] == batched[0]["mean_wait_s"]


class TestReputationScenario:
    """ROADMAP item (a): reputation-weighted exclusion quality."""

    def test_reputation_populated_only_when_enabled(self):
        plain = run_scenario(tiny_spec())
        assert plain.reputation == {}
        scored = run_scenario(tiny_spec(enable_reputation=True))
        assert set(scored.reputation) == {"A", "B", "C"}
        assert all(isinstance(score, int) for score in scored.reputation.values())

    def test_registered_scenario_enables_reputation(self):
        definition = get_scenario("adversarial/reputation")
        specs = definition.build(seed=1, quick=True)
        assert all(spec.enable_reputation for spec in specs)
        assert all(spec.adversary.kind == "label_flip" for spec in specs)

    def test_render_reports_exclusion_quality(self):
        definition = get_scenario("adversarial/reputation")
        specs = definition.build(seed=1, quick=True, models=("simple_nn",))
        results = [run_scenario(spec) for spec in specs]
        blocks = definition.render(specs, results)
        text = "\n".join(blocks)
        assert "reputation" in text.lower()
        assert "consider-only exclusion rate" in text
        # The adversary column flags the flipped client (last of the cohort).
        assert "yes" in text

    def test_exclusion_rate_bounds(self):
        result = run_scenario(tiny_spec(rounds=2))
        for client_id in ("A", "B", "C"):
            assert 0.0 <= result.exclusion_rate(client_id) <= 1.0
        assert result.exclusion_rate("nobody") == 1.0  # never adoptable
