"""Tests for the Merkle tree."""

import pytest

from repro.chain.merkle import EMPTY_ROOT, merkle_proof, merkle_root, verify_proof


def leaves(n: int) -> list[bytes]:
    return [f"leaf-{i}".encode() for i in range(n)]


class TestMerkleRoot:
    def test_empty_root_constant(self):
        assert merkle_root([]) == EMPTY_ROOT

    def test_single_leaf(self):
        assert len(merkle_root(leaves(1))) == 32

    def test_deterministic(self):
        assert merkle_root(leaves(5)) == merkle_root(leaves(5))

    def test_order_matters(self):
        data = leaves(4)
        assert merkle_root(data) != merkle_root(list(reversed(data)))

    def test_content_matters(self):
        a = leaves(4)
        b = leaves(4)
        b[2] = b"tampered"
        assert merkle_root(a) != merkle_root(b)

    def test_leaf_count_matters(self):
        assert merkle_root(leaves(3)) != merkle_root(leaves(4))

    def test_duplicate_last_leaf_distinguished(self):
        # Padding duplicates the last node, but [a, b] != [a, b, b].
        assert merkle_root(leaves(2)) != merkle_root(leaves(2) + [leaves(2)[-1]])


class TestMerkleProof:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8, 13])
    def test_every_leaf_provable(self, n):
        data = leaves(n)
        root = merkle_root(data)
        for index in range(n):
            proof = merkle_proof(data, index)
            assert verify_proof(data[index], proof, root)

    def test_wrong_leaf_fails(self):
        data = leaves(4)
        root = merkle_root(data)
        proof = merkle_proof(data, 1)
        assert not verify_proof(b"not-in-tree", proof, root)

    def test_wrong_index_proof_fails(self):
        data = leaves(4)
        root = merkle_root(data)
        proof = merkle_proof(data, 1)
        assert not verify_proof(data[2], proof, root)

    def test_wrong_root_fails(self):
        data = leaves(4)
        proof = merkle_proof(data, 0)
        assert not verify_proof(data[0], proof, merkle_root(leaves(5)))

    def test_tampered_proof_fails(self):
        data = leaves(4)
        root = merkle_root(data)
        proof = merkle_proof(data, 0)
        tampered = [(side, b"\x00" * 32) for side, _sib in proof]
        assert not verify_proof(data[0], tampered, root)

    def test_invalid_side_marker_fails(self):
        data = leaves(2)
        root = merkle_root(data)
        proof = [("X", proof_part) for _side, proof_part in merkle_proof(data, 0)]
        assert not verify_proof(data[0], proof, root)

    def test_out_of_range_index_raises(self):
        with pytest.raises(IndexError):
            merkle_proof(leaves(3), 3)
        with pytest.raises(IndexError):
            merkle_proof(leaves(3), -1)

    def test_proof_length_is_tree_depth(self):
        data = leaves(8)
        assert len(merkle_proof(data, 0)) == 3  # log2(8)

    def test_single_leaf_proof_empty(self):
        data = leaves(1)
        proof = merkle_proof(data, 0)
        assert proof == []
        assert verify_proof(data[0], proof, merkle_root(data))
