"""Tests for neural-network layers (shapes, semantics, freezing)."""

import numpy as np
import pytest

from repro.errors import NotBuiltError, ShapeError
from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    FrozenFeatureMap,
    MaxPool2D,
    PretrainedRBFBackbone,
    ReLU,
    Softmax,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(8)
        assert layer.build(rng, (5,)) == (8,)
        out = layer.forward(rng.normal(size=(3, 5)))
        assert out.shape == (3, 8)

    def test_linear_relation(self, rng):
        layer = Dense(2)
        layer.build(rng, (3,))
        layer.params["W"][...] = np.eye(3, 2)
        layer.params["b"][...] = np.array([1.0, 2.0])
        out = layer.forward(np.array([[1.0, 2.0, 3.0]]))
        np.testing.assert_allclose(out, [[2.0, 4.0]])

    def test_wrong_input_dim_raises(self, rng):
        layer = Dense(4)
        layer.build(rng, (5,))
        with pytest.raises(ShapeError):
            layer.forward(rng.normal(size=(2, 7)))

    def test_use_before_build_raises(self, rng):
        with pytest.raises(NotBuiltError):
            Dense(4).forward(rng.normal(size=(2, 5)))

    def test_backward_before_forward_raises(self, rng):
        layer = Dense(4)
        layer.build(rng, (5,))
        with pytest.raises(NotBuiltError):
            layer.backward(rng.normal(size=(2, 4)))

    def test_parameter_count(self, rng):
        layer = Dense(8)
        layer.build(rng, (5,))
        assert layer.parameter_count() == 5 * 8 + 8

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            Dense(0)

    def test_frozen_dense_accumulates_no_grads(self, rng):
        layer = Dense(4)
        layer.build(rng, (5,))
        layer.trainable = False
        x = rng.normal(size=(2, 5))
        layer.forward(x)
        layer.backward(np.ones((2, 4)))
        assert np.allclose(layer.grads["W"], 0.0)


class TestReLU:
    def test_clips_negatives(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]))
        grad = layer.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        layer = Softmax()
        out = layer.forward(rng.normal(size=(4, 10)))
        np.testing.assert_allclose(out.sum(axis=1), np.ones(4))

    def test_stable_for_large_logits(self):
        layer = Softmax()
        out = layer.forward(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out, [[0.5, 0.5]])

    def test_monotone(self):
        layer = Softmax()
        out = layer.forward(np.array([[1.0, 2.0, 3.0]]))
        assert out[0, 0] < out[0, 1] < out[0, 2]


class TestDropout:
    def test_identity_at_inference(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = rng.normal(size=(4, 6))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_scales_kept_units(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((1000, 1))
        out = layer.forward(x, training=True)
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted dropout scaling
        assert 400 < len(kept) < 600

    def test_zero_rate_identity(self, rng):
        layer = Dropout(0.0, rng=rng)
        x = rng.normal(size=(3, 3))
        np.testing.assert_array_equal(layer.forward(x, training=True), x)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestFlatten:
    def test_shape(self, rng):
        layer = Flatten()
        assert layer.build(rng, (4, 4, 3)) == (48,)
        out = layer.forward(rng.normal(size=(2, 4, 4, 3)))
        assert out.shape == (2, 48)

    def test_backward_restores_shape(self, rng):
        layer = Flatten()
        layer.build(rng, (4, 4, 3))
        layer.forward(rng.normal(size=(2, 4, 4, 3)))
        grad = layer.backward(rng.normal(size=(2, 48)))
        assert grad.shape == (2, 4, 4, 3)


class TestConv2D:
    def test_same_padding_shape(self, rng):
        layer = Conv2D(8, kernel_size=3, padding="same")
        assert layer.build(rng, (8, 8, 3)) == (8, 8, 8)
        out = layer.forward(rng.normal(size=(2, 8, 8, 3)))
        assert out.shape == (2, 8, 8, 8)

    def test_valid_padding_shape(self, rng):
        layer = Conv2D(4, kernel_size=3, padding="valid")
        assert layer.build(rng, (8, 8, 3)) == (6, 6, 4)

    def test_stride(self, rng):
        layer = Conv2D(4, kernel_size=3, stride=2, padding="same")
        assert layer.build(rng, (8, 8, 3)) == (4, 4, 4)

    def test_identity_kernel(self, rng):
        # A 1x1 identity kernel passes the channel through.
        layer = Conv2D(1, kernel_size=1, padding="valid")
        layer.build(rng, (4, 4, 1))
        layer.params["W"][...] = 1.0
        layer.params["b"][...] = 0.0
        x = rng.normal(size=(1, 4, 4, 1))
        np.testing.assert_allclose(layer.forward(x), x)

    def test_invalid_padding(self):
        with pytest.raises(ValueError):
            Conv2D(4, padding="reflect")

    def test_bad_input_rank(self, rng):
        with pytest.raises(ShapeError):
            Conv2D(4).build(rng, (10,))

    def test_backward_shape(self, rng):
        layer = Conv2D(4, kernel_size=3, padding="same")
        layer.build(rng, (6, 6, 2))
        x = rng.normal(size=(2, 6, 6, 2))
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape


class TestMaxPool2D:
    def test_shape(self, rng):
        layer = MaxPool2D(2)
        assert layer.build(rng, (8, 8, 3)) == (4, 4, 3)

    def test_takes_maximum(self, rng):
        layer = MaxPool2D(2)
        layer.build(rng, (2, 2, 1))
        x = np.array([[[[1.0], [2.0]], [[3.0], [4.0]]]])
        np.testing.assert_allclose(layer.forward(x), [[[[4.0]]]])

    def test_indivisible_raises(self, rng):
        with pytest.raises(ShapeError):
            MaxPool2D(3).build(rng, (8, 8, 3))

    def test_backward_routes_to_max(self, rng):
        layer = MaxPool2D(2)
        layer.build(rng, (2, 2, 1))
        x = np.array([[[[1.0], [2.0]], [[3.0], [4.0]]]])
        layer.forward(x)
        grad = layer.backward(np.array([[[[10.0]]]]))
        np.testing.assert_allclose(grad[0, :, :, 0], [[0.0, 0.0], [0.0, 10.0]])


class TestBatchNorm:
    def test_normalizes_batch(self, rng):
        layer = BatchNorm()
        layer.build(rng, (6,))
        x = rng.normal(5.0, 3.0, size=(256, 6))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_used_at_inference(self, rng):
        layer = BatchNorm(momentum=0.0)  # running stats = last batch
        layer.build(rng, (4,))
        x = rng.normal(2.0, 1.0, size=(128, 4))
        layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=0.1)

    def test_gamma_beta_applied(self, rng):
        layer = BatchNorm()
        layer.build(rng, (2,))
        layer.params["gamma"][...] = 2.0
        layer.params["beta"][...] = 1.0
        x = rng.normal(size=(64, 2))
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 1.0, atol=1e-6)


class TestFrozenFeatureMap:
    def test_shared_across_instances(self, rng):
        a = FrozenFeatureMap(16, backbone_seed=7)
        b = FrozenFeatureMap(16, backbone_seed=7)
        a.build(np.random.default_rng(1), (10,))
        b.build(np.random.default_rng(999), (10,))  # different model rng
        np.testing.assert_array_equal(a.params["W1"], b.params["W1"])

    def test_not_trainable(self, rng):
        layer = FrozenFeatureMap(16)
        layer.build(rng, (10,))
        assert not layer.trainable

    def test_backward_blocks_gradient(self, rng):
        layer = FrozenFeatureMap(16)
        layer.build(rng, (10,))
        layer.forward(rng.normal(size=(3, 10)))
        grad = layer.backward(np.ones((3, 16)))
        assert grad.shape == (3, 10)
        assert np.allclose(grad, 0.0)


class TestPretrainedRBFBackbone:
    def _backbone(self, rng, latent=4, anchors_n=6, flat=20, sigma=0.6):
        projection = rng.normal(size=(flat, latent))
        anchors = rng.normal(size=(anchors_n, latent))
        layer = PretrainedRBFBackbone(projection, anchors, sigma=sigma)
        layer.build(rng, (flat,))
        return layer

    def test_output_is_distribution(self, rng):
        layer = self._backbone(rng)
        out = layer.forward(rng.normal(size=(5, 20)))
        assert out.shape == (5, 6)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(5))
        assert (out >= 0).all()

    def test_nearest_anchor_dominates(self, rng):
        projection = np.eye(3)  # identity: input IS the latent
        anchors = np.array([[10.0, 0, 0], [0, 10.0, 0]])
        layer = PretrainedRBFBackbone(projection, anchors, sigma=1.0)
        layer.build(rng, (3,))
        out = layer.forward(np.array([[9.5, 0.0, 0.0]]))
        assert out[0, 0] > out[0, 1]

    def test_frozen(self, rng):
        layer = self._backbone(rng)
        assert not layer.trainable
        grad = layer.backward(np.ones((2, 6)))
        assert np.allclose(grad, 0.0)

    def test_dim_mismatch_rejected(self, rng):
        with pytest.raises(ShapeError):
            PretrainedRBFBackbone(rng.normal(size=(20, 4)), rng.normal(size=(6, 5)))

    def test_bad_sigma(self, rng):
        with pytest.raises(ValueError):
            PretrainedRBFBackbone(rng.normal(size=(20, 4)), rng.normal(size=(6, 4)), sigma=0.0)

    def test_reports_frozen_parameter_count(self, rng):
        layer = self._backbone(rng)
        assert layer.parameter_count() == 20 * 4 + 6 * 4
