"""The multiprocess runtime is byte-identical to the in-process driver.

The acceptance surface of the out-of-process runtime: at the same seed, a
run with ``runtime="multiprocess"`` must reproduce the in-process run's
final model weights (SHA-256 of the canonical codec-v2 export), per-round
accuracy tables and chosen combinations, reputation scores, and chain
shape (heights, off-chain blob counts/bytes) — for every operating mode.
Worker count must be invisible (workers=1 vs workers=3 identical), worker
crashes must surface as typed :class:`~repro.errors.WorkerCrashedError`
(a :class:`~repro.errors.GatewayUnavailableError`, so the resilience
layer's vocabulary covers it), and the spec gates must reject the
configurations the runtime does not support.

Each scenario runs once per (spec, runtime, workers) triple and is
memoized module-wide — the suite spawns real worker OS processes, so
repeated runs would dominate tier-1 wall clock.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.participation import ParticipationSpec
from repro.errors import ConfigError, GatewayUnavailableError, WorkerCrashedError
from repro.scenarios.runner import ScenarioContext, decentralized_inputs, run_scenario
from repro.scenarios.spec import RUNTIME_KINDS, FaultSpec, ScenarioSpec, replace_axis
from repro.utils.rng import RngFactory

_CACHE: dict = {}


def base_spec(**overrides) -> ScenarioSpec:
    spec = ScenarioSpec(name="mp-equiv", kind="decentralized", seed=23).quick()
    return dataclasses.replace(spec, **overrides) if overrides else spec


def run_cached(spec: ScenarioSpec):
    key = (spec.fingerprint() if hasattr(spec, "fingerprint") else repr(spec))
    if key not in _CACHE:
        _CACHE[key] = run_scenario(spec)
    return _CACHE[key]


def comparable(result) -> dict:
    """Everything a runtime may not change, in one comparable payload."""
    return {
        "digests": result.model_digests,
        "logs": [
            (
                log.peer_id,
                log.round_id,
                tuple(log.combination_accuracy.items()),
                log.chosen_combination,
                log.chosen_accuracy,
                log.models_used,
                log.updates_visible,
                log.submitted_at,
                log.ready_at,
                log.aggregated_at,
            )
            for log in result.round_logs
        ],
        "heights": result.chain_stats["heights"],
        "offchain_blobs": result.chain_stats["offchain_blobs"],
        "offchain_bytes": result.chain_stats["offchain_bytes"],
        "reputation": getattr(result, "reputation", None),
    }


def pair(spec: ScenarioSpec, workers: int = 2):
    inproc = run_cached(spec)
    multi = run_cached(
        dataclasses.replace(spec, runtime="multiprocess", runtime_workers=workers)
    )
    return inproc, multi


class TestByteIdenticalEquivalence:
    def test_personalized_mode(self):
        inproc, multi = pair(base_spec())
        assert comparable(inproc) == comparable(multi)
        assert inproc.model_digests  # non-vacuous: every peer has a digest

    def test_reputation_mode(self):
        inproc, multi = pair(base_spec(enable_reputation=True))
        assert comparable(inproc) == comparable(multi)
        assert inproc.reputation is not None

    def test_global_vote_mode(self):
        inproc, multi = pair(base_spec(mode="global_vote"))
        assert comparable(inproc) == comparable(multi)
        # Global vote converges on one common model.
        assert len(set(multi.model_digests.values())) == 1

    def test_paper_scenario_with_adversary(self):
        # The registry's paper-faithful decentralized spec, including a
        # label-flipping adversary — the worker must re-derive the
        # attack rng stream exactly as the in-process driver does.
        from repro.scenarios.registry import get_scenario

        (spec,) = get_scenario("adversarial/label_flip").build(seed=23, quick=True)
        inproc, multi = pair(spec)
        assert comparable(inproc) == comparable(multi)
        assert inproc.adversaries  # non-vacuous: the adversary is present

    def test_five_peer_cohort(self):
        spec = base_spec()
        spec = dataclasses.replace(
            spec, cohort=dataclasses.replace(spec.cohort, size=5, client_ids=None)
        )
        inproc, multi = pair(spec, workers=2)
        assert comparable(inproc) == comparable(multi)
        assert len(multi.model_digests) == 5


class TestWorkerInterleavingInvariance:
    def test_one_vs_three_workers_identical(self):
        # Different worker counts mean different task interleavings and
        # different per-process rng object lifetimes; the named-stream
        # scheme must make that invisible.
        base = base_spec()
        one = run_cached(
            dataclasses.replace(base, runtime="multiprocess", runtime_workers=1)
        )
        three = run_cached(
            dataclasses.replace(base, runtime="multiprocess", runtime_workers=3)
        )
        assert comparable(one) == comparable(three)


class TestParticipationEquivalence:
    """Client sampling composes with the runtime: the participation plan
    is rebuilt from the spec inside every process, so the selected
    subcohorts — and therefore the bytes — cannot depend on the topology."""

    def sampled_spec(self, **overrides) -> ScenarioSpec:
        spec = base_spec(**overrides)
        spec = dataclasses.replace(
            spec, cohort=dataclasses.replace(spec.cohort, size=6, client_ids=None)
        )
        return replace_axis(spec, "participation.sampled_k", 3)

    def test_sampled_run_matches_inprocess(self):
        spec = self.sampled_spec()
        inproc, multi = pair(spec)
        assert comparable(inproc) == comparable(multi)
        stats = multi.chain_stats["participation"]
        assert stats["instantiated"] < 6  # lazy instantiation crossed the wire

    def test_sampled_one_vs_three_workers_identical(self):
        spec = self.sampled_spec()
        one = run_cached(
            dataclasses.replace(spec, runtime="multiprocess", runtime_workers=1)
        )
        three = run_cached(
            dataclasses.replace(spec, runtime="multiprocess", runtime_workers=3)
        )
        assert comparable(one) == comparable(three)

    def test_window_rejoin_catch_up_matches_inprocess(self):
        # The rejoin FedAvg catch-up runs as a worker task ("catch_up");
        # its adoption must land on the owning worker's peer exactly as
        # the in-process driver applies it locally.
        spec = base_spec()
        spec = dataclasses.replace(
            spec,
            cohort=dataclasses.replace(spec.cohort, size=4, client_ids=None),
            participation=ParticipationSpec(windows=((2, 2, 1),)),
        )
        inproc, multi = pair(spec)
        assert comparable(inproc) == comparable(multi)
        assert multi.chain_stats["participation"]["catch_ups"] == 1


class TestRuntimeStatsSurface:
    def test_multiprocess_surfaces_wire_telemetry(self):
        _, multi = pair(base_spec())
        gateway = multi.chain_stats["gateway"]
        assert gateway["runtime"] == "multiprocess"
        wire = gateway["wire"]
        assert wire["workers"] == 2
        assert wire["bytes_sent"] > 0 and wire["bytes_received"] > 0
        assert wire["rpc_round_trips"] > 0
        assert gateway["transport"]["rpc_round_trips"] == wire["rpc_round_trips"]
        assert gateway["transport"]["wire_bytes_sent"] > 0
        assert len(gateway["worker_stats"]) == 2

    def test_inprocess_wire_counters_stay_zero(self):
        inproc, _ = pair(base_spec())
        gateway = inproc.chain_stats["gateway"]
        assert "runtime" not in gateway
        for side in ("requested", "transport"):
            assert gateway[side]["wire_bytes_sent"] == 0
            assert gateway[side]["wire_bytes_received"] == 0
            assert gateway[side]["rpc_round_trips"] == 0


class TestWorkerCrash:
    def test_crash_surfaces_typed_error_and_cleans_up(self):
        from repro.runtime.coordinator import MultiprocessDecentralizedFL

        spec = dataclasses.replace(
            base_spec(), runtime="multiprocess", runtime_workers=2
        )
        rngs = RngFactory(spec.seed)
        inputs = decentralized_inputs(spec, rngs, ScenarioContext(), materialize=False)
        driver = MultiprocessDecentralizedFL(
            spec,
            inputs.peer_configs,
            config=inputs.config,
            rng_factory=rngs.spawn("chain"),
            workers=2,
        )
        try:
            with pytest.raises(WorkerCrashedError) as excinfo:
                driver.crash_worker(0)
            # The typed error enters the PR-7 resilience vocabulary.
            assert isinstance(excinfo.value, GatewayUnavailableError)
            assert "worker 0" in str(excinfo.value)
        finally:
            driver.broker.terminate()
        for handle in driver.broker.handles:
            assert handle.process.poll() is not None  # no zombies

    def test_clean_run_reaps_every_worker(self):
        from repro.runtime.coordinator import MultiprocessDecentralizedFL

        spec = dataclasses.replace(
            base_spec(), runtime="multiprocess", runtime_workers=2
        )
        rngs = RngFactory(spec.seed)
        inputs = decentralized_inputs(spec, rngs, ScenarioContext(), materialize=False)
        driver = MultiprocessDecentralizedFL(
            spec,
            inputs.peer_configs,
            config=inputs.config,
            rng_factory=rngs.spawn("chain"),
            workers=2,
        )
        logs = driver.run()
        assert logs
        assert driver.handles == []  # shutdown handshake completed
        for handle in driver.broker.handles:
            assert handle.process.poll() == 0  # exited cleanly, reaped
        # Exports were collected before shutdown.
        assert sorted(driver.model_digests()) == sorted(spec.client_ids())


class TestSpecGates:
    def test_runtime_kinds_constant(self):
        assert RUNTIME_KINDS == ("inprocess", "multiprocess")

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ConfigError):
            base_spec(runtime="distributed")

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigError):
            base_spec(runtime="multiprocess", runtime_workers=0)

    def test_faults_incompatible_with_multiprocess(self):
        with pytest.raises(ConfigError):
            base_spec(runtime="multiprocess", faults=FaultSpec(transient_rate=0.1))

    def test_selection_workers_incompatible_with_multiprocess(self):
        with pytest.raises(ConfigError):
            base_spec(runtime="multiprocess", selection_workers=2)

    def test_vanilla_ignores_runtime_knob(self):
        spec = ScenarioSpec(name="v", kind="vanilla", seed=1, runtime="multiprocess")
        assert spec.runtime == "multiprocess"  # validated, tolerated, unused
