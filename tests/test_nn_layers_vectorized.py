"""Equivalence tests pinning vectorized Conv2D/MaxPool2D against naive loops.

The production layers use stride-tricks/matmul formulations (im2col
forward, the measured-fastest col2im scatter, tie-normalized pooling).
These tests re-derive the same math with explicit Python loops on random
NHWC tensors and require exact-shape, tight-tolerance agreement across
kernel sizes, strides, and paddings — including the loop-free
``stride == k`` col2im path.
"""

import numpy as np
import pytest

from repro.nn.layers import Conv2D, MaxPool2D


def _loop_conv_forward(x, w, b, stride, pad):
    """Reference convolution with explicit loops."""
    lo, hi = pad
    xp = np.pad(x, ((0, 0), (lo, hi), (lo, hi), (0, 0)))
    n, hp, wp, c = xp.shape
    k = w.shape[0]
    f = w.shape[3]
    oh = (hp - k) // stride + 1
    ow = (wp - k) // stride + 1
    out = np.zeros((n, oh, ow, f))
    for oy in range(oh):
        for ox in range(ow):
            patch = xp[:, oy * stride : oy * stride + k, ox * stride : ox * stride + k, :]
            out[:, oy, ox, :] = np.tensordot(patch, w, axes=([1, 2, 3], [0, 1, 2])) + b
    return out, xp.shape


def _loop_conv_backward_dx(grad_out, w, xp_shape, x_shape, stride, pad):
    """Reference input gradient: scatter each output grad through the kernel."""
    n, oh, ow, f = grad_out.shape
    k = w.shape[0]
    dxp = np.zeros(xp_shape)
    for oy in range(oh):
        for ox in range(ow):
            # dL/dpatch = grad_out[n, oy, ox, :] . W
            dxp[:, oy * stride : oy * stride + k, ox * stride : ox * stride + k, :] += (
                np.tensordot(grad_out[:, oy, ox, :], w, axes=([1], [3]))
            )
    lo, hi = pad
    if lo or hi:
        dxp = dxp[:, lo : dxp.shape[1] - hi, lo : dxp.shape[2] - hi, :]
    return dxp.reshape(x_shape)


def _loop_conv_backward_dw(grad_out, xp, k, stride):
    """Reference weight gradient accumulated patch by patch."""
    n, oh, ow, f = grad_out.shape
    c = xp.shape[3]
    dw = np.zeros((k, k, c, f))
    for oy in range(oh):
        for ox in range(ow):
            patch = xp[:, oy * stride : oy * stride + k, ox * stride : ox * stride + k, :]
            dw += np.tensordot(patch, grad_out[:, oy, ox, :], axes=([0], [0]))
    return dw


CONV_CASES = [
    # (input hwc, filters, kernel, stride, padding)
    ((8, 8, 3), 4, 3, 1, "same"),
    ((8, 8, 3), 4, 3, 1, "valid"),
    ((9, 9, 2), 3, 3, 2, "valid"),
    ((8, 8, 1), 2, 2, 2, "valid"),
    ((11, 11, 2), 3, 5, 3, "valid"),
    ((6, 6, 2), 5, 3, 2, "same"),
]


class TestConv2DEquivalence:
    @pytest.mark.parametrize("shape,filters,kernel,stride,padding", CONV_CASES)
    def test_forward_matches_loop(self, rng, shape, filters, kernel, stride, padding):
        layer = Conv2D(filters, kernel_size=kernel, stride=stride, padding=padding)
        layer.build(rng, shape)
        x = rng.normal(size=(4, *shape))
        got = layer.forward(x, training=True)
        want, _ = _loop_conv_forward(x, layer.params["W"], layer.params["b"], stride, layer._pad)
        np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("shape,filters,kernel,stride,padding", CONV_CASES)
    def test_backward_matches_loop(self, rng, shape, filters, kernel, stride, padding):
        layer = Conv2D(filters, kernel_size=kernel, stride=stride, padding=padding)
        layer.build(rng, shape)
        x = rng.normal(size=(4, *shape))
        out = layer.forward(x, training=True)
        grad_out = rng.normal(size=out.shape)
        layer.zero_grads()
        got_dx = layer.backward(grad_out)

        _, xp_shape = _loop_conv_forward(x, layer.params["W"], layer.params["b"], stride, layer._pad)
        lo, hi = layer._pad
        xp = np.pad(x, ((0, 0), (lo, hi), (lo, hi), (0, 0)))
        want_dx = _loop_conv_backward_dx(grad_out, layer.params["W"], xp_shape, x.shape, stride, layer._pad)
        want_dw = _loop_conv_backward_dw(grad_out, xp, kernel, stride)

        assert got_dx.shape == x.shape
        np.testing.assert_allclose(got_dx, want_dx, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(layer.grads["W"], want_dw, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(layer.grads["b"], grad_out.sum(axis=(0, 1, 2)), rtol=1e-10, atol=1e-12)


def _loop_maxpool_forward(x, p):
    n, h, w, c = x.shape
    oh, ow = h // p, w // p
    out = np.zeros((n, oh, ow, c))
    for oy in range(oh):
        for ox in range(ow):
            window = x[:, oy * p : (oy + 1) * p, ox * p : (ox + 1) * p, :]
            out[:, oy, ox, :] = window.max(axis=(1, 2))
    return out


def _loop_maxpool_backward(x, grad_out, p):
    """Reference backward: split the gradient equally among window maxima."""
    n, h, w, c = x.shape
    oh, ow = h // p, w // p
    dx = np.zeros_like(x)
    for b in range(n):
        for oy in range(oh):
            for ox in range(ow):
                for ch in range(c):
                    window = x[b, oy * p : (oy + 1) * p, ox * p : (ox + 1) * p, ch]
                    ties = window == window.max()
                    dx[b, oy * p : (oy + 1) * p, ox * p : (ox + 1) * p, ch][ties] = (
                        grad_out[b, oy, ox, ch] / ties.sum()
                    )
    return dx


POOL_CASES = [
    ((8, 8, 3), 2),
    ((6, 6, 1), 3),
    ((12, 8, 4), 4),
    ((4, 4, 2), 2),
]


class TestMaxPool2DEquivalence:
    @pytest.mark.parametrize("shape,pool", POOL_CASES)
    def test_forward_matches_loop(self, rng, shape, pool):
        layer = MaxPool2D(pool_size=pool)
        layer.build(rng, shape)
        x = rng.normal(size=(3, *shape))
        for training in (True, False):
            got = layer.forward(x, training=training)
            np.testing.assert_array_equal(got, _loop_maxpool_forward(x, pool))

    @pytest.mark.parametrize("shape,pool", POOL_CASES)
    def test_backward_matches_loop(self, rng, shape, pool):
        layer = MaxPool2D(pool_size=pool)
        layer.build(rng, shape)
        x = rng.normal(size=(3, *shape))
        out = layer.forward(x, training=True)
        grad_out = rng.normal(size=out.shape)
        got = layer.backward(grad_out)
        np.testing.assert_array_equal(got, _loop_maxpool_backward(x, grad_out, pool))

    def test_tie_splits_gradient_instead_of_duplicating(self, rng):
        """A tied window receives the gradient exactly once, split equally."""
        layer = MaxPool2D(pool_size=2)
        layer.build(rng, (2, 2, 1))
        x = np.full((1, 2, 2, 1), 3.5)  # every element tied
        layer.forward(x, training=True)
        dx = layer.backward(np.ones((1, 1, 1, 1)))
        assert dx.sum() == 1.0  # seed's mask formulation returned 4.0 here
        np.testing.assert_array_equal(dx.reshape(-1), np.full(4, 0.25))