"""Tests for the ``python -m repro.experiments`` CLI (fast paths only)."""

import pytest

from repro import experiments as cli


class TestArgumentParsing:
    def test_unknown_artifact_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["table99"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_unknown_model_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["table1", "--model", "resnet"])
        assert "invalid choice" in capsys.readouterr().err

    def test_help_lists_artifacts(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for artifact in ("table1", "table4", "fig3", "fig4", "tradeoff", "all"):
            assert artifact in out


class TestHelpers:
    """Exercise the table-producing helpers on a tiny config by monkeypatching
    the default config factory (full-size runs live in benchmarks/)."""

    @pytest.fixture(autouse=True)
    def quick_defaults(self, monkeypatch):
        from repro.core.config import quick_config

        monkeypatch.setattr(cli, "default_config", lambda kind, seed=42: quick_config(kind, seed=seed))

    def test_table1_text(self):
        text = cli._table1("simple_nn", seed=1)
        assert "Table I" in text
        assert "Consider" in text and "Not consider" in text

    def test_combination_table_text(self):
        text = cli._combination_table("simple_nn", "A", seed=1)
        assert "Client A" in text
        assert "A,B,C" in text

    def test_fig3_text(self):
        text = cli._fig3("simple_nn", seed=1)
        assert "Fig 3" in text
        assert "Client A" in text

    def test_fig4_text(self):
        text = cli._fig4("simple_nn", seed=1)
        assert "Fig 4" in text

    def test_main_prints_artifact(self, capsys):
        code = cli.main(["table1", "--model", "simple_nn", "--seed", "1"])
        assert code == 0
        assert "Table I" in capsys.readouterr().out
