"""Tests for the ``python -m repro.experiments`` CLI (fast paths only)."""

import pytest

from repro import experiments as cli


class TestArgumentParsing:
    def test_unknown_artifact_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["table99"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_help_lists_scenario_commands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in ("run", "sweep", "list"):
            assert command in out

    def test_unknown_model_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["table1", "--model", "resnet"])
        assert "invalid choice" in capsys.readouterr().err

    def test_help_lists_artifacts(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for artifact in ("table1", "table4", "fig3", "fig4", "tradeoff", "all"):
            assert artifact in out


class TestHelpers:
    """Exercise the table-producing helpers on a tiny config by monkeypatching
    the default config factory (full-size runs live in benchmarks/)."""

    @pytest.fixture(autouse=True)
    def quick_defaults(self, monkeypatch):
        from repro.core.config import quick_config

        monkeypatch.setattr(cli, "default_config", lambda kind, seed=42: quick_config(kind, seed=seed))

    def test_table1_text(self):
        text = cli._table1("simple_nn", seed=1)
        assert "Table I" in text
        assert "Consider" in text and "Not consider" in text

    def test_combination_table_text(self):
        text = cli._combination_table("simple_nn", "A", seed=1)
        assert "Client A" in text
        assert "A,B,C" in text

    def test_fig3_text(self):
        text = cli._fig3("simple_nn", seed=1)
        assert "Fig 3" in text
        assert "Client A" in text

    def test_fig4_text(self):
        text = cli._fig4("simple_nn", seed=1)
        assert "Fig 4" in text

    def test_main_prints_artifact(self, capsys):
        code = cli.main(["table1", "--model", "simple_nn", "--seed", "1"])
        assert code == 0
        assert "Table I" in capsys.readouterr().out

    def test_flag_first_ordering_still_accepted(self, capsys):
        """The seed CLI allowed `--seed 1 table1`; the subcommand redesign
        keeps that ordering (and subcommand-local flags win over global)."""
        code = cli.main(["--seed", "1", "--model", "simple_nn", "table1"])
        assert code == 0
        flag_first = capsys.readouterr().out
        assert cli.main(["table1", "--model", "simple_nn", "--seed", "1"]) == 0
        assert capsys.readouterr().out == flag_first


class TestListCommand:
    def test_list_prints_registry(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("paper/table1", "cohort/25", "adversarial/label_flip", "hetero/stragglers"):
            assert name in out


class TestRunCommand:
    """Scenario runs at quick scale (paper-scale runs live in benchmarks/)."""

    @pytest.fixture(autouse=True)
    def quick_defaults(self, monkeypatch):
        import repro.scenarios.registry as registry
        from repro.core.config import quick_config

        monkeypatch.setattr(cli, "default_config", lambda kind, seed=42: quick_config(kind, seed=seed))
        monkeypatch.setattr(registry, "default_config", lambda kind, seed=42: quick_config(kind, seed=seed))

    def test_run_unknown_scenario_exits_2(self, capsys):
        assert cli.main(["run", "paper/tabel1"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err and "paper/table1" in err

    def test_run_paper_table1_matches_legacy_alias(self, capsys):
        """`run paper/table1` and the legacy `table1` alias print the same bytes."""
        assert cli.main(["table1", "--model", "simple_nn", "--seed", "1"]) == 0
        legacy = capsys.readouterr().out
        assert cli.main(["run", "paper/table1", "--model", "simple_nn", "--seed", "1"]) == 0
        assert capsys.readouterr().out == legacy
        assert "Table I" in legacy

    def test_run_adversarial_scenario_quick(self, capsys):
        assert cli.main(["run", "adversarial/label_flip", "--quick", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Scenario summary" in out
        assert "C" in out  # the flipped client is reported

    def test_run_hetero_scenario_quick(self, capsys):
        assert cli.main(["run", "hetero/stragglers", "--quick", "--seed", "1"]) == 0
        assert "Scenario summary" in capsys.readouterr().out

    def test_run_negative_workers_exits_cleanly(self, capsys):
        assert cli.main(["run", "cohort/3", "--quick", "--workers", "-1"]) == 2
        assert "selection_workers" in capsys.readouterr().err

    def test_run_workers_flag_changes_nothing(self, capsys):
        """--workers is a pure wall-clock knob: output bytes identical."""
        assert cli.main(["run", "cohort/3", "--quick", "--seed", "1"]) == 0
        serial = capsys.readouterr().out
        assert cli.main(["run", "cohort/3", "--quick", "--seed", "1", "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial


class TestSweepCommand:
    def test_sweep_cohort_prints_rows(self, capsys):
        assert cli.main(["sweep", "cohort", "--sizes", "3", "4", "--quick", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Cohort scaling sweep" in out
        assert "mean_wait_s" in out and "final_accuracy" in out
        # One row per requested size.
        assert len([line for line in out.splitlines() if line.startswith(("3 ", "4 "))]) == 2

    def test_sweep_invalid_wait_for_exits_cleanly(self, capsys):
        assert cli.main(["sweep", "cohort", "--sizes", "3", "--wait-for", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_workers_flag_changes_nothing(self, capsys):
        """Identical rows modulo the wall-clock column (the one thing
        --workers is allowed to change)."""

        def sans_wall(out: str) -> list[str]:
            return [" ".join(line.split()[:-1]) for line in out.splitlines() if line.strip()]

        assert cli.main(["sweep", "cohort", "--sizes", "3", "--quick", "--seed", "1"]) == 0
        serial = capsys.readouterr().out
        assert (
            cli.main(["sweep", "cohort", "--sizes", "3", "--quick", "--seed", "1", "--workers", "2"])
            == 0
        )
        assert sans_wall(capsys.readouterr().out) == sans_wall(serial)

    def test_sweep_unknown_axis_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["sweep", "policy"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err
