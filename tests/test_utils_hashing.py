"""Tests for hashing helpers."""

import numpy as np
import pytest

from repro.utils.hashing import (
    hash_concat,
    hash_object,
    keccak_like,
    sha256_bytes,
    sha256_hex,
)


class TestBasicHashes:
    def test_sha256_bytes_length(self):
        assert len(sha256_bytes(b"abc")) == 32

    def test_sha256_hex_known_vector(self):
        assert sha256_hex(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_keccak_like_prefix(self):
        digest = keccak_like(b"payload")
        assert digest.startswith("0x")
        assert len(digest) == 2 + 64


class TestHashObject:
    def test_dict_key_order_irrelevant(self):
        assert hash_object({"a": 1, "b": 2}) == hash_object({"b": 2, "a": 1})

    def test_value_change_detected(self):
        assert hash_object({"a": 1}) != hash_object({"a": 2})

    def test_ndarray_content_hashed(self):
        a = np.arange(6).reshape(2, 3)
        b = np.arange(6).reshape(2, 3)
        assert hash_object({"w": a}) == hash_object({"w": b})

    def test_ndarray_shape_matters(self):
        a = np.arange(6).reshape(2, 3)
        b = np.arange(6).reshape(3, 2)
        assert hash_object({"w": a}) != hash_object({"w": b})

    def test_ndarray_dtype_matters(self):
        a = np.zeros(3, dtype=np.float64)
        b = np.zeros(3, dtype=np.float32)
        assert hash_object({"w": a}) != hash_object({"w": b})

    def test_bytes_supported(self):
        assert hash_object({"k": b"\x00\x01"}) != hash_object({"k": b"\x00\x02"})

    def test_numpy_scalars_normalized(self):
        assert hash_object({"n": np.int64(5)}) == hash_object({"n": 5})
        assert hash_object({"f": np.float64(0.5)}) == hash_object({"f": 0.5})

    def test_nested_structures(self):
        obj = {"outer": [{"inner": (1, 2)}, "text"]}
        same = {"outer": [{"inner": [1, 2]}, "text"]}  # tuple vs list normalize
        assert hash_object(obj) == hash_object(same)


class TestHashConcat:
    def test_length_prefix_prevents_ambiguity(self):
        assert hash_concat(b"ab", b"c") != hash_concat(b"a", b"bc")

    def test_deterministic(self):
        assert hash_concat(b"x", b"y") == hash_concat(b"x", b"y")

    def test_arity_matters(self):
        assert hash_concat(b"xy") != hash_concat(b"x", b"y")

    def test_empty_parts_ok(self):
        assert len(hash_concat()) == 32
        assert hash_concat(b"") != hash_concat()


@pytest.mark.parametrize("payload", [b"", b"a", b"\x00" * 100, bytes(range(256))])
def test_hashes_stable_across_calls(payload):
    assert sha256_hex(payload) == sha256_hex(payload)
