"""Unit tests for the combination-scoring engine and its cache."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.errors import SelectionError
from repro.fl.aggregation import ModelUpdate, uniform_average
from repro.fl.evaluation import evaluate_weights
from repro.fl.scoring import (
    CombinationEngine,
    EvaluationCache,
    dataset_fingerprint,
    weights_fingerprint,
)
from repro.fl.selection import enumerate_combinations, greedy_combination
from repro.nn.layers import Dense
from repro.nn.model import Sequential


@pytest.fixture
def scratch_model():
    return Sequential([Dense(2, name="head")]).build(np.random.default_rng(0), (2,))


@pytest.fixture
def test_set():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(200, 2))
    y = (x[:, 1] > x[:, 0]).astype(np.int64)
    return Dataset(x, y)


def good_weights():
    return {"head/W": np.array([[1.0, -1.0], [-1.0, 1.0]]), "head/b": np.zeros(2)}


def bad_weights():
    return {"head/W": np.array([[-1.0, 1.0], [1.0, -1.0]]), "head/b": np.zeros(2)}


def upd(client_id, weights, n=100):
    return ModelUpdate(client_id=client_id, weights=weights, num_samples=n)


class TestFingerprints:
    def test_content_addressed(self):
        a = good_weights()
        b = good_weights()
        assert weights_fingerprint(a) == weights_fingerprint(b)
        b["head/b"] = b["head/b"] + 1.0
        assert weights_fingerprint(a) != weights_fingerprint(b)

    def test_shape_and_dtype_distinguished(self):
        flat = {"w": np.zeros(4)}
        square = {"w": np.zeros((2, 2))}
        ints = {"w": np.zeros(4, dtype=np.int64)}
        prints = {weights_fingerprint(w) for w in (flat, square, ints)}
        assert len(prints) == 3

    def test_dataset_fingerprint_tracks_content(self):
        x = np.zeros((4, 2))
        y = np.zeros(4, dtype=np.int64)
        base = dataset_fingerprint(Dataset(x, y))
        assert base == dataset_fingerprint(Dataset(x.copy(), y.copy()))
        assert base != dataset_fingerprint(Dataset(x + 1.0, y))


class TestCacheCorrectness:
    def test_mutated_weights_reevaluate(self, scratch_model, test_set):
        """A weight dict changed in place never produces a stale hit."""
        engine = CombinationEngine(scratch_model, test_set)
        weights = good_weights()
        first = engine.score_weights(weights)
        assert first == 1.0
        weights["head/W"] *= -1.0  # in-place: now classifies inverted
        second = engine.score_weights(weights)
        assert second == 0.0
        assert engine.cache.stats == {"hits": 0, "misses": 2, "absorbed": 0}

    def test_identical_content_hits(self, scratch_model, test_set):
        engine = CombinationEngine(scratch_model, test_set)
        engine.score_weights(good_weights())
        engine.score_weights(good_weights())  # distinct object, same bytes
        assert engine.cache.stats["hits"] == 1
        assert engine.cache.stats["misses"] == 1

    def test_distinct_test_sets_never_share_entries(self, scratch_model, test_set):
        """One shared cache, two test sets: same weights, separate keys."""
        rng = np.random.default_rng(9)
        x = rng.normal(size=(50, 2))
        other = Dataset(x, (x[:, 1] <= x[:, 0]).astype(np.int64))  # inverted labels
        shared = EvaluationCache()
        engine_a = CombinationEngine(scratch_model, test_set, cache=shared)
        engine_b = CombinationEngine(scratch_model, other, cache=shared)
        acc_a = engine_a.score_weights(good_weights())
        acc_b = engine_b.score_weights(good_weights())
        assert shared.stats["misses"] == 2  # no cross-test-set hit
        assert len(shared) == 2
        assert acc_a == 1.0 and acc_b == 0.0

    def test_solo_scores_shared_with_threshold_filter(self, scratch_model, test_set):
        engine = CombinationEngine(scratch_model, test_set)
        updates = [upd("A", good_weights()), upd("B", bad_weights())]
        engine.enumerate(updates)
        evaluations = engine.cache.stats["misses"]
        kept = engine.threshold_filter(updates, threshold=0.5)
        assert [u.client_id for u in kept] == ["A"]
        assert engine.cache.stats["misses"] == evaluations  # all cache hits

    def test_clear_drops_entries_keeps_stats(self, scratch_model, test_set):
        engine = CombinationEngine(scratch_model, test_set)
        engine.score_weights(good_weights())
        engine.cache.clear()
        assert len(engine.cache) == 0
        assert engine.cache.stats["misses"] == 1
        engine.score_weights(good_weights())
        assert engine.cache.stats["misses"] == 2  # re-evaluated after clear


class TestExceptionSafety:
    def test_evaluate_weights_restores_on_error(self, scratch_model, test_set):
        """The seed primitive restores the model even when scoring raises."""
        before = scratch_model.get_weights()
        bad_data = Dataset(np.zeros((4, 7)), np.zeros(4, dtype=np.int64))  # wrong dim
        with pytest.raises(Exception):
            evaluate_weights(scratch_model, good_weights(), bad_data)
        after = scratch_model.get_weights()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_engine_restores_on_error(self, scratch_model):
        bad_data = Dataset(np.zeros((4, 7)), np.zeros(4, dtype=np.int64))
        engine = CombinationEngine(scratch_model, bad_data)
        before = scratch_model.get_weights()
        with pytest.raises(Exception):
            engine.enumerate([upd("A", good_weights()), upd("B", bad_weights())])
        after = scratch_model.get_weights()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_engine_restores_after_search(self, scratch_model, test_set):
        engine = CombinationEngine(scratch_model, test_set)
        before = scratch_model.get_weights()
        engine.enumerate([upd("A", good_weights()), upd("B", bad_weights())])
        after = scratch_model.get_weights()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_mismatched_keys_rejected(self, scratch_model, test_set):
        engine = CombinationEngine(scratch_model, test_set)
        with pytest.raises(SelectionError):
            engine.score_weights({"other/W": np.zeros((2, 2))})

    def test_partial_dict_rejected_mid_session(self, scratch_model, test_set):
        """A malformed update after a valid one must error, not silently
        score against the previous update's leftover parameters."""
        engine = CombinationEngine(scratch_model, test_set)
        partial = upd("B", {"head/W": np.array([[1.0, -1.0], [-1.0, 1.0]])})
        with pytest.raises(SelectionError):
            engine.threshold_filter([upd("A", good_weights()), partial], threshold=-1.0)
        wrong_shape = upd("B", {"head/W": np.zeros((2, 2)), "head/b": np.zeros((1, 2))})
        with pytest.raises(SelectionError):
            engine.threshold_filter([upd("A", good_weights()), wrong_shape], threshold=-1.0)


class TestInstrumentation:
    def test_hook_fires_only_on_real_evaluations(self, scratch_model, test_set):
        seen = []
        engine = CombinationEngine(scratch_model, test_set, instrument=seen.append)
        updates = [upd("A", good_weights()), upd("B", bad_weights())]
        engine.enumerate(updates)
        assert len(seen) == 3  # A, B, A+B
        engine.enumerate(updates)
        engine.threshold_filter(updates, threshold=0.0)
        assert len(seen) == 3  # everything above was a cache hit


class TestEngineSearches:
    def test_enumerate_matches_reference_ordering(self, scratch_model, test_set):
        updates = [upd("B", good_weights()), upd("A", good_weights()), upd("C", bad_weights())]
        reference = enumerate_combinations(updates, scratch_model, test_set)
        engine = CombinationEngine(scratch_model, test_set)
        scored = engine.enumerate(updates)
        assert [(r.members, r.accuracy) for r in reference] == [
            (s.members, s.accuracy) for s in scored
        ]

    @pytest.mark.parametrize("workers", [0, 2])
    def test_min_size_above_max_size_is_empty(self, scratch_model, test_set, workers):
        """min_size > max_size is the reference's empty size range, in
        every mode — not a backdoor to the solo fast path."""
        updates = [upd("A", good_weights()), upd("B", bad_weights())]
        reference = enumerate_combinations(
            updates, scratch_model, test_set, min_size=2, max_size=1
        )
        engine = CombinationEngine(scratch_model, test_set, workers=workers)
        assert engine.enumerate(updates, min_size=2, max_size=1) == reference == []

    def test_empty_and_bad_min_size_rejected(self, scratch_model, test_set):
        engine = CombinationEngine(scratch_model, test_set)
        with pytest.raises(SelectionError):
            engine.enumerate([])
        with pytest.raises(SelectionError):
            engine.enumerate([upd("A", good_weights())], min_size=0)
        with pytest.raises(SelectionError):
            engine.greedy([])
        with pytest.raises(SelectionError):
            engine.greedy([upd("A", good_weights())], seed_client="Z")

    def test_non_fedavg_aggregator_supported(self, scratch_model, test_set):
        """Non-reference aggregators fall back to per-subset aggregation
        with content-hash keys (no structural shortcut)."""
        updates = [upd("A", good_weights(), n=10), upd("B", bad_weights(), n=1000)]
        reference = enumerate_combinations(
            updates, scratch_model, test_set, aggregator=uniform_average
        )
        engine = CombinationEngine(scratch_model, test_set, aggregator=uniform_average)
        scored = engine.enumerate(updates)
        assert [(r.members, r.accuracy) for r in reference] == [
            (s.members, s.accuracy) for s in scored
        ]

    def test_non_fedavg_greedy_supported(self, scratch_model, test_set):
        updates = [
            upd("A", good_weights(), n=10),
            upd("B", bad_weights(), n=1000),
            upd("C", good_weights(), n=5),
        ]
        reference = greedy_combination(
            updates, scratch_model, test_set, aggregator=uniform_average
        )
        engine = CombinationEngine(scratch_model, test_set, aggregator=uniform_average)
        candidate = engine.greedy(updates)
        assert reference.members == candidate.members
        assert reference.accuracy == candidate.accuracy
        for key in reference.weights:
            np.testing.assert_array_equal(reference.weights[key], candidate.weights[key])

    def test_workers_validation(self, scratch_model, test_set):
        with pytest.raises(SelectionError):
            CombinationEngine(scratch_model, test_set, workers=-1)
