"""Tests for the reputation ledger contract."""

import pytest

from repro.chain.gas import GasMeter
from repro.chain.runtime import CallContext, ContractRuntime
from repro.chain.state import WorldState
from repro.contracts.reputation import ReputationLedger
from repro.errors import ContractRevertError

A = "0x" + "0a" * 20
B = "0x" + "0b" * 20
C = "0x" + "0c" * 20
LEDGER = "0x" + "88" * 20


@pytest.fixture
def call():
    runtime = ContractRuntime()
    runtime.register(ReputationLedger)
    state = WorldState()
    state.deploy(LEDGER, "reputation_ledger")
    ledger = ReputationLedger()

    def _call(sender, method, **args):
        ctx = CallContext(
            state=state,
            meter=GasMeter(10**9),
            contract_address=LEDGER,
            sender=sender,
            runtime=runtime,
        )
        return getattr(ledger, method)(ctx, **args)

    _call(A, "init", initial_score=100)
    return _call


class TestScores:
    def test_unseen_address_initial_score(self, call):
        assert call(A, "score_of", address=B) == 100

    def test_positive_rating(self, call):
        assert call(A, "rate", round_id=1, subject=B, delta=10) == 110
        assert call(C, "score_of", address=B) == 110

    def test_negative_rating(self, call):
        call(A, "rate", round_id=1, subject=B, delta=-30, reason="failed fitness check")
        assert call(A, "score_of", address=B) == 70

    def test_score_floors_at_zero(self, call):
        call(A, "rate", round_id=1, subject=B, delta=-100)
        call(C, "rate", round_id=1, subject=B, delta=-100)
        assert call(A, "score_of", address=B) == 0

    def test_ratings_accumulate_across_rounds(self, call):
        call(A, "rate", round_id=1, subject=B, delta=5)
        call(A, "rate", round_id=2, subject=B, delta=5)
        assert call(A, "score_of", address=B) == 110


class TestConstraints:
    def test_self_rating_rejected(self, call):
        with pytest.raises(ContractRevertError, match="yourself"):
            call(A, "rate", round_id=1, subject=A, delta=10)

    def test_double_rating_same_round_rejected(self, call):
        call(A, "rate", round_id=1, subject=B, delta=5)
        with pytest.raises(ContractRevertError, match="already rated"):
            call(A, "rate", round_id=1, subject=B, delta=5)

    def test_delta_range_enforced(self, call):
        with pytest.raises(ContractRevertError):
            call(A, "rate", round_id=1, subject=B, delta=101)
        with pytest.raises(ContractRevertError):
            call(A, "rate", round_id=1, subject=B, delta=-101)

    def test_different_raters_same_round_ok(self, call):
        call(A, "rate", round_id=1, subject=C, delta=10)
        call(B, "rate", round_id=1, subject=C, delta=10)
        assert call(A, "score_of", address=C) == 120


class TestCredibility:
    def test_default_credible(self, call):
        assert call(A, "is_credible", address=B)

    def test_below_threshold_not_credible(self, call):
        call(A, "rate", round_id=1, subject=B, delta=-60)
        assert not call(A, "is_credible", address=B, threshold=50)

    def test_custom_threshold(self, call):
        assert not call(A, "is_credible", address=B, threshold=150)


class TestRatingLookup:
    def test_rating_of_recorded(self, call):
        call(A, "rate", round_id=3, subject=B, delta=-7)
        assert call(C, "rating_of", round_id=3, rater=A, subject=B) == -7

    def test_rating_of_missing(self, call):
        assert call(C, "rating_of", round_id=3, rater=A, subject=B) is None
