"""Tests for the off-chain store and the round state machine."""

import numpy as np
import pytest

from repro.core.offchain import OffchainStore
from repro.core.rounds import RoundState, RoundTracker
from repro.errors import RoundError, SerializationError
from repro.fl.async_policy import WaitForAll, WaitForK
from repro.nn.serialize import weights_hash


class TestOffchainStore:
    def test_put_get_round_trip(self):
        store = OffchainStore()
        key = store.put(b"payload")
        assert store.get(key) == b"payload"

    def test_content_addressed(self):
        store = OffchainStore()
        assert store.put(b"x") == store.put(b"x")
        assert len(store) == 1

    def test_missing_key_raises(self):
        with pytest.raises(SerializationError):
            OffchainStore().get("0xmissing")

    def test_weights_round_trip(self):
        store = OffchainStore()
        weights = {"w": np.arange(6, dtype=np.float64).reshape(2, 3)}
        key = store.put_weights(weights)
        assert key == weights_hash(weights)
        restored = store.get_weights(key)
        np.testing.assert_array_equal(restored["w"], weights["w"])

    def test_maybe_get_weights(self):
        store = OffchainStore()
        assert store.maybe_get_weights("0xnope") is None
        key = store.put_weights({"w": np.ones(2)})
        assert store.maybe_get_weights(key) is not None

    def test_contains_and_size(self):
        store = OffchainStore()
        key = store.put(b"abc")
        assert key in store
        assert store.total_bytes() == 3

    def test_counters(self):
        store = OffchainStore()
        key = store.put(b"abc")
        store.get(key)
        store.get(key)
        assert store.puts == 1
        assert store.gets == 2


class TestRoundTracker:
    def _tracker(self, policy=None):
        return RoundTracker("A", policy or WaitForAll(), cohort_size=3)

    def test_lifecycle(self):
        tracker = self._tracker()
        tracker.open_round(1, now=0.0)
        assert tracker.state is RoundState.TRAINING
        tracker.mark_trained(1, now=10.0)
        assert tracker.state is RoundState.SUBMITTED
        tracker.mark_submitted(1, now=11.0)
        assert tracker.state is RoundState.WAITING
        assert tracker.check_ready(1, submissions_visible=3, now=20.0)
        tracker.mark_aggregated(1, now=21.0)
        assert tracker.state is RoundState.AGGREGATED

    def test_wait_time_computed(self):
        tracker = self._tracker()
        timeline = tracker.open_round(1, now=0.0)
        tracker.mark_submitted(1, now=10.0)
        tracker.check_ready(1, submissions_visible=3, now=25.0)
        assert timeline.wait_time == 15.0
        tracker.mark_aggregated(1, now=26.0)
        assert timeline.total_time == 26.0

    def test_wait_for_k_fires_early(self):
        tracker = self._tracker(WaitForK(2))
        tracker.open_round(1, now=0.0)
        tracker.mark_submitted(1, now=1.0)
        assert not tracker.check_ready(1, submissions_visible=1, now=2.0)
        assert tracker.check_ready(1, submissions_visible=2, now=3.0)

    def test_quorum_time_records_first_firing(self):
        tracker = self._tracker(WaitForK(1))
        timeline = tracker.open_round(1, now=0.0)
        tracker.mark_submitted(1, now=1.0)
        tracker.check_ready(1, submissions_visible=1, now=5.0)
        tracker.check_ready(1, submissions_visible=3, now=9.0)
        assert timeline.quorum_at == 5.0  # first time, not overwritten

    def test_double_open_rejected(self):
        tracker = self._tracker()
        tracker.open_round(1, now=0.0)
        with pytest.raises(RoundError):
            tracker.open_round(1, now=1.0)

    def test_unopened_round_rejected(self):
        tracker = self._tracker()
        with pytest.raises(RoundError):
            tracker.mark_trained(5, now=1.0)

    def test_wait_times_summary(self):
        tracker = self._tracker(WaitForK(1))
        for round_id in (1, 2):
            tracker.open_round(round_id, now=round_id * 100.0)
            tracker.mark_submitted(round_id, now=round_id * 100.0 + 5.0)
            tracker.check_ready(round_id, 1, now=round_id * 100.0 + 8.0)
        assert tracker.wait_times() == {1: 3.0, 2: 3.0}

    def test_incomplete_round_excluded_from_wait_times(self):
        tracker = self._tracker()
        tracker.open_round(1, now=0.0)
        assert tracker.wait_times() == {}
