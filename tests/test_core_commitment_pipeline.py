"""Tests for the content-addressed commitment pipeline.

Pins the headline property of this refactor: one weight serialization per
local model per round on the peer submit path (the seed paid one each for
the off-chain put, the commitment hash, and any size probe), and one
deserialization per distinct blob ever, no matter how many peers fetch it
or how often they poll.
"""

import numpy as np
import pytest

from repro.core.offchain import OffchainStore
from repro.errors import SerializationError
from repro.fl.aggregation import ModelUpdate
from repro.nn.serialize import SERIALIZATION_STATS, WeightArchive, weights_to_bytes

from test_core_decentralized import make_driver


@pytest.fixture
def weights(rng):
    return {"h/W": rng.normal(size=(6, 3)), "h/b": rng.normal(size=(3,))}


class TestOffchainStoreMarshalling:
    def test_put_weights_serializes_once(self, weights):
        store = OffchainStore()
        store.put_weights(weights)
        assert store.serializations == 1
        assert store.puts == 1

    def test_put_archive_reuses_existing_encoding(self, weights):
        store = OffchainStore()
        archive = WeightArchive.from_weights(weights)
        archive.payload  # encoded before the store sees it
        store.put_archive(archive)
        assert store.serializations == 0  # the store triggered no encode

    def test_repeat_fetches_decode_once(self, weights):
        # Raw byte put (a blob replicated from elsewhere): the first fetch
        # decodes, every later fetch hits the decoded-archive cache.
        store = OffchainStore()
        key = store.put(weights_to_bytes(weights))
        for _ in range(5):
            store.get_weights(key)
        assert store.deserializations == 1
        assert store.decode_hits == 4

    def test_put_then_fetch_never_decodes(self, weights):
        # The putter's archive already holds the decoded dict, so even the
        # first fetch is a cache hit.
        store = OffchainStore()
        key = store.put_weights(weights)
        store.get_weights(key)
        assert store.deserializations == 0
        assert store.decode_hits == 1

    def test_fetched_weights_are_detached_copies(self, weights):
        store = OffchainStore()
        key = store.put_weights(weights)
        fetched = store.get_weights(key)
        fetched["h/W"] += 100.0
        np.testing.assert_array_equal(store.get_weights(key)["h/W"], weights["h/W"])

    def test_corrupted_blob_detected_on_first_materialization(self, weights):
        store = OffchainStore()
        key = store.put(weights_to_bytes(weights))  # raw put: no archive cached
        store._blobs[key] = store._blobs[key][:-1] + b"!"
        with pytest.raises(SerializationError, match="content hash mismatch"):
            store.get_weights(key)

    def test_decoded_cache_is_bounded_lru(self, rng):
        store = OffchainStore(archive_cache_size=2)
        keys = [
            store.put(weights_to_bytes({"w": rng.normal(size=(3, 3))}))
            for _ in range(3)
        ]
        for key in keys:
            store.get_weights(key)
        assert len(store._archives) == 2           # oldest entry evicted
        store.get_weights(keys[0])                 # evicted: decodes again
        assert store.deserializations == 4
        store.get_weights(keys[0])                 # now resident: cache hit
        assert store.deserializations == 4

    def test_reput_refreshes_lru_position(self, rng):
        store = OffchainStore(archive_cache_size=2)
        first = {"w": rng.normal(size=(3, 3))}
        key_a = store.put_weights(first)
        key_b = store.put_weights({"w": rng.normal(size=(3, 3))})
        store.put_weights(first)                   # re-commit: A becomes hot
        store.put_weights({"w": rng.normal(size=(3, 3))})  # evicts B, not A
        store.get_weights(key_a)
        assert store.deserializations == 0         # A stayed resident
        store.get_weights(key_b)
        assert store.deserializations == 1         # B was the one evicted

    def test_cache_size_must_be_positive(self):
        with pytest.raises(SerializationError):
            OffchainStore(archive_cache_size=0)

    def test_failed_put_not_counted_as_serialization(self):
        store = OffchainStore()
        with pytest.raises(SerializationError):
            store.put_weights({"w": [1, 2]})  # not an ndarray: encode fails
        assert store.serializations == 0
        assert store.puts == 0

    def test_failed_get_not_counted_as_deserialization(self):
        store = OffchainStore()
        key = store.put(b"hashes fine, decodes not")
        for _ in range(3):
            with pytest.raises(SerializationError):
                store.get_weights(key)
        assert store.deserializations == 0

    def test_marshalling_stats_reported(self, weights):
        store = OffchainStore()
        key = store.put_weights(weights)
        store.get_weights(key)
        stats = store.marshalling_stats()
        assert stats["serializations"] == 1
        assert stats["puts"] == 1


class TestModelUpdateArchive:
    def test_archive_is_memoized(self, weights):
        update = ModelUpdate(client_id="A", weights=weights, num_samples=10)
        assert update.archive() is update.archive()

    def test_archive_hash_matches_weights(self, weights):
        update = ModelUpdate(client_id="A", weights=weights, num_samples=10)
        assert update.archive().hash == WeightArchive.from_weights(weights).hash


class TestOneSerializationPerModelPerRound:
    def test_decentralized_round_serializes_each_model_once(self):
        driver = make_driver(rounds=1)
        driver.deploy_contracts()
        SERIALIZATION_STATS.reset()
        store = driver.offchain
        base_serializations = store.serializations
        driver.run_round(1)
        n_models = len(driver.peers)
        # The store triggered exactly one encode per local model...
        assert store.serializations - base_serializations == n_models
        # ...and nothing else in the round serialized weights either.
        assert SERIALIZATION_STATS.encodes == n_models
        # Every cross-peer fetch was served from the decoded-archive cache.
        assert store.deserializations == 0
        assert store.decode_hits > 0

    def test_submissions_carry_size_bytes_from_same_encoding(self):
        driver = make_driver(rounds=1)
        driver.run()
        peer = driver.peers["A"]
        for record in peer.visible_submissions(1):
            assert record["size_bytes"] > 0
        stats = driver.chain_stats()
        assert stats["offchain_marshalling"]["serializations"] == len(driver.peers)
