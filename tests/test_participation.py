"""Client sampling & churn: the participation axis.

Cross-device FL registers far more clients than any round trains; the
participation axis samples a k-peer subcohort per round, takes peers
offline through availability windows and churn, and catches rejoiners
back up — all from dedicated deterministic rng streams so the schedule
is a pure function of (spec, roster, rounds, seed).  These tests pin the
axis end-to-end: spec validation, plan determinism, subcohort-bounded
work (training, quorum, votes, reputation), rejoin catch-up against the
last *finished* round, and the byte-identity escape hatches
(``sampled_k = n`` == full participation; fault-only runs untouched).
"""

import re

import numpy as np
import pytest

from repro.core.decentralized import (
    REPUTATION_INITIAL_SCORE,
    DecentralizedConfig,
    DecentralizedFL,
)
from repro.core.participation import ParticipationPlan, ParticipationSpec
from repro.core.peer import PeerConfig
from repro.data.dataset import Dataset
from repro.errors import ConfigError, RoundError
from repro.faults import FaultSpec
from repro.fl.trainer import TrainConfig
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.scenarios import ScenarioContext, get_scenario, run_scenario
from repro.scenarios.registry import cohort_scenario
from repro.scenarios.spec import ScenarioSpec, replace_axis
from repro.fl.scoring import weights_fingerprint
from repro.utils.rng import RngFactory


# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------


class TestParticipationSpec:
    def test_defaults_are_disengaged(self):
        spec = ParticipationSpec()
        assert not spec.engaged
        assert not spec.has_absences

    def test_sampled_k_floor(self):
        with pytest.raises(ConfigError):
            ParticipationSpec(sampled_k=1)

    def test_churn_rate_range(self):
        with pytest.raises(ConfigError):
            ParticipationSpec(churn_rate=1.0)
        with pytest.raises(ConfigError):
            ParticipationSpec(churn_rate=-0.1)

    def test_window_rejects_head_peer(self):
        with pytest.raises(ConfigError):
            ParticipationSpec(windows=((0, 1, 1),))

    def test_window_shape_validated(self):
        with pytest.raises(ConfigError):
            ParticipationSpec(windows=((1, 0, 1),))  # rounds are 1-based
        with pytest.raises(ConfigError):
            ParticipationSpec(windows=((1, 1, 0),))  # empty window

    def test_windows_normalized_to_sorted_tuples(self):
        spec = ParticipationSpec(windows=[[3, 2, 1], [1, 1, 2]])
        assert spec.windows == ((1, 1, 2), (3, 2, 1))

    def test_engagement_flags(self):
        assert ParticipationSpec(sampled_k=3).engaged
        assert not ParticipationSpec(sampled_k=3).has_absences
        assert ParticipationSpec(churn_rate=0.1).has_absences
        assert ParticipationSpec(windows=((1, 1, 1),)).has_absences

    def test_spec_is_hashable(self):
        """Participation rides in dataset-memo key tuples — must hash."""
        spec = ParticipationSpec(sampled_k=3, windows=((1, 1, 1),))
        assert hash(spec) == hash(ParticipationSpec(sampled_k=3, windows=((1, 1, 1),)))

    def test_vanilla_scenario_rejects_participation(self):
        with pytest.raises(ConfigError):
            ScenarioSpec(kind="vanilla", participation=ParticipationSpec(sampled_k=2))

    def test_sampled_k_bounded_by_cohort(self):
        spec = cohort_scenario(5)
        with pytest.raises(ConfigError):
            replace_axis(spec, "participation.sampled_k", 6)

    def test_window_index_bounded_by_cohort(self):
        spec = cohort_scenario(5)
        with pytest.raises(ConfigError):
            replace_axis(spec, "participation.windows", ((5, 1, 1),))


class TestRegistryNames:
    def test_sampled_name_resolves(self):
        definition = get_scenario("cohort/10/sampled/4")
        (spec,) = definition.build()
        assert spec.participation.sampled_k == 4
        assert spec.cohort.size == 10
        assert spec.name == "cohort/10/sampled/4"

    def test_sampled_k_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            get_scenario("cohort/10/sampled/1")
        with pytest.raises(ConfigError):
            get_scenario("cohort/10/sampled/11")

    def test_plain_cohort_name_still_full_participation(self):
        (spec,) = get_scenario("cohort/10").build()
        assert not spec.participation.engaged


# ---------------------------------------------------------------------------
# Plan determinism
# ---------------------------------------------------------------------------


PEERS_20 = tuple(f"P{i:02d}" for i in range(20))


def build_plan(spec, peers=PEERS_20, rounds=4, seed=42):
    return ParticipationPlan(spec, list(peers), rounds, RngFactory(seed).spawn("chain"))


class TestParticipationPlan:
    def test_rebuild_is_identical(self):
        spec = ParticipationSpec(sampled_k=5, churn_rate=0.2)
        first = build_plan(spec)
        second = build_plan(spec)
        for round_id in range(1, 5):
            assert first.active(round_id) == second.active(round_id)
            assert first.offline(round_id) == second.offline(round_id)
        assert first.ever_active == second.ever_active

    def test_rounds_draw_independent_streams(self):
        plan = build_plan(ParticipationSpec(sampled_k=5), rounds=6)
        assert len({plan.active(r) for r in range(1, 7)}) > 1

    def test_full_plan_selects_everyone(self):
        plan = build_plan(ParticipationSpec())
        assert not plan.engaged
        for round_id in range(1, 5):
            assert plan.active(round_id) == PEERS_20
            assert plan.offline(round_id) == frozenset()
        assert plan.ever_active == frozenset(PEERS_20)

    def test_k_equals_n_plan_matches_full(self):
        full = build_plan(ParticipationSpec())
        saturated = build_plan(ParticipationSpec(sampled_k=len(PEERS_20)))
        for round_id in range(1, 5):
            assert saturated.active(round_id) == full.active(round_id)

    def test_active_preserves_cohort_order(self):
        plan = build_plan(ParticipationSpec(sampled_k=7))
        for round_id in range(1, 5):
            active = plan.active(round_id)
            assert list(active) == [p for p in PEERS_20 if p in set(active)]

    def test_head_peer_survives_heavy_churn(self):
        plan = build_plan(ParticipationSpec(churn_rate=0.9), rounds=8)
        for round_id in range(1, 9):
            assert PEERS_20[0] not in plan.offline(round_id)

    def test_sampled_k_bounded_by_roster(self):
        with pytest.raises(ConfigError):
            build_plan(ParticipationSpec(sampled_k=21))

    def test_window_takes_peer_offline_for_exact_rounds(self):
        plan = build_plan(ParticipationSpec(windows=((3, 2, 2),)))
        target = PEERS_20[3]
        assert target not in plan.offline(1)
        assert target in plan.offline(2)
        assert target in plan.offline(3)
        assert target not in plan.offline(4)


# ---------------------------------------------------------------------------
# Driver under sampling
# ---------------------------------------------------------------------------


def easy_dataset(rng, n=80):
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return Dataset(x, y)


def shared_builder(rng):
    return Sequential([Dense(6, name="h"), ReLU(), Dense(2, name="out")]).build(
        np.random.default_rng(42), (4,)
    )


def make_driver(rounds=2, peers=("A", "B", "C", "D", "E", "F"), **config_kwargs):
    data_rng = np.random.default_rng(0)
    config = DecentralizedConfig(rounds=rounds, **config_kwargs)
    peer_configs = [
        PeerConfig(
            peer_id=p,
            train_config=TrainConfig(epochs=1, learning_rate=0.1),
            training_time=10.0,
            training_time_jitter=2.0,
        )
        for p in peers
    ]
    return DecentralizedFL(
        peer_configs,
        {p: easy_dataset(data_rng) for p in peers},
        {p: easy_dataset(data_rng, n=50) for p in peers},
        shared_builder,
        config,
        rng_factory=RngFactory(7),
    )


def run_fingerprints(driver):
    driver.run()
    return {
        peer_id: weights_fingerprint(peer.client.model.get_weights())
        for peer_id, peer in driver.peers.items()
    }


SAMPLED_3 = ParticipationSpec(sampled_k=3)


class TestSampledDriver:
    def test_rounds_train_exactly_the_sampled_subcohort(self):
        driver = make_driver(rounds=2, participation=SAMPLED_3)
        driver.run()
        assert driver.abort_reason == ""
        assert driver.completed_rounds == 2
        for round_id in (1, 2):
            logged = sorted(
                log.peer_id for log in driver.round_logs if log.round_id == round_id
            )
            assert logged == sorted(driver.participation.active(round_id))
            assert len(logged) == 3

    def test_only_ever_active_peers_instantiated(self):
        driver = make_driver(rounds=2, participation=SAMPLED_3)
        driver.run()
        assert set(driver.peers) == driver.participation.ever_active
        assert set(driver.model_digests()) == set(driver.peers)

    def test_uninstantiated_peers_still_registered_on_chain(self):
        """The roster lives on-chain even for peers that never train."""
        driver = make_driver(rounds=2, participation=SAMPLED_3)
        driver.run()
        assert len(driver.peers) < len(driver.peer_ids)
        head = driver.peers[driver.peer_ids[0]]
        assert driver._is_registered(head, driver._registry_address())

    def test_round_quorum_and_votes_track_subcohort(self):
        """On-chain round records are quorate over the selected subcohort."""
        driver = make_driver(rounds=2, participation=SAMPLED_3, mode="global_vote")
        driver.run()
        head = driver.peers[driver.peer_ids[0]]
        for round_id in (1, 2):
            active = driver.participation.active(round_id)
            record = head.gateway.call(
                head.coordinator_address, "round_info", round_id=round_id
            )
            assert record["quorum"] == len(active)
            assert record["vote_threshold"] == len(active) // 2 + 1
            tally = head.gateway.call(
                head.coordinator_address, "vote_tally", round_id=round_id
            )
            assert sum(tally.values()) == len(active)

    def test_reputation_ignores_nonparticipants(self):
        """Rating passes run over the round's subcohort, never the roster."""
        driver = make_driver(rounds=2, participation=SAMPLED_3, enable_reputation=True)
        driver.run()
        scores = driver.reputation_scores()
        assert set(scores) == set(driver.peer_ids)
        ever = driver.participation.ever_active
        for peer_id in driver.peer_ids:
            if peer_id not in ever:
                assert scores[peer_id] == REPUTATION_INITIAL_SCORE
        rated = {p for p in ever if scores[p] != REPUTATION_INITIAL_SCORE}
        assert rated, "sampled participants were never rated"

    def test_k_equals_n_is_byte_identical_to_full(self):
        sampled = make_driver(rounds=2, participation=ParticipationSpec(sampled_k=6))
        full = make_driver(rounds=2)
        assert run_fingerprints(sampled) == run_fingerprints(full)
        assert sampled.chain_stats()["heights"] == full.chain_stats()["heights"]

    def test_participation_block_in_chain_stats(self):
        driver = make_driver(rounds=2, participation=SAMPLED_3)
        driver.run()
        block = driver.chain_stats()["participation"]
        assert block["registered"] == 6
        assert block["instantiated"] == len(driver.peers)
        assert block["skipped_rounds"] == []
        assert block["last_finished_round"] == 2

    def test_full_run_has_no_participation_block(self):
        driver = make_driver(rounds=2)
        driver.run()
        assert "participation" not in driver.chain_stats()


class TestChurnAndWindows:
    def test_window_peer_skips_round_and_catches_up(self):
        spec = ParticipationSpec(windows=((2, 2, 1),))  # peer "C" misses round 2
        driver = make_driver(rounds=3, peers=("A", "B", "C", "D"), participation=spec)
        driver.run()
        assert driver.abort_reason == ""
        assert driver.completed_rounds == 3
        round2 = sorted(log.peer_id for log in driver.round_logs if log.round_id == 2)
        assert round2 == ["A", "B", "D"]
        round3 = sorted(log.peer_id for log in driver.round_logs if log.round_id == 3)
        assert round3 == ["A", "B", "C", "D"]
        assert [entry["peer"] for entry in driver.catch_ups] == ["C"]
        assert driver.catch_ups[0]["round"] == 3
        assert driver.catch_ups[0]["models"] > 0
        heights = driver.chain_stats()["heights"]
        assert heights["C"] == heights["A"]

    def test_churn_trace_is_reproducible(self):
        spec = ParticipationSpec(churn_rate=0.3)
        first = make_driver(rounds=3, participation=spec)
        second = make_driver(rounds=3, participation=spec)
        assert run_fingerprints(first) == run_fingerprints(second)
        for round_id in range(1, 4):
            assert first.participation.offline(round_id) == second.participation.offline(
                round_id
            )

    def test_quorum_shrinks_to_present_peers(self):
        """Offline peers are excluded from the round's quorum, so the
        round completes without waiting on them."""
        spec = ParticipationSpec(windows=((1, 2, 1), (2, 2, 1)))
        driver = make_driver(rounds=3, peers=("A", "B", "C", "D"), participation=spec)
        driver.run()
        assert driver.abort_reason == ""
        round2 = sorted(log.peer_id for log in driver.round_logs if log.round_id == 2)
        assert round2 == ["A", "D"]

    def test_skipped_round_rejoin_pulls_last_finished_round(self):
        """A round with fewer than two live peers is skipped; rejoiners must
        catch up from the last *finished* round, not the skipped one."""
        spec = ParticipationSpec(windows=((1, 2, 1), (2, 2, 1), (3, 2, 1)))
        driver = make_driver(rounds=3, peers=("A", "B", "C", "D"), participation=spec)
        driver.run()
        assert driver.abort_reason == ""
        assert driver.skipped_rounds == [2]
        assert driver.completed_rounds == 2  # rounds 1 and 3
        assert not [log for log in driver.round_logs if log.round_id == 2]
        # Every rejoiner pulled round 1's aggregate — a fetch against the
        # skipped round would find zero models.
        rejoins = [entry for entry in driver.catch_ups if entry["round"] == 3]
        assert sorted(entry["peer"] for entry in rejoins) == ["B", "C", "D"]
        for entry in rejoins:
            assert entry["models"] > 0

    def test_last_finished_round_tracks_completions(self):
        driver = make_driver(rounds=2, participation=SAMPLED_3)
        driver.run()
        assert driver.last_finished_round == 2


class TestAbortBookkeeping:
    def test_abort_reason_reports_scheduled_round(self):
        """The abort message names the round that was scheduled when the
        failure hit — completed_rounds + 1, not a stale or off-by-one id."""
        driver = make_driver(
            rounds=3, peers=("A", "B", "C"), faults=FaultSpec(transient_rate=0.01)
        )
        original = driver.run_round

        def failing(round_id):
            if round_id == 2:
                raise RoundError("injected round failure")
            return original(round_id)

        driver.run_round = failing
        driver.run()
        assert driver.completed_rounds == 1
        assert driver.abort_reason == "round 2: injected round failure"
        match = re.match(r"round (\d+):", driver.abort_reason)
        assert int(match.group(1)) == driver.completed_rounds + 1

    def test_fault_only_run_keeps_pr7_bookkeeping(self):
        """Absence machinery stays inert for pure fault runs: crash
        transitions and catch-ups match the fault plan exactly."""
        spec = FaultSpec(crash_fraction=0.25, crash_round=2, crash_rounds=1)
        driver = make_driver(rounds=3, peers=("A", "B", "C", "D"), faults=spec)
        driver.run()
        assert driver.abort_reason == ""
        assert driver.skipped_rounds == []
        assert driver.last_finished_round == 3
        assert [entry["peer"] for entry in driver.catch_ups] == ["D"]
        assert driver.catch_ups[0]["round"] == 3


# ---------------------------------------------------------------------------
# Scenario layer: dataset memo separation
# ---------------------------------------------------------------------------


class TestDatasetMemoSeparation:
    def test_sampled_run_cannot_poison_full_run_cache(self):
        """A sampled run materializes only its ever-active subcohort; a
        full run through the same context must still see every split
        (the participation axis keys the memo entries apart)."""
        context = ScenarioContext()
        base = cohort_scenario(6).quick()
        sampled = run_scenario(
            replace_axis(base, "participation.sampled_k", 3), context=context
        )
        stats = sampled.chain_stats["participation"]
        assert stats["instantiated"] < 6
        full = run_scenario(base, context=context)
        for round_id in {log.round_id for log in full.round_logs}:
            logged = [log for log in full.round_logs if log.round_id == round_id]
            assert len(logged) == 6

    def test_full_run_identical_with_and_without_sampled_cache(self):
        shared = ScenarioContext()
        base = cohort_scenario(6).quick()
        run_scenario(replace_axis(base, "participation.sampled_k", 3), context=shared)
        polluted = run_scenario(base, context=shared)
        fresh = run_scenario(base, context=ScenarioContext())
        assert polluted.model_digests == fresh.model_digests
        assert polluted.chain_stats["heights"] == fresh.chain_stats["heights"]
