"""Tests for transactions and receipts."""

import pytest

from repro.chain.crypto import KeyPair
from repro.chain.transaction import Receipt, Transaction
from repro.errors import InvalidSignatureError


@pytest.fixture
def alice():
    return KeyPair.from_seed("alice")


@pytest.fixture
def bob():
    return KeyPair.from_seed("bob")


def make_tx(sender_kp, **overrides):
    defaults = dict(
        sender=sender_kp.address,
        to=KeyPair.from_seed("receiver").address,
        nonce=0,
        value=100,
    )
    defaults.update(overrides)
    return Transaction(**defaults)


class TestSigning:
    def test_sign_and_verify(self, alice):
        tx = make_tx(alice).sign_with(alice)
        assert tx.verify_signature()

    def test_unsigned_fails_verification(self, alice):
        assert not make_tx(alice).verify_signature()

    def test_wrong_keypair_rejected_at_signing(self, alice, bob):
        with pytest.raises(InvalidSignatureError):
            make_tx(alice).sign_with(bob)

    def test_mutation_after_signing_detected(self, alice):
        tx = make_tx(alice).sign_with(alice)
        tx.value = 999_999
        assert not tx.verify_signature()

    def test_args_mutation_detected(self, alice):
        tx = make_tx(alice, method="submit", args={"round_id": 1}).sign_with(alice)
        tx.args["round_id"] = 2
        assert not tx.verify_signature()


class TestHashing:
    def test_hash_stable(self, alice):
        tx = make_tx(alice).sign_with(alice)
        assert tx.tx_hash == tx.tx_hash

    def test_hash_covers_fields(self, alice):
        a = make_tx(alice, nonce=0).sign_with(alice)
        b = make_tx(alice, nonce=1).sign_with(alice)
        assert a.tx_hash != b.tx_hash

    def test_hash_covers_signature(self, alice):
        unsigned = make_tx(alice)
        unsigned_hash = unsigned.tx_hash
        signed_hash = unsigned.sign_with(alice).tx_hash
        assert unsigned_hash != signed_hash


class TestClassification:
    def test_create_detection(self, alice):
        tx = make_tx(alice, to=None, args={"contract": "model_store"})
        assert tx.is_create
        assert not tx.is_call

    def test_call_detection(self, alice):
        tx = make_tx(alice, method="submit_model")
        assert tx.is_call
        assert not tx.is_create

    def test_plain_transfer(self, alice):
        tx = make_tx(alice)
        assert not tx.is_call
        assert not tx.is_create

    def test_max_cost(self, alice):
        tx = make_tx(alice, value=50, gas_limit=1000, gas_price=2)
        assert tx.max_cost() == 50 + 2000


class TestWireFormat:
    def test_round_trip_preserves_signature(self, alice):
        tx = make_tx(alice, method="submit_model", args={"round_id": 3}, data=b"\x01\x02").sign_with(alice)
        restored = Transaction.from_dict(tx.to_dict())
        assert restored.verify_signature()
        assert restored.tx_hash == tx.tx_hash
        assert restored.args == {"round_id": 3}
        assert restored.data == b"\x01\x02"

    def test_round_trip_unsigned(self, alice):
        tx = make_tx(alice)
        restored = Transaction.from_dict(tx.to_dict())
        assert restored.signature is None
        assert restored.sender == tx.sender


class TestReceipt:
    def test_failed_property(self):
        ok = Receipt(tx_hash="0xaa", success=True, gas_used=21000)
        bad = Receipt(tx_hash="0xbb", success=False, gas_used=21000)
        assert not ok.failed
        assert bad.failed
