"""Tests for the centralized (Vanilla) FL orchestrator."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.errors import ConfigError
from repro.fl.client import ClientConfig, FLClient
from repro.fl.trainer import TrainConfig
from repro.fl.vanilla import VanillaConfig, VanillaFL
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential


def easy_dataset(rng, n=150):
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return Dataset(x, y)


def builder(rng):
    return Sequential([Dense(8, name="h"), ReLU(), Dense(2, name="out")]).build(rng, (4,))


def shared_builder(rng):
    # All clients share the same initial weights, like the experiments do.
    return builder(np.random.default_rng(42))


@pytest.fixture
def clients():
    data_rng = np.random.default_rng(0)
    return [
        FLClient(
            ClientConfig(client_id=cid, train_config=TrainConfig(epochs=2, learning_rate=0.1)),
            easy_dataset(data_rng),
            easy_dataset(data_rng, n=60),
            shared_builder,
            np.random.default_rng(10 + i),
        )
        for i, cid in enumerate(["A", "B", "C"])
    ]


@pytest.fixture
def aggregator_test():
    return easy_dataset(np.random.default_rng(99), n=80)


class TestVanillaConfig:
    def test_rounds_validated(self):
        with pytest.raises(ConfigError):
            VanillaConfig(rounds=0)


class TestNotConsider:
    def test_runs_all_rounds(self, clients, aggregator_test):
        driver = VanillaFL(clients, aggregator_test, VanillaConfig(rounds=3), shared_builder)
        logs = driver.run()
        assert len(logs) == 3
        assert [log.round_id for log in logs] == [1, 2, 3]

    def test_uses_all_members(self, clients, aggregator_test):
        driver = VanillaFL(clients, aggregator_test, VanillaConfig(rounds=1), shared_builder)
        log = driver.run()[0]
        assert log.selected_members == ("A", "B", "C")
        assert log.aggregation_type == "not_consider"

    def test_clients_synchronized_after_round(self, clients, aggregator_test):
        driver = VanillaFL(clients, aggregator_test, VanillaConfig(rounds=1), shared_builder)
        driver.run()
        x = np.random.default_rng(5).normal(size=(4, 4))
        outs = [client.model.predict(x) for client in clients]
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[0], outs[2])

    def test_accuracy_improves(self, clients, aggregator_test):
        driver = VanillaFL(clients, aggregator_test, VanillaConfig(rounds=4), shared_builder)
        driver.run()
        series = driver.accuracy_series("A")
        assert series[-1] > 0.7

    def test_per_client_accuracy_logged(self, clients, aggregator_test):
        driver = VanillaFL(clients, aggregator_test, VanillaConfig(rounds=1), shared_builder)
        log = driver.run()[0]
        assert set(log.client_accuracy) == {"A", "B", "C"}


class TestConsider:
    def test_members_subset(self, clients, aggregator_test):
        driver = VanillaFL(
            clients,
            aggregator_test,
            VanillaConfig(rounds=2, consider=True),
            shared_builder,
            rng=np.random.default_rng(0),
        )
        logs = driver.run()
        for log in logs:
            assert log.aggregation_type == "consider"
            assert 1 <= len(log.selected_members) <= 3
            assert set(log.selected_members) <= {"A", "B", "C"}

    def test_aggregator_accuracy_recorded(self, clients, aggregator_test):
        driver = VanillaFL(
            clients, aggregator_test, VanillaConfig(rounds=1, consider=True), shared_builder
        )
        log = driver.run()[0]
        assert 0.0 <= log.aggregator_accuracy <= 1.0

    def test_consider_never_below_full_average_on_agg_set(self, clients, aggregator_test):
        """Consider maximizes over subsets including the full set."""
        from repro.fl.aggregation import fedavg
        from repro.fl.evaluation import evaluate_weights

        driver = VanillaFL(
            clients, aggregator_test, VanillaConfig(rounds=1, consider=True), shared_builder
        )
        updates = [client.train_local(1) for client in clients]
        weights, _members, best_acc = driver._aggregate(updates)
        full_acc = evaluate_weights(driver._scratch_model, fedavg(updates), aggregator_test)
        assert best_acc >= full_acc
        del weights


class TestValidation:
    def test_no_clients_rejected(self, aggregator_test):
        with pytest.raises(ConfigError):
            VanillaFL([], aggregator_test, VanillaConfig(), shared_builder)
