"""Integration tests for the decentralized blockchain-FL orchestrator."""

import numpy as np
import pytest

from repro.core.decentralized import DecentralizedConfig, DecentralizedFL
from repro.core.peer import PeerConfig
from repro.data.dataset import Dataset
from repro.errors import ConfigError, RoundError
from repro.fl.async_policy import WaitForAll, WaitForK
from repro.fl.trainer import TrainConfig
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.utils.rng import RngFactory


def easy_dataset(rng, n=100):
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return Dataset(x, y)


def shared_builder(rng):
    return Sequential([Dense(6, name="h"), ReLU(), Dense(2, name="out")]).build(
        np.random.default_rng(42), (4,)
    )


def make_driver(policy=None, rounds=2, peers=("A", "B", "C"), training_times=None, **config_kwargs):
    data_rng = np.random.default_rng(0)
    config = DecentralizedConfig(rounds=rounds, **config_kwargs)
    if policy is not None:
        config.policy = policy
    times = training_times if training_times is not None else [10.0] * len(peers)
    peer_configs = [
        PeerConfig(
            peer_id=p,
            train_config=TrainConfig(epochs=1, learning_rate=0.1),
            training_time=t,
            training_time_jitter=2.0,
        )
        for p, t in zip(peers, times)
    ]
    return DecentralizedFL(
        peer_configs,
        {p: easy_dataset(data_rng) for p in peers},
        {p: easy_dataset(data_rng, n=60) for p in peers},
        shared_builder,
        config,
        rng_factory=RngFactory(7),
    )


class TestDeployment:
    def test_contracts_deployed_everywhere(self):
        driver = make_driver()
        driver.deploy_contracts()
        for peer in driver.peers.values():
            assert peer.gateway.has_contract(peer.model_store_address)
            assert peer.gateway.has_contract(peer.coordinator_address)

    def test_all_peers_registered(self):
        driver = make_driver()
        driver.deploy_contracts()
        registry = driver._registry_address()
        for peer in driver.peers.values():
            for other in driver.peers.values():
                assert peer.gateway.call(registry, "is_member", address=other.address)

    def test_rounds_require_deployment(self):
        driver = make_driver()
        with pytest.raises(RoundError):
            driver.run_round(1)

    def test_two_peers_minimum(self):
        with pytest.raises(ConfigError):
            make_driver(peers=("A",))


class TestRounds:
    def test_full_run_produces_logs(self):
        driver = make_driver(rounds=2)
        logs = driver.run()
        assert len(logs) == 6  # 3 peers x 2 rounds
        for log in logs:
            assert log.combination_accuracy  # every combination scored
            assert log.chosen_combination
            assert log.chosen_accuracy == max(log.combination_accuracy.values())

    def test_wait_for_all_sees_seven_combos(self):
        driver = make_driver(rounds=1)
        logs = driver.run()
        for log in logs:
            assert len(log.combination_accuracy) == 7  # all subsets of 3

    def test_wait_for_one_sees_fewer_models(self):
        # Stagger training well past the block interval so the fastest
        # peer's commitment is mined long before the slowest submits.
        driver = make_driver(policy=WaitForK(1), rounds=1, training_times=[5.0, 120.0, 240.0])
        logs = driver.run()
        # The earliest peer aggregates with only its own model visible.
        models_used = [log.models_used for log in logs]
        assert min(models_used) >= 1
        combos = [len(log.combination_accuracy) for log in logs]
        assert min(combos) < 7

    def test_wait_times_lower_for_async(self):
        stagger = [5.0, 60.0, 120.0]
        sync_driver = make_driver(policy=WaitForAll(), rounds=2, training_times=stagger)
        sync_driver.run()
        async_driver = make_driver(policy=WaitForK(1), rounds=2, training_times=stagger)
        async_driver.run()
        sync_mean = float(np.mean(list(sync_driver.wait_time_summary().values())))
        async_mean = float(np.mean(list(async_driver.wait_time_summary().values())))
        assert async_mean <= sync_mean

    def test_submissions_recorded_on_chain(self):
        driver = make_driver(rounds=1)
        driver.run()
        peer = driver.peers["A"]
        submissions = peer.visible_submissions(1)
        assert len(submissions) == 3
        authors = {record["author"] for record in submissions}
        assert authors == {p.address for p in driver.peers.values()}

    def test_deterministic_given_seed(self):
        logs_a = make_driver(rounds=1).run()
        logs_b = make_driver(rounds=1).run()
        acc_a = {(l.peer_id, k): v for l in logs_a for k, v in l.combination_accuracy.items()}
        acc_b = {(l.peer_id, k): v for l in logs_b for k, v in l.combination_accuracy.items()}
        assert acc_a == acc_b

    def test_chain_stats_shape(self):
        driver = make_driver(rounds=1)
        driver.run()
        stats = driver.chain_stats()
        assert stats["blocks_mined"] > 0
        assert stats["offchain_blobs"] == 3  # one weight blob per peer
        assert set(stats["heights"]) == {"A", "B", "C"}

    def test_combination_series_accessor(self):
        driver = make_driver(rounds=2)
        driver.run()
        series = driver.combination_series("A", "A,B,C")
        assert len(series) == 2
        assert all(0.0 <= value <= 1.0 for value in series)


def _run_outcome(driver):
    """Everything the scoring path can influence, for equality checks."""
    logs = driver.run()
    return (
        [
            (
                log.peer_id,
                log.round_id,
                log.chosen_combination,
                log.chosen_accuracy,
                tuple(sorted(log.combination_accuracy.items())),
            )
            for log in logs
        ],
        {
            peer_id: {key: value.copy() for key, value in peer.client.model.get_weights().items()}
            for peer_id, peer in driver.peers.items()
        },
    )


class TestScoringEngineIntegration:
    """The engine fast path vs the seed serial path, end to end."""

    def test_engine_matches_serial_reference(self):
        logs_serial, finals_serial = _run_outcome(make_driver(rounds=1, scoring="serial"))
        logs_engine, finals_engine = _run_outcome(make_driver(rounds=1, scoring="engine"))
        assert logs_serial == logs_engine
        for peer_id in finals_serial:
            for key in finals_serial[peer_id]:
                np.testing.assert_array_equal(
                    finals_serial[peer_id][key], finals_engine[peer_id][key]
                )

    def test_parallel_workers_match_serial_reference(self):
        logs_serial, finals_serial = _run_outcome(make_driver(rounds=1, scoring="serial"))
        logs_parallel, finals_parallel = _run_outcome(
            make_driver(rounds=1, selection_workers=2)
        )
        assert logs_serial == logs_parallel
        for peer_id in finals_serial:
            for key in finals_serial[peer_id]:
                np.testing.assert_array_equal(
                    finals_serial[peer_id][key], finals_parallel[peer_id][key]
                )

    def test_serial_mode_builds_no_engines(self):
        assert make_driver(scoring="serial").engines == {}
        assert set(make_driver().engines) == {"A", "B", "C"}

    def test_invalid_scoring_config(self):
        with pytest.raises(ConfigError):
            DecentralizedConfig(scoring="mystery")
        with pytest.raises(ConfigError):
            DecentralizedConfig(selection_workers=-1)
        # Workers require the engine; silently-serial would mislead.
        with pytest.raises(ConfigError):
            DecentralizedConfig(scoring="serial", selection_workers=2)


class TestRateRoundReusesScores:
    """Reputation rating re-uses the aggregation phase's solo scores.

    The seed re-evaluated every solo model a second time in
    ``_rate_round``; the engine path must answer those lookups from the
    cache — the instrumentation hook counts every *real* evaluation, so
    a round with reputation on performs exactly one evaluation per
    distinct subset and not one more.
    """

    def test_rating_adds_zero_evaluations(self):
        driver = make_driver(rounds=1, enable_reputation=True)
        evaluations = {peer_id: [] for peer_id in driver.engines}
        for peer_id, engine in driver.engines.items():
            engine.instrument = evaluations[peer_id].append
        driver.run()
        for peer_id, engine in driver.engines.items():
            # 3 visible updates -> 7 subsets; the rating pass (own solo +
            # 2 subjects per rater) added nothing.
            assert len(evaluations[peer_id]) == 7, (
                f"{peer_id}: expected 7 evaluations, saw {len(evaluations[peer_id])}"
            )
            assert engine.cache.stats["hits"] >= 3  # the rating lookups

    def test_reputation_scores_match_serial_reference(self):
        scores = {}
        for scoring in ("serial", "engine"):
            driver = make_driver(rounds=1, enable_reputation=True, scoring=scoring)
            driver.run()
            scores[scoring] = {p: driver.reputation_of(p) for p in ("A", "B", "C")}
        assert scores["serial"] == scores["engine"]
