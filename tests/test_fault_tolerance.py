"""Failure injection: partitions, healing, message loss, and chain sync.

The paper's pitch for blockchain-based FL is removing the single point of
failure; these tests verify the substrate actually delivers that — a
partitioned peer catches back up (via sync-on-orphan), lossy links don't
wedge the chain, and FL rounds survive temporary faults.
"""

import numpy as np
import pytest

from repro.chain.crypto import KeyPair
from repro.chain.network import LatencyModel, P2PNetwork
from repro.chain.node import GenesisSpec, Node, NodeConfig
from repro.chain.pow import ProofOfWork, RetargetRule
from repro.chain.runtime import ContractRuntime
from repro.contracts import register_all
from repro.core.decentralized import DecentralizedConfig, DecentralizedFL
from repro.core.peer import PeerConfig
from repro.data.dataset import Dataset
from repro.fl.trainer import TrainConfig
from repro.nn.layers import Dense
from repro.nn.model import Sequential
from repro.utils.events import Simulator
from repro.utils.rng import RngFactory


def build_network(n_nodes=3, seed=0, target_interval=5.0, drop_rate=0.0):
    runtime = ContractRuntime()
    register_all(runtime)
    keypairs = [KeyPair.from_seed(f"ft-{i}") for i in range(n_nodes)]
    genesis = GenesisSpec(
        allocations={kp.address: 10**15 for kp in keypairs},
        difficulty=max(int(n_nodes * 1000 * target_interval), 1),
    )
    sim = Simulator()
    network = P2PNetwork(
        sim,
        ProofOfWork(np.random.default_rng(seed), retarget=RetargetRule(target_interval=target_interval)),
        latency=LatencyModel(base=0.05, jitter=0.02),
        rng=np.random.default_rng(seed + 1),
        drop_rate=drop_rate,
    )
    nodes = []
    for kp in keypairs:
        node = Node(kp, genesis, runtime, NodeConfig())
        network.add_node(node)
        nodes.append(node)
    return network, nodes


class TestPartitionRecovery:
    def test_partitioned_node_syncs_after_heal(self):
        """A node cut off for several blocks catches up via chain sync."""
        network, nodes = build_network(3)
        isolated = nodes[2].address
        for other in (nodes[0].address, nodes[1].address):
            network.partition(isolated, other)
        network.start_mining([nodes[0].address, nodes[1].address])
        while min(nodes[0].height, nodes[1].height) < 5:
            network.sim.step()
        assert nodes[2].height == 0

        network.heal_all()
        network.start_mining([isolated])
        # The next block the healed node receives references unknown
        # ancestors; sync-on-orphan back-fills them.
        target = min(nodes[0].height, nodes[1].height)
        while nodes[2].height < target and network.sim.now < 10**5:
            if not network.sim.step():
                break
        network.stop_mining()
        assert nodes[2].height >= target
        assert network.stats.syncs >= 1

    def test_synced_node_agrees_on_state(self):
        network, nodes = build_network(2, seed=3)
        a, b = nodes[0].address, nodes[1].address
        network.partition(a, b)
        network.start_mining([a])
        while nodes[0].height < 4:
            network.sim.step()
        network.heal(a, b)
        while nodes[1].height < 4 and network.sim.now < 10**5:
            if not network.sim.step():
                break
        network.stop_mining()
        network.run_for(5.0)
        # Identical canonical prefix => identical executed state root.
        h = min(nodes[0].height, nodes[1].height)
        assert h >= 4
        block_a = nodes[0].store.block_at_height(h)
        block_b = nodes[1].store.block_at_height(h)
        assert block_a.block_hash == block_b.block_hash


class TestLossyLinks:
    @pytest.mark.parametrize("drop_rate", [0.2, 0.5])
    def test_chain_progresses_under_loss(self, drop_rate):
        network, nodes = build_network(3, seed=7, drop_rate=drop_rate)
        network.start_mining()
        # Every node keeps mining locally, so height advances regardless of
        # drops; sync-on-orphan repairs the gaps that drops create.
        while max(node.height for node in nodes) < 6 and network.sim.now < 10**5:
            network.sim.step()
        network.stop_mining()
        assert max(node.height for node in nodes) >= 6
        assert network.stats.messages_dropped > 0


class TestFLRoundSurvivesFault:
    def _easy(self, rng, n=80):
        x = rng.normal(size=(n, 4))
        y = (x[:, 0] > 0).astype(np.int64)
        return Dataset(x, y)

    def test_round_completes_after_mid_round_partition(self):
        peers = ("A", "B", "C")
        data_rng = np.random.default_rng(0)
        driver = DecentralizedFL(
            [
                PeerConfig(peer_id=p, train_config=TrainConfig(epochs=1), training_time=10.0)
                for p in peers
            ],
            {p: self._easy(data_rng) for p in peers},
            {p: self._easy(data_rng, n=40) for p in peers},
            lambda rng: Sequential([Dense(2, name="out")]).build(np.random.default_rng(42), (4,)),
            DecentralizedConfig(rounds=1),
            rng_factory=RngFactory(21),
        )
        driver.deploy_contracts()

        # Cut C off, then heal it shortly after the round starts: its
        # submission gossip is lost but C's own miner still includes it, and
        # the sync path carries everything across once healed.
        c_address = driver.peers["C"].address
        for other_id in ("A", "B"):
            driver.network.partition(c_address, driver.peers[other_id].address)
        heal_done = []

        def heal():
            driver.network.heal_all()
            heal_done.append(True)

        driver.sim.schedule_in(60.0, heal)
        logs = driver.run_round(1)
        assert heal_done, "heal event never fired"
        assert len(logs) == 3
        for log in logs:
            assert log.chosen_combination
