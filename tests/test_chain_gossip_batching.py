"""Tests for batched gossip delivery in the P2P network."""

import numpy as np
import pytest

from repro.chain.crypto import KeyPair
from repro.chain.network import LatencyModel, P2PNetwork
from repro.chain.node import GenesisSpec, Node, NodeConfig
from repro.chain.pow import ProofOfWork, RetargetRule
from repro.chain.runtime import ContractRuntime
from repro.chain.transaction import Transaction
from repro.contracts import register_all
from repro.errors import NetworkError
from repro.utils.events import Simulator


def build_network(n_nodes=3, batch_window=0.01, seed=0, drop_rate=0.0):
    runtime = ContractRuntime()
    register_all(runtime)
    keypairs = [KeyPair.from_seed(f"batch-{i}") for i in range(n_nodes)]
    genesis = GenesisSpec(allocations={kp.address: 10**15 for kp in keypairs})
    sim = Simulator()
    network = P2PNetwork(
        sim,
        ProofOfWork(np.random.default_rng(seed), retarget=RetargetRule(target_interval=5.0)),
        latency=LatencyModel(base=0.05, jitter=0.02),
        rng=np.random.default_rng(seed + 1),
        drop_rate=drop_rate,
        batch_window=batch_window,
    )
    nodes = []
    for kp in keypairs:
        node = Node(kp, genesis, runtime, NodeConfig())
        network.add_node(node)
        nodes.append(node)
    return network, nodes, keypairs


def _txs(keypairs, count):
    sender = keypairs[0]
    return [
        Transaction(sender=sender.address, to=keypairs[1].address, nonce=nonce, value=1).sign_with(sender)
        for nonce in range(count)
    ]


class TestBatchedDelivery:
    def test_burst_coalesces_into_fewer_events(self):
        """A same-instant burst delivers every message with far fewer batches."""
        network, nodes, keypairs = build_network(n_nodes=3, batch_window=0.05)
        for tx in _txs(keypairs, 8):
            network.broadcast_transaction(nodes[0].address, tx)
        network.sim.run()
        # 8 txs to each of 2 destinations = 16 messages...
        assert network.stats.messages_delivered == 16
        # ...delivered in (roughly) one batch per destination.
        assert network.stats.batches_delivered <= 4
        for node in nodes[1:]:
            assert len(node.mempool) == 8

    def test_messages_never_arrive_before_their_latency(self):
        network, nodes, keypairs = build_network(n_nodes=2, batch_window=0.5)
        for tx in _txs(keypairs, 3):
            network.broadcast_transaction(nodes[0].address, tx)
        # Nothing can arrive before the base link latency.
        network.sim.run(until=0.04)
        assert len(nodes[1].mempool) == 0
        network.sim.run()
        assert len(nodes[1].mempool) == 3

    def test_zero_window_still_delivers_everything(self):
        network, nodes, keypairs = build_network(n_nodes=3, batch_window=0.0)
        for tx in _txs(keypairs, 5):
            network.broadcast_transaction(nodes[0].address, tx)
        network.sim.run()
        assert network.stats.messages_delivered == 10
        for node in nodes[1:]:
            assert len(node.mempool) == 5

    def test_negative_window_rejected(self):
        with pytest.raises(NetworkError):
            build_network(batch_window=-0.1)

    def test_partition_respected_with_batching(self):
        network, nodes, keypairs = build_network(n_nodes=3, batch_window=0.05)
        network.partition(nodes[0].address, nodes[1].address)
        for tx in _txs(keypairs, 4):
            network.broadcast_transaction(nodes[0].address, tx)
        network.sim.run()
        assert len(nodes[1].mempool) == 0   # cut link: nothing crossed
        assert len(nodes[2].mempool) == 4   # healthy link: everything did
        assert network.stats.messages_dropped == 4

    def test_batches_counted_in_stats_dict(self):
        network, nodes, keypairs = build_network(n_nodes=2, batch_window=0.05)
        network.broadcast_transaction(nodes[0].address, _txs(keypairs, 1)[0])
        network.sim.run()
        stats = network.stats.as_dict()
        assert stats["batches_delivered"] == 1
        assert stats["messages_delivered"] == 1

    def test_fast_message_pulls_flush_forward(self):
        """A later send with a smaller sampled latency must not be held
        until the slower message's flush — the flush reschedules so no
        message waits more than batch_window past its own arrival."""
        network, nodes, keypairs = build_network(n_nodes=2, batch_window=0.1)

        class ScriptedLatency:
            def __init__(self, delays):
                self.delays = list(delays)

            def sample(self, rng):
                return self.delays.pop(0)

        network.latency = ScriptedLatency([0.5, 0.05])
        slow_tx, fast_tx = _txs(keypairs, 2)
        network.broadcast_transaction(nodes[0].address, slow_tx)   # arrival 0.5
        network.broadcast_transaction(nodes[0].address, fast_tx)   # arrival 0.05
        # Fast message delivered at its own arrival + window (0.15), well
        # before the slow message's 0.6 flush.
        network.sim.run(until=0.2)
        assert len(nodes[1].mempool) == 1
        network.sim.run()
        assert len(nodes[1].mempool) == 2

    def test_mining_still_converges_with_batching(self):
        network, nodes, _ = build_network(n_nodes=3, batch_window=0.05)
        network.start_mining()
        network.run_until_height(5)
        network.stop_mining()
        network.run_for(5.0)
        assert network.sync_check()
