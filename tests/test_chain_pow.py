"""Tests for proof of work: puzzle, mining, retargeting, statistics."""

import numpy as np
import pytest

from repro.chain.block import BlockHeader
from repro.chain.pow import (
    ProofOfWork,
    RetargetRule,
    check_pow,
    mine_header,
    pow_target,
)


def make_header(difficulty: int = 1) -> BlockHeader:
    return BlockHeader(
        parent_hash="0x" + "00" * 32,
        number=1,
        timestamp=1.0,
        miner="0x" + "aa" * 20,
        difficulty=difficulty,
        tx_root="0x" + "bb" * 32,
        state_root="0x" + "cc" * 32,
    )


class TestPuzzle:
    def test_target_decreases_with_difficulty(self):
        assert pow_target(2) < pow_target(1)
        assert pow_target(1000) == pow_target(1) // 1000

    def test_invalid_difficulty_rejected(self):
        with pytest.raises(ValueError):
            pow_target(0)

    def test_difficulty_one_always_seals(self):
        header = make_header(difficulty=1)
        assert check_pow(header)  # target is 2^256, every hash passes

    def test_mine_header_finds_nonce(self):
        header = make_header(difficulty=16)
        assert mine_header(header, max_attempts=100_000)
        assert check_pow(header)

    def test_mined_nonce_specific_to_header(self):
        header = make_header(difficulty=4096)
        assert mine_header(header, max_attempts=1_000_000)
        sealed_nonce = header.nonce
        other = make_header(difficulty=4096)
        other.timestamp = 2.0
        other.nonce = sealed_nonce
        # With difficulty 4096 a transplanted nonce almost surely fails.
        assert not check_pow(other)

    def test_mine_header_gives_up(self):
        header = make_header(difficulty=2**200)
        assert not mine_header(header, max_attempts=10)


class TestRetarget:
    def test_fast_parent_raises_difficulty(self):
        rule = RetargetRule(target_interval=13.0, adjustment_quotient=16)
        assert rule.next_difficulty(1600, parent_interval=5.0) == 1700

    def test_slow_parent_lowers_difficulty(self):
        rule = RetargetRule(target_interval=13.0, adjustment_quotient=16)
        assert rule.next_difficulty(1600, parent_interval=30.0) == 1500

    def test_on_target_keeps_difficulty(self):
        rule = RetargetRule(target_interval=13.0)
        assert rule.next_difficulty(1600, parent_interval=13.0) == 1600

    def test_floor_respected(self):
        rule = RetargetRule(min_difficulty=10)
        assert rule.next_difficulty(10, parent_interval=100.0) == 10

    def test_small_difficulty_still_steps(self):
        rule = RetargetRule(adjustment_quotient=16)
        assert rule.next_difficulty(5, parent_interval=1.0) == 6


class TestStatisticalPoW:
    def test_expected_time_scales_with_difficulty(self):
        pow_engine = ProofOfWork(np.random.default_rng(0))
        assert pow_engine.expected_time(200, hashrate=100) == 2.0

    def test_zero_hashrate_rejected(self):
        pow_engine = ProofOfWork(np.random.default_rng(0))
        with pytest.raises(ValueError):
            pow_engine.expected_time(100, hashrate=0)

    def test_sample_mean_approximates_expectation(self):
        pow_engine = ProofOfWork(np.random.default_rng(0))
        samples = [pow_engine.sample_mining_time(100, 100) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(1.0, rel=0.1)

    def test_samples_non_negative(self):
        pow_engine = ProofOfWork(np.random.default_rng(0))
        assert all(pow_engine.sample_mining_time(10, 10) >= 0 for _ in range(100))

    def test_hashrate_proportional_leader_election(self):
        # A miner with 3x hashrate should win roughly 3/4 of the races.
        rng = np.random.default_rng(42)
        pow_engine = ProofOfWork(rng)
        wins = 0
        trials = 3000
        for _ in range(trials):
            fast = pow_engine.sample_mining_time(100, 300)
            slow = pow_engine.sample_mining_time(100, 100)
            if fast < slow:
                wins += 1
        assert wins / trials == pytest.approx(0.75, abs=0.04)

    def test_sample_nonce_in_range(self):
        pow_engine = ProofOfWork(np.random.default_rng(0))
        assert 0 <= pow_engine.sample_nonce() < 2**63
