"""Tests for the block tree and fork choice."""

import pytest

from repro.chain.block import Block, BlockHeader, make_genesis
from repro.chain.chainstore import ChainStore
from repro.errors import InvalidBlockError, UnknownBlockError


def child_of(parent: Block, difficulty: int = 1, tag: str = "") -> Block:
    header = BlockHeader(
        parent_hash=parent.block_hash,
        number=parent.number + 1,
        timestamp=parent.header.timestamp + 1.0,
        miner="0x" + "aa" * 20,
        difficulty=difficulty,
        tx_root="0x" + "00" * 32,
        state_root="0x" + "00" * 32,
        extra=tag,
    )
    return Block(header=header)


@pytest.fixture
def genesis():
    return make_genesis("0x" + "ff" * 32)


@pytest.fixture
def store(genesis):
    return ChainStore(genesis)


class TestBasics:
    def test_genesis_is_head(self, store, genesis):
        assert store.head_hash == genesis.block_hash
        assert store.height == 0
        assert len(store) == 1

    def test_invalid_genesis_rejected(self, genesis):
        bad = child_of(genesis)  # number 1 is not a genesis
        with pytest.raises(InvalidBlockError):
            ChainStore(bad)

    def test_get_unknown_raises(self, store):
        with pytest.raises(UnknownBlockError):
            store.get("0xmissing")

    def test_extend_head(self, store, genesis):
        block = child_of(genesis)
        reorg = store.add(block)
        assert store.head_hash == block.block_hash
        assert reorg is not None
        assert reorg.rolled_back == []
        assert reorg.applied == [block.block_hash]

    def test_duplicate_add_noop(self, store, genesis):
        block = child_of(genesis)
        store.add(block)
        assert store.add(block) is None

    def test_unknown_parent_rejected(self, store, genesis):
        orphan = child_of(child_of(genesis))
        with pytest.raises(UnknownBlockError):
            store.add(orphan)

    def test_bad_number_rejected(self, store, genesis):
        block = child_of(genesis)
        block.header.number = 7
        with pytest.raises(InvalidBlockError):
            store.add(block)


class TestForkChoice:
    def test_heavier_branch_wins(self, store, genesis):
        light = child_of(genesis, difficulty=1, tag="light")
        heavy = child_of(genesis, difficulty=5, tag="heavy")
        store.add(light)
        reorg = store.add(heavy)
        assert store.head_hash == heavy.block_hash
        assert reorg.rolled_back == [light.block_hash]
        assert reorg.applied == [heavy.block_hash]
        assert reorg.common_ancestor == genesis.block_hash

    def test_first_seen_wins_ties(self, store, genesis):
        first = child_of(genesis, tag="first")
        second = child_of(genesis, tag="second")
        store.add(first)
        assert store.add(second) is None  # equal difficulty: no switch
        assert store.head_hash == first.block_hash

    def test_longer_branch_beats_shorter(self, store, genesis):
        side = child_of(genesis, tag="side")
        store.add(side)
        main1 = child_of(genesis, tag="main1")
        store.add(main1)  # tie, side stays head
        main2 = child_of(main1, tag="main2")
        reorg = store.add(main2)
        assert store.head_hash == main2.block_hash
        assert reorg.rolled_back == [side.block_hash]
        assert reorg.applied == [main1.block_hash, main2.block_hash]
        assert reorg.depth == 1

    def test_total_difficulty_accumulates(self, store, genesis):
        a = child_of(genesis, difficulty=3)
        b = child_of(a, difficulty=4)
        store.add(a)
        store.add(b)
        expected = genesis.header.difficulty + 3 + 4
        assert store.total_difficulty(b.block_hash) == expected


class TestQueries:
    def test_canonical_chain_order(self, store, genesis):
        a = child_of(genesis)
        b = child_of(a)
        store.add(a)
        store.add(b)
        chain = store.canonical_chain()
        assert [blk.number for blk in chain] == [0, 1, 2]
        assert chain[-1].block_hash == store.head_hash

    def test_block_at_height(self, store, genesis):
        a = child_of(genesis)
        store.add(a)
        assert store.block_at_height(0).block_hash == genesis.block_hash
        assert store.block_at_height(1).block_hash == a.block_hash
        assert store.block_at_height(2) is None
        assert store.block_at_height(-1) is None

    def test_is_canonical(self, store, genesis):
        winner = child_of(genesis, difficulty=5, tag="w")
        loser = child_of(genesis, difficulty=1, tag="l")
        store.add(loser)
        store.add(winner)
        assert store.is_canonical(winner.block_hash)
        assert not store.is_canonical(loser.block_hash)
        assert store.is_canonical(genesis.block_hash)

    def test_deep_reorg_path(self, store, genesis):
        # Build a 2-block side chain, then a heavier 2-block main chain.
        s1 = child_of(genesis, tag="s1")
        s2 = child_of(s1, tag="s2")
        store.add(s1)
        store.add(s2)
        m1 = child_of(genesis, difficulty=10, tag="m1")
        m2 = child_of(m1, difficulty=10, tag="m2")
        store.add(m1)  # 10 > 2: immediate switch
        reorg = store.add(m2)
        assert reorg.applied == [m2.block_hash]
        assert store.head.number == 2
        assert store.is_canonical(m1.block_hash)
