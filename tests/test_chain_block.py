"""Tests for blocks, headers, and genesis construction."""

import pytest

from repro.chain.block import Block, BlockHeader, GENESIS_PARENT, make_genesis
from repro.chain.crypto import KeyPair
from repro.chain.transaction import Transaction


def make_header(**overrides) -> BlockHeader:
    defaults = dict(
        parent_hash="0x" + "aa" * 32,
        number=5,
        timestamp=100.0,
        miner="0x" + "bb" * 20,
        difficulty=10,
        tx_root="0x" + "cc" * 32,
        state_root="0x" + "dd" * 32,
    )
    defaults.update(overrides)
    return BlockHeader(**defaults)


def signed_tx(seed="a", nonce=0):
    kp = KeyPair.from_seed(seed)
    return Transaction(sender=kp.address, to=None, nonce=nonce, args={"contract": "x"}).sign_with(kp)


class TestBlockHeader:
    def test_hash_stable(self):
        header = make_header()
        assert header.block_hash == header.block_hash

    def test_hash_covers_every_field(self):
        base = make_header()
        for field_name, new_value in [
            ("parent_hash", "0x" + "ee" * 32),
            ("number", 6),
            ("timestamp", 101.0),
            ("miner", "0x" + "ff" * 20),
            ("difficulty", 11),
            ("tx_root", "0x" + "ee" * 32),
            ("state_root", "0x" + "ee" * 32),
            ("gas_used", 100),
            ("extra", "tag"),
        ]:
            changed = make_header(**{field_name: new_value})
            assert changed.block_hash != base.block_hash, field_name

    def test_nonce_changes_hash_not_payload(self):
        a, b = make_header(), make_header()
        b.nonce = 12345
        assert a.sealing_payload() == b.sealing_payload()
        assert a.block_hash != b.block_hash


class TestBlockBody:
    def test_tx_root_commits_to_body(self):
        block = Block(header=make_header(), transactions=[signed_tx("a"), signed_tx("b")])
        block.header.tx_root = block.compute_tx_root()
        assert block.body_matches_header()

    def test_body_tamper_detected(self):
        block = Block(header=make_header(), transactions=[signed_tx("a")])
        block.header.tx_root = block.compute_tx_root()
        block.transactions.append(signed_tx("b"))
        assert not block.body_matches_header()

    def test_tx_order_matters(self):
        txs = [signed_tx("a"), signed_tx("b")]
        forward = Block(header=make_header(), transactions=txs)
        backward = Block(header=make_header(), transactions=list(reversed(txs)))
        assert forward.compute_tx_root() != backward.compute_tx_root()

    def test_empty_body_root(self):
        block = Block(header=make_header())
        block.header.tx_root = block.compute_tx_root()
        assert block.body_matches_header()

    def test_convenience_accessors(self):
        block = Block(header=make_header(number=7))
        assert block.number == 7
        assert block.block_hash == block.header.block_hash


class TestGenesis:
    def test_genesis_shape(self):
        genesis = make_genesis("0x" + "11" * 32, timestamp=5.0, difficulty=3)
        assert genesis.number == 0
        assert genesis.header.parent_hash == GENESIS_PARENT
        assert genesis.header.timestamp == 5.0
        assert genesis.header.difficulty == 3
        assert genesis.transactions == []
        assert genesis.body_matches_header()

    def test_genesis_deterministic(self):
        a = make_genesis("0x" + "11" * 32)
        b = make_genesis("0x" + "11" * 32)
        assert a.block_hash == b.block_hash

    def test_genesis_state_root_matters(self):
        a = make_genesis("0x" + "11" * 32)
        b = make_genesis("0x" + "22" * 32)
        assert a.block_hash != b.block_hash


@pytest.mark.parametrize("n_txs", [0, 1, 2, 5])
def test_tx_hash_leaves_match_count(n_txs):
    txs = [signed_tx(str(i), nonce=i) for i in range(n_txs)]
    block = Block(header=make_header(), transactions=txs)
    leaves = block.tx_hashes()
    assert len(leaves) == n_txs
    assert all(len(leaf) == 32 for leaf in leaves)
