"""Tests for FedAvg and robust aggregation baselines."""

import numpy as np
import pytest

from repro.errors import AggregationError
from repro.fl.aggregation import (
    AGGREGATORS,
    ModelUpdate,
    coordinate_median,
    fedavg,
    trimmed_mean,
    uniform_average,
)


def update(client_id, value, n=100, shape=(2, 2)):
    return ModelUpdate(
        client_id=client_id,
        weights={"w": np.full(shape, float(value)), "b": np.full((2,), float(value))},
        num_samples=n,
    )


class TestModelUpdate:
    def test_valid(self):
        assert update("A", 1.0).client_id == "A"

    def test_zero_samples_rejected(self):
        with pytest.raises(AggregationError):
            update("A", 1.0, n=0)

    def test_empty_weights_rejected(self):
        with pytest.raises(AggregationError):
            ModelUpdate(client_id="A", weights={}, num_samples=10)


class TestFedAvg:
    def test_equal_weights_plain_mean(self):
        result = fedavg([update("A", 1.0), update("B", 3.0)])
        np.testing.assert_allclose(result["w"], 2.0)
        np.testing.assert_allclose(result["b"], 2.0)

    def test_sample_count_weighting(self):
        result = fedavg([update("A", 0.0, n=300), update("B", 4.0, n=100)])
        np.testing.assert_allclose(result["w"], 1.0)  # (300*0 + 100*4) / 400

    def test_single_update_identity(self):
        single = update("A", 7.0)
        result = fedavg([single])
        np.testing.assert_allclose(result["w"], single.weights["w"])

    def test_empty_rejected(self):
        with pytest.raises(AggregationError):
            fedavg([])

    def test_mismatched_keys_rejected(self):
        a = update("A", 1.0)
        b = ModelUpdate(client_id="B", weights={"other": np.ones(2)}, num_samples=10)
        with pytest.raises(AggregationError):
            fedavg([a, b])

    def test_mismatched_shapes_rejected(self):
        a = update("A", 1.0)
        b = update("B", 1.0, shape=(3, 3))
        with pytest.raises(AggregationError):
            fedavg([a, b])

    def test_result_independent_of_inputs(self):
        a, b = update("A", 1.0), update("B", 3.0)
        result = fedavg([a, b])
        result["w"][...] = 999.0
        np.testing.assert_allclose(a.weights["w"], 1.0)

    def test_preserves_key_set(self):
        result = fedavg([update("A", 1.0), update("B", 2.0)])
        assert set(result) == {"w", "b"}


class TestUniformAverage:
    def test_ignores_sample_counts(self):
        result = uniform_average([update("A", 0.0, n=1000), update("B", 4.0, n=1)])
        np.testing.assert_allclose(result["w"], 2.0)

    def test_matches_fedavg_for_equal_counts(self):
        updates = [update("A", 1.0), update("B", 5.0)]
        np.testing.assert_allclose(uniform_average(updates)["w"], fedavg(updates)["w"])


class TestRobustAggregators:
    def test_median_resists_outlier(self):
        updates = [update("A", 1.0), update("B", 1.0), update("C", 1000.0)]
        result = coordinate_median(updates)
        np.testing.assert_allclose(result["w"], 1.0)

    def test_fedavg_corrupted_by_outlier(self):
        updates = [update("A", 1.0), update("B", 1.0), update("C", 1000.0)]
        assert fedavg(updates)["w"][0, 0] > 100  # vulnerable baseline

    def test_trimmed_mean_drops_extremes(self):
        updates = [update(c, v) for c, v in zip("ABCDE", [1.0, 1.0, 1.0, 1.0, 1000.0])]
        result = trimmed_mean(updates, trim_ratio=0.2)
        np.testing.assert_allclose(result["w"], 1.0)

    def test_trimmed_mean_small_n_falls_back(self):
        updates = [update("A", 1.0), update("B", 3.0)]
        result = trimmed_mean(updates, trim_ratio=0.2)  # k=0: plain mean
        np.testing.assert_allclose(result["w"], 2.0)

    def test_trimmed_mean_invalid_ratio(self):
        with pytest.raises(AggregationError):
            trimmed_mean([update("A", 1.0)], trim_ratio=0.5)

    def test_registry_complete(self):
        assert set(AGGREGATORS) == {"fedavg", "uniform", "median", "trimmed_mean"}
