"""Unit tests for the fully coupled peer (transaction building, commit flow)."""

import numpy as np
import pytest

from repro.chain.crypto import KeyPair
from repro.chain.gateway import InProcessGateway
from repro.chain.node import GenesisSpec, Node, NodeConfig
from repro.chain.runtime import ContractRuntime
from repro.contracts import register_all
from repro.core.offchain import OffchainStore
from repro.core.peer import FullPeer, PeerConfig
from repro.data.dataset import Dataset
from repro.errors import ConfigError
from repro.fl.trainer import TrainConfig
from repro.nn.layers import Dense
from repro.nn.model import Sequential
from repro.nn.serialize import weights_hash


def easy_dataset(rng, n=60):
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] > 0).astype(np.int64)
    return Dataset(x, y)


@pytest.fixture
def peer():
    runtime = ContractRuntime()
    register_all(runtime)
    kp = KeyPair.from_seed("unit-peer")
    genesis = GenesisSpec(allocations={kp.address: 10**15})
    node = Node(kp, genesis, runtime, NodeConfig())
    data_rng = np.random.default_rng(0)
    return FullPeer(
        config=PeerConfig(peer_id="A", train_config=TrainConfig(epochs=1)),
        keypair=kp,
        gateway=InProcessGateway(node),
        offchain=OffchainStore(),
        train_set=easy_dataset(data_rng),
        test_set=easy_dataset(data_rng, n=40),
        model_builder=lambda rng: Sequential([Dense(2, name="out")]).build(
            np.random.default_rng(42), (4,)
        ),
        rng=np.random.default_rng(1),
    )


class TestPeerConfig:
    def test_empty_id_rejected(self):
        with pytest.raises(ConfigError):
            PeerConfig(peer_id="", train_config=TrainConfig())

    def test_nonpositive_training_time_rejected(self):
        with pytest.raises(ConfigError):
            PeerConfig(peer_id="A", train_config=TrainConfig(), training_time=0.0)


class TestTransactions:
    def test_make_transaction_signed_and_sequenced(self, peer):
        tx1 = peer.make_transaction(to=None, args={"contract": "model_store"})
        assert tx1.verify_signature()
        assert tx1.nonce == 0
        peer.gateway.node.submit_transaction(tx1)
        tx2 = peer.make_transaction(to=None, args={"contract": "model_store"})
        assert tx2.nonce == 1  # pending tx counted

    def test_training_time_sampling_bounds(self, peer):
        base = peer.config.training_time
        jitter = peer.config.training_time_jitter
        for _ in range(50):
            duration = peer.sample_training_time()
            assert base <= duration <= base + jitter

    def test_zero_jitter_deterministic(self):
        config = PeerConfig(
            peer_id="A", train_config=TrainConfig(), training_time=12.0, training_time_jitter=0.0
        )
        assert config.training_time_jitter == 0.0


class TestCommitFlow:
    def _deploy_store(self, peer):
        deploy = peer.make_transaction(to=None, args={"contract": "model_store"})
        peer.gateway.node.submit_transaction(deploy)
        block = peer.gateway.node.build_block_candidate(13.0, difficulty=1)
        peer.gateway.node.seal_and_import(block, nonce=0)
        peer.model_store_address = peer.gateway.node.receipt_of(deploy.tx_hash).contract_address

    def test_requires_store_address(self, peer):
        with pytest.raises(ConfigError):
            peer.train_and_commit(1)
        with pytest.raises(ConfigError):
            peer.visible_submissions(1)

    def test_train_and_commit_binds_hash(self, peer):
        self._deploy_store(peer)
        update, tx = peer.train_and_commit(1)
        assert tx.args["weights_hash"] == weights_hash(update.weights)
        assert tx.args["weights_hash"] in peer.offchain
        assert tx.method == "submit_model"
        assert tx.verify_signature()

    def test_fetch_updates_round_trip(self, peer):
        self._deploy_store(peer)
        update, tx = peer.train_and_commit(1)
        peer.gateway.node.submit_transaction(tx)
        block = peer.gateway.node.build_block_candidate(26.0, difficulty=1)
        peer.gateway.node.seal_and_import(block, nonce=0)

        fetched = peer.fetch_updates(1, {peer.address: "A"})
        assert len(fetched) == 1
        assert fetched[0].client_id == "A"
        for key, value in fetched[0].weights.items():
            np.testing.assert_array_equal(value, update.weights[key])

    def test_fetch_skips_unpropagated_blobs(self, peer):
        self._deploy_store(peer)
        _update, tx = peer.train_and_commit(1)
        peer.gateway.node.submit_transaction(tx)
        block = peer.gateway.node.build_block_candidate(26.0, difficulty=1)
        peer.gateway.node.seal_and_import(block, nonce=0)
        # Simulate the off-chain blob not having arrived yet.
        peer.offchain._blobs.clear()
        assert peer.fetch_updates(1, {peer.address: "A"}) == []

    def test_adopt_and_evaluate(self, peer):
        foreign = Sequential([Dense(2, name="out")]).build(np.random.default_rng(7), (4,))
        weights = foreign.get_weights()
        accuracy = peer.evaluate_weights(weights)
        assert 0.0 <= accuracy <= 1.0
        peer.adopt(weights)
        for key, value in peer.client.model.get_weights().items():
            np.testing.assert_array_equal(value, weights[key])
