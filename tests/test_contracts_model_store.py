"""Tests for the model commitment store contract."""

import pytest

from repro.chain.gas import GasMeter
from repro.chain.runtime import CallContext, ContractRuntime
from repro.chain.state import WorldState
from repro.contracts.model_store import ModelStore
from repro.contracts.registry import ParticipantRegistry
from repro.errors import ContractRevertError

A = "0x" + "0a" * 20
B = "0x" + "0b" * 20
STORE = "0x" + "55" * 20
REGISTRY = "0x" + "66" * 20


@pytest.fixture
def runtime():
    rt = ContractRuntime()
    rt.register(ModelStore)
    rt.register(ParticipantRegistry)
    return rt


def make_call(state, runtime, contract, address):
    def call(sender, method, **args):
        ctx = CallContext(
            state=state,
            meter=GasMeter(10**9),
            contract_address=address,
            sender=sender,
            runtime=runtime,
            block_number=5,
            timestamp=42.0,
        )
        return getattr(contract, method)(ctx, **args)

    return call


@pytest.fixture
def env(runtime):
    """Unrestricted store (no registry binding)."""
    state = WorldState()
    state.deploy(STORE, "model_store")
    store = ModelStore()
    call = make_call(state, runtime, store, STORE)
    call(A, "init", registry_address=None)
    return state, call


@pytest.fixture
def gated_env(runtime):
    """Store bound to a registry where only A is a member."""
    state = WorldState()
    state.deploy(REGISTRY, "participant_registry")
    registry = ParticipantRegistry()
    reg_call = make_call(state, runtime, registry, REGISTRY)
    reg_call(A, "init", open_enrollment=True)
    reg_call(A, "register")

    state.deploy(STORE, "model_store")
    store = ModelStore()
    call = make_call(state, runtime, store, STORE)
    call(A, "init", registry_address=REGISTRY)
    return state, call


def submit(call, sender, round_id=1, weights_hash="0xabc", num_samples=800, **kw):
    return call(
        sender,
        "submit_model",
        round_id=round_id,
        weights_hash=weights_hash,
        num_samples=num_samples,
        **kw,
    )


class TestSubmission:
    def test_submit_records_metadata(self, env):
        _state, call = env
        record = submit(call, A, reported_accuracy=0.75, model_kind="simple_nn")
        assert record["author"] == A
        assert record["weights_hash"] == "0xabc"
        assert record["block_number"] == 5
        assert record["timestamp"] == 42.0
        assert record["model_kind"] == "simple_nn"

    def test_resubmission_same_round_reverts(self, env):
        _state, call = env
        submit(call, A)
        with pytest.raises(ContractRevertError, match="already submitted"):
            submit(call, A, weights_hash="0xother")

    def test_same_peer_multiple_rounds_ok(self, env):
        _state, call = env
        submit(call, A, round_id=1)
        submit(call, A, round_id=2)
        assert call(A, "total_submissions") == 2

    def test_validation_errors(self, env):
        _state, call = env
        with pytest.raises(ContractRevertError):
            submit(call, A, round_id=-1)
        with pytest.raises(ContractRevertError):
            submit(call, A, weights_hash="")
        with pytest.raises(ContractRevertError):
            submit(call, A, num_samples=0)


class TestRegistryGating:
    def test_member_can_submit(self, gated_env):
        _state, call = gated_env
        submit(call, A)

    def test_non_member_rejected(self, gated_env):
        _state, call = gated_env
        with pytest.raises(ContractRevertError, match="not a registered participant"):
            submit(call, B)


class TestViews:
    def test_round_submitters_sorted(self, env):
        _state, call = env
        submit(call, B)
        submit(call, A)
        assert call(A, "round_submitters", round_id=1) == sorted([A, B])

    def test_round_submissions_full_records(self, env):
        _state, call = env
        submit(call, A)
        submit(call, B, weights_hash="0xdef")
        records = call(A, "round_submissions", round_id=1)
        assert [r["author"] for r in records] == sorted([A, B])

    def test_submission_count(self, env):
        _state, call = env
        assert call(A, "submission_count", round_id=1) == 0
        submit(call, A)
        assert call(A, "submission_count", round_id=1) == 1

    def test_get_submission_missing_none(self, env):
        _state, call = env
        assert call(A, "get_submission", round_id=9, address=A) is None

    def test_rounds_isolated(self, env):
        _state, call = env
        submit(call, A, round_id=1)
        assert call(A, "round_submitters", round_id=2) == []


class TestNonRepudiation:
    def test_verify_authorship_true(self, env):
        _state, call = env
        submit(call, A, weights_hash="0xcommit")
        assert call(B, "verify_authorship", round_id=1, address=A, weights_hash="0xcommit")

    def test_verify_authorship_wrong_hash(self, env):
        _state, call = env
        submit(call, A, weights_hash="0xcommit")
        assert not call(B, "verify_authorship", round_id=1, address=A, weights_hash="0xforged")

    def test_verify_authorship_never_submitted(self, env):
        _state, call = env
        assert not call(B, "verify_authorship", round_id=1, address=A, weights_hash="0x1")
