"""Tests for the contract runtime: deployment, calls, revert, gas, nesting."""

import pytest

from repro.chain.crypto import KeyPair
from repro.chain.gas import GasMeter
from repro.chain.runtime import CallContext, Contract, ContractRuntime
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.errors import (
    ContractError,
    ContractNotFoundError,
    ContractRevertError,
    OutOfGasError,
)


class Counter(Contract):
    NAME = "counter"

    def init(self, ctx, start: int = 0):
        ctx.sstore("count", int(start))

    def increment(self, ctx, by: int = 1):
        ctx.require(by > 0, "by must be positive")
        value = int(ctx.sload("count", 0)) + by
        ctx.sstore("count", value)
        ctx.log("Incremented", by=by, value=value)
        return value

    def read(self, ctx):
        return int(ctx.sload("count", 0))

    def explode(self, ctx):
        ctx.sstore("side_effect", True)
        ctx.revert("boom")

    def spin(self, ctx):
        while True:  # burns gas until the meter trips
            ctx.sload("count")


class Caller(Contract):
    NAME = "caller"

    def init(self, ctx, target: str = ""):
        ctx.sstore("target", target)

    def bump_other(self, ctx):
        return ctx.call(ctx.sload("target"), "increment", by=5)

    def recurse(self, ctx):
        return ctx.call(ctx.contract_address, "recurse")


@pytest.fixture
def runtime():
    rt = ContractRuntime()
    rt.register(Counter)
    rt.register(Caller)
    return rt


@pytest.fixture
def alice():
    return KeyPair.from_seed("alice")


@pytest.fixture
def state(alice):
    ws = WorldState()
    ws.credit(alice.address, 10**12)
    return ws


def deploy(runtime, state, alice, contract, **args):
    tx = Transaction(sender=alice.address, to=None, nonce=state.nonce_of(alice.address), args={"contract": contract, **args})
    tx.sign_with(alice)
    meter = GasMeter(10**9)
    state.bump_nonce(alice.address)
    address, _logs = runtime.deploy(state, meter, tx, block_number=1, timestamp=1.0)
    return address


def call(runtime, state, alice, to, method, gas=10**9, **args):
    tx = Transaction(sender=alice.address, to=to, nonce=state.nonce_of(alice.address), method=method, args=args)
    tx.sign_with(alice)
    meter = GasMeter(gas)
    result, logs = runtime.execute_call(state, meter, tx, block_number=1, timestamp=1.0)
    return result, logs, meter


class TestRegistry:
    def test_register_and_query(self, runtime):
        assert runtime.is_registered("counter")
        assert "caller" in runtime.registered_names()

    def test_base_name_rejected(self, runtime):
        class Anonymous(Contract):
            pass

        with pytest.raises(ContractError):
            runtime.register(Anonymous)


class TestDeployment:
    def test_constructor_runs(self, runtime, state, alice):
        address = deploy(runtime, state, alice, "counter", start=10)
        assert state.account(address).storage["count"] == 10

    def test_address_deterministic(self, runtime, alice):
        a = runtime.contract_address(alice.address, 0)
        b = runtime.contract_address(alice.address, 0)
        c = runtime.contract_address(alice.address, 1)
        assert a == b != c

    def test_unknown_contract_raises(self, runtime, state, alice):
        with pytest.raises(ContractNotFoundError):
            deploy(runtime, state, alice, "nope")

    def test_missing_contract_arg_reverts(self, runtime, state, alice):
        tx = Transaction(sender=alice.address, to=None, nonce=0, args={})
        tx.sign_with(alice)
        with pytest.raises(ContractRevertError):
            runtime.deploy(state, GasMeter(10**9), tx, 1, 1.0)


class TestCalls:
    def test_call_mutates_storage(self, runtime, state, alice):
        address = deploy(runtime, state, alice, "counter")
        result, logs, _meter = call(runtime, state, alice, address, "increment", by=3)
        assert result == 3
        assert state.account(address).storage["count"] == 3
        assert logs[0].topic == "Incremented"
        assert logs[0].payload == {"by": 3, "value": 3}

    def test_require_reverts(self, runtime, state, alice):
        address = deploy(runtime, state, alice, "counter")
        with pytest.raises(ContractRevertError, match="by must be positive"):
            call(runtime, state, alice, address, "increment", by=0)

    def test_call_missing_contract(self, runtime, state, alice):
        with pytest.raises(ContractNotFoundError):
            call(runtime, state, alice, "0x" + "12" * 20, "read")

    def test_unknown_method_reverts(self, runtime, state, alice):
        address = deploy(runtime, state, alice, "counter")
        with pytest.raises(ContractRevertError, match="unknown method"):
            call(runtime, state, alice, address, "missing_method")

    def test_private_method_blocked(self, runtime, state, alice):
        address = deploy(runtime, state, alice, "counter")
        with pytest.raises(ContractRevertError):
            call(runtime, state, alice, address, "_storage")
        with pytest.raises(ContractRevertError):
            call(runtime, state, alice, address, "init")

    def test_out_of_gas(self, runtime, state, alice):
        address = deploy(runtime, state, alice, "counter")
        with pytest.raises(OutOfGasError):
            call(runtime, state, alice, address, "spin", gas=50_000)

    def test_gas_consumed_recorded(self, runtime, state, alice):
        address = deploy(runtime, state, alice, "counter")
        _result, _logs, meter = call(runtime, state, alice, address, "increment")
        assert meter.used > 0


class TestNestedCalls:
    def test_contract_to_contract(self, runtime, state, alice):
        counter = deploy(runtime, state, alice, "counter")
        caller = deploy(runtime, state, alice, "caller", target=counter)
        result, logs, _meter = call(runtime, state, alice, caller, "bump_other")
        assert result == 5
        assert state.account(counter).storage["count"] == 5
        # Nested logs bubble up to the outer receipt.
        assert any(log.topic == "Incremented" for log in logs)

    def test_recursion_depth_capped(self, runtime, state, alice):
        caller = deploy(runtime, state, alice, "caller")
        state.account(caller).storage["target"] = caller
        with pytest.raises(ContractRevertError, match="depth"):
            call(runtime, state, alice, caller, "recurse")


class TestReadOnlyCall:
    def test_reads_without_mutation(self, runtime, state, alice):
        address = deploy(runtime, state, alice, "counter", start=7)
        assert runtime.read_only_call(state, address, "read") == 7

    def test_writes_discarded(self, runtime, state, alice):
        address = deploy(runtime, state, alice, "counter")
        runtime.read_only_call(state, address, "increment", by=99)
        assert state.account(address).storage["count"] == 0

    def test_missing_contract(self, runtime, state):
        with pytest.raises(ContractNotFoundError):
            runtime.read_only_call(state, "0x" + "00" * 20, "read")
