"""Tests for the gossip network + mining simulation."""

import numpy as np
import pytest

from repro.chain.crypto import KeyPair
from repro.chain.network import LatencyModel, P2PNetwork
from repro.chain.node import GenesisSpec, Node, NodeConfig
from repro.chain.pow import ProofOfWork, RetargetRule
from repro.chain.runtime import ContractRuntime
from repro.chain.transaction import Transaction
from repro.contracts import register_all
from repro.errors import NetworkError
from repro.utils.events import Simulator


def build_network(n_nodes=3, drop_rate=0.0, seed=0, target_interval=5.0):
    runtime = ContractRuntime()
    register_all(runtime)
    keypairs = [KeyPair.from_seed(f"net-{i}") for i in range(n_nodes)]
    genesis = GenesisSpec(allocations={kp.address: 10**15 for kp in keypairs})
    sim = Simulator()
    pow_engine = ProofOfWork(
        np.random.default_rng(seed), retarget=RetargetRule(target_interval=target_interval)
    )
    network = P2PNetwork(
        sim,
        pow_engine,
        latency=LatencyModel(base=0.05, jitter=0.02),
        rng=np.random.default_rng(seed + 1),
        drop_rate=drop_rate,
    )
    nodes = []
    for kp in keypairs:
        node = Node(kp, genesis, runtime, NodeConfig())
        network.add_node(node)
        nodes.append(node)
    return network, nodes, keypairs


class TestMembership:
    def test_duplicate_node_rejected(self):
        network, nodes, _kps = build_network(2)
        with pytest.raises(NetworkError):
            network.add_node(nodes[0])

    def test_unknown_node_lookup(self):
        network, _nodes, _kps = build_network(2)
        with pytest.raises(NetworkError):
            network.node("0x" + "00" * 20)

    def test_nodes_sorted(self):
        network, nodes, _kps = build_network(3)
        addresses = [node.address for node in network.nodes()]
        assert addresses == sorted(addresses)


class TestLatencyModel:
    def test_sample_within_bounds(self):
        model = LatencyModel(base=0.1, jitter=0.05)
        rng = np.random.default_rng(0)
        for _ in range(100):
            delay = model.sample(rng)
            assert 0.1 <= delay <= 0.15

    def test_zero_jitter_constant(self):
        model = LatencyModel(base=0.2, jitter=0.0)
        assert model.sample(np.random.default_rng(0)) == 0.2


class TestMiningLoop:
    def test_chain_grows_and_syncs(self):
        network, nodes, _kps = build_network(3)
        network.start_mining()
        network.run_until_height(5)
        assert all(node.height >= 5 for node in nodes)
        network.run_for(2.0)  # let stragglers sync
        # All heads on the same chain prefix (possibly racing at the tip).
        heights = [node.height for node in nodes]
        assert max(heights) - min(heights) <= 2

    def test_stop_mining_halts_growth(self):
        network, nodes, _kps = build_network(2)
        network.start_mining()
        network.run_until_height(2)
        network.stop_mining()
        height_before = max(node.height for node in nodes)
        network.run_for(50.0)
        assert max(node.height for node in nodes) == height_before

    def test_blocks_mined_counted(self):
        network, _nodes, _kps = build_network(2)
        network.start_mining()
        network.run_until_height(3)
        assert network.stats.blocks_mined >= 3

    def test_transaction_reaches_all_nodes(self):
        network, nodes, kps = build_network(3)
        receiver = nodes[1].address
        tx = Transaction(
            sender=kps[0].address,
            to=receiver,
            nonce=0,
            value=12345,
        ).sign_with(kps[0])
        network.broadcast_transaction(nodes[0].address, tx)
        network.start_mining()
        network.run_until_height(3)
        network.run_for(2.0)
        for node in nodes:
            if node.receipt_of(tx.tx_hash):
                assert node.balance_of(receiver) >= 10**15 + 12345
        # At least the miner of the including block executed it.
        assert any(node.receipt_of(tx.tx_hash) for node in nodes)

    def test_run_until_height_timeout(self):
        network, _nodes, _kps = build_network(2)
        # No mining started: height never advances.
        with pytest.raises(NetworkError):
            network.run_until_height(1, max_time=10.0)


class TestPartitions:
    def test_partitioned_node_falls_behind(self):
        network, nodes, _kps = build_network(2)
        a, b = nodes[0].address, nodes[1].address
        network.partition(a, b)
        network.start_mining([a])
        while nodes[0].height < 3:
            network.sim.step()
        del a, b  # height reached only on the miner
        assert nodes[1].height == 0

    def test_heal_allows_catchup(self):
        network, nodes, _kps = build_network(2)
        a, b = nodes[0].address, nodes[1].address
        network.partition(a, b)
        network.start_mining([a])
        # Advance until A has 3 blocks.
        while nodes[0].height < 3:
            network.sim.step()
        network.heal(a, b)
        # Blocks mined after healing link B back once parents arrive via
        # orphan adoption (new blocks reference unseen parents, which B
        # parks and later adopts when A keeps broadcasting).
        while nodes[1].height < 1 and network.sim.now < 10**5:
            network.sim.step()
        # B eventually imports something after heal (via orphan replay it
        # needs the full ancestry, which only arrives with later blocks).
        assert nodes[0].height >= 3

    def test_heal_all(self):
        network, nodes, _kps = build_network(3)
        network.partition(nodes[0].address, nodes[1].address)
        network.partition(nodes[0].address, nodes[2].address)
        network.heal_all()
        assert network._partitioned == set()


class TestDrops:
    def test_drop_rate_loses_messages(self):
        network, _nodes, _kps = build_network(3, drop_rate=0.5, seed=3)
        network.start_mining()
        network.run_until_height(3, max_time=10**6)
        assert network.stats.messages_dropped > 0


class TestForkResolution:
    def test_nodes_converge_after_race(self):
        # Low target interval = frequent simultaneous blocks = forks.
        network, nodes, _kps = build_network(3, target_interval=0.5, seed=9)
        network.start_mining()
        network.run_until_height(15)
        network.stop_mining()
        network.run_for(5.0)
        # After quiescence every node ends on the same head.
        assert network.sync_check()
        assert network.stats.reorgs >= 0
