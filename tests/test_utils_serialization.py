"""Tests for canonical serialization."""

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.utils.serialization import (
    canonical_dumps,
    canonical_loads,
    decode_bytes,
    encode_bytes,
)


class TestBytesCodec:
    def test_round_trip(self):
        payload = bytes(range(256))
        assert decode_bytes(encode_bytes(payload)) == payload

    def test_invalid_base64_raises(self):
        with pytest.raises(SerializationError):
            decode_bytes("not!!base64??")


class TestCanonicalRoundTrip:
    def test_scalars(self):
        obj = {"i": 1, "f": 0.5, "s": "x", "b": True, "n": None}
        assert canonical_loads(canonical_dumps(obj)) == obj

    def test_bytes_round_trip(self):
        obj = {"blob": b"\x00\x01\x02"}
        assert canonical_loads(canonical_dumps(obj)) == obj

    def test_ndarray_round_trip(self):
        array = np.arange(12, dtype=np.float64).reshape(3, 4)
        restored = canonical_loads(canonical_dumps({"w": array}))["w"]
        np.testing.assert_array_equal(restored, array)
        assert restored.dtype == array.dtype
        assert restored.shape == array.shape

    def test_ndarray_dtypes_preserved(self):
        for dtype in (np.float32, np.int64, np.int32, np.uint8):
            array = np.ones(5, dtype=dtype)
            restored = canonical_loads(canonical_dumps({"w": array}))["w"]
            assert restored.dtype == dtype

    def test_nested_structure(self):
        obj = {"list": [1, {"deep": b"x"}], "empty": []}
        assert canonical_loads(canonical_dumps(obj)) == obj

    def test_tuple_becomes_list(self):
        assert canonical_loads(canonical_dumps({"t": (1, 2)})) == {"t": [1, 2]}

    def test_numpy_scalars_become_python(self):
        obj = {"i": np.int64(3), "f": np.float64(0.25), "b": np.bool_(True)}
        restored = canonical_loads(canonical_dumps(obj))
        assert restored == {"i": 3, "f": 0.25, "b": True}

    def test_non_contiguous_array_handled(self):
        array = np.arange(12).reshape(3, 4)[:, ::2]
        restored = canonical_loads(canonical_dumps({"w": array}))["w"]
        np.testing.assert_array_equal(restored, array)


class TestCanonicalDeterminism:
    def test_key_order_irrelevant(self):
        assert canonical_dumps({"a": 1, "b": 2}) == canonical_dumps({"b": 2, "a": 1})

    def test_equal_arrays_equal_bytes(self):
        a = canonical_dumps({"w": np.zeros((2, 2))})
        b = canonical_dumps({"w": np.zeros((2, 2))})
        assert a == b


class TestErrors:
    def test_unserializable_type_raises(self):
        with pytest.raises(SerializationError):
            canonical_dumps({"bad": object()})

    def test_invalid_payload_raises(self):
        with pytest.raises(SerializationError):
            canonical_loads(b"\xff\xfe not json")

    def test_set_not_supported(self):
        with pytest.raises(SerializationError):
            canonical_dumps({"s": {1, 2, 3}})
