"""Tests for world state."""

import pytest

from repro.chain.state import WorldState
from repro.errors import InsufficientFundsError

ALICE = "0x" + "aa" * 20
BOB = "0x" + "bb" * 20


class TestBalances:
    def test_unknown_account_zero_balance(self):
        state = WorldState()
        assert state.balance_of(ALICE) == 0
        assert not state.has_account(ALICE)  # read did not create it

    def test_credit_and_debit(self):
        state = WorldState()
        state.credit(ALICE, 100)
        state.debit(ALICE, 30)
        assert state.balance_of(ALICE) == 70

    def test_overdraft_rejected(self):
        state = WorldState()
        state.credit(ALICE, 10)
        with pytest.raises(InsufficientFundsError):
            state.debit(ALICE, 11)
        assert state.balance_of(ALICE) == 10  # unchanged

    def test_negative_amounts_rejected(self):
        state = WorldState()
        with pytest.raises(ValueError):
            state.credit(ALICE, -1)
        with pytest.raises(ValueError):
            state.debit(ALICE, -1)

    def test_transfer(self):
        state = WorldState()
        state.credit(ALICE, 100)
        state.transfer(ALICE, BOB, 40)
        assert state.balance_of(ALICE) == 60
        assert state.balance_of(BOB) == 40

    def test_transfer_insufficient(self):
        state = WorldState()
        with pytest.raises(InsufficientFundsError):
            state.transfer(ALICE, BOB, 1)


class TestNonces:
    def test_initial_nonce_zero(self):
        assert WorldState().nonce_of(ALICE) == 0

    def test_bump_nonce(self):
        state = WorldState()
        assert state.bump_nonce(ALICE) == 1
        assert state.bump_nonce(ALICE) == 2
        assert state.nonce_of(ALICE) == 2


class TestContracts:
    def test_deploy_marks_contract(self):
        state = WorldState()
        state.deploy(ALICE, "model_store", {"k": 1})
        account = state.account(ALICE)
        assert account.is_contract
        assert account.contract_name == "model_store"
        assert account.storage == {"k": 1}

    def test_plain_account_not_contract(self):
        state = WorldState()
        state.credit(ALICE, 1)
        assert not state.account(ALICE).is_contract


class TestSnapshots:
    def test_restore_reverts_changes(self):
        state = WorldState()
        state.credit(ALICE, 100)
        snap = state.snapshot()
        state.credit(ALICE, 900)
        state.deploy(BOB, "model_store")
        state.restore(snap)
        assert state.balance_of(ALICE) == 100
        assert not state.account(BOB).is_contract

    def test_snapshot_is_deep(self):
        state = WorldState()
        state.deploy(ALICE, "model_store", {"list": [1]})
        snap = state.snapshot()
        state.account(ALICE).storage["list"].append(2)
        state.restore(snap)
        assert state.account(ALICE).storage["list"] == [1]

    def test_copy_independent(self):
        state = WorldState()
        state.credit(ALICE, 10)
        clone = state.copy()
        clone.credit(ALICE, 5)
        assert state.balance_of(ALICE) == 10
        assert clone.balance_of(ALICE) == 15


class TestStateRoot:
    def test_equal_states_equal_roots(self):
        a, b = WorldState(), WorldState()
        for state in (a, b):
            state.credit(ALICE, 100)
            state.deploy(BOB, "model_store", {"x": 1})
        assert a.state_root() == b.state_root()

    def test_balance_changes_root(self):
        a, b = WorldState(), WorldState()
        a.credit(ALICE, 100)
        b.credit(ALICE, 101)
        assert a.state_root() != b.state_root()

    def test_storage_changes_root(self):
        a, b = WorldState(), WorldState()
        a.deploy(ALICE, "m", {"x": 1})
        b.deploy(ALICE, "m", {"x": 2})
        assert a.state_root() != b.state_root()

    def test_addresses_sorted(self):
        state = WorldState()
        state.credit(BOB, 1)
        state.credit(ALICE, 1)
        assert state.addresses() == sorted([ALICE, BOB])
