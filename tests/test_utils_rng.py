"""Tests for deterministic RNG stream management."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, derive_seed, rng_from


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "data") == derive_seed(7, "data")

    def test_labels_change_seed(self):
        assert derive_seed(7, "data") != derive_seed(7, "mining")

    def test_root_changes_seed(self):
        assert derive_seed(7, "data") != derive_seed(8, "data")

    def test_label_order_matters(self):
        assert derive_seed(7, "a", "b") != derive_seed(7, "b", "a")

    def test_multi_label_vs_joined(self):
        # ("ab",) and ("a", "b") must not collide.
        assert derive_seed(7, "ab") != derive_seed(7, "a", "b")

    def test_numeric_labels_ok(self):
        assert derive_seed(7, 0) != derive_seed(7, 1)

    def test_result_fits_64_bits(self):
        assert 0 <= derive_seed(2**62, "x") < 2**64


class TestRngFrom:
    def test_streams_reproducible(self):
        a = rng_from(42, "client", 0).normal(size=5)
        b = rng_from(42, "client", 0).normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_streams_independent(self):
        a = rng_from(42, "client", 0).normal(size=5)
        b = rng_from(42, "client", 1).normal(size=5)
        assert not np.allclose(a, b)


class TestRngFactory:
    def test_same_name_same_object(self):
        factory = RngFactory(1)
        assert factory.get("x") is factory.get("x")

    def test_different_names_different_objects(self):
        factory = RngFactory(1)
        assert factory.get("x") is not factory.get("y")

    def test_stream_continues(self):
        factory = RngFactory(1)
        first = factory.get("x").normal()
        second = factory.get("x").normal()
        assert first != second  # continuing, not restarting

    def test_spawn_changes_namespace(self):
        factory = RngFactory(1)
        child = factory.spawn("sub")
        a = factory.get("x").normal(size=3)
        b = child.get("x").normal(size=3)
        assert not np.allclose(a, b)

    def test_spawn_deterministic(self):
        a = RngFactory(1).spawn("sub").get("x").normal(size=3)
        b = RngFactory(1).spawn("sub").get("x").normal(size=3)
        np.testing.assert_array_equal(a, b)

    def test_integers_helper_in_range(self):
        factory = RngFactory(9)
        value = factory.integers("seed", low=5, high=10)
        assert 5 <= value < 10

    def test_stream_names_listing(self):
        factory = RngFactory(1)
        factory.get("b")
        factory.get("a", 1)
        assert list(factory.stream_names()) == [("a", "1"), ("b",)]

    def test_mixed_label_types_stable(self):
        factory = RngFactory(1)
        assert factory.get("client", 0) is factory.get("client", "0")


@pytest.mark.parametrize("seed", [0, 1, 2**31, 2**63 - 1])
def test_factory_accepts_wide_seed_range(seed):
    factory = RngFactory(seed)
    assert factory.get("x").random() is not None
