"""Property-based serial-equivalence suite for the scoring engine.

The determinism contract of :mod:`repro.fl.scoring`: for random cohorts
(3-12 updates, random tie clusters via shared weights, heterogeneous
sample counts), exhaustive and greedy searches through the engine return
*identical* results to the seed implementations in
:mod:`repro.fl.selection` — same members, same accuracies, byte-identical
chosen weights — and consume tie-break RNG draws identically (pinned by
comparing generator states after the search).  ``workers=2`` runs the
same cohorts through the process pool and must change nothing.

Hypothesis is derandomized so tier-1 is reproducible; the strategies
deliberately overweight exact ties (cluster members share weight bytes),
the regime where a wrong enumeration order or extra RNG draw shows up.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.dataset import Dataset
from repro.fl.aggregation import ModelUpdate
from repro.fl.scoring import CombinationEngine
from repro.fl.selection import (
    best_combination,
    enumerate_combinations,
    greedy_combination,
    threshold_filter,
)
from repro.nn.layers import Dense
from repro.nn.model import Sequential

#: Exhaustive comparisons cap the cohort here (2^n subsets); greedy runs
#: the full 3-12 range the engine is specified for.
EXHAUSTIVE_LIMIT = 6


def build_scratch():
    return Sequential([Dense(3, name="head")]).build(np.random.default_rng(0), (3,))


def build_test_set(seed: int) -> Dataset:
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(40, 3))
    y = rng.integers(0, 3, size=40)
    return Dataset(x, y)


@st.composite
def cohorts(draw, max_size: int = 12):
    """A random cohort with tie clusters.

    Draws ``n`` clients and assigns each to one of ``k <= n`` weight
    clusters; cluster members share byte-identical weights, so subsets
    across clusters frequently tie in accuracy — exercising the
    tie-break path and the content-addressed cache at once.
    """
    n = draw(st.integers(min_value=3, max_value=max_size))
    k = draw(st.integers(min_value=1, max_value=n))
    assignment = [draw(st.integers(min_value=0, max_value=k - 1)) for _ in range(n)]
    weights_seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(weights_seed)
    cluster_weights = [
        {
            "head/W": rng.normal(0.0, 1.0, size=(3, 3)),
            "head/b": rng.normal(0.0, 0.5, size=(3,)),
        }
        for _ in range(k)
    ]
    num_samples = [draw(st.integers(min_value=1, max_value=500)) for _ in range(n)]
    updates = [
        ModelUpdate(
            client_id=f"C{index:02d}",
            # Same cluster => same bytes (copied: mutation isolation).
            weights={key: value.copy() for key, value in cluster_weights[assignment[index]].items()},
            num_samples=num_samples[index],
        )
        for index in range(n)
    ]
    test_seed = draw(st.integers(min_value=0, max_value=2**16))
    return updates, test_seed


def assert_same_combination(reference, candidate) -> None:
    assert reference.members == candidate.members
    assert reference.accuracy == candidate.accuracy
    assert set(reference.weights) == set(candidate.weights)
    for key in reference.weights:
        np.testing.assert_array_equal(reference.weights[key], candidate.weights[key])


@pytest.mark.parametrize("workers", [0, 2])
class TestExhaustiveEquivalence:
    @settings(max_examples=12, deadline=None, derandomize=True)
    @given(data=cohorts(max_size=EXHAUSTIVE_LIMIT), rng_seed=st.integers(0, 2**16))
    def test_enumerate_and_best(self, workers, data, rng_seed):
        updates, test_seed = data
        model = build_scratch()
        test_set = build_test_set(test_seed)
        engine = CombinationEngine(model, test_set, workers=workers)

        reference = enumerate_combinations(updates, model, test_set)
        scored = engine.enumerate(updates)
        assert [(r.members, r.accuracy) for r in reference] == [
            (s.members, s.accuracy) for s in scored
        ]

        rng_ref = np.random.default_rng(rng_seed)
        rng_eng = np.random.default_rng(rng_seed)
        best_ref = best_combination(updates, model, test_set, rng=rng_ref)
        best_eng = engine.best(updates, rng=rng_eng)
        assert_same_combination(best_ref, best_eng)
        # Identical RNG consumption: one draw per multi-way tie, none
        # otherwise — the generators must land in the same state.
        assert rng_ref.bit_generator.state == rng_eng.bit_generator.state

    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(data=cohorts(max_size=EXHAUSTIVE_LIMIT), threshold=st.floats(0.0, 1.0))
    def test_threshold_filter(self, workers, data, threshold):
        updates, test_seed = data
        model = build_scratch()
        test_set = build_test_set(test_seed)
        engine = CombinationEngine(model, test_set, workers=workers)
        try:
            reference = threshold_filter(updates, model, test_set, threshold)
        except Exception as error:
            with pytest.raises(type(error)):
                engine.threshold_filter(updates, threshold)
            return
        kept = engine.threshold_filter(updates, threshold)
        assert [u.client_id for u in reference] == [u.client_id for u in kept]


@pytest.mark.parametrize("workers", [0, 2])
class TestGreedyEquivalence:
    @settings(max_examples=12, deadline=None, derandomize=True)
    @given(data=cohorts(max_size=12))
    def test_greedy(self, workers, data):
        updates, test_seed = data
        model = build_scratch()
        test_set = build_test_set(test_seed)
        # Subset-level workers only apply to enumerate; greedy runs the
        # same incremental arithmetic either way — parametrized anyway so
        # a future parallel greedy path inherits the contract.
        engine = CombinationEngine(model, test_set, workers=workers)
        reference = greedy_combination(updates, model, test_set)
        candidate = engine.greedy(updates)
        assert_same_combination(reference, candidate)

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(data=cohorts(max_size=8), seed_index=st.integers(0, 7))
    def test_greedy_with_seed_client(self, workers, data, seed_index):
        updates, test_seed = data
        model = build_scratch()
        test_set = build_test_set(test_seed)
        seed_client = updates[seed_index % len(updates)].client_id
        engine = CombinationEngine(model, test_set, workers=workers)
        reference = greedy_combination(updates, model, test_set, seed_client=seed_client)
        candidate = engine.greedy(updates, seed_client=seed_client)
        assert_same_combination(reference, candidate)


class TestModelStateInvariance:
    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(data=cohorts(max_size=EXHAUSTIVE_LIMIT))
    def test_search_leaves_model_untouched(self, data):
        updates, test_seed = data
        model = build_scratch()
        before = model.get_weights()
        engine = CombinationEngine(model, build_test_set(test_seed))
        engine.enumerate(updates)
        engine.greedy(updates)
        after = model.get_weights()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])
