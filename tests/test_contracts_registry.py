"""Tests for the participant registry contract."""

import pytest

from repro.chain.gas import GasMeter
from repro.chain.runtime import CallContext, ContractRuntime
from repro.chain.state import WorldState
from repro.contracts.registry import ParticipantRegistry
from repro.errors import ContractRevertError

ADMIN = "0x" + "01" * 20
PEER = "0x" + "02" * 20
OTHER = "0x" + "03" * 20
CONTRACT = "0x" + "cc" * 20


@pytest.fixture
def runtime():
    rt = ContractRuntime()
    rt.register(ParticipantRegistry)
    return rt


@pytest.fixture
def env(runtime):
    """(state, call) where call(sender, method, **args) executes directly."""
    state = WorldState()
    state.deploy(CONTRACT, "participant_registry")
    contract = ParticipantRegistry()

    def call(sender, method, **args):
        ctx = CallContext(
            state=state,
            meter=GasMeter(10**9),
            contract_address=CONTRACT,
            sender=sender,
            runtime=runtime,
        )
        return getattr(contract, method)(ctx, **args)

    call(ADMIN, "init", open_enrollment=True)
    return state, call


class TestRegistration:
    def test_self_register(self, env):
        _state, call = env
        record = call(PEER, "register", display_name="peer-2")
        assert record["address"] == PEER
        assert call(ADMIN, "is_member", address=PEER)
        assert call(ADMIN, "member_count") == 1

    def test_double_register_reverts(self, env):
        _state, call = env
        call(PEER, "register")
        with pytest.raises(ContractRevertError, match="already registered"):
            call(PEER, "register")

    def test_members_sorted(self, env):
        _state, call = env
        call(PEER, "register")
        call(OTHER, "register")
        assert call(ADMIN, "members") == sorted([PEER, OTHER])

    def test_closed_enrollment_blocks_register(self, env):
        _state, call = env
        call(ADMIN, "close_enrollment")
        with pytest.raises(ContractRevertError, match="enrollment closed"):
            call(PEER, "register")

    def test_close_enrollment_admin_only(self, env):
        _state, call = env
        with pytest.raises(ContractRevertError, match="admin only"):
            call(PEER, "close_enrollment")


class TestAdmit:
    def test_admin_admits(self, env):
        _state, call = env
        call(ADMIN, "admit", address=PEER, display_name="pre-registered")
        assert call(ADMIN, "is_member", address=PEER)

    def test_non_admin_cannot_admit(self, env):
        _state, call = env
        with pytest.raises(ContractRevertError, match="admin only"):
            call(PEER, "admit", address=OTHER)

    def test_admit_duplicate_reverts(self, env):
        _state, call = env
        call(PEER, "register")
        with pytest.raises(ContractRevertError, match="already registered"):
            call(ADMIN, "admit", address=PEER)


class TestBan:
    def test_ban_removes_member(self, env):
        _state, call = env
        call(PEER, "register")
        call(ADMIN, "ban", address=PEER, reason="abnormal models")
        assert not call(ADMIN, "is_member", address=PEER)
        assert call(ADMIN, "is_banned", address=PEER)
        assert call(ADMIN, "member_count") == 0

    def test_banned_cannot_reregister(self, env):
        _state, call = env
        call(ADMIN, "ban", address=PEER)
        with pytest.raises(ContractRevertError, match="banned"):
            call(PEER, "register")

    def test_ban_admin_only(self, env):
        _state, call = env
        with pytest.raises(ContractRevertError, match="admin only"):
            call(PEER, "ban", address=OTHER)

    def test_ban_unregistered_address(self, env):
        _state, call = env
        call(ADMIN, "ban", address=OTHER)  # never registered: still banned
        assert call(ADMIN, "is_banned", address=OTHER)
        assert call(ADMIN, "member_count") == 0


class TestViews:
    def test_admin_recorded(self, env):
        _state, call = env
        assert call(PEER, "admin") == ADMIN

    def test_unknown_not_member_not_banned(self, env):
        _state, call = env
        assert not call(ADMIN, "is_member", address=OTHER)
        assert not call(ADMIN, "is_banned", address=OTHER)
