"""Tests for the cached WeightArchive and the malformed-payload guard."""

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.nn.serialize import (
    SERIALIZATION_STATS,
    WeightArchive,
    as_archive,
    weights_from_bytes,
    weights_hash,
    weights_size_bytes,
    weights_to_bytes,
)
from repro.utils.hashing import keccak_like
from repro.utils.serialization import canonical_dumps


@pytest.fixture
def weights(rng):
    return {"a/W": rng.normal(size=(8, 4)), "a/b": rng.normal(size=(4,))}


class TestMalformedPayloadGuard:
    """Regression for the always-False chained comparison.

    The seed guard read ``"weights" in decoded is None`` — a chained
    comparison ``("weights" in decoded) and (decoded is None)`` that can
    never hold, so a dict payload missing the ``weights`` key slipped past
    the archive-shape check and surfaced as a later, misleading error.
    """

    def test_dict_without_weights_key_rejected_as_non_archive(self):
        payload = canonical_dumps({"version": 1})
        with pytest.raises(SerializationError, match="not a weight archive"):
            weights_from_bytes(payload)

    def test_guard_fires_before_version_check(self):
        # Missing 'weights' must be reported as a non-archive even when the
        # version is also wrong (on the seed this reached the version check).
        payload = canonical_dumps({"version": 999})
        with pytest.raises(SerializationError, match="not a weight archive"):
            weights_from_bytes(payload)

    def test_non_dict_payload_rejected(self):
        with pytest.raises(SerializationError, match="not a weight archive"):
            weights_from_bytes(canonical_dumps([1, 2, 3]))

    def test_wrong_version_still_rejected(self, weights):
        payload = canonical_dumps({"version": 999, "weights": weights})
        with pytest.raises(SerializationError, match="unsupported weight format"):
            weights_from_bytes(payload)

    def test_non_dict_weights_value_still_rejected(self):
        payload = canonical_dumps({"version": 1, "weights": [1, 2]})
        with pytest.raises(SerializationError, match="missing 'weights' dict"):
            weights_from_bytes(payload)


class TestWeightArchive:
    def test_payload_hash_size_share_one_encoding(self, weights):
        SERIALIZATION_STATS.reset()
        archive = WeightArchive.from_weights(weights)
        assert not archive.encoded
        payload, digest, size = archive.payload, archive.hash, archive.size
        assert SERIALIZATION_STATS.encodes == 1
        # Re-reads stay free.
        archive.payload, archive.hash, archive.size
        assert SERIALIZATION_STATS.encodes == 1
        assert payload == weights_to_bytes(weights)
        assert digest == keccak_like(payload)
        assert size == len(payload)

    def test_matches_free_functions(self, weights):
        archive = WeightArchive.from_weights(weights)
        assert archive.hash == weights_hash(weights)
        assert archive.size == weights_size_bytes(weights)

    def test_from_bytes_decodes_once(self, weights):
        payload = weights_to_bytes(weights)
        SERIALIZATION_STATS.reset()
        archive = WeightArchive.from_bytes(payload)
        assert archive.encoded  # bytes given up front
        first = archive.weights
        second = archive.weights
        assert first is second
        assert SERIALIZATION_STATS.decodes == 1
        np.testing.assert_array_equal(first["a/W"], weights["a/W"])

    def test_round_trip(self, weights):
        restored = WeightArchive.from_bytes(WeightArchive.from_weights(weights).payload)
        for key in weights:
            np.testing.assert_array_equal(restored.weights[key], weights[key])

    def test_copy_weights_detached(self, weights):
        archive = WeightArchive.from_weights(weights)
        copy = archive.copy_weights()
        copy["a/W"] += 1.0
        np.testing.assert_array_equal(archive.weights["a/W"], weights["a/W"])

    def test_as_archive_passthrough(self, weights):
        archive = WeightArchive.from_weights(weights)
        assert as_archive(archive) is archive
        assert as_archive(weights).hash == archive.hash

    def test_empty_archive_rejected(self):
        with pytest.raises(SerializationError):
            WeightArchive()

    def test_inconsistent_pair_unrepresentable(self, weights):
        # Supplying both views could smuggle a decoded dict that does not
        # match the bytes (cache-poisoning vector); the constructor
        # refuses so every archive has a single source of truth.
        payload = weights_to_bytes(weights)
        with pytest.raises(SerializationError, match="exactly one"):
            WeightArchive(weights=weights, payload=payload)

    def test_non_ndarray_weight_rejected(self):
        with pytest.raises(SerializationError):
            WeightArchive.from_weights({"w": [1, 2, 3]}).payload


class TestCodecVersions:
    """The binary v2 codec is the default; v1 payloads must keep decoding."""

    def test_v1_payload_still_decodes(self, weights):
        payload = weights_to_bytes(weights, version=1)
        restored = weights_from_bytes(payload)
        for key in weights:
            np.testing.assert_array_equal(restored[key], weights[key])

    def test_v1_archive_from_bytes(self, weights):
        archive = WeightArchive.from_bytes(weights_to_bytes(weights, version=1))
        np.testing.assert_array_equal(archive.weights["a/W"], weights["a/W"])

    def test_v2_round_trip_preserves_dtype_and_shape(self, rng):
        weights = {
            "f32": rng.normal(size=(3, 5)).astype(np.float32),
            "i64": np.arange(7, dtype=np.int64),
            "scalarish": np.array(3.5),
        }
        restored = weights_from_bytes(weights_to_bytes(weights))
        for key, value in weights.items():
            assert restored[key].dtype == value.dtype
            assert restored[key].shape == value.shape
            np.testing.assert_array_equal(restored[key], value)

    def test_v2_deterministic(self, weights):
        assert weights_to_bytes(weights) == weights_to_bytes(dict(reversed(list(weights.items()))))

    def test_v2_smaller_than_v1(self, weights):
        # Raw buffers beat base64-in-JSON by a constant factor (~25%+).
        assert len(weights_to_bytes(weights)) < 0.8 * len(weights_to_bytes(weights, version=1))

    def test_unknown_encode_version_rejected(self, weights):
        with pytest.raises(SerializationError, match="unknown weight format"):
            weights_to_bytes(weights, version=3)

    def test_truncated_v2_rejected(self, weights):
        payload = weights_to_bytes(weights)
        with pytest.raises(SerializationError, match="truncated"):
            weights_from_bytes(payload[:-8])

    def test_trailing_garbage_rejected(self, weights):
        payload = weights_to_bytes(weights)
        with pytest.raises(SerializationError, match="trailing"):
            weights_from_bytes(payload + b"\x00")

    def test_object_dtype_rejected_at_encode(self):
        bad = {"w": np.array([{"a": 1}, None], dtype=object)}
        with pytest.raises(SerializationError, match="non-serializable dtype"):
            weights_to_bytes(bad)

    def test_forged_object_dtype_header_raises_serialization_error(self):
        # A hand-forged header declaring an undecodable dtype must surface
        # as SerializationError (the module's error contract), not a raw
        # numpy ValueError from frombuffer.
        import json

        from repro.nn import serialize

        header = json.dumps(
            {"version": 2, "entries": [{"name": "w", "dtype": "object", "shape": [2]}]},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        forged = (
            serialize._V2_MAGIC
            + len(header).to_bytes(serialize._V2_HEADER_LEN_BYTES, "big")
            + header
            + b"\x00" * 16
        )
        with pytest.raises(SerializationError, match="undecodable v2 buffer"):
            weights_from_bytes(forged)
