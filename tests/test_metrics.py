"""Tests for recorders, table formatters, figure series, timing summaries."""

import numpy as np
import pytest

from repro.metrics.figures import (
    FigureSeries,
    combination_figure_series,
    render_ascii_chart,
    vanilla_figure_series,
)
from repro.metrics.recorder import RoundRecorder
from repro.metrics.tables import (
    format_combination_table,
    format_table1,
    render_table,
    series_row,
)
from repro.metrics.timing import summarize_durations


class TestRecorder:
    def test_series_ordered_by_round(self):
        recorder = RoundRecorder()
        recorder.record(2, "A", accuracy=0.5)
        recorder.record(1, "A", accuracy=0.3)
        assert recorder.series("A", "accuracy") == [0.3, 0.5]

    def test_entities_and_rounds(self):
        recorder = RoundRecorder()
        recorder.record(1, "B", x=1.0)
        recorder.record(2, "A", x=2.0)
        assert recorder.entities() == ["A", "B"]
        assert recorder.rounds() == [1, 2]

    def test_last_and_mean(self):
        recorder = RoundRecorder()
        recorder.record(1, "A", acc=0.2)
        recorder.record(2, "A", acc=0.4)
        assert recorder.last("A", "acc") == 0.4
        assert recorder.mean("A", "acc") == pytest.approx(0.3)

    def test_missing_metric_none(self):
        recorder = RoundRecorder()
        assert recorder.last("A", "acc") is None
        assert recorder.mean("A", "acc") is None

    def test_as_rows_sorted(self):
        recorder = RoundRecorder()
        recorder.record(2, "B", v=1.0)
        recorder.record(1, "A", v=2.0)
        rows = recorder.as_rows()
        assert rows[0]["round_id"] == 1
        assert rows[0]["entity"] == "A"


class TestTables:
    def test_series_row_formats(self):
        row = series_row("label", [0.12345, 0.5])
        assert row == ["label", "0.1235", "0.5000"]

    def test_render_table_aligns(self):
        text = render_table("T", ["col_a", "b"], [["1", "22"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line.rstrip()) <= len(lines[1]) + 2 for line in lines)
        assert "col_a" in lines[1]

    def test_format_table1_structure(self):
        series = {
            "A": {"consider": [0.1, 0.2], "not_consider": [0.15, 0.25]},
            "B": {"consider": [0.1, 0.2], "not_consider": [0.15, 0.25]},
        }
        text = format_table1("Simple NN", series)
        assert "Consider" in text
        assert "Not consider" in text
        assert "0.2500" in text
        assert text.count("Simple NN") == 4  # two clients x two agg types

    def test_format_combination_table_row_order(self):
        series = {
            "A,B,C": [0.3],
            "A": [0.1],
            "B,C": [0.25],
            "A,B": [0.2],
            "A,C": [0.22],
        }
        text = format_combination_table("Simple NN", "A", series)
        lines = [line for line in text.splitlines() if line.startswith("Simple NN")]
        order = [line.split()[2] for line in lines]
        # Solo self first, pairs with self, other pair, then the full set.
        assert order[0] == "A"
        assert order[-1] == "A,B,C"
        assert set(order[1:3]) == {"A,B", "A,C"}
        assert order[3] == "B,C"


class TestFigures:
    def test_vanilla_series_structure(self):
        data = {"A": {"consider": [0.1, 0.2], "not_consider": [0.1, 0.3]}}
        figures = vanilla_figure_series(data)
        assert "Client A" in figures
        labels = [series.label for series in figures["Client A"]]
        assert labels == ["consider", "not_consider"]

    def test_combination_series_sorted_by_size(self):
        data = {"A": {"A,B,C": [0.3], "A": [0.1], "B,C": [0.2]}}
        figures = combination_figure_series(data)
        labels = [series.label for series in figures["Client A"]]
        assert labels == ["A", "B,C", "A,B,C"]

    def test_figure_series_final(self):
        assert FigureSeries("x", [0.1, 0.5]).final() == 0.5
        assert np.isnan(FigureSeries("empty").final())

    def test_render_ascii_chart(self):
        chart = render_ascii_chart(
            [FigureSeries("up", [0.0, 0.5, 1.0]), FigureSeries("flat", [0.5, 0.5, 0.5])],
            title="demo",
        )
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert any("up" in line for line in lines)
        assert "scale:" in lines[-1]

    def test_render_empty(self):
        assert "(no data)" in render_ascii_chart([])


class TestTiming:
    def test_summary_statistics(self):
        summary = summarize_durations([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_empty_summary_nan(self):
        summary = summarize_durations([])
        assert summary.count == 0
        assert np.isnan(summary.mean)

    def test_as_dict(self):
        summary = summarize_durations([2.0])
        payload = summary.as_dict()
        assert payload["count"] == 1
        assert payload["mean"] == 2.0
