"""Tests for the full node: execution, mining, import, reorgs."""

import pytest

from repro.chain.crypto import KeyPair
from repro.chain.gas import intrinsic_gas
from repro.chain.node import GenesisSpec, Node, NodeConfig
from repro.chain.transaction import Transaction
from repro.errors import InvalidBlockError, MempoolError


@pytest.fixture
def alice(keypairs):
    return keypairs["A"]


@pytest.fixture
def bob(keypairs):
    return keypairs["B"]


def transfer_tx(node, sender_kp, to, value, gas_price=1):
    tx = Transaction(
        sender=sender_kp.address,
        to=to,
        nonce=node.next_nonce_for(sender_kp.address),
        value=value,
        gas_price=gas_price,
    )
    return tx.sign_with(sender_kp)


def mine_one(node, timestamp=None):
    """Build, seal (difficulty 1), and import one block."""
    ts = timestamp if timestamp is not None else node.head.header.timestamp + 13.0
    block = node.build_block_candidate(ts, difficulty=1)
    node.seal_and_import(block, nonce=0)
    return block


class TestGenesis:
    def test_nodes_share_genesis(self, three_nodes):
        hashes = {node.head.block_hash for node in three_nodes.values()}
        assert len(hashes) == 1

    def test_allocations_present(self, node, alice):
        assert node.balance_of(alice.address) == 10**15


class TestTransfers:
    def test_value_moves(self, node, alice, bob):
        node.submit_transaction(transfer_tx(node, alice, bob.address, 1000))
        mine_one(node)
        assert node.balance_of(bob.address) == 10**15 + 1000

    def test_fees_paid_to_miner(self, node, alice, bob):
        # The node itself (A) mines, so A pays fees to itself; send from B.
        tx = transfer_tx(node, bob, alice.address, 0, gas_price=3)
        node.submit_transaction(tx)
        before_b = node.balance_of(bob.address)
        mine_one(node)
        receipt = node.receipt_of(tx.tx_hash)
        assert receipt is not None and receipt.success
        fee = receipt.gas_used * 3
        assert receipt.gas_used == intrinsic_gas(b"")
        assert node.balance_of(bob.address) == before_b - fee

    def test_block_reward_credited(self, node, alice):
        before = node.balance_of(alice.address)
        mine_one(node)
        assert node.balance_of(alice.address) == before + node.config.block_reward

    def test_nonce_advances(self, node, alice, bob):
        node.submit_transaction(transfer_tx(node, alice, bob.address, 1))
        node.submit_transaction(transfer_tx(node, alice, bob.address, 2))
        mine_one(node)
        assert node.nonce_of(alice.address) == 2

    def test_next_nonce_counts_pending(self, node, alice, bob):
        assert node.next_nonce_for(alice.address) == 0
        node.submit_transaction(transfer_tx(node, alice, bob.address, 1))
        assert node.next_nonce_for(alice.address) == 1

    def test_mempool_cleared_after_mining(self, node, alice, bob):
        node.submit_transaction(transfer_tx(node, alice, bob.address, 1))
        assert len(node.mempool) == 1
        mine_one(node)
        assert len(node.mempool) == 0


class TestContracts:
    def test_deploy_and_call_via_blocks(self, node, alice):
        deploy = Transaction(
            sender=alice.address,
            to=None,
            nonce=node.next_nonce_for(alice.address),
            args={"contract": "participant_registry", "open_enrollment": True},
        ).sign_with(alice)
        node.submit_transaction(deploy)
        mine_one(node)
        receipt = node.receipt_of(deploy.tx_hash)
        assert receipt.success
        registry = receipt.contract_address
        assert node.has_contract(registry)

        register = Transaction(
            sender=alice.address,
            to=registry,
            nonce=node.next_nonce_for(alice.address),
            method="register",
            args={"display_name": "A"},
        ).sign_with(alice)
        node.submit_transaction(register)
        mine_one(node)
        assert node.receipt_of(register.tx_hash).success
        assert node.call_contract(registry, "is_member", address=alice.address)

    def test_reverted_call_consumes_nonce_but_rolls_back(self, node, alice):
        deploy = Transaction(
            sender=alice.address,
            to=None,
            nonce=0,
            args={"contract": "participant_registry", "open_enrollment": False},
        ).sign_with(alice)
        node.submit_transaction(deploy)
        mine_one(node)
        registry = node.receipt_of(deploy.tx_hash).contract_address

        register = Transaction(
            sender=alice.address,
            to=registry,
            nonce=node.next_nonce_for(alice.address),
            method="register",
            args={},
        ).sign_with(alice)
        node.submit_transaction(register)
        mine_one(node)
        receipt = node.receipt_of(register.tx_hash)
        assert receipt.failed
        assert "enrollment closed" in receipt.revert_reason
        assert node.nonce_of(alice.address) == 2  # nonce still consumed
        assert not node.call_contract(registry, "is_member", address=alice.address)


class TestBlockImport:
    def test_peer_accepts_mined_block(self, three_nodes, alice, bob):
        a, b = three_nodes["A"], three_nodes["B"]
        a.submit_transaction(transfer_tx(a, alice, bob.address, 500))
        block = mine_one(a)
        b.import_block(block)
        assert b.head.block_hash == block.block_hash
        assert b.balance_of(bob.address) == 10**15 + 500

    def test_tampered_block_rejected(self, three_nodes, alice, bob):
        a, b = three_nodes["A"], three_nodes["B"]
        a.submit_transaction(transfer_tx(a, alice, bob.address, 500))
        block = mine_one(a)
        block.transactions[0].value = 999_999  # body no longer matches root
        with pytest.raises(InvalidBlockError):
            b.import_block(block)

    def test_orphan_block_adopted_when_parent_arrives(self, three_nodes):
        a, b = three_nodes["A"], three_nodes["B"]
        block1 = mine_one(a)
        block2 = mine_one(a)
        b.import_block(block2)  # parent unknown: parked
        assert b.height == 0
        b.import_block(block1)  # parent arrives: both applied
        assert b.height == 2

    def test_timestamp_must_increase(self, node):
        block = node.build_block_candidate(node.head.header.timestamp + 1.0, difficulty=1)
        block.header.timestamp = node.head.header.timestamp  # violate rule
        block.header.tx_root = block.compute_tx_root()
        with pytest.raises(InvalidBlockError):
            node.import_block(block)

    def test_state_root_mismatch_detected(self, node, alice, bob):
        block = node.build_block_candidate(13.0, difficulty=1)
        block.header.state_root = "0x" + "de" * 32
        with pytest.raises(InvalidBlockError):
            node.seal_and_import(block, nonce=0)

    def test_state_root_mismatch_leaves_node_consistent(self, node, alice, bob):
        # A rejected block must not become the head: state and store stay
        # on the old branch and the node keeps mining.
        tx = transfer_tx(node, alice, bob.address, 5)
        node.submit_transaction(tx)
        bad = node.build_block_candidate(13.0, difficulty=1)
        bad.header.state_root = "0x" + "de" * 32
        with pytest.raises(InvalidBlockError):
            node.seal_and_import(bad, nonce=0)
        assert node.height == 0
        assert node.head.block_hash == node.store.genesis_hash
        assert node.balance_of(bob.address) == 10**15
        assert tx.tx_hash in node.mempool  # not consumed by the bad block
        good = mine_one(node, timestamp=14.0)
        assert node.head.block_hash == good.block_hash
        assert node.balance_of(bob.address) == 10**15 + 5

    def test_state_root_mismatch_mid_reorg_restores_old_branch(
        self, three_nodes, alice, bob
    ):
        # B's heavier branch ends in a corrupted block: A must re-execute
        # its rolled-back branch and stay on it, store and state agreeing.
        a, b = three_nodes["A"], three_nodes["B"]
        a.submit_transaction(transfer_tx(a, alice, bob.address, 777))
        block_a = mine_one(a)
        b1, b2 = mine_one(b), mine_one(b)
        b2.header.state_root = "0x" + "de" * 32
        b2.header.tx_root = b2.compute_tx_root()
        a.import_block(b1)
        with pytest.raises(InvalidBlockError):
            a.import_block(b2)
        assert a.head.block_hash == block_a.block_hash
        assert a.balance_of(bob.address) == 10**15 + 777
        assert a.receipt_of(a.store.get(block_a.block_hash).transactions[0].tx_hash)


class TestReorgs:
    def test_reorg_replays_state(self, three_nodes, alice, bob):
        a, b = three_nodes["A"], three_nodes["B"]
        # A mines one block with a transfer; B mines two empty heavier blocks.
        a.submit_transaction(transfer_tx(a, alice, bob.address, 777))
        block_a = mine_one(a)

        block_b1 = mine_one(b)
        block_b2 = mine_one(b)

        # A sees B's branch: total difficulty 2 > 1, must reorg.
        a.import_block(block_b1)
        reorg = a.import_block(block_b2)
        assert a.head.block_hash == block_b2.block_hash
        assert a.reorgs_seen == 1
        # The transfer was rolled back with the block; B holds only its
        # two block rewards on the new branch.
        assert a.balance_of(bob.address) == 10**15 + 2 * a.config.block_reward
        del block_a, reorg

    def test_transactions_return_to_mempool_semantics(self, three_nodes, alice, bob):
        # After a reorg drops a tx'd block, stale txs must not break the pool.
        a, b = three_nodes["A"], three_nodes["B"]
        tx = transfer_tx(a, alice, bob.address, 1)
        a.submit_transaction(tx)
        mine_one(a)
        b1, b2 = mine_one(b), mine_one(b)
        a.import_block(b1)
        a.import_block(b2)
        # tx is no longer mined; resubmitting is allowed.
        try:
            a.submit_transaction(tx)
        except MempoolError:
            pytest.fail("valid tx rejected after reorg")


class TestStateHistory:
    def test_reorg_without_journal_marks_replays(self, keypairs, genesis_spec, runtime):
        # keep_state_snapshots=False keeps no marks: reorgs rebuild state
        # by replaying from genesis and must reach the same balances.
        a = Node(keypairs["A"], genesis_spec, runtime, NodeConfig(keep_state_snapshots=False))
        b = Node(keypairs["B"], genesis_spec, runtime, NodeConfig())
        a.submit_transaction(transfer_tx(a, keypairs["A"], keypairs["B"].address, 777))
        mine_one(a)
        b1, b2 = mine_one(b), mine_one(b)
        a.import_block(b1)
        a.import_block(b2)
        assert a.head.block_hash == b2.block_hash
        assert a.balance_of(keypairs["B"].address) == 10**15 + 2 * a.config.block_reward

    def test_pruned_history_falls_back_to_replay(self, keypairs, genesis_spec, runtime):
        # state_history=1 prunes marks quickly; a reorg past the pruned
        # window replays from genesis instead of rolling the journal back.
        a = Node(keypairs["A"], genesis_spec, runtime, NodeConfig(state_history=1))
        b = Node(keypairs["B"], genesis_spec, runtime, NodeConfig())
        for _ in range(4):
            mine_one(a)
        assert len(a._state_marks) <= 3  # pruned to the history window
        fork = [mine_one(b) for _ in range(5)]  # heavier branch from genesis
        for block in fork:
            a.import_block(block)
        assert a.head.block_hash == fork[-1].block_hash
        assert a.balance_of(keypairs["B"].address) == 10**15 + 5 * a.config.block_reward
        assert a.height == 5

    def test_journal_pruned_to_history_window(self, node, alice, bob):
        node.config.state_history = 2
        for _ in range(6):
            node.submit_transaction(transfer_tx(node, alice, bob.address, 1))
            mine_one(node)
        # Marks exist only for the last two blocks (plus nothing older),
        # and the journal holds only their undo records.
        numbers = sorted(node.store.get(bh).number for bh in node._state_marks)
        assert numbers == [4, 5, 6]
        assert node.state.journal_size() < 60


class TestPowVerification:
    def test_verify_pow_mode_rejects_unsealed(self, keypairs, genesis_spec, runtime):
        node = Node(keypairs["A"], genesis_spec, runtime, NodeConfig(verify_pow=True))
        block = node.build_block_candidate(13.0, difficulty=2**20)
        block.header.nonce = 0
        if not __import__("repro.chain.pow", fromlist=["check_pow"]).check_pow(block.header):
            with pytest.raises(InvalidBlockError):
                node.import_block(block)

    def test_verify_pow_mode_accepts_mined(self, keypairs, genesis_spec, runtime):
        from repro.chain.pow import mine_header

        node = Node(keypairs["A"], genesis_spec, runtime, NodeConfig(verify_pow=True))
        block = node.build_block_candidate(13.0, difficulty=8)
        assert mine_header(block.header, max_attempts=100_000)
        node.import_block(block)
        assert node.height == 1
