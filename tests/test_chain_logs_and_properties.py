"""Node event-log queries plus hypothesis properties for the chain store."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.block import Block, BlockHeader, make_genesis
from repro.chain.chainstore import ChainStore
from repro.chain.crypto import KeyPair
from repro.chain.node import GenesisSpec, Node, NodeConfig
from repro.chain.runtime import ContractRuntime
from repro.chain.transaction import Transaction
from repro.contracts import register_all


# ---------------------------------------------------------------------------
# get_logs
# ---------------------------------------------------------------------------


@pytest.fixture
def logging_node():
    """A node with a registry deployed and two registrations mined."""
    runtime = ContractRuntime()
    register_all(runtime)
    alice = KeyPair.from_seed("log-alice")
    bob = KeyPair.from_seed("log-bob")
    genesis = GenesisSpec(allocations={alice.address: 10**15, bob.address: 10**15})
    node = Node(alice, genesis, runtime, NodeConfig())

    deploy = Transaction(
        sender=alice.address, to=None, nonce=0, args={"contract": "participant_registry"}
    ).sign_with(alice)
    node.submit_transaction(deploy)
    block = node.build_block_candidate(13.0, difficulty=1)
    node.seal_and_import(block, nonce=0)
    registry = node.receipt_of(deploy.tx_hash).contract_address

    for kp, name in ((alice, "A"), (bob, "B")):
        tx = Transaction(
            sender=kp.address,
            to=registry,
            nonce=node.next_nonce_for(kp.address),
            method="register",
            args={"display_name": name},
        ).sign_with(kp)
        node.submit_transaction(tx)
    block = node.build_block_candidate(26.0, difficulty=1)
    node.seal_and_import(block, nonce=0)
    return node, registry, alice, bob


class TestGetLogs:
    def test_all_events(self, logging_node):
        node, registry, _alice, _bob = logging_node
        logs = node.get_logs(address=registry)
        assert len(logs) == 2
        assert all(entry.topic == "ParticipantRegistered" for entry in logs)

    def test_topic_filter(self, logging_node):
        node, registry, _a, _b = logging_node
        assert node.get_logs(address=registry, topic="ParticipantBanned") == []
        assert len(node.get_logs(topic="ParticipantRegistered")) == 2

    def test_block_range_filter(self, logging_node):
        node, registry, _a, _b = logging_node
        assert node.get_logs(address=registry, from_block=0, to_block=1) == []
        assert len(node.get_logs(address=registry, from_block=2)) == 2

    def test_payload_contents(self, logging_node):
        node, registry, alice, _bob = logging_node
        logs = node.get_logs(address=registry)
        addresses = {entry.payload["address"] for entry in logs}
        assert alice.address in addresses

    def test_range_query_bounds(self, logging_node):
        node, registry, _a, _b = logging_node
        # The registrations landed in block 2; a window around it matches
        # exactly, windows outside it match nothing, and out-of-range
        # bounds are clamped instead of erroring.
        assert len(node.get_logs(address=registry, from_block=2, to_block=2)) == 2
        assert node.get_logs(address=registry, from_block=0, to_block=0) == []
        assert node.get_logs(address=registry, from_block=3, to_block=50) == []
        assert len(node.get_logs(address=registry, from_block=-7, to_block=99)) == 2

    def test_range_query_after_more_blocks(self, logging_node):
        node, registry, alice, _b = logging_node
        # Mine two empty blocks; a tip-anchored window stays empty while
        # the historical window still answers from the receipts index.
        for offset in (40.0, 53.0):
            block = node.build_block_candidate(offset, difficulty=1)
            node.seal_and_import(block, nonce=0)
        assert node.get_logs(address=registry, from_block=node.height, to_block=node.height) == []
        assert len(node.get_logs(address=registry, from_block=2, to_block=2)) == 2

    def test_failed_tx_logs_excluded(self, logging_node):
        node, registry, alice, _bob = logging_node
        # Duplicate registration reverts; its logs must not appear.
        tx = Transaction(
            sender=alice.address,
            to=registry,
            nonce=node.next_nonce_for(alice.address),
            method="register",
            args={},
        ).sign_with(alice)
        node.submit_transaction(tx)
        block = node.build_block_candidate(39.0, difficulty=1)
        node.seal_and_import(block, nonce=0)
        assert node.receipt_of(tx.tx_hash).failed
        assert len(node.get_logs(address=registry)) == 2


# ---------------------------------------------------------------------------
# ChainStore properties under random fork topologies
# ---------------------------------------------------------------------------


def _child(parent: Block, difficulty: int, tag: str) -> Block:
    header = BlockHeader(
        parent_hash=parent.block_hash,
        number=parent.number + 1,
        timestamp=parent.header.timestamp + 1.0,
        miner="0x" + "aa" * 20,
        difficulty=difficulty,
        tx_root="0x" + "00" * 32,
        state_root="0x" + "00" * 32,
        extra=tag,
    )
    return Block(header=header)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10),   # parent index into inserted blocks
            st.integers(min_value=1, max_value=5),    # difficulty
        ),
        min_size=1,
        max_size=25,
    )
)
@settings(max_examples=60)
def test_chainstore_head_is_heaviest_tip(insertions):
    """After any insertion sequence, the head has maximal total difficulty
    and the canonical chain is a consistent parent-linked path."""
    genesis = make_genesis("0x" + "ff" * 32)
    store = ChainStore(genesis)
    blocks = [genesis]
    for index, (parent_choice, difficulty) in enumerate(insertions):
        parent = blocks[parent_choice % len(blocks)]
        block = _child(parent, difficulty, tag=f"b{index}")
        store.add(block)
        blocks.append(block)

    head_td = store.total_difficulty(store.head_hash)
    for block in blocks:
        assert store.total_difficulty(block.block_hash) <= head_td

    chain = store.canonical_chain()
    assert chain[0].block_hash == genesis.block_hash
    assert chain[-1].block_hash == store.head_hash
    for parent, child in zip(chain, chain[1:]):
        assert child.header.parent_hash == parent.block_hash
        assert child.number == parent.number + 1
    for block in chain:
        assert store.is_canonical(block.block_hash)


@given(
    st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=15),
    st.randoms(use_true_random=False),
)
@settings(max_examples=40)
def test_chainstore_insertion_order_invariance_linear(difficulties, rnd):
    """For a linear chain, arrival order cannot change the final head."""
    genesis = make_genesis("0x" + "ee" * 32)
    blocks = []
    parent = genesis
    for index, difficulty in enumerate(difficulties):
        block = _child(parent, difficulty, tag=f"l{index}")
        blocks.append(block)
        parent = block

    in_order = ChainStore(genesis)
    for block in blocks:
        in_order.add(block)

    shuffled_store = ChainStore(genesis)
    shuffled = list(blocks)
    rnd.shuffle(shuffled)
    pending = shuffled
    # Insert whatever is insertable each pass (parents must exist).
    while pending:
        progressed = []
        rest = []
        for block in pending:
            if block.header.parent_hash in shuffled_store:
                shuffled_store.add(block)
                progressed.append(block)
            else:
                rest.append(block)
        assert progressed, "no progress inserting shuffled chain"
        pending = rest

    assert shuffled_store.head_hash == in_order.head_hash
    assert shuffled_store.total_difficulty(shuffled_store.head_hash) == in_order.total_difficulty(
        in_order.head_hash
    )


def test_node_orphan_counts_in_sync_with_store():
    """Node-level orphans never leak into the store before parents arrive."""
    runtime = ContractRuntime()
    register_all(runtime)
    kp = KeyPair.from_seed("orphan")
    genesis_spec = GenesisSpec(allocations={kp.address: 10**15})
    producer = Node(kp, genesis_spec, runtime, NodeConfig())
    consumer = Node(KeyPair.from_seed("consumer"), genesis_spec, runtime, NodeConfig())

    chain = []
    for i in range(4):
        block = producer.build_block_candidate(13.0 * (i + 1), difficulty=1)
        producer.seal_and_import(block, nonce=0)
        chain.append(block)

    # Deliver newest-first: everything parks until the first block lands.
    for block in reversed(chain[1:]):
        consumer.import_block(block)
        assert consumer.height == 0
    consumer.import_block(chain[0])
    assert consumer.height == len(chain)
    np.testing.assert_array_equal(
        [b.block_hash for b in consumer.store.canonical_chain()],
        [b.block_hash for b in producer.store.canonical_chain()],
    )
