"""Journaled WorldState: checkpoint/rollback semantics, overlays, pruning.

The hypothesis property drives a journaled state and a deep-snapshot mirror
(the seed's semantics: push ``snapshot()`` at checkpoint, ``restore()`` at
rollback) through identical random op sequences — credits, debits,
deployments, storage writes/deletes, nonce bumps, and nested
checkpoint/commit/rollback — asserting the two remain observably identical
after every step, including ``state_root()`` equality (which also proves
the per-account hash cache invalidates correctly across rollbacks).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chain.state import STATE_STATS, StateError, WorldState
from repro.errors import InsufficientFundsError

ADDRESSES = ["0x" + f"{i:02x}" * 20 for i in range(4)]
KEYS = ["k0", "k1", "slot:a"]


def _assert_same(journaled: WorldState, mirror: WorldState) -> None:
    assert journaled.addresses() == mirror.addresses()
    for address in journaled.addresses():
        assert journaled.account(address).to_dict() == mirror.account(address).to_dict()
    assert journaled.state_root() == mirror.state_root()


_OPS = st.one_of(
    st.tuples(st.just("credit"), st.sampled_from(ADDRESSES), st.integers(0, 100)),
    st.tuples(st.just("debit"), st.sampled_from(ADDRESSES), st.integers(0, 100)),
    st.tuples(st.just("bump"), st.sampled_from(ADDRESSES)),
    st.tuples(st.just("deploy"), st.sampled_from(ADDRESSES), st.sampled_from(["m", "n"])),
    st.tuples(
        st.just("sstore"),
        st.sampled_from(ADDRESSES),
        st.sampled_from(KEYS),
        st.one_of(st.integers(0, 9), st.lists(st.integers(0, 3), max_size=2)),
    ),
    st.tuples(st.just("sdelete"), st.sampled_from(ADDRESSES), st.sampled_from(KEYS)),
    st.tuples(st.just("checkpoint")),
    st.tuples(st.just("rollback")),
    st.tuples(st.just("commit")),
)


@given(st.lists(_OPS, min_size=1, max_size=40))
@settings(max_examples=80, deadline=None)
def test_journal_matches_deep_snapshot_semantics(ops):
    journaled = WorldState()
    mirror = WorldState()
    marks: list[int] = []
    snaps: list[dict] = []
    for op in ops:
        kind = op[0]
        if kind == "checkpoint":
            marks.append(journaled.checkpoint())
            snaps.append(mirror.snapshot())
        elif kind == "rollback" and marks:
            journaled.rollback(marks.pop())
            mirror.restore(snaps.pop())
        elif kind == "commit" and marks:
            journaled.commit(marks.pop())
            snaps.pop()
        elif kind == "credit":
            journaled.credit(op[1], op[2])
            mirror.credit(op[1], op[2])
        elif kind == "debit":
            outcomes = []
            for state in (journaled, mirror):
                try:
                    state.debit(op[1], op[2])
                    outcomes.append("ok")
                except InsufficientFundsError:
                    outcomes.append("insufficient")
            assert outcomes[0] == outcomes[1]
        elif kind == "bump":
            assert journaled.bump_nonce(op[1]) == mirror.bump_nonce(op[1])
        elif kind == "deploy":
            journaled.deploy(op[1], op[2], {"seed": 1})
            mirror.deploy(op[1], op[2], {"seed": 1})
        elif kind == "sstore":
            journaled.storage_set(op[1], op[2], op[3])
            mirror.storage_set(op[1], op[2], op[3])
        elif kind == "sdelete":
            journaled.storage_delete(op[1], op[2])
            mirror.storage_delete(op[1], op[2])
        _assert_same(journaled, mirror)


ALICE, BOB = ADDRESSES[0], ADDRESSES[1]


class TestCheckpoints:
    def test_nested_rollback_innermost_first(self):
        state = WorldState()
        state.credit(ALICE, 100)
        outer = state.checkpoint()
        state.credit(ALICE, 10)
        inner = state.checkpoint()
        state.credit(ALICE, 1)
        state.rollback(inner)
        assert state.balance_of(ALICE) == 110
        state.rollback(outer)
        assert state.balance_of(ALICE) == 100

    def test_commit_keeps_enclosing_rollback(self):
        state = WorldState()
        outer = state.checkpoint()
        state.credit(ALICE, 5)
        inner = state.checkpoint()
        state.credit(ALICE, 7)
        state.commit(inner)  # accepted, but outer can still undo it
        assert state.balance_of(ALICE) == 12
        state.rollback(outer)
        assert state.balance_of(ALICE) == 0

    def test_rollback_removes_created_accounts(self):
        state = WorldState()
        mark = state.checkpoint()
        state.credit(ALICE, 1)
        assert state.has_account(ALICE)
        state.rollback(mark)
        assert not state.has_account(ALICE)

    def test_rollback_restores_storage_and_code(self):
        state = WorldState()
        state.deploy(ALICE, "m", {"x": 1})
        mark = state.checkpoint()
        state.storage_set(ALICE, "x", 2)
        state.storage_set(ALICE, "y", 3)
        state.storage_delete(ALICE, "x")
        state.rollback(mark)
        assert state.storage_get(ALICE, "x") == 1
        assert not state.storage_has(ALICE, "y")

    def test_bad_mark_raises(self):
        state = WorldState()
        with pytest.raises(StateError):
            state.rollback(99)

    def test_rollback_cost_is_touched_entries(self):
        state = WorldState()
        for index in range(500):
            state.credit("0x" + f"{index:04x}" * 10, 1)
        STATE_STATS.reset()
        mark = state.checkpoint()
        state.credit(ALICE, 1)
        state.credit(BOB, 1)
        state.rollback(mark)
        # 2 touched (pre-existing) accounts -> 2 balance records, not 500.
        assert STATE_STATS.entries_reverted == 2


class TestPruning:
    def test_pruned_marks_unreachable(self):
        state = WorldState()
        old = state.checkpoint()
        state.credit(ALICE, 1)
        new = state.checkpoint()
        state.prune_journal(new)
        assert not state.can_rollback_to(old)
        assert state.can_rollback_to(new)
        with pytest.raises(StateError):
            state.rollback(old)

    def test_marks_survive_pruning_below_them(self):
        state = WorldState()
        state.credit(ALICE, 1)
        keep = state.checkpoint()
        state.prune_journal(keep)
        state.credit(ALICE, 2)
        state.rollback(keep)
        assert state.balance_of(ALICE) == 1


class TestOverlay:
    def test_reads_pass_through(self):
        base = WorldState()
        base.credit(ALICE, 10)
        base.deploy(BOB, "m", {"k": 1})
        overlay = base.overlay()
        assert overlay.balance_of(ALICE) == 10
        assert overlay.storage_get(BOB, "k") == 1
        assert overlay.is_contract(BOB)
        assert overlay.addresses() == base.addresses()

    def test_writes_never_reach_base(self):
        base = WorldState()
        base.credit(ALICE, 10)
        base.deploy(BOB, "m", {"k": 1})
        overlay = base.overlay()
        overlay.credit(ALICE, 90)
        overlay.storage_set(BOB, "k", 2)
        overlay.storage_delete(BOB, "missing")
        assert overlay.balance_of(ALICE) == 100
        assert overlay.storage_get(BOB, "k") == 2
        assert base.balance_of(ALICE) == 10
        assert base.storage_get(BOB, "k") == 1

    def test_overlay_root_matches_materialized_copy(self):
        base = WorldState()
        base.credit(ALICE, 10)
        base.deploy(BOB, "m", {"k": 1})
        base.state_root()  # warm the base cache; overlay must not corrupt it
        overlay = base.overlay()
        overlay.transfer(ALICE, BOB, 4)
        overlay.storage_set(BOB, "k", 7)
        materialized = base.copy()
        materialized.transfer(ALICE, BOB, 4)
        materialized.storage_set(BOB, "k", 7)
        assert overlay.state_root() == materialized.state_root()
        # Discarding the overlay leaves the base root unchanged.
        assert base.state_root() == base.copy().state_root()

    def test_overlay_rollback_falls_back_to_base(self):
        base = WorldState()
        base.credit(ALICE, 10)
        overlay = base.overlay()
        mark = overlay.checkpoint()
        overlay.credit(ALICE, 5)
        overlay.rollback(mark)
        assert overlay.balance_of(ALICE) == 10
        assert ALICE not in overlay._accounts  # shadow removed, reads hit base


class TestIncrementalRoot:
    def test_root_equals_fresh_state_root_after_churn(self):
        state = WorldState()
        state.credit(ALICE, 100)
        state.deploy(BOB, "m", {"k": 1})
        state.state_root()
        mark = state.checkpoint()
        state.transfer(ALICE, BOB, 30)
        state.storage_set(BOB, "k", 2)
        state.rollback(mark)
        state.storage_set(BOB, "j", 9)
        fresh = WorldState()
        fresh.credit(ALICE, 100)
        fresh.deploy(BOB, "m", {"k": 1})
        fresh.storage_set(BOB, "j", 9)
        assert state.state_root() == fresh.state_root()

    def test_rerooting_hashes_only_dirty_accounts(self):
        state = WorldState()
        for index in range(50):
            state.credit("0x" + f"{index:04x}" * 10, 1)
        state.state_root()
        STATE_STATS.reset()
        state.credit(ALICE, 1)
        state.state_root()
        assert STATE_STATS.accounts_hashed == 1

    def test_direct_account_mutation_still_dirties_root(self):
        state = WorldState()
        state.deploy(ALICE, "m", {"k": 1})
        before = state.state_root()
        state.account(ALICE).storage["k"] = 2  # bypasses the journal
        assert state.state_root() != before
