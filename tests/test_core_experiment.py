"""Tests for experiment config and runners (quick variants)."""

import numpy as np
import pytest

from repro.core.config import (
    MODEL_LEARNING_RATES,
    ExperimentConfig,
    calibrated_spec,
    default_config,
    quick_config,
)
from repro.core.experiment import run_decentralized_experiment, run_vanilla_experiment
from repro.errors import ConfigError
from repro.fl.async_policy import WaitForK


class TestConfig:
    def test_defaults_match_paper(self):
        config = default_config("simple_nn")
        assert config.rounds == 10
        assert config.local_epochs == 5
        assert config.client_ids == ("A", "B", "C")

    def test_learning_rates_per_model(self):
        assert default_config("simple_nn").learning_rate == MODEL_LEARNING_RATES["simple_nn"]
        assert (
            default_config("efficientnet_b0_sim").learning_rate
            == MODEL_LEARNING_RATES["efficientnet_b0_sim"]
        )

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(model_kind="gpt4")

    def test_invalid_rounds(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(rounds=0)

    def test_needs_two_clients(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(client_ids=("A",))

    def test_train_config_derived(self):
        config = default_config("simple_nn")
        train = config.train_config()
        assert train.epochs == 5
        assert train.learning_rate == config.learning_rate

    def test_quick_config_small(self):
        config = quick_config("simple_nn")
        assert config.rounds <= 3
        assert config.train_samples_per_client <= 400

    def test_calibrated_spec_same_for_both_models(self):
        assert calibrated_spec("simple_nn") == calibrated_spec("efficientnet_b0_sim")


class TestVanillaRunner:
    @pytest.mark.parametrize("consider", [False, True])
    def test_produces_series_for_all_clients(self, consider):
        config = quick_config("simple_nn")
        result = run_vanilla_experiment(config, consider=consider)
        assert set(result.client_accuracy) == {"A", "B", "C"}
        for series in result.client_accuracy.values():
            assert len(series) == config.rounds
            assert all(0.0 <= value <= 1.0 for value in series)

    def test_deterministic(self):
        config = quick_config("simple_nn")
        a = run_vanilla_experiment(config, consider=False)
        b = run_vanilla_experiment(config, consider=False)
        assert a.client_accuracy == b.client_accuracy

    def test_seed_changes_results(self):
        a = run_vanilla_experiment(quick_config("simple_nn", seed=1), consider=False)
        b = run_vanilla_experiment(quick_config("simple_nn", seed=2), consider=False)
        assert a.client_accuracy != b.client_accuracy

    def test_efficientnet_variant_runs(self):
        config = quick_config("efficientnet_b0_sim")
        result = run_vanilla_experiment(config, consider=False)
        # Quick config trains one epoch on 200 samples: just check it runs
        # end to end and reports sane values (calibration is benched, not
        # unit-tested).
        assert 0.0 <= result.final_accuracy("A") <= 1.0

    def test_final_accuracy_helper(self):
        config = quick_config("simple_nn")
        result = run_vanilla_experiment(config, consider=False)
        assert result.final_accuracy("A") == result.client_accuracy["A"][-1]


class TestDecentralizedRunner:
    def test_produces_combination_tables(self):
        config = quick_config("simple_nn")
        result = run_decentralized_experiment(config)
        assert set(result.combination_accuracy) == {"A", "B", "C"}
        for peer_id in ("A", "B", "C"):
            table = result.combination_accuracy[peer_id]
            assert "A,B,C" in table
            assert len(table["A,B,C"]) == config.rounds

    def test_wait_times_and_chain_stats(self):
        config = quick_config("simple_nn")
        result = run_decentralized_experiment(config)
        assert set(result.wait_times) == {"A", "B", "C"}
        assert result.chain_stats["blocks_mined"] > 0

    def test_wait_for_k_policy_accepted(self):
        config = quick_config("simple_nn")
        result = run_decentralized_experiment(config, policy=WaitForK(1))
        # With wait-for-1 at least some rounds aggregate solo.
        models_used = [log.models_used for log in result.round_logs]
        assert min(models_used) >= 1

    def test_series_accessor(self):
        config = quick_config("simple_nn")
        result = run_decentralized_experiment(config)
        series = result.series("B", "A,B,C")
        assert len(series) == config.rounds

    def test_deterministic(self):
        config = quick_config("simple_nn")
        a = run_decentralized_experiment(config)
        b = run_decentralized_experiment(config)
        assert a.combination_accuracy == b.combination_accuracy
        assert a.wait_times == b.wait_times


class TestCentralizedVsDecentralizedShape:
    def test_comparable_accuracy(self):
        """The paper's headline: both settings reach comparable accuracy."""
        config = quick_config("simple_nn")
        vanilla = run_vanilla_experiment(config, consider=False)
        decentralized = run_decentralized_experiment(config)
        v_final = np.mean([vanilla.final_accuracy(c) for c in ("A", "B", "C")])
        d_final = np.mean(
            [decentralized.combination_accuracy[c]["A,B,C"][-1] for c in ("A", "B", "C")]
        )
        # Quick config is tiny, so allow slack; full shape checked in benches.
        assert abs(v_final - d_final) < 0.25
