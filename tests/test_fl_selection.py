"""Tests for combination selection ('consider' aggregation)."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.errors import SelectionError
from repro.fl.aggregation import ModelUpdate
from repro.fl.selection import (
    CombinationResult,
    best_combination,
    enumerate_combinations,
    greedy_combination,
    pick_best,
    threshold_filter,
)
from repro.nn.layers import Dense
from repro.nn.model import Sequential


@pytest.fixture
def scratch_model():
    """1-layer linear model over 2 features, 2 classes."""
    return Sequential([Dense(2, name="head")]).build(np.random.default_rng(0), (2,))


@pytest.fixture
def test_set():
    """Class = which feature is larger; trivially separable."""
    rng = np.random.default_rng(1)
    x = rng.normal(size=(200, 2))
    y = (x[:, 1] > x[:, 0]).astype(np.int64)
    return Dataset(x, y)


def good_weights():
    """Weights that classify the test_set perfectly."""
    return {"head/W": np.array([[1.0, -1.0], [-1.0, 1.0]]), "head/b": np.zeros(2)}


def bad_weights():
    """Weights that classify everything inverted."""
    return {"head/W": np.array([[-1.0, 1.0], [1.0, -1.0]]), "head/b": np.zeros(2)}


def upd(client_id, weights, n=100):
    return ModelUpdate(client_id=client_id, weights=weights, num_samples=n)


class TestEnumerate:
    def test_counts_all_subsets(self, scratch_model, test_set):
        updates = [upd("A", good_weights()), upd("B", good_weights()), upd("C", good_weights())]
        results = enumerate_combinations(updates, scratch_model, test_set)
        assert len(results) == 7  # 2^3 - 1

    def test_size_bounds(self, scratch_model, test_set):
        updates = [upd("A", good_weights()), upd("B", good_weights()), upd("C", good_weights())]
        pairs = enumerate_combinations(updates, scratch_model, test_set, min_size=2, max_size=2)
        assert len(pairs) == 3
        assert all(len(r.members) == 2 for r in pairs)

    def test_sorted_by_accuracy(self, scratch_model, test_set):
        updates = [upd("A", good_weights()), upd("B", bad_weights())]
        results = enumerate_combinations(updates, scratch_model, test_set)
        assert results[0].members == ("A",)
        assert results[0].accuracy >= results[-1].accuracy
        assert results[-1].members == ("B",)

    def test_labels(self, scratch_model, test_set):
        updates = [upd("B", good_weights()), upd("A", good_weights())]
        results = enumerate_combinations(updates, scratch_model, test_set)
        labels = {r.label for r in results}
        assert labels == {"A", "B", "A,B"}

    def test_empty_updates_rejected(self, scratch_model, test_set):
        with pytest.raises(SelectionError):
            enumerate_combinations([], scratch_model, test_set)

    def test_invalid_min_size(self, scratch_model, test_set):
        with pytest.raises(SelectionError):
            enumerate_combinations([upd("A", good_weights())], scratch_model, test_set, min_size=0)

    def test_model_unchanged_by_evaluation(self, scratch_model, test_set):
        before = scratch_model.get_weights()
        enumerate_combinations([upd("A", good_weights())], scratch_model, test_set)
        after = scratch_model.get_weights()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])


class TestBestCombination:
    def test_picks_best(self, scratch_model, test_set):
        updates = [upd("A", good_weights()), upd("B", bad_weights())]
        best = best_combination(updates, scratch_model, test_set)
        assert best.members == ("A",)

    def test_tie_break_deterministic_without_rng(self, scratch_model, test_set):
        updates = [upd("A", good_weights()), upd("B", good_weights())]
        best = best_combination(updates, scratch_model, test_set)
        # A, B, and A,B all tie at 100%; lexicographically-first wins.
        assert best.members == ("A",)

    def test_tie_break_random_with_rng(self, scratch_model, test_set):
        updates = [upd("A", good_weights()), upd("B", good_weights())]
        seen = set()
        for seed in range(10):
            best = best_combination(updates, scratch_model, test_set, rng=np.random.default_rng(seed))
            seen.add(best.members)
        assert len(seen) > 1  # the paper's random tie-break is exercised


class TestPickBest:
    """The shared tie-break used by best_combination, the decentralized
    orchestrator, and the scoring engine: its RNG consumption is the
    contract that keeps all three streams aligned."""

    @staticmethod
    def results(*accuracies):
        return [
            CombinationResult(members=(chr(ord("A") + i),), accuracy=acc, weights={})
            for i, acc in enumerate(accuracies)
        ]

    def test_no_draw_without_tie(self):
        rng = np.random.default_rng(5)
        before = rng.bit_generator.state
        chosen = pick_best(self.results(0.9, 0.8, 0.7), rng)
        assert chosen.members == ("A",)
        assert rng.bit_generator.state == before  # untouched

    def test_no_draw_without_rng(self):
        chosen = pick_best(self.results(0.9, 0.9, 0.7))
        assert chosen.members == ("A",)  # lexicographically-first winner

    def test_exactly_one_draw_per_tie(self):
        rng = np.random.default_rng(5)
        shadow = np.random.default_rng(5)
        results = self.results(0.9, 0.9, 0.9, 0.2)
        chosen = pick_best(results, rng)
        expected = results[int(shadow.integers(0, 3))]  # one draw over the 3 ties
        assert chosen is expected
        assert rng.bit_generator.state == shadow.bit_generator.state

    def test_best_combination_consumes_identically(self, scratch_model, test_set):
        """best_combination's draws are exactly pick_best's draws."""
        updates = [upd("A", good_weights()), upd("B", good_weights())]
        results = enumerate_combinations(updates, scratch_model, test_set)
        for seed in range(5):
            rng_a, rng_b = np.random.default_rng(seed), np.random.default_rng(seed)
            via_function = best_combination(updates, scratch_model, test_set, rng=rng_a)
            via_helper = pick_best(results, rng_b)
            assert via_function.members == via_helper.members
            assert rng_a.bit_generator.state == rng_b.bit_generator.state


class TestThresholdFilter:
    def test_drops_below_threshold(self, scratch_model, test_set):
        updates = [upd("A", good_weights()), upd("B", bad_weights())]
        kept = threshold_filter(updates, scratch_model, test_set, threshold=0.5)
        assert [u.client_id for u in kept] == ["A"]

    def test_always_keep_self(self, scratch_model, test_set):
        updates = [upd("A", good_weights()), upd("B", bad_weights())]
        kept = threshold_filter(updates, scratch_model, test_set, threshold=0.5, always_keep="B")
        assert {u.client_id for u in kept} == {"A", "B"}

    def test_nothing_passes_raises(self, scratch_model, test_set):
        updates = [upd("B", bad_weights())]
        with pytest.raises(SelectionError):
            threshold_filter(updates, scratch_model, test_set, threshold=0.99)


class TestGreedy:
    def test_greedy_finds_good_model(self, scratch_model, test_set):
        updates = [upd("A", bad_weights()), upd("B", good_weights()), upd("C", bad_weights())]
        result = greedy_combination(updates, scratch_model, test_set)
        assert "B" in result.members
        assert result.accuracy > 0.9

    def test_greedy_stops_when_no_improvement(self, scratch_model, test_set):
        updates = [upd("A", good_weights()), upd("B", bad_weights())]
        result = greedy_combination(updates, scratch_model, test_set)
        assert result.members == ("A",)  # adding B would only hurt

    def test_seed_client_respected(self, scratch_model, test_set):
        updates = [upd("A", bad_weights()), upd("B", good_weights())]
        result = greedy_combination(updates, scratch_model, test_set, seed_client="A")
        assert result.members[0] == "A"

    def test_unknown_seed_rejected(self, scratch_model, test_set):
        with pytest.raises(SelectionError):
            greedy_combination([upd("A", good_weights())], scratch_model, test_set, seed_client="Z")

    def test_empty_rejected(self, scratch_model, test_set):
        with pytest.raises(SelectionError):
            greedy_combination([], scratch_model, test_set)

    def test_greedy_matches_exhaustive_on_small_case(self, scratch_model, test_set):
        updates = [upd("A", good_weights()), upd("B", bad_weights()), upd("C", good_weights())]
        greedy = greedy_combination(updates, scratch_model, test_set)
        exhaustive = best_combination(updates, scratch_model, test_set)
        assert greedy.accuracy == pytest.approx(exhaustive.accuracy, abs=0.02)
