"""Tests for the aggregation coordinator contract."""

import pytest

from repro.chain.gas import GasMeter
from repro.chain.runtime import CallContext, ContractRuntime
from repro.chain.state import WorldState
from repro.contracts.aggregation import AggregationCoordinator
from repro.contracts.model_store import ModelStore
from repro.errors import ContractRevertError

A = "0x" + "0a" * 20
B = "0x" + "0b" * 20
C = "0x" + "0c" * 20
STORE = "0x" + "55" * 20
COORD = "0x" + "77" * 20


@pytest.fixture
def env():
    runtime = ContractRuntime()
    runtime.register(ModelStore)
    runtime.register(AggregationCoordinator)
    state = WorldState()
    state.deploy(STORE, "model_store")
    state.deploy(COORD, "aggregation_coordinator")
    store, coord = ModelStore(), AggregationCoordinator()

    def call_on(contract, address):
        def call(sender, method, **args):
            ctx = CallContext(
                state=state,
                meter=GasMeter(10**9),
                contract_address=address,
                sender=sender,
                runtime=runtime,
                timestamp=7.0,
            )
            return getattr(contract, method)(ctx, **args)

        return call

    store_call = call_on(store, STORE)
    coord_call = call_on(coord, COORD)
    store_call(A, "init", registry_address=None)
    coord_call(A, "init", model_store_address=STORE, quorum=2, vote_threshold=2)
    return store_call, coord_call


def submit(store_call, sender, round_id=1):
    store_call(
        sender,
        "submit_model",
        round_id=round_id,
        weights_hash=f"0xhash-{sender[-2:]}",
        num_samples=800,
    )


class TestRoundLifecycle:
    def test_open_round(self, env):
        _store, coord = env
        record = coord(A, "open_round", round_id=1)
        assert record["opened_by"] == A
        assert record["quorum"] == 2
        assert coord(A, "current_round") == 1

    def test_any_peer_can_open(self, env):
        _store, coord = env
        coord(C, "open_round", round_id=1)
        assert coord(A, "round_info", round_id=1)["opened_by"] == C

    def test_double_open_reverts(self, env):
        _store, coord = env
        coord(A, "open_round", round_id=1)
        with pytest.raises(ContractRevertError, match="already open"):
            coord(B, "open_round", round_id=1)

    def test_round_info_missing(self, env):
        _store, coord = env
        assert coord(A, "round_info", round_id=5) is None

    def test_current_round_tracks_max(self, env):
        _store, coord = env
        coord(A, "open_round", round_id=3)
        coord(A, "open_round", round_id=1)
        assert coord(A, "current_round") == 3

    def test_per_round_quorum_override(self, env):
        _store, coord = env
        record = coord(A, "open_round", round_id=1, quorum=3)
        assert record["quorum"] == 3

    def test_per_round_vote_threshold_override(self, env):
        """Partial-participation rounds finalize against their subcohort's
        threshold, not the contract-wide default (2 in this fixture)."""
        _store, coord = env
        record = coord(A, "open_round", round_id=1, vote_threshold=1)
        assert record["vote_threshold"] == 1
        result = coord(A, "vote_global", round_id=1, aggregate_hash="0xg")
        assert result == {"tally": 1, "finalized": True}

    def test_default_round_record_has_no_threshold_key(self, env):
        """Unsampled rounds must keep the pre-participation record shape —
        the state root (and therefore the chain bytes) depends on it."""
        _store, coord = env
        record = coord(A, "open_round", round_id=1)
        assert "vote_threshold" not in record

    def test_zero_vote_threshold_rejected(self, env):
        _store, coord = env
        with pytest.raises(ContractRevertError, match="vote_threshold"):
            coord(A, "open_round", round_id=1, vote_threshold=0)


class TestQuorum:
    def test_quorum_counts_store_submissions(self, env):
        store, coord = env
        coord(A, "open_round", round_id=1)
        assert not coord(A, "quorum_reached", round_id=1)
        submit(store, A)
        assert not coord(A, "quorum_reached", round_id=1)
        submit(store, B)
        assert coord(A, "quorum_reached", round_id=1)  # quorum=2 (wait-for-2)

    def test_quorum_requires_open_round(self, env):
        _store, coord = env
        with pytest.raises(ContractRevertError, match="not open"):
            coord(A, "quorum_reached", round_id=9)

    def test_submission_count_delegates(self, env):
        store, coord = env
        coord(A, "open_round", round_id=1)
        submit(store, A)
        assert coord(B, "submission_count", round_id=1) == 1


class TestGlobalVotes:
    def test_vote_and_finalize(self, env):
        _store, coord = env
        coord(A, "open_round", round_id=1)
        result = coord(A, "vote_global", round_id=1, aggregate_hash="0xg")
        assert result == {"tally": 1, "finalized": False}
        result = coord(B, "vote_global", round_id=1, aggregate_hash="0xg")
        assert result == {"tally": 2, "finalized": True}
        assert coord(C, "finalized_hash", round_id=1) == "0xg"

    def test_split_votes_no_finalization(self, env):
        _store, coord = env
        coord(A, "open_round", round_id=1)
        coord(A, "vote_global", round_id=1, aggregate_hash="0xg1")
        coord(B, "vote_global", round_id=1, aggregate_hash="0xg2")
        assert coord(C, "finalized_hash", round_id=1) is None
        assert coord(C, "vote_tally", round_id=1) == {"0xg1": 1, "0xg2": 1}

    def test_double_vote_reverts(self, env):
        _store, coord = env
        coord(A, "open_round", round_id=1)
        coord(A, "vote_global", round_id=1, aggregate_hash="0xg")
        with pytest.raises(ContractRevertError, match="already voted"):
            coord(A, "vote_global", round_id=1, aggregate_hash="0xother")

    def test_first_finalization_sticks(self, env):
        _store, coord = env
        coord(A, "open_round", round_id=1)
        for voter in (A, B):
            coord(voter, "vote_global", round_id=1, aggregate_hash="0xg1")
        # A different hash reaching threshold later cannot displace it.
        for voter in (C, "0x" + "0d" * 20):
            coord(voter, "vote_global", round_id=1, aggregate_hash="0xg2")
        assert coord(A, "finalized_hash", round_id=1) == "0xg1"

    def test_vote_of(self, env):
        _store, coord = env
        coord(A, "open_round", round_id=1)
        coord(A, "vote_global", round_id=1, aggregate_hash="0xg")
        assert coord(B, "vote_of", round_id=1, address=A) == "0xg"
        assert coord(B, "vote_of", round_id=1, address=B) is None

    def test_vote_requires_open_round(self, env):
        _store, coord = env
        with pytest.raises(ContractRevertError, match="not open"):
            coord(A, "vote_global", round_id=2, aggregate_hash="0xg")

    def test_empty_hash_rejected(self, env):
        _store, coord = env
        coord(A, "open_round", round_id=1)
        with pytest.raises(ContractRevertError):
            coord(A, "vote_global", round_id=1, aggregate_hash="")


class TestInitValidation:
    def test_bad_quorum(self):
        runtime = ContractRuntime()
        runtime.register(AggregationCoordinator)
        state = WorldState()
        state.deploy(COORD, "aggregation_coordinator")
        ctx = CallContext(
            state=state, meter=GasMeter(10**9), contract_address=COORD, sender=A, runtime=runtime
        )
        with pytest.raises(ContractRevertError):
            AggregationCoordinator().init(ctx, model_store_address=STORE, quorum=0)
