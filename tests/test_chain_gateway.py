"""The ledger gateway: protocol behavior, error mapping, batching, seam.

Covers the transport-agnostic :mod:`repro.chain.gateway` API the FL layer
programs against:

* ``InProcessGateway`` delegation and instrumentation;
* typed error mapping (unknown contract / unknown method / reverted call
  / rejected transaction) — asserted identical across both backends;
* ``BatchingGateway`` head-keyed caching with the bounded staleness
  window, and that the backend never changes an end-to-end result;
* the architectural seam: no FL-layer module reaches into ``.node``.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.chain.crypto import KeyPair
from repro.chain.gateway import (
    BatchingGateway,
    CallRequest,
    ChainGateway,
    GatewayStats,
    InProcessGateway,
    transport_stats,
)
from repro.chain.node import GenesisSpec, Node, NodeConfig
from repro.chain.runtime import ContractRuntime
from repro.chain.transaction import Transaction
from repro.contracts import register_all
from repro.core.decentralized import DecentralizedConfig, DecentralizedFL
from repro.core.peer import FullPeer, PeerConfig
from repro.data.dataset import Dataset
from repro.errors import (
    CallRevertedError,
    GatewayError,
    GatewayTimeoutError,
    NetworkError,
    RoundError,
    TransactionRejectedError,
    UnknownContractError,
    UnknownMethodError,
)
from repro.fl.trainer import TrainConfig
from repro.nn.layers import Dense
from repro.nn.model import Sequential
from repro.nn.serialize import weights_hash
from repro.utils.events import Simulator
from repro.utils.rng import RngFactory


def make_node(seed: str = "gw-node") -> tuple[Node, KeyPair]:
    runtime = ContractRuntime()
    register_all(runtime)
    kp = KeyPair.from_seed(seed)
    genesis = GenesisSpec(allocations={kp.address: 10**15})
    return Node(kp, genesis, runtime, NodeConfig()), kp


def mine(node: Node, timestamp: float) -> None:
    block = node.build_block_candidate(timestamp, difficulty=1)
    node.seal_and_import(block, nonce=0)


def deploy_contract(node: Node, kp: KeyPair, timestamp: float, **args) -> str:
    tx = Transaction(
        sender=kp.address,
        to=None,
        nonce=node.next_nonce_for(kp.address),
        args=args,
    ).sign_with(kp)
    node.submit_transaction(tx)
    mine(node, timestamp)
    return node.receipt_of(tx.tx_hash).contract_address


def deploy_registry(node: Node, kp: KeyPair, timestamp: float = 13.0) -> str:
    return deploy_contract(
        node, kp, timestamp, contract="participant_registry", open_enrollment=True
    )


@pytest.fixture
def node_and_registry():
    node, kp = make_node()
    registry = deploy_registry(node, kp)
    return node, kp, registry


def backends(node):
    """Both gateway backends over one node (error-parity parametrization)."""
    return {
        "inprocess": InProcessGateway(node),
        "batching": BatchingGateway(InProcessGateway(node)),
    }


class TestCallRequest:
    def test_key_is_canonical_in_arg_order(self):
        a = CallRequest("0xabc", "is_member", {"address": "0x1", "extra": 2})
        b = CallRequest("0xabc", "is_member", {"extra": 2, "address": "0x1"})
        assert a.key() == b.key()

    def test_key_distinguishes_args(self):
        a = CallRequest("0xabc", "is_member", {"address": "0x1"})
        b = CallRequest("0xabc", "is_member", {"address": "0x2"})
        assert a.key() != b.key()


class TestInProcessGateway:
    def test_call_matches_direct_node_read(self, node_and_registry):
        node, kp, registry = node_and_registry
        gateway = InProcessGateway(node)
        assert gateway.call(registry, "member_count") == node.call_contract(
            registry, "member_count"
        )
        assert gateway.stats.calls == 1

    def test_reads_and_counters(self, node_and_registry):
        node, kp, registry = node_and_registry
        gateway = InProcessGateway(node)
        assert gateway.height() == node.height
        assert gateway.head_hash() == node.head.block_hash
        assert gateway.has_contract(registry)
        assert not gateway.has_contract("0x" + "ee" * 20)
        assert gateway.next_nonce(kp.address) == 1
        assert gateway.get_logs(address=registry) == node.get_logs(address=registry)
        stats = gateway.stats
        assert (stats.height_reads, stats.head_checks, stats.contract_checks) == (1, 1, 2)
        assert (stats.nonce_reads, stats.log_queries) == (1, 1)
        assert stats.request_bytes == 0  # no contract calls yet

    def test_batch_call_is_one_round_trip_in_order(self, node_and_registry):
        node, kp, registry = node_and_registry
        gateway = InProcessGateway(node)
        values = gateway.batch_call(
            [
                CallRequest(registry, "member_count"),
                CallRequest(registry, "is_member", {"address": kp.address}),
                CallRequest(registry, "admin"),
            ]
        )
        assert values == [0, False, kp.address]
        assert gateway.stats.batch_calls == 1
        assert gateway.stats.batched_reads == 3
        assert gateway.stats.calls == 0
        assert gateway.stats.contract_call_round_trips == 1
        assert gateway.stats.requested_reads == 3

    def test_submit_enters_mempool(self, node_and_registry):
        node, kp, registry = node_and_registry
        gateway = InProcessGateway(node)
        tx = Transaction(
            sender=kp.address,
            to=registry,
            nonce=gateway.next_nonce(kp.address),
            method="register",
            args={"display_name": "A"},
        ).sign_with(kp)
        assert gateway.submit(tx) == tx.tx_hash
        assert gateway.stats.submits == 1
        mine(node, 26.0)
        assert gateway.call(registry, "is_member", address=kp.address)

    def test_wait_for_without_simulator_raises(self, node_and_registry):
        node, _, _ = node_and_registry
        gateway = InProcessGateway(node)
        with pytest.raises(GatewayError):
            gateway.wait_for(lambda: True, "anything")

    def test_wait_for_timeout_is_a_round_error(self):
        node, _ = make_node()
        sim = Simulator()
        gateway = InProcessGateway(node, simulator=sim)
        # Keep the simulation alive past the deadline so the timeout
        # (not the drained-queue error) fires.
        def tick():
            sim.schedule_in(1.0, tick)
        tick()
        with pytest.raises(GatewayTimeoutError) as excinfo:
            gateway.wait_for(lambda: False, "nothing", deadline=5.0)
        assert isinstance(excinfo.value, RoundError)

    def test_wait_for_drained_simulation_raises_network_error(self):
        node, _ = make_node()
        gateway = InProcessGateway(node, simulator=Simulator())
        with pytest.raises(NetworkError):
            gateway.wait_for(lambda: False, "nothing", deadline=5.0)

    def test_wait_for_returns_when_predicate_holds(self):
        node, _ = make_node()
        sim = Simulator()
        gateway = InProcessGateway(node, simulator=sim)
        seen = []
        sim.schedule_in(2.0, lambda: seen.append(True))
        assert gateway.wait_for(lambda: bool(seen), "flag", deadline=10.0) == 2.0
        assert gateway.stats.waits == 1


class TestErrorMappingParity:
    """The typed error surface is identical across backends."""

    @pytest.mark.parametrize("backend", ["inprocess", "batching"])
    def test_unknown_contract(self, node_and_registry, backend):
        node, _, _ = node_and_registry
        gateway = backends(node)[backend]
        with pytest.raises(UnknownContractError):
            gateway.call("0x" + "ee" * 20, "member_count")

    @pytest.mark.parametrize("backend", ["inprocess", "batching"])
    def test_unknown_method(self, node_and_registry, backend):
        node, _, registry = node_and_registry
        gateway = backends(node)[backend]
        with pytest.raises(UnknownMethodError):
            gateway.call(registry, "no_such_method")

    @pytest.mark.parametrize("backend", ["inprocess", "batching"])
    def test_non_public_method(self, node_and_registry, backend):
        node, _, registry = node_and_registry
        gateway = backends(node)[backend]
        with pytest.raises(UnknownMethodError):
            gateway.call(registry, "init")

    @pytest.mark.parametrize("backend", ["inprocess", "batching"])
    def test_reverted_call(self, node_and_registry, backend):
        node, kp, _ = node_and_registry
        ledger = deploy_contract(node, kp, 26.0, contract="reputation_ledger")
        gateway = backends(node)[backend]
        # Self-rating reverts inside the contract.
        with pytest.raises(CallRevertedError):
            gateway.call(ledger, "rate", round_id=1, subject=kp.address, delta=5)

    @pytest.mark.parametrize("backend", ["inprocess", "batching"])
    def test_rejected_transaction(self, node_and_registry, backend):
        node, kp, registry = node_and_registry
        gateway = backends(node)[backend]
        stale = Transaction(
            sender=kp.address, to=registry, nonce=0, method="register", args={}
        ).sign_with(kp)  # nonce 0 already consumed by the deployment
        with pytest.raises(TransactionRejectedError):
            gateway.submit(stale)

    @pytest.mark.parametrize("backend", ["inprocess", "batching"])
    def test_batch_call_maps_errors_too(self, node_and_registry, backend):
        node, _, registry = node_and_registry
        gateway = backends(node)[backend]
        with pytest.raises(UnknownMethodError):
            gateway.batch_call(
                [
                    CallRequest(registry, "member_count"),
                    CallRequest(registry, "no_such_method"),
                ]
            )


class TestBatchingGateway:
    def test_repeated_read_hits_cache(self, node_and_registry):
        node, _, registry = node_and_registry
        inner = InProcessGateway(node)
        gateway = BatchingGateway(inner)
        assert gateway.call(registry, "member_count") == 0
        assert gateway.call(registry, "member_count") == 0
        assert inner.stats.calls == 1
        assert gateway.stats.calls == 2
        assert gateway.stats.cache_hits == 1

    def test_head_change_invalidates(self, node_and_registry):
        node, kp, registry = node_and_registry
        inner = InProcessGateway(node)
        gateway = BatchingGateway(inner)
        assert gateway.call(registry, "member_count") == 0
        register = Transaction(
            sender=kp.address,
            to=registry,
            nonce=node.next_nonce_for(kp.address),
            method="register",
            args={"display_name": "A"},
        ).sign_with(kp)
        node.submit_transaction(register)
        mine(node, 26.0)
        assert gateway.call(registry, "member_count") == 1
        assert inner.stats.calls == 2

    def test_staleness_window_expires_entries(self, node_and_registry):
        node, _, registry = node_and_registry
        sim = Simulator()
        inner = InProcessGateway(node, simulator=sim)
        gateway = BatchingGateway(inner, staleness=5.0)
        assert gateway.call(registry, "member_count") == 0
        sim.schedule_in(10.0, lambda: None)
        sim.step()  # advance the transport clock past the window
        assert gateway.call(registry, "member_count") == 0
        assert inner.stats.calls == 2  # head unchanged but entry expired

    def test_batch_call_forwards_only_misses(self, node_and_registry):
        node, kp, registry = node_and_registry
        inner = InProcessGateway(node)
        gateway = BatchingGateway(inner)
        gateway.call(registry, "member_count")
        values = gateway.batch_call(
            [
                CallRequest(registry, "member_count"),
                CallRequest(registry, "is_member", {"address": kp.address}),
            ]
        )
        assert values == [0, False]
        assert inner.stats.batch_calls == 1
        assert inner.stats.batched_reads == 1  # only the miss crossed
        assert gateway.stats.cache_hits == 1

    def test_has_contract_cached_nonce_not(self, node_and_registry):
        node, kp, registry = node_and_registry
        inner = InProcessGateway(node)
        gateway = BatchingGateway(inner)
        assert gateway.has_contract(registry)
        assert gateway.has_contract(registry)
        assert inner.stats.contract_checks == 1
        gateway.next_nonce(kp.address)
        gateway.next_nonce(kp.address)
        assert inner.stats.nonce_reads == 2

    def test_reorg_invalidates_cache_within_staleness_window(self, node_and_registry):
        """A cached read is never served across a reorg.

        The cache is head-keyed, not height- or time-keyed: when a
        competing fork wins, the head *hash* changes even though the
        staleness window is nowhere near expiring, and the next read must
        reflect the post-reorg state (here: the registration transaction
        dropped back out of the canonical chain)."""
        node, kp, registry = node_and_registry
        fork_node, _ = make_node()
        fork_node.import_block(node.head)  # sync the registry block
        assert fork_node.height == node.height
        inner = InProcessGateway(node)
        # Huge window: only head changes may invalidate in this test.
        gateway = BatchingGateway(inner, staleness=1e9)
        assert gateway.call(registry, "member_count") == 0
        register = Transaction(
            sender=kp.address,
            to=registry,
            nonce=node.next_nonce_for(kp.address),
            method="register",
            args={"display_name": "A"},
        ).sign_with(kp)
        node.submit_transaction(register)
        mine(node, 26.0)
        assert gateway.call(registry, "member_count") == 1
        reads_before = inner.stats.calls
        # A longer empty fork outweighs the single block with the tx.
        for timestamp in (26.5, 27.0):
            block = fork_node.build_block_candidate(timestamp, difficulty=1)
            fork_node.seal_and_import(block, nonce=0)
            node.import_block(fork_node.head)
        assert node.head.block_hash == fork_node.head.block_hash
        # Post-reorg the cached value 1 would be wrong; the gateway must
        # read through and see the fork's state.
        assert gateway.call(registry, "member_count") == 0
        assert inner.stats.calls == reads_before + 1

    def test_invalid_staleness_rejected(self, node_and_registry):
        node, _, _ = node_and_registry
        with pytest.raises(GatewayError):
            BatchingGateway(InProcessGateway(node), staleness=0.0)

    def test_transport_stats_unwraps_to_innermost(self, node_and_registry):
        node, _, _ = node_and_registry
        inner = InProcessGateway(node)
        gateway = BatchingGateway(inner)
        assert transport_stats(gateway) is inner.stats
        assert transport_stats(inner) is inner.stats

    def test_stats_add_and_dict_shape(self):
        a, b = GatewayStats(calls=2, batch_calls=1, batched_reads=3), GatewayStats(calls=1)
        a.add(b)
        payload = a.as_dict()
        assert payload["calls"] == 3
        assert payload["contract_call_round_trips"] == 4
        assert payload["requested_reads"] == 6
        assert "read_seconds" not in payload  # wall-clock stays off results


def easy_dataset(rng, n=60):
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] > 0).astype(np.int64)
    return Dataset(x, y)


def run_tiny_driver(gateway_backend: str):
    peers = ("A", "B", "C")
    data_rng = np.random.default_rng(0)
    driver = DecentralizedFL(
        [
            PeerConfig(peer_id=p, train_config=TrainConfig(epochs=1), training_time=5.0)
            for p in peers
        ],
        {p: easy_dataset(data_rng, n=60) for p in peers},
        {p: easy_dataset(data_rng, n=40) for p in peers},
        lambda rng: Sequential([Dense(2, name="out")]).build(np.random.default_rng(42), (4,)),
        DecentralizedConfig(rounds=2, enable_reputation=True, gateway=gateway_backend),
        rng_factory=RngFactory(5),
    )
    logs = driver.run()
    return driver, logs


class TestBackendEquivalence:
    """The batching backend never changes an end-to-end result."""

    def test_batching_run_identical_to_inprocess(self):
        raw_driver, raw_logs = run_tiny_driver("inprocess")
        bat_driver, bat_logs = run_tiny_driver("batching")
        assert [
            (log.peer_id, log.round_id, log.chosen_combination, log.chosen_accuracy,
             log.combination_accuracy, log.wait_time)
            for log in raw_logs
        ] == [
            (log.peer_id, log.round_id, log.chosen_combination, log.chosen_accuracy,
             log.combination_accuracy, log.wait_time)
            for log in bat_logs
        ]
        for peer_id in raw_driver.peers:
            raw_weights = raw_driver.peers[peer_id].client.model.get_weights()
            bat_weights = bat_driver.peers[peer_id].client.model.get_weights()
            assert weights_hash(raw_weights) == weights_hash(bat_weights)
            assert raw_driver.reputation_of(peer_id) == bat_driver.reputation_of(peer_id)

    def test_batching_reduces_transport_round_trips(self):
        raw_driver, _ = run_tiny_driver("inprocess")
        bat_driver, _ = run_tiny_driver("batching")
        raw = raw_driver.gateway_stats()
        bat = bat_driver.gateway_stats()
        assert raw["backend"] == "inprocess" and bat["backend"] == "batching"
        # Same reads requested by the FL layer; fewer reach the transport.
        assert (
            bat["requested"]["requested_reads"] == raw["requested"]["requested_reads"]
        )
        assert (
            bat["transport"]["contract_call_round_trips"]
            < raw["transport"]["contract_call_round_trips"]
        )

    def test_chain_stats_carries_gateway_instrumentation(self):
        driver, _ = run_tiny_driver("inprocess")
        stats = driver.chain_stats()
        gateway = stats["gateway"]
        assert gateway["backend"] == "inprocess"
        assert gateway["requested"] == gateway["transport"]
        assert gateway["requested"]["contract_call_round_trips"] > 0
        assert gateway["requested"]["submits"] > 0
        assert stats["heights"]  # heights come from gateway.height()


REPO_ROOT = Path(__file__).resolve().parent.parent


class TestGatewaySeam:
    """Architecture test: the FL layer never touches a node.

    Delegates to the ``seam`` lint rule (AST-accurate, aliased-import
    aware) — the tokenizer scan that used to live here is retired.  The
    linter's own suite covers the rule's corners; this test keeps the
    seam failure local to the gateway suite where it was born.
    """

    def test_no_node_access_outside_chain_package(self):
        from repro.devtools.lint import LintEngine
        from repro.devtools.lint.rules import SeamRule

        engine = LintEngine(rules=[SeamRule()], root=REPO_ROOT)
        offenders = engine.lint_paths(
            [REPO_ROOT / "src" / "repro", REPO_ROOT / "examples"]
        )
        assert offenders == [], (
            "FL-layer code must go through the ChainGateway protocol; "
            "found raw node access:\n"
            + "\n".join(f.render() for f in offenders)
        )

    def test_full_peer_exposes_gateway_not_node(self):
        assert "gateway" in FullPeer.__init__.__code__.co_varnames
        assert "node" not in FullPeer.__init__.__code__.co_varnames

    def test_gateway_protocol_is_satisfied_by_both_backends(self):
        node, _ = make_node()
        inner = InProcessGateway(node)
        assert isinstance(inner, ChainGateway)
        assert isinstance(BatchingGateway(inner), ChainGateway)
