"""Tests for local training, clients, async policies, and poisoning."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.errors import ConfigError
from repro.fl.async_policy import Deadline, WaitForAll, WaitForK
from repro.fl.client import ClientConfig, FLClient
from repro.fl.evaluation import evaluate_on, evaluate_weights
from repro.fl.poisoning import LabelFlipAttacker, NoiseAttacker, ScaleAttacker
from repro.fl.trainer import LocalTrainer, TrainConfig, make_optimizer
from repro.fl.aggregation import ModelUpdate
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential


def easy_dataset(rng, n=200):
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return Dataset(x, y)


def builder(rng):
    return Sequential([Dense(8, name="h"), ReLU(), Dense(2, name="out")]).build(rng, (4,))


class TestTrainConfig:
    def test_defaults_match_paper(self):
        config = TrainConfig()
        assert config.epochs == 5  # the paper's five local epochs

    def test_validation(self):
        with pytest.raises(ConfigError):
            TrainConfig(epochs=0)
        with pytest.raises(ConfigError):
            TrainConfig(batch_size=0)
        with pytest.raises(ConfigError):
            TrainConfig(learning_rate=0.0)


class TestMakeOptimizer:
    def test_known_kinds(self):
        for kind in ("sgd", "momentum", "adam"):
            assert make_optimizer(kind, 0.1).learning_rate == 0.1

    def test_unknown_kind(self):
        with pytest.raises(ConfigError):
            make_optimizer("lbfgs", 0.1)


class TestLocalTrainer:
    def test_training_improves_accuracy(self):
        rng = np.random.default_rng(0)
        dataset = easy_dataset(rng)
        model = builder(np.random.default_rng(1))
        before = model.evaluate_accuracy(dataset.x, dataset.y)
        trainer = LocalTrainer(TrainConfig(epochs=10, learning_rate=0.1), rng=rng)
        result = trainer.train(model, dataset)
        after = model.evaluate_accuracy(dataset.x, dataset.y)
        assert after > max(before, 0.8)
        assert result.epochs_run == 10
        assert result.batches_run == 10 * 7  # ceil(200/32) = 7 batches/epoch
        assert len(result.loss_history) == 10

    def test_loss_decreases(self):
        rng = np.random.default_rng(0)
        trainer = LocalTrainer(TrainConfig(epochs=8, learning_rate=0.1), rng=rng)
        model = builder(np.random.default_rng(1))
        result = trainer.train(model, easy_dataset(rng))
        assert result.loss_history[-1] < result.loss_history[0]

    def test_deterministic_given_seeds(self):
        dataset = easy_dataset(np.random.default_rng(0))

        def run():
            model = builder(np.random.default_rng(1))
            trainer = LocalTrainer(TrainConfig(epochs=2), rng=np.random.default_rng(2))
            trainer.train(model, dataset)
            return model.get_weights()

        a, b = run(), run()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])


class TestFLClient:
    def _client(self, client_id="A"):
        rng = np.random.default_rng(0)
        return FLClient(
            ClientConfig(client_id=client_id, train_config=TrainConfig(epochs=2)),
            easy_dataset(rng),
            easy_dataset(rng, n=80),
            builder,
            np.random.default_rng(3),
        )

    def test_train_local_produces_update(self):
        client = self._client()
        update = client.train_local(round_id=1)
        assert update.client_id == "A"
        assert update.num_samples == 200
        assert update.round_id == 1
        assert 0.0 <= update.reported_accuracy <= 1.0
        assert client.rounds_trained == 1

    def test_update_weights_detached(self):
        client = self._client()
        update = client.train_local(1)
        update.weights["h/W"][...] = 0.0
        assert not np.allclose(client.model.parameters()["h/W"], 0.0)

    def test_apply_global(self):
        client = self._client()
        update = client.train_local(1)
        other = self._client("B")
        other.apply_global(update.weights)
        x = np.random.default_rng(5).normal(size=(4, 4))
        np.testing.assert_array_equal(client.model.predict(x), other.model.predict(x))

    def test_empty_id_rejected(self):
        with pytest.raises(ConfigError):
            ClientConfig(client_id="", train_config=TrainConfig())

    def test_evaluate_weights_no_side_effect(self):
        client = self._client()
        foreign = builder(np.random.default_rng(77)).get_weights()
        before = client.model.get_weights()
        client.evaluate_weights(foreign)
        after = client.model.get_weights()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])


class TestEvaluation:
    def test_evaluate_on(self):
        rng = np.random.default_rng(0)
        dataset = easy_dataset(rng)
        model = builder(np.random.default_rng(1))
        acc = evaluate_on(model, dataset)
        assert 0.0 <= acc <= 1.0

    def test_evaluate_weights_restores(self):
        rng = np.random.default_rng(0)
        dataset = easy_dataset(rng)
        model = builder(np.random.default_rng(1))
        saved = model.get_weights()
        evaluate_weights(model, builder(np.random.default_rng(2)).get_weights(), dataset)
        for key, value in model.get_weights().items():
            np.testing.assert_array_equal(value, saved[key])


class TestAsyncPolicies:
    def test_wait_for_all(self):
        policy = WaitForAll()
        assert not policy.ready(2, 3, elapsed=100.0)
        assert policy.ready(3, 3, elapsed=0.0)
        assert policy.describe() == "wait-for-all"

    def test_wait_for_k(self):
        policy = WaitForK(2)
        assert not policy.ready(1, 3, elapsed=100.0)
        assert policy.ready(2, 3, elapsed=0.0)
        assert policy.describe() == "wait-for-2"

    def test_wait_for_k_capped_by_cohort(self):
        policy = WaitForK(10)
        assert policy.ready(3, 3, elapsed=0.0)

    def test_wait_for_k_validation(self):
        with pytest.raises(ConfigError):
            WaitForK(0)

    def test_deadline(self):
        policy = Deadline(seconds=60.0)
        assert not policy.ready(1, 3, elapsed=30.0)
        assert policy.ready(1, 3, elapsed=60.0)
        assert policy.ready(3, 3, elapsed=0.0)  # full cohort short-circuits

    def test_deadline_min_models(self):
        policy = Deadline(seconds=10.0, min_models=2)
        assert not policy.ready(1, 3, elapsed=100.0)
        assert policy.ready(2, 3, elapsed=100.0)

    def test_deadline_validation(self):
        with pytest.raises(ConfigError):
            Deadline(seconds=0.0)
        with pytest.raises(ConfigError):
            Deadline(seconds=1.0, min_models=0)


class TestPoisoning:
    def test_label_flip_flips(self):
        rng = np.random.default_rng(0)
        dataset = easy_dataset(rng)
        attacker = LabelFlipAttacker(flip_fraction=1.0, target_class=0)
        poisoned = attacker.poison_dataset(dataset, rng)
        assert (poisoned.y == 0).all()
        assert (dataset.y != 0).any()  # original untouched

    def test_label_flip_partial(self):
        rng = np.random.default_rng(0)
        dataset = easy_dataset(rng, n=1000)
        attacker = LabelFlipAttacker(flip_fraction=0.3, target_class=0)
        poisoned = attacker.poison_dataset(dataset, rng)
        changed = (poisoned.y != dataset.y).mean()
        assert 0.05 < changed < 0.35

    def test_label_flip_validation(self):
        with pytest.raises(ConfigError):
            LabelFlipAttacker(flip_fraction=0.0)

    def test_noise_attacker_perturbs(self):
        rng = np.random.default_rng(0)
        update = ModelUpdate(client_id="M", weights={"w": np.zeros((3, 3))}, num_samples=10)
        noisy = NoiseAttacker(noise_std=1.0).poison_update(update, rng)
        assert not np.allclose(noisy.weights["w"], 0.0)
        assert np.allclose(update.weights["w"], 0.0)
        assert noisy.metadata["attack"] == "noise"

    def test_noise_validation(self):
        with pytest.raises(ConfigError):
            NoiseAttacker(noise_std=0.0)

    def test_scale_attacker(self):
        rng = np.random.default_rng(0)
        update = ModelUpdate(client_id="M", weights={"w": np.ones(4)}, num_samples=10)
        scaled = ScaleAttacker(scale=10.0).poison_update(update, rng)
        np.testing.assert_allclose(scaled.weights["w"], 10.0)

    def test_scale_validation(self):
        with pytest.raises(ConfigError):
            ScaleAttacker(scale=1.0)

    def test_base_attacker_passthrough(self):
        from repro.fl.poisoning import Attacker

        rng = np.random.default_rng(0)
        dataset = easy_dataset(rng)
        update = ModelUpdate(client_id="M", weights={"w": np.ones(2)}, num_samples=5)
        attacker = Attacker()
        assert attacker.poison_dataset(dataset, rng) is dataset
        assert attacker.poison_update(update, rng) is update
