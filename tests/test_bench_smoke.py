"""Tier-1 smoke coverage of the benchmark harness.

Runs the smoke-scale cores of ``bench_chain_throughput``,
``bench_commitment_pipeline``, ``bench_block_execution``,
``bench_cohort_scaling``, ``bench_selection_engine``,
``bench_chain_gateway``, ``bench_fault_resilience``,
``bench_multiprocess_runtime``, ``bench_client_sampling``, and
``bench_chain_scaleout`` in-process (the same code paths
``pytest benchmarks/... --smoke`` exercises), so the tier-1 suite catches
benchmark bit-rot and enforces the pipelines' headline numbers in seconds.
"""

import sys
from pathlib import Path

_BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"
if str(_BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(_BENCHMARKS))

import bench_block_execution
import bench_chain_gateway
import bench_chain_scaleout
import bench_chain_throughput
import bench_client_sampling
import bench_cohort_scaling
import bench_commitment_pipeline
import bench_fault_resilience
import bench_multiprocess_runtime
import bench_selection_engine


class TestChainThroughputSmoke:
    def test_smoke_backlog_drains(self):
        result = bench_chain_throughput._drain_backlog(3, n_txs=8, seed=0)
        assert result["throughput"] > 0
        assert result["blocks"] > 0

    def test_smoke_sweep_shape(self):
        rows = bench_chain_throughput._sweep(smoke=True)
        assert [row["nodes"] for row in rows] == [3, 6]
        assert all(row["throughput"] > 0 for row in rows)
        # The paper's accepted finding holds even at smoke scale.
        assert rows[0]["throughput"] > rows[-1]["throughput"]


class TestCommitmentPipelineSmoke:
    def test_speedup_meets_acceptance_floor(self):
        result = bench_commitment_pipeline.compare_pipelines(
            **bench_commitment_pipeline.pipeline_params(smoke=True)
        )
        # The deterministic marshalling counters are the hard contract;
        # the wall-clock ratio (typically ~5x, acceptance floor 2x in the
        # opt-in bench) gets slack here so a loaded CI box can't flake
        # tier-1 on a sub-millisecond timing.
        assert result["speedup"] >= 1.5
        assert result["cached_encodes_per_model"] == 1.0
        assert result["legacy_encodes_per_model"] >= 3.0

    def test_live_round_profile(self):
        profile = bench_commitment_pipeline.round_serialization_profile(rounds=1)
        assert profile["encodes_per_model"] == 1.0
        assert profile["store"]["deserializations"] == 0

    def test_codec_v2_size_win(self):
        # The size ratio is deterministic (base64 + JSON framing vs raw
        # buffers); the wall-clock speedup gets no floor here so a loaded
        # CI box can't flake tier-1.
        codec = bench_commitment_pipeline.codec_comparison(n_models=2, repeats=1)
        assert codec["size_ratio"] < 0.8


class TestBlockExecutionSmoke:
    def test_speedup_and_counters(self):
        result = bench_block_execution.compare_block_execution(
            **bench_block_execution.execution_params(smoke=True)
        )
        # The deterministic counters (one crypto verification per tx,
        # journal entries ~ touched, re-hashes ~ dirty accounts) are the
        # hard contract; the wall-clock ratio (typically >4x at smoke
        # scale, 3x acceptance floor in the opt-in bench at full scale)
        # gets slack so timing noise can't flake tier-1.
        assert result["speedup"] >= 1.5
        bench_block_execution._check_counters(result)

    def test_rollback_cost_flat_in_state_size(self):
        small = bench_block_execution.rollback_profile(64)
        large = bench_block_execution.rollback_profile(1024)
        assert small["entries_reverted"] == large["entries_reverted"]


class TestCohortScalingSmoke:
    """Smoke-tier cohort sweep: policies, greedy selection, shared datasets."""

    @classmethod
    def _sweep(cls):
        params = bench_cohort_scaling.sweep_params(smoke=True)
        return bench_cohort_scaling.scaling_sweep(
            params["sizes"], params["k"], params["quick"]
        )

    def test_wait_grows_and_async_is_faster(self):
        result = self._sweep()
        waits_all = [row["mean_wait_s"] for row in result["wait_all"]]
        assert waits_all[-1] > waits_all[0] > 0.0
        for row_all, row_k in zip(result["wait_all"], result["wait_k"]):
            assert row_k["mean_wait_s"] <= row_all["mean_wait_s"]
            assert 0.0 < row_k["final_accuracy"] <= 1.0

    def test_sweep_shares_datasets(self):
        result = self._sweep()
        total = result["dataset_hits"] + result["dataset_misses"]
        assert result["dataset_hits"] >= total / 2


class TestSelectionEngineSmoke:
    """Smoke-tier scoring engine: speedup, equivalence, cache contract.

    ``compare_engines`` asserts serial/memoized/parallel equality
    internally; the deterministic cache counters are the hard contract
    here, the wall-clock ratio gets CI slack (1.3x floor vs the 3x the
    opt-in full bench enforces at the 25-update profile).
    """

    def test_speedup_and_cache_contract(self):
        params = bench_selection_engine.engine_params(smoke=True)
        n, max_size, n_test = params["profiles"][0]
        result = bench_selection_engine.compare_engines(n, max_size, n_test)
        assert result["speedup"] >= params["floor"]
        assert result["evaluations"] <= result["subsets"]
        assert result["reuse_evaluations"] == 0

    def test_solo_scores_reused(self):
        counters = bench_selection_engine.solo_reuse_counters()
        assert counters["engine_evaluations"] == counters["subsets"]
        assert counters["engine_extra_after_enumerate"] == 0


class TestChainGatewaySmoke:
    """Smoke-tier ledger-gateway comparison at the 25-peer profile.

    ``compare_gateways`` asserts result equality between the backends
    internally (accuracy tables, adopted combinations, wait times), so
    the round-trip floor below is both the acceptance gate and the
    unchanged-outputs proof.  The counters are deterministic — no
    wall-clock slack needed.
    """

    @classmethod
    def _comparison(cls):
        return bench_chain_gateway.compare_gateways(
            **bench_chain_gateway.gateway_params(smoke=True)
        )

    def test_round_trip_reduction_meets_floor(self):
        result = self._comparison()
        assert result["size"] == 25  # the acceptance profile
        assert result["trip_reduction"] >= bench_chain_gateway.ROUND_TRIP_FLOOR
        assert result["cache_hits"] > 0

    def test_transport_traffic_shrinks_requests_do_not(self):
        result = self._comparison()
        assert result["batched_response_bytes"] < result["raw_response_bytes"]
        assert (
            result["raw"]["requested"]["requested_reads"]
            == result["batched"]["requested"]["requested_reads"]
        )


class TestMultiprocessRuntimeSmoke:
    """Smoke-tier out-of-process runtime: equivalence and wire telemetry.

    Byte-identity between the in-process and multiprocess arms is
    asserted inside ``compare_runtimes``; wall-clock gets no floor here
    (the smoke profile can't amortize worker start-up and timing floors
    flake tier-1) — the full bench enforces the 2x speedup on >= 4
    cores.
    """

    @classmethod
    def _comparison(cls):
        params = bench_multiprocess_runtime.runtime_params(smoke=True)
        return bench_multiprocess_runtime.compare_runtimes(
            params["sizes"][0],
            params["workers"],
            params["rounds"],
            params["train"],
            params["test"],
        )

    def test_multiprocess_arm_is_byte_identical(self):
        result = self._comparison()
        arms = [row["arm"] for row in result["rows"]]
        assert arms[0] == "inprocess" and len(arms) >= 2

    def test_wire_telemetry_is_populated(self):
        result = self._comparison()
        for row in result["rows"]:
            if row["workers"]:
                assert row["rpc_trips"] > 0 and row["wire_mb"] > 0
            else:
                assert row["rpc_trips"] == 0

    def test_remote_transport_arms_stay_neutral(self):
        # The gateway bench's wire arms: byte-identity is asserted
        # inside compare_transports; batching must never add trips.
        result = bench_chain_gateway.compare_transports(
            **bench_chain_gateway.gateway_params(smoke=True)
        )
        assert result["remote_trips"] > 0
        assert result["batched_trips"] <= result["remote_trips"]


class TestClientSamplingSmoke:
    """Smoke-tier participation bench: work bounds and full-participation
    byte-identity.

    Both contracts are asserted inside the bench cores (training logs ==
    sampled subcohort, instantiation <= ever-active, transaction budget,
    ``sampled_k = n`` == unsampled); wall-clock is reported but never
    floored, so a loaded CI box can't flake tier-1 on a timing.
    """

    @classmethod
    def _profile(cls):
        params = bench_client_sampling.sampling_params(smoke=True)
        return bench_client_sampling.run_sampling_profile(
            params["registered"],
            params["sampled"],
            params["rounds"],
            params["train"],
            params["test"],
        )

    def test_work_bounded_by_subcohort(self):
        profile = self._profile()
        assert profile["registered"] == 30
        assert profile["instantiated"] < profile["registered"]
        assert profile["rounds_per_s"] > 0

    def test_peak_rss_reported(self):
        profile = self._profile()
        assert profile["peak_rss_mb"] > 0

    def test_full_participation_unchanged(self):
        params = bench_client_sampling.sampling_params(smoke=True)
        result = bench_client_sampling.check_full_equivalence(
            params["identity_size"],
            params["rounds"],
            params["train"],
            params["test"],
        )
        assert result["identical"]


class TestChainScaleoutSmoke:
    """Smoke-tier scale-out bench: byte identity, spilling, rejoin bound.

    The contracts are asserted inside the bench cores (parallel import ==
    serial on head hash / state root / receipts, spill-through to the
    cold store, rejoin replay bounded by the snapshot interval); timing
    floors stay out of tier-1 — a single-core CI box only prices the
    pool overhead.
    """

    def test_parallel_import_byte_identical(self):
        params = bench_chain_scaleout.scaleout_params(smoke=True)
        profile = bench_chain_scaleout.run_parallel_identity(
            params["block_txs"], params["workers"]
        )
        assert profile["clean_txs"] == params["block_txs"]
        assert profile["serial_s"] > 0 and profile["parallel_s"] > 0

    def test_cold_storage_spills(self):
        params = bench_chain_scaleout.scaleout_params(smoke=True)
        profile = bench_chain_scaleout.run_cold_profile(
            params["registered"],
            params["sampled"],
            params["rounds"],
            params["hot_window"],
        )
        assert profile["rounds_per_s"] > 0
        if profile["height"] > params["hot_window"] + 1:
            assert profile["spilled_blocks"] > 0

    def test_snapshot_rejoin_bounded(self):
        params = bench_chain_scaleout.scaleout_params(smoke=True)
        profile = bench_chain_scaleout.run_rejoin_profile(
            params["chain_length"], params["snapshot_interval"]
        )
        assert profile["replayed"] * 4 <= profile["chain_length"]
        assert profile["skipped"] > 0


class TestFaultResilienceSmoke:
    """Smoke-tier fault sweep: completion floor, abort contrast, equivalence.

    All three signals are deterministic functions of the seed (fault
    decisions come from the ``faults/*`` streams), so the floors need no
    wall-clock slack.
    """

    @classmethod
    def _profile(cls):
        return bench_fault_resilience.resilience_profile(smoke=True)

    def test_retries_meet_completion_floor(self):
        profile = self._profile()
        by_label = {row["intensity"]: row for row in profile["rows"]}
        mid = by_label["mid"]
        assert mid["injected"] > 0 and mid["retries"] > 0
        assert mid["completion_rate"] >= bench_fault_resilience.COMPLETION_FLOOR

    def test_without_retries_the_run_aborts(self):
        profile = self._profile()
        assert profile["unshielded_completed"] < profile["params"]["rounds"]
        assert profile["unshielded_abort"] != ""

    def test_transient_plan_byte_equivalent_to_fault_free(self):
        profile = self._profile()
        baseline = profile["results"]["off"]
        shielded = profile["results"]["mid"]
        assert shielded.client_accuracy == baseline.client_accuracy
        assert shielded.wait_times == baseline.wait_times
        assert shielded.chain_stats["heights"] == baseline.chain_stats["heights"]
