"""The invariant linter: rules, pragmas, baseline, CLI, and the repo gate.

Structure:

* per-rule fixture snippets — every rule has at least one true positive
  and one near-miss negative (code that *looks* like the bug but isn't);
* regression fixtures re-introducing the repo's actual historical bugs
  (the PR-1 chained comparison, the PR-3 config mutation, a raw ``.node``
  seam breach) and asserting the linter flags all three;
* engine behavior: pragma suppression, content-hash caching, parse
  errors;
* baseline add/expire semantics and the JSON output schema;
* CLI exit codes (0 clean / 1 findings / 2 usage error);
* the tier-1 gate: zero findings over the real ``src``/``tests``/
  ``benchmarks``/``examples`` trees, fast enough to run on every push.

Fixture code lives in string literals so the linter never mistakes the
fixtures themselves for violations when it sweeps ``tests/``.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.devtools.lint import (
    ALL_RULES,
    Baseline,
    Finding,
    LintEngine,
    default_rules,
)
from repro.devtools.lint.cli import main
from repro.devtools.lint.rules import (
    ConfigMutationRule,
    GlobalRngRule,
    JournalDisciplineRule,
    SeamRule,
    SuspiciousComparisonRule,
    WallClockRule,
    WireDisciplineRule,
    rules_by_id,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

LIB_PATH = "src/repro/core/somefile.py"  # in-scope path for src-only rules
CHAIN_PATH = "src/repro/chain/somefile.py"


def lint(source: str, path: str = LIB_PATH, rules=None) -> list[Finding]:
    engine = LintEngine(rules=rules if rules is not None else default_rules())
    return engine.lint_source(textwrap.dedent(source), path)


def rule_ids(findings) -> list[str]:
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# seam
# ---------------------------------------------------------------------------


class TestSeamRule:
    def lint_seam(self, source, path=LIB_PATH):
        return lint(source, path, rules=[SeamRule()])

    def test_attribute_access_flags(self):
        findings = self.lint_seam("height = peer.gateway.node.height\n")
        assert rule_ids(findings) == ["seam"]
        assert findings[0].line == 1

    def test_module_path_in_expression_is_not_flagged(self):
        # `repro.chain.node.Node` names the module on the way to a class.
        findings = self.lint_seam(
            """
            import repro.chain

            cls = repro.chain.node.Node
            """
        )
        # The *import* is clean and the dotted path isn't `.node` access,
        # but reaching the module through the package attribute is not an
        # import statement — only the attribute chain is exempt.
        assert rule_ids(findings) == []

    def test_direct_import_flags(self):
        findings = self.lint_seam("from repro.chain.node import Node\n")
        assert rule_ids(findings) == ["seam"]

    def test_aliased_module_import_flags(self):
        # The tokenizer-based scan this rule replaced missed this shape.
        findings = self.lint_seam("from repro.chain import node as ledger\n")
        assert rule_ids(findings) == ["seam"]

    def test_dotted_module_import_flags(self):
        findings = self.lint_seam("import repro.chain.node as chain_node\n")
        assert rule_ids(findings) == ["seam"]

    def test_relative_import_resolves_and_flags(self):
        findings = self.lint_seam(
            "from ..chain import node\n", path="src/repro/core/driver.py"
        )
        assert rule_ids(findings) == ["seam"]

    def test_near_miss_package_reexport_is_sanctioned(self):
        findings = self.lint_seam(
            "from repro.chain import GenesisSpec, Node, NodeConfig\n"
        )
        assert findings == []

    def test_near_miss_unrelated_node_module(self):
        # Importing some other `node` module is not the chain seam.
        findings = self.lint_seam("from networkx import node\n")
        assert findings == []

    def test_out_of_scope_paths_are_skipped(self):
        engine = LintEngine(rules=[SeamRule()])
        assert engine.lint_source(
            "x = gateway.node\n", "src/repro/chain/gateway.py"
        ) == []
        assert engine.lint_source("x = gateway.node\n", "tests/test_x.py") == []

    def test_examples_are_in_scope(self):
        engine = LintEngine(rules=[SeamRule()])
        assert rule_ids(
            engine.lint_source("x = gateway.node\n", "examples/demo.py")
        ) == ["seam"]


# ---------------------------------------------------------------------------
# global-rng
# ---------------------------------------------------------------------------


class TestGlobalRngRule:
    def lint_rng(self, source, path=LIB_PATH):
        return lint(source, path, rules=[GlobalRngRule()])

    def test_stdlib_random_flags(self):
        findings = self.lint_rng(
            """
            import random

            def jitter():
                return random.random()
            """
        )
        assert rule_ids(findings) == ["global-rng"]

    def test_bare_import_from_random_flags(self):
        findings = self.lint_rng(
            """
            from random import randint as ri

            def pick():
                return ri(0, 10)
            """
        )
        assert rule_ids(findings) == ["global-rng"]

    def test_np_global_draw_flags(self):
        findings = self.lint_rng(
            """
            import numpy as np

            def noise(n):
                np.random.seed(0)
                return np.random.rand(n)
            """
        )
        assert rule_ids(findings) == ["global-rng", "global-rng"]

    def test_unseeded_default_rng_flags(self):
        findings = self.lint_rng(
            """
            import numpy as np

            def fresh():
                return np.random.default_rng()
            """
        )
        assert rule_ids(findings) == ["global-rng"]
        assert "entropy-seeded" in findings[0].message

    def test_near_miss_seeded_default_rng_is_fine(self):
        findings = self.lint_rng(
            """
            import numpy as np

            def fresh(seed):
                return np.random.default_rng(seed)
            """
        )
        assert findings == []

    def test_near_miss_generator_method_named_like_module_fn(self):
        # rng.random() on a Generator object is a named-stream draw.
        findings = self.lint_rng(
            """
            def draw(rng):
                return rng.random() + rng.shuffle([1, 2])
            """
        )
        assert findings == []

    def test_near_miss_annotation_only_use(self):
        findings = self.lint_rng(
            """
            import numpy as np

            def train(rng: np.random.Generator) -> None:
                pass
            """
        )
        assert findings == []

    def test_aliased_numpy_random_module_flags(self):
        findings = self.lint_rng(
            """
            from numpy import random as npr

            def noise(n):
                return npr.standard_normal(n)
            """
        )
        assert rule_ids(findings) == ["global-rng"]

    def test_out_of_scope_for_tests_tree(self):
        engine = LintEngine(rules=[GlobalRngRule()])
        src = "import random\nrandom.random()\n"
        assert engine.lint_source(src, "tests/test_x.py") == []
        assert engine.lint_source(src, "benchmarks/bench_x.py") == []


# ---------------------------------------------------------------------------
# wall-clock
# ---------------------------------------------------------------------------


class TestWallClockRule:
    def lint_clock(self, source, path=LIB_PATH):
        return lint(source, path, rules=[WallClockRule()])

    def test_time_time_flags(self):
        findings = self.lint_clock(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert rule_ids(findings) == ["wall-clock"]

    def test_perf_counter_and_from_import_flag(self):
        findings = self.lint_clock(
            """
            from time import perf_counter

            def measure():
                return perf_counter()
            """
        )
        assert rule_ids(findings) == ["wall-clock"]

    def test_datetime_now_flags_both_import_styles(self):
        findings = self.lint_clock(
            """
            import datetime
            from datetime import datetime as dt

            def stamps():
                return datetime.datetime.now(), dt.utcnow()
            """
        )
        assert rule_ids(findings) == ["wall-clock", "wall-clock"]

    def test_near_miss_simulator_now_is_fine(self):
        # `sim.now()` / `self.clock.now` are the sanctioned clock.
        findings = self.lint_clock(
            """
            def deadline(sim, clock):
                return sim.now() + clock.now
            """
        )
        assert findings == []

    def test_near_miss_time_sleep_is_not_a_clock_read(self):
        findings = self.lint_clock(
            """
            import time

            def pause():
                time.sleep(0)
            """
        )
        assert findings == []

    def test_allowlisted_instrumentation_paths(self):
        engine = LintEngine(rules=[WallClockRule()])
        src = "import time\nstart = time.perf_counter()\n"
        for allowed in (
            "src/repro/metrics/timing.py",
            "src/repro/scenarios/sweep.py",
            "src/repro/chain/gateway.py",
            "benchmarks/bench_x.py",
        ):
            assert engine.lint_source(src, allowed) == []
        assert rule_ids(engine.lint_source(src, LIB_PATH)) == ["wall-clock"]


# ---------------------------------------------------------------------------
# journal-discipline
# ---------------------------------------------------------------------------


class TestJournalDisciplineRule:
    def lint_journal(self, source, path=CHAIN_PATH):
        return lint(source, path, rules=[JournalDisciplineRule()])

    def test_abandoned_mark_flags(self):
        findings = self.lint_journal(
            """
            def apply(state, tx):
                mark = state.checkpoint()
                state.transfer(tx.sender, tx.to, tx.value)
                return state.root()
            """
        )
        assert rule_ids(findings) == ["journal-discipline"]

    def test_branch_that_drops_the_mark_flags(self):
        findings = self.lint_journal(
            """
            def apply(state, ok):
                mark = state.checkpoint()
                if ok:
                    state.commit(mark)
                return state
            """
        )
        assert rule_ids(findings) == ["journal-discipline"]

    def test_try_with_bare_raise_handler_flags(self):
        findings = self.lint_journal(
            """
            def apply(state, tx):
                mark = state.checkpoint()
                try:
                    state.execute(tx)
                    state.commit(mark)
                except ValueError:
                    raise
            """
        )
        assert rule_ids(findings) == ["journal-discipline"]

    def test_near_miss_try_except_else_pairing_is_fine(self):
        findings = self.lint_journal(
            """
            def apply(state, tx):
                mark = state.checkpoint()
                try:
                    state.execute(tx)
                except ValueError:
                    state.rollback(mark)
                else:
                    state.commit(mark)
            """
        )
        assert findings == []

    def test_near_miss_finally_rollback_covers_all_paths(self):
        findings = self.lint_journal(
            """
            def probe(state, tx):
                mark = state.checkpoint()
                try:
                    return state.execute(tx)
                finally:
                    state.rollback(mark)
            """
        )
        assert findings == []

    def test_near_miss_mark_store_is_a_discharge(self):
        findings = self.lint_journal(
            """
            def snapshot(self, state, block_hash):
                mark = state.checkpoint()
                self._state_marks[block_hash] = mark
            """
        )
        assert findings == []

    def test_near_miss_immediate_store_is_never_tracked(self):
        findings = self.lint_journal(
            """
            def snapshot(self, state, block_hash):
                self._state_marks[block_hash] = state.checkpoint()
                if state.checkpoint() != self.base:
                    state.rollback(self.base)
            """
        )
        assert findings == []

    def test_near_miss_journal_disposal_discharges(self):
        findings = self.lint_journal(
            """
            def rebuild(state, blocks):
                mark = state.checkpoint()
                for block in blocks:
                    state.execute(block)
                state.flatten_journal()
            """
        )
        assert findings == []

    def test_discharge_inside_loop_does_not_cover_zero_trip(self):
        findings = self.lint_journal(
            """
            def rebuild(state, blocks):
                mark = state.checkpoint()
                for block in blocks:
                    state.rollback(mark)
            """
        )
        assert rule_ids(findings) == ["journal-discipline"]

    def test_out_of_scope_outside_chain(self):
        engine = LintEngine(rules=[JournalDisciplineRule()])
        src = "def f(state):\n    mark = state.checkpoint()\n"
        assert engine.lint_source(src, "src/repro/core/peer.py") == []
        assert rule_ids(engine.lint_source(src, CHAIN_PATH)) == [
            "journal-discipline"
        ]


# ---------------------------------------------------------------------------
# config-mutation
# ---------------------------------------------------------------------------


class TestConfigMutationRule:
    def lint_config(self, source, path=LIB_PATH):
        return lint(source, path, rules=[ConfigMutationRule()])

    def test_annotated_parameter_mutation_flags(self):
        findings = self.lint_config(
            """
            def tune(config: DecentralizedConfig, rounds):
                config.rounds = rounds
                return config
            """
        )
        assert rule_ids(findings) == ["config-mutation"]
        assert "dataclasses.replace" in findings[0].message

    def test_config_named_parameter_flags_augassign(self):
        findings = self.lint_config(
            """
            def bump(chain_config):
                chain_config.block_interval += 1.0
            """
        )
        assert rule_ids(findings) == ["config-mutation"]

    def test_optional_annotation_still_recognized(self):
        findings = self.lint_config(
            """
            from typing import Optional

            def tune(cc: Optional[ChainSpec]):
                cc.gateway = "batching"
            """
        )
        assert rule_ids(findings) == ["config-mutation"]

    def test_near_miss_replace_rebinding_is_fine(self):
        findings = self.lint_config(
            """
            import dataclasses

            def tune(config: DecentralizedConfig, rounds):
                config = dataclasses.replace(config, rounds=rounds)
                return config
            """
        )
        assert findings == []

    def test_near_miss_locally_built_config_is_fine(self):
        # Builder-pattern mutation of an object the function owns.
        findings = self.lint_config(
            """
            def make(rounds):
                cfg = DecentralizedConfig()
                cfg.rounds = rounds
                return cfg
            """
        )
        assert findings == []

    def test_near_miss_storing_config_on_self_is_fine(self):
        findings = self.lint_config(
            """
            class Driver:
                def __init__(self, config: DecentralizedConfig):
                    self.config = config
            """
        )
        assert findings == []

    def test_near_miss_subscript_read_of_config_attr(self):
        findings = self.lint_config(
            """
            def index(table, config: ExperimentConfig, value):
                table[config.rounds] = value
            """
        )
        assert findings == []


# ---------------------------------------------------------------------------
# suspicious-comparison
# ---------------------------------------------------------------------------


class TestSuspiciousComparisonRule:
    def lint_cmp(self, source, path="benchmarks/bench_x.py"):
        return lint(source, path, rules=[SuspiciousComparisonRule()])

    def test_membership_identity_chain_flags(self):
        findings = self.lint_cmp("bad = key in decoded is None\n")
        assert rule_ids(findings) == ["suspicious-comparison"]

    def test_identity_equality_chain_flags(self):
        findings = self.lint_cmp("bad = x == y is None\n")
        assert rule_ids(findings) == ["suspicious-comparison"]

    def test_applies_everywhere_including_src(self):
        engine = LintEngine(rules=[SuspiciousComparisonRule()])
        assert rule_ids(
            engine.lint_source("b = k in d is None\n", LIB_PATH)
        ) == ["suspicious-comparison"]

    def test_near_miss_uniform_chains_are_fine(self):
        findings = self.lint_cmp(
            """
            ok1 = 0 <= index < len(items) <= cap
            ok2 = a == b == c
            ok3 = x is y is None
            ok4 = (key in decoded) is None
            ok5 = key in decoded
            """
        )
        assert findings == []


class TestRetryDisciplineRule:
    def test_bare_except_around_gateway_call_flagged(self):
        findings = lint(
            """
            def push(peer, tx):
                try:
                    peer.gateway.submit(tx)
                except:
                    return None
            """
        )
        assert rule_ids(findings) == ["retry-discipline"]

    def test_swallowed_broad_except_flagged(self):
        findings = lint(
            """
            def read(gateway, contract):
                try:
                    return gateway.call(contract, "height")
                except Exception:
                    pass
            """
        )
        assert rule_ids(findings) == ["retry-discipline"]

    def test_broad_tuple_swallow_flagged(self):
        findings = lint(
            """
            def read(gateway, contract):
                try:
                    return gateway.call(contract, "height")
                except (ValueError, Exception):
                    ...
            """
        )
        assert rule_ids(findings) == ["retry-discipline"]

    def test_typed_pass_handler_is_fine(self):
        # The benign duplicate re-delivery idiom: a *named* error type
        # may be deliberately discarded.
        findings = lint(
            """
            def redeliver(gateway, tx):
                try:
                    gateway.submit(tx)
                except TransactionRejectedError:
                    pass
            """
        )
        assert findings == []

    def test_broad_except_with_real_handling_is_fine(self):
        findings = lint(
            """
            def push(peer, tx, log):
                try:
                    peer.gateway.submit(tx)
                except Exception as exc:
                    log.append(str(exc))
                    raise
            """
        )
        assert findings == []

    def test_try_without_gateway_call_out_of_scope(self):
        findings = lint(
            """
            def parse(raw):
                try:
                    return int(raw)
                except:
                    return 0
            """
        )
        assert findings == []

    def test_only_library_paths_in_scope(self):
        source = """
            def push(peer, tx):
                try:
                    peer.gateway.submit(tx)
                except:
                    return None
            """
        assert lint(source, path="tests/test_x.py") == []
        assert lint(source, path="benchmarks/bench_x.py") == []


class TestWireDisciplineRule:
    def test_socket_import_outside_runtime_flagged(self):
        findings = lint(
            """
            import socket

            def dial(host, port):
                return socket.create_connection((host, port))
            """
        )
        assert rule_ids(findings) == ["wire-discipline"]

    def test_subprocess_from_import_outside_runtime_flagged(self):
        findings = lint(
            """
            from subprocess import Popen

            def spawn(cmd):
                return Popen(cmd)
            """,
            path=CHAIN_PATH,
        )
        assert rule_ids(findings) == ["wire-discipline"]

    def test_function_local_selectors_import_flagged(self):
        # A lazy import inside a helper is the same seam breach.
        findings = lint(
            """
            def poll(sock):
                import selectors
                sel = selectors.DefaultSelector()
                return sel
            """
        )
        assert rule_ids(findings) == ["wire-discipline"]

    def test_transport_imports_allowed_in_runtime(self):
        findings = lint(
            """
            import selectors
            import socket
            import struct
            import subprocess
            """,
            path="src/repro/runtime/broker.py",
        )
        assert findings == []

    def test_pickle_flagged_even_in_runtime(self):
        findings = lint(
            """
            import pickle

            def encode(obj):
                return pickle.dumps(obj)
            """,
            path="src/repro/runtime/wire.py",
        )
        assert rule_ids(findings) == ["wire-discipline"]

    def test_pickle_from_import_flagged(self):
        findings = lint(
            """
            from pickle import dumps
            """
        )
        assert rule_ids(findings) == ["wire-discipline"]

    def test_near_miss_names_are_fine(self):
        # Modules that merely *contain* the banned names: a local module
        # called `socketutil`, an attribute named `struct`, and the
        # stdlib `dataclasses` (which is not `pickle` however you squint).
        findings = lint(
            """
            import dataclasses
            from repro.runtime import wire

            def pack(frame):
                return wire.encode_frame(frame.struct, ())
            """
        )
        assert findings == []

    def test_tests_and_benchmarks_out_of_scope(self):
        source = """
            import socket
            import pickle
            """
        assert lint(source, path="tests/test_x.py") == []
        assert lint(source, path="benchmarks/bench_x.py") == []


# ---------------------------------------------------------------------------
# io-discipline
# ---------------------------------------------------------------------------


SCALE_PATH = "src/repro/chain/scale/somefile.py"


class TestIoDisciplineRule:
    def test_tempfile_import_outside_scale_flagged(self):
        findings = lint(
            """
            import tempfile

            def scratch():
                return tempfile.TemporaryFile()
            """,
            path=CHAIN_PATH,
        )
        assert rule_ids(findings) == ["io-discipline"]

    def test_shutil_from_import_flagged(self):
        findings = lint("from shutil import copyfileobj\n")
        assert rule_ids(findings) == ["io-discipline"]

    def test_function_local_tempfile_import_flagged(self):
        # Lazy imports are the classic way disk I/O sneaks past review.
        findings = lint(
            """
            def spill(payload):
                import tempfile
                f = tempfile.TemporaryFile()
                f.write(payload)
                return f
            """
        )
        assert rule_ids(findings) == ["io-discipline"]

    def test_builtin_open_outside_scale_flagged(self):
        findings = lint(
            """
            def load(path):
                with open(path) as fh:
                    return fh.read()
            """
        )
        assert rule_ids(findings) == ["io-discipline"]

    def test_os_import_outside_scale_and_runtime_flagged(self):
        findings = lint("import os\n")
        assert rule_ids(findings) == ["io-discipline"]

    def test_file_io_allowed_in_scale(self):
        findings = lint(
            """
            import os
            import tempfile

            def segment():
                f = tempfile.TemporaryFile()
                return f, os.fstat(f.fileno())
            """,
            path=SCALE_PATH,
        )
        assert findings == []

    def test_os_and_pathlib_allowed_in_runtime(self):
        findings = lint(
            """
            import os
            from pathlib import Path
            """,
            path="src/repro/runtime/worker.py",
        )
        assert findings == []

    def test_tempfile_flagged_even_in_runtime(self):
        # The runtime carve-out covers process plumbing, not spill files.
        findings = lint(
            "import tempfile\n", path="src/repro/runtime/worker.py"
        )
        assert rule_ids(findings) == ["io-discipline"]

    def test_near_miss_names_are_fine(self):
        # A method *named* open, an attribute named os, and a module that
        # merely contains a banned name are not file I/O.
        findings = lint(
            """
            from repro.chain.scale import ColdStore

            def revive(store, key):
                blob = store.get(key)
                return blob.os if hasattr(blob, "os") else store.open_count
            """
        )
        assert findings == []

    def test_open_method_call_not_flagged(self):
        findings = lint(
            """
            def start(gateway):
                return gateway.open()
            """
        )
        assert findings == []

    def test_devtools_and_tests_out_of_scope(self):
        source = """
            import os
            import tempfile

            def read(path):
                with open(path) as fh:
                    return fh.read()
            """
        assert lint(source, path="src/repro/devtools/lint/engine.py") == []
        assert lint(source, path="tests/test_x.py") == []
        assert lint(source, path="benchmarks/bench_x.py") == []


# ---------------------------------------------------------------------------
# Historical-bug regression fixtures (acceptance criterion)
# ---------------------------------------------------------------------------


class TestHistoricalBugRegressions:
    """Re-introduce the motivating bugs verbatim; the linter must flag all."""

    def test_pr1_chained_comparison_bug(self):
        # serialize.py's always-False guard, fixed in PR 1.
        findings = lint(
            """
            def decode(decoded):
                if "weights" in decoded is None:
                    raise ValueError("missing weights")
                return decoded["weights"]
            """,
            path="src/repro/nn/serialize.py",
        )
        assert "suspicious-comparison" in rule_ids(findings)

    def test_pr3_config_mutation_bug(self):
        # The policy= override that wrote through the caller's
        # chain_config, fixed in PR 3 with dataclasses.replace.
        findings = lint(
            """
            def apply_policy(chain_config, policy):
                chain_config.mode = policy.mode
                chain_config.enable_reputation = policy.enable_reputation
                return chain_config
            """,
            path="src/repro/scenarios/runner.py",
        )
        assert rule_ids(findings) == ["config-mutation", "config-mutation"]

    def test_raw_node_seam_breach(self):
        # The breach class PR 5's seam test was built to catch.
        findings = lint(
            """
            def fetch_height(peer):
                return peer.gateway.node.height
            """,
            path="src/repro/core/peer.py",
        )
        assert rule_ids(findings) == ["seam"]


# ---------------------------------------------------------------------------
# Engine: pragmas, caching, parse errors
# ---------------------------------------------------------------------------


class TestEngineBehavior:
    def test_pragma_suppresses_named_rule(self):
        findings = lint(
            "h = gateway.node.height  # repro-lint: disable=seam\n"
        )
        assert findings == []

    def test_pragma_disable_all(self):
        findings = lint(
            "h = gateway.node.height  # repro-lint: disable=all\n"
        )
        assert findings == []

    def test_pragma_for_other_rule_does_not_suppress(self):
        findings = lint(
            "h = gateway.node.height  # repro-lint: disable=wall-clock\n"
        )
        assert rule_ids(findings) == ["seam"]

    def test_pragma_on_other_line_does_not_suppress(self):
        findings = lint(
            """
            # repro-lint: disable=seam
            h = gateway.node.height
            """
        )
        assert rule_ids(findings) == ["seam"]

    def test_pragma_inside_string_literal_is_inert(self):
        findings = lint(
            's = gateway.node.height, "# repro-lint: disable=seam"\n'
        )
        assert rule_ids(findings) == ["seam"]

    def test_parse_error_is_a_finding_not_a_crash(self):
        findings = lint("def broken(:\n")
        assert rule_ids(findings) == ["parse-error"]

    def test_content_hash_cache_hits_on_identical_rerun(self, tmp_path):
        engine = LintEngine(rules=[SeamRule()], root=tmp_path)
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        mod = pkg / "mod.py"
        mod.write_text("h = gateway.node.height\n")
        first = engine.lint_paths([mod])
        assert engine.stats.parses == 1
        second = engine.lint_paths([mod])
        assert second == first and rule_ids(first) == ["seam"]
        assert engine.stats.parses == 1
        assert engine.stats.cache_hits == 1
        mod.write_text("h = gateway.height()\n")  # edit invalidates
        assert engine.lint_paths([mod]) == []
        assert engine.stats.parses == 2

    def test_duplicate_and_overlapping_paths_checked_once(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        mod = pkg / "mod.py"
        mod.write_text("h = gateway.node.height\n")
        engine = LintEngine(rules=[SeamRule()], root=tmp_path)
        findings = engine.lint_paths([tmp_path / "src", mod, mod])
        assert rule_ids(findings) == ["seam"]
        assert engine.stats.files == 1

    def test_every_rule_declares_catalog_metadata(self):
        for cls in ALL_RULES:
            assert cls.rule_id and cls.category
            assert cls.description and cls.rationale
        assert len(rules_by_id()) == len(ALL_RULES) >= 6


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


class TestBaseline:
    def finding(self, message="m", line=3):
        return Finding(path="src/repro/x.py", line=line, rule="seam", message=message)

    def test_baselined_finding_is_suppressed(self):
        f = self.finding()
        baseline = Baseline([{"path": f.path, "rule": f.rule, "message": f.message}])
        result = baseline.partition([f])
        assert result.new == [] and result.suppressed == [f] and result.stale == []

    def test_line_drift_still_matches(self):
        baseline = Baseline(
            [{"path": "src/repro/x.py", "rule": "seam", "message": "m", "line": 3}]
        )
        result = baseline.partition([self.finding(line=40)])
        assert result.new == []

    def test_duplicated_violation_exceeds_budget(self):
        f = self.finding()
        baseline = Baseline([{"path": f.path, "rule": f.rule, "message": f.message}])
        result = baseline.partition([f, self.finding(line=9)])
        assert len(result.new) == 1 and len(result.suppressed) == 1

    def test_fixed_finding_goes_stale(self):
        baseline = Baseline(
            [{"path": "src/repro/x.py", "rule": "seam", "message": "m"}]
        )
        result = baseline.partition([])
        assert result.new == [] and len(result.stale) == 1

    def test_write_then_load_roundtrip(self, tmp_path):
        f = self.finding()
        path = tmp_path / "baseline.json"
        Baseline.write(path, [f])
        result = Baseline.load(path).partition([f])
        assert result.new == [] and result.stale == []

    def test_missing_file_is_empty_and_bad_entry_rejected(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == []
        with pytest.raises(ValueError):
            Baseline([{"path": "x"}])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


@pytest.fixture
def violation_tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("h = gateway.node.height\n")
    return tmp_path


class TestCli:
    def run_cli(self, args, capsys):
        code = main(args)
        return code, capsys.readouterr().out

    def test_exit_zero_and_text_summary_on_clean_tree(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "ok.py").write_text("x = 1\n")
        code, out = self.run_cli(
            [str(tmp_path / "src"), "--root", str(tmp_path)], capsys
        )
        assert code == 0
        assert "0 finding(s)" in out

    def test_exit_one_and_finding_line_on_violation(self, violation_tree, capsys):
        code, out = self.run_cli(
            [str(violation_tree / "src"), "--root", str(violation_tree)], capsys
        )
        assert code == 1
        assert "src/repro/core/bad.py:1: [seam]" in out

    def test_json_schema(self, violation_tree, capsys):
        code, out = self.run_cli(
            [
                str(violation_tree / "src"),
                "--root",
                str(violation_tree),
                "--format",
                "json",
            ],
            capsys,
        )
        assert code == 1
        payload = json.loads(out)
        assert set(payload) == {
            "version",
            "files",
            "findings",
            "baselined",
            "stale_baseline",
        }
        assert payload["version"] == 1 and payload["files"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == {"path", "line", "rule", "message"}
        assert finding["rule"] == "seam" and finding["line"] == 1

    def test_annotate_emits_github_error_commands(self, violation_tree, capsys):
        code, out = self.run_cli(
            [
                str(violation_tree / "src"),
                "--root",
                str(violation_tree),
                "--annotate",
            ],
            capsys,
        )
        assert code == 1
        assert "::error file=src/repro/core/bad.py,line=1," in out
        assert "title=repro-lint seam::" in out

    def test_baseline_suppresses_and_write_baseline_bootstraps(
        self, violation_tree, capsys
    ):
        baseline = violation_tree / "baseline.json"
        args = [
            str(violation_tree / "src"),
            "--root",
            str(violation_tree),
            "--baseline",
            str(baseline),
        ]
        code, out = self.run_cli(args + ["--write-baseline"], capsys)
        assert code == 0 and "wrote 1 finding(s)" in out
        code, out = self.run_cli(args, capsys)
        assert code == 0 and "1 baselined" in out

    def test_stale_baseline_reported_but_not_fatal(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "ok.py").write_text("x = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                [{"path": "src/repro/ok.py", "rule": "seam", "message": "gone"}]
            )
        )
        code, out = self.run_cli(
            [
                str(tmp_path / "src"),
                "--root",
                str(tmp_path),
                "--baseline",
                str(baseline),
            ],
            capsys,
        )
        assert code == 0
        assert "stale baseline entry" in out

    def test_exit_two_on_unknown_rule(self, capsys):
        code, out = self.run_cli(["--rules", "no-such-rule"], capsys)
        assert code == 2 and "unknown rule" in out

    def test_exit_two_on_missing_path(self, capsys):
        code, out = self.run_cli(["definitely/not/a/path"], capsys)
        assert code == 2 and "no such path" in out

    def test_exit_two_on_unreadable_baseline(self, violation_tree, capsys):
        bad = violation_tree / "bad-baseline.json"
        bad.write_text("{not json")
        code, out = self.run_cli(
            [
                str(violation_tree / "src"),
                "--root",
                str(violation_tree),
                "--baseline",
                str(bad),
            ],
            capsys,
        )
        assert code == 2 and "unreadable baseline" in out

    def test_rules_filter_runs_only_named_rules(self, violation_tree, capsys):
        code, out = self.run_cli(
            [
                str(violation_tree / "src"),
                "--root",
                str(violation_tree),
                "--rules",
                "wall-clock",
            ],
            capsys,
        )
        assert code == 0

    def test_list_rules_prints_catalog(self, capsys):
        code, out = self.run_cli(["--list-rules"], capsys)
        assert code == 0
        for cls in ALL_RULES:
            assert cls.rule_id in out

    def test_module_entrypoint_runs(self, violation_tree):
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.devtools.lint",
                str(violation_tree / "src"),
                "--root",
                str(violation_tree),
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "[seam]" in proc.stdout


# ---------------------------------------------------------------------------
# The repo gate (tier-1): the real tree is clean, and fast
# ---------------------------------------------------------------------------


class TestRepoGate:
    def test_src_tree_has_zero_findings_with_empty_baseline(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        assert baseline.entries == [], "the shipped baseline must stay empty"
        engine = LintEngine(root=REPO_ROOT)
        findings = engine.lint_paths([REPO_ROOT / "src"])
        result = baseline.partition(findings)
        assert result.new == [], "\n".join(f.render() for f in result.new)

    def test_whole_repo_is_clean(self):
        engine = LintEngine(root=REPO_ROOT)
        findings = engine.lint_paths(
            [
                REPO_ROOT / "src",
                REPO_ROOT / "tests",
                REPO_ROOT / "benchmarks",
                REPO_ROOT / "examples",
            ]
        )
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_full_sweep_is_fast_enough_to_gate_every_push(self):
        # The linter must stay cheap: single parse per file plus the
        # content-hash cache keep a full cold sweep well under ~5s.
        engine = LintEngine(root=REPO_ROOT)
        start = time.perf_counter()
        engine.lint_paths(
            [
                REPO_ROOT / "src",
                REPO_ROOT / "tests",
                REPO_ROOT / "benchmarks",
                REPO_ROOT / "examples",
            ]
        )
        cold = time.perf_counter() - start
        start = time.perf_counter()
        engine.lint_paths([REPO_ROOT / "src"])
        warm = time.perf_counter() - start
        assert cold < 5.0, f"cold lint sweep took {cold:.2f}s"
        assert warm < cold and engine.stats.cache_hits > 0
