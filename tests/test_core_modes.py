"""Tests for operating mode 2 (global vote) and the reputation extension."""

import numpy as np
import pytest

from repro.core.decentralized import DecentralizedConfig, DecentralizedFL
from repro.core.peer import PeerConfig
from repro.data.dataset import Dataset
from repro.errors import ConfigError
from repro.fl.trainer import TrainConfig
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.utils.rng import RngFactory


def easy_dataset(rng, n=100):
    x = rng.normal(size=(n, 4))
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return Dataset(x, y)


def shared_builder(rng):
    return Sequential([Dense(6, name="h"), ReLU(), Dense(2, name="out")]).build(
        np.random.default_rng(42), (4,)
    )


def make_driver(rounds=2, seed=7, epochs=1, **config_kwargs):
    peers = ("A", "B", "C")
    data_rng = np.random.default_rng(0)
    return DecentralizedFL(
        [
            PeerConfig(
                peer_id=p,
                train_config=TrainConfig(epochs=epochs, learning_rate=0.1),
                training_time=10.0,
                training_time_jitter=2.0,
            )
            for p in peers
        ],
        {p: easy_dataset(data_rng) for p in peers},
        {p: easy_dataset(data_rng, n=60) for p in peers},
        shared_builder,
        DecentralizedConfig(rounds=rounds, **config_kwargs),
        rng_factory=RngFactory(seed),
    )


class TestConfigValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            DecentralizedConfig(mode="oracle")

    def test_valid_modes(self):
        assert DecentralizedConfig(mode="personalized").mode == "personalized"
        assert DecentralizedConfig(mode="global_vote").mode == "global_vote"


class TestGlobalVoteMode:
    def test_all_peers_adopt_same_model(self):
        driver = make_driver(rounds=2, mode="global_vote")
        driver.run()
        x = np.random.default_rng(5).normal(size=(4, 4))
        outs = [peer.client.model.predict(x) for peer in driver.peers.values()]
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(outs[0], outs[2])

    def test_finalized_hash_on_chain(self):
        driver = make_driver(rounds=1, mode="global_vote")
        driver.run()
        hashes = {
            peer.gateway.call(peer.coordinator_address, "finalized_hash", round_id=1)
            for peer in driver.peers.values()
        }
        assert len(hashes) == 1
        final_hash = hashes.pop()
        assert final_hash is not None
        # The finalized aggregate is retrievable off-chain.
        assert driver.offchain.get_weights(final_hash)

    def test_round_logs_use_full_membership(self):
        driver = make_driver(rounds=1, mode="global_vote")
        logs = driver.run()
        for log in logs:
            assert log.chosen_combination == ("A", "B", "C")
            assert log.models_used == 3
            assert 0.0 <= log.chosen_accuracy <= 1.0

    def test_vote_tallies_recorded(self):
        driver = make_driver(rounds=1, mode="global_vote")
        driver.run()
        peer = driver.peers["A"]
        tally = peer.gateway.call(peer.coordinator_address, "vote_tally", round_id=1)
        assert sum(tally.values()) == 3  # every peer voted

    def test_accuracy_comparable_to_personalized(self):
        global_driver = make_driver(rounds=2, mode="global_vote")
        global_logs = global_driver.run()
        personal_driver = make_driver(rounds=2, mode="personalized")
        personal_logs = personal_driver.run()
        g = np.mean([log.chosen_accuracy for log in global_logs[-3:]])
        p = np.mean([log.chosen_accuracy for log in personal_logs[-3:]])
        assert abs(g - p) < 0.2


class TestReputationExtension:
    def test_scores_tracked_for_honest_peers(self):
        driver = make_driver(rounds=2, epochs=5, enable_reputation=True)
        driver.run()
        for peer_id in ("A", "B", "C"):
            score = driver.reputation_of(peer_id)
            # Honest IID peers rate each other positively: score >= initial.
            assert score >= 100, f"{peer_id} score {score}"

    def test_abnormal_peer_loses_reputation(self):
        driver = make_driver(rounds=2, epochs=5, enable_reputation=True)

        # Sabotage C's submissions: invert the classifier head, producing a
        # systematically wrong model (accuracy ~= 1 - honest accuracy).
        peer_c = driver.peers["C"]
        original = peer_c.train_and_commit

        def corrupted(round_id):
            update, tx = original(round_id)
            bad = {key: value.copy() for key, value in update.weights.items()}
            bad["out/W"] = -bad["out/W"]
            bad["out/b"] = -bad["out/b"]
            update.weights = bad
            commitment = driver.offchain.put_weights(bad)
            new_tx = peer_c.make_transaction(
                to=peer_c.model_store_address,
                method="submit_model",
                args={
                    "round_id": round_id,
                    "weights_hash": commitment,
                    "num_samples": update.num_samples,
                    "model_kind": peer_c.config.model_kind,
                    "reported_accuracy": update.reported_accuracy,
                },
                data=commitment.encode("ascii"),
            )
            del tx  # the honest commitment is never broadcast
            return update, new_tx

        peer_c.train_and_commit = corrupted
        driver.run()
        assert driver.reputation_of("C") < 100
        assert driver.reputation_of("A") >= 100

    def test_reputation_consistent_across_viewers(self):
        driver = make_driver(rounds=1, enable_reputation=True)
        driver.run()
        scores = {
            viewer: driver.reputation_of("B", viewer_id=viewer) for viewer in ("A", "B", "C")
        }
        assert len(set(scores.values())) == 1

    def test_reputation_off_by_default(self):
        driver = make_driver(rounds=1)
        driver.run()
        # Nobody rated anybody: everybody sits at the initial score.
        for peer_id in ("A", "B", "C"):
            assert driver.reputation_of(peer_id) == 100
