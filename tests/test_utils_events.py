"""Tests for the simulated clock and discrete-event engine."""

import pytest

from repro.utils.clock import SimClock
from repro.utils.events import EventQueue, Simulator


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(2.0, lambda: None, "late")
        queue.push(1.0, lambda: None, "early")
        assert queue.pop().label == "early"
        assert queue.pop().label == "late"

    def test_fifo_at_equal_times(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, "first")
        queue.push(1.0, lambda: None, "second")
        assert queue.pop().label == "first"
        assert queue.pop().label == "second"

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, "dead")
        queue.push(2.0, lambda: None, "alive")
        event.cancel()
        assert queue.pop().label == "alive"

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(3.0, lambda: None)
        assert queue.peek_time() == 3.0

    def test_empty_pop_returns_none(self):
        assert EventQueue().pop() is None


class TestSimulator:
    def test_runs_in_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_in(2.0, lambda: fired.append("late"))
        sim.schedule_in(1.0, lambda: fired.append("early"))
        sim.run()
        assert fired == ["early", "late"]

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        times = []
        sim.schedule_in(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.clock.advance(5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule_in(-1.0, lambda: None)

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule_in(1.0, lambda: fired.append(1))
        sim.schedule_in(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 2]

    def test_max_events_budget(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule_in(float(i + 1), lambda i=i: fired.append(i))
        processed = sim.run(max_events=3)
        assert processed == 3
        assert fired == [0, 1, 2]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append("a")
            sim.schedule_in(1.0, lambda: fired.append("b"))

        sim.schedule_in(1.0, chain)
        sim.run()
        assert fired == ["a", "b"]
        assert sim.now == 2.0

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        sim = Simulator()
        sim.schedule_in(1.0, lambda: None)
        sim.schedule_in(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2
