"""Tests for the dataset container, synthetic generator, partitioners, transforms."""

import numpy as np
import pytest

from repro.data.dataset import Dataset, batch_iterator, train_test_split
from repro.data.partition import partition_dirichlet, partition_iid, partition_shards
from repro.data.synthetic import (
    CIFAR10_LABELS,
    SyntheticImageDataset,
    SyntheticSpec,
    client_class_probs,
    make_cifar10_like,
)
from repro.data.transforms import (
    augment_batch,
    normalize,
    per_dataset_stats,
    random_crop_shift,
    random_flip,
)
from repro.errors import DataError, PartitionError, ShapeError


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def dataset(rng):
    return Dataset(rng.normal(size=(50, 8)), rng.integers(0, 5, size=50))


class TestDataset:
    def test_length(self, dataset):
        assert len(dataset) == 50

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ShapeError):
            Dataset(rng.normal(size=(5, 2)), rng.integers(0, 2, size=4))

    def test_2d_labels_rejected(self, rng):
        with pytest.raises(ShapeError):
            Dataset(rng.normal(size=(5, 2)), rng.integers(0, 2, size=(5, 1)))

    def test_subset_copies(self, dataset):
        sub = dataset.subset(np.array([0, 1, 2]))
        sub.x[...] = 0.0
        assert not np.allclose(dataset.x[:3], 0.0)

    def test_flattened(self, rng):
        images = Dataset(rng.normal(size=(4, 2, 2, 3)), rng.integers(0, 2, size=4))
        flat = images.flattened()
        assert flat.x.shape == (4, 12)

    def test_class_counts(self):
        ds = Dataset(np.zeros((4, 1)), np.array([0, 0, 2, 2]))
        np.testing.assert_array_equal(ds.class_counts(3), [2, 0, 2])

    def test_take(self, dataset):
        assert len(dataset.take(10)) == 10
        with pytest.raises(DataError):
            dataset.take(1000)


class TestBatchIterator:
    def test_covers_everything(self, dataset):
        seen = sum(len(x) for x, _y in batch_iterator(dataset, 16))
        assert seen == 50

    def test_drop_last(self, dataset):
        batches = list(batch_iterator(dataset, 16, drop_last=True))
        assert all(len(x) == 16 for x, _y in batches)
        assert len(batches) == 3

    def test_shuffle_changes_order(self, dataset, rng):
        plain = next(batch_iterator(dataset, 50))[1]
        shuffled = next(batch_iterator(dataset, 50, rng=rng))[1]
        assert not np.array_equal(plain, shuffled)

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(DataError):
            list(batch_iterator(dataset, 0))


class TestTrainTestSplit:
    def test_sizes(self, dataset, rng):
        train, test = train_test_split(dataset, 0.2, rng)
        assert len(train) == 40 and len(test) == 10

    def test_disjoint(self, rng):
        ds = Dataset(np.arange(20).reshape(20, 1).astype(float), np.zeros(20, dtype=int))
        train, test = train_test_split(ds, 0.25, rng)
        train_vals = set(train.x.ravel())
        test_vals = set(test.x.ravel())
        assert not train_vals & test_vals

    def test_invalid_fraction(self, dataset, rng):
        with pytest.raises(DataError):
            train_test_split(dataset, 0.0, rng)
        with pytest.raises(DataError):
            train_test_split(dataset, 1.0, rng)


class TestSyntheticSpec:
    def test_flat_dim(self):
        assert SyntheticSpec().flat_dim == 3072

    def test_invalid_hard_classes(self):
        with pytest.raises(DataError):
            SyntheticSpec(hard_classes=11)

    def test_invalid_label_noise(self):
        with pytest.raises(DataError):
            SyntheticSpec(label_noise=1.0)

    def test_invalid_modes(self):
        with pytest.raises(DataError):
            SyntheticSpec(modes_per_class=0)

    def test_labels_available(self):
        assert len(CIFAR10_LABELS) == 10


class TestSyntheticGeneration:
    def test_shapes_flat(self, rng):
        factory = SyntheticImageDataset(SyntheticSpec())
        ds = factory.sample(20, rng)
        assert ds.x.shape == (20, 3072)
        assert ds.y.shape == (20,)

    def test_shapes_image(self, rng):
        factory = SyntheticImageDataset(SyntheticSpec())
        ds = factory.sample(8, rng, flat=False)
        assert ds.x.shape == (8, 32, 32, 3)

    def test_labels_in_range(self, rng):
        factory = SyntheticImageDataset(SyntheticSpec())
        ds = factory.sample(200, rng)
        assert ds.y.min() >= 0 and ds.y.max() < 10

    def test_seed_reproducible(self):
        spec = SyntheticSpec(seed=5)
        a = SyntheticImageDataset(spec).sample(10, np.random.default_rng(1))
        b = SyntheticImageDataset(spec).sample(10, np.random.default_rng(1))
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_different_spec_seed_different_task(self, rng):
        a = SyntheticImageDataset(SyntheticSpec(seed=1)).mode_of(0, 0)
        b = SyntheticImageDataset(SyntheticSpec(seed=2)).mode_of(0, 0)
        assert not np.allclose(a, b)

    def test_invalid_n(self, rng):
        factory = SyntheticImageDataset(SyntheticSpec())
        with pytest.raises(DataError):
            factory.sample(0, rng)

    def test_mode_of_bounds(self):
        factory = SyntheticImageDataset(SyntheticSpec())
        with pytest.raises(DataError):
            factory.mode_of(10, 0)
        with pytest.raises(DataError):
            factory.mode_of(0, 99)

    def test_label_noise_flips_some(self):
        clean_spec = SyntheticSpec(label_noise=0.0, seed=3)
        noisy_spec = SyntheticSpec(label_noise=0.5, seed=3)
        clean = SyntheticImageDataset(clean_spec).sample(500, np.random.default_rng(1))
        noisy = SyntheticImageDataset(noisy_spec).sample(500, np.random.default_rng(1))
        assert (clean.y != noisy.y).mean() > 0.2

    def test_hard_classes_antipodal(self):
        factory = SyntheticImageDataset(SyntheticSpec(hard_classes=2))
        np.testing.assert_allclose(factory.mode_of(0, 0), -factory.mode_of(0, 1))

    def test_class_probs_skew(self, rng):
        factory = SyntheticImageDataset(SyntheticSpec(label_noise=0.0))
        probs = np.zeros(10)
        probs[3] = 1.0
        ds = factory.sample(50, rng, class_probs=probs)
        assert (ds.y == 3).all()

    def test_class_probs_validation(self, rng):
        factory = SyntheticImageDataset(SyntheticSpec())
        with pytest.raises(DataError):
            factory.sample(5, rng, class_probs=np.ones(10))  # not normalized
        with pytest.raises(DataError):
            factory.sample(5, rng, class_probs=np.ones(5) / 5)  # wrong shape

    def test_pretrained_backbone_shapes(self):
        spec = SyntheticSpec()
        projection, anchors = SyntheticImageDataset(spec).pretrained_backbone()
        assert projection.shape == (3072, spec.latent_dim)
        assert anchors.shape == (spec.num_classes * spec.modes_per_class, spec.latent_dim)

    def test_backbone_mismatch_deterministic(self):
        factory = SyntheticImageDataset(SyntheticSpec())
        p1, _ = factory.pretrained_backbone(mismatch=0.1)
        p2, _ = factory.pretrained_backbone(mismatch=0.1)
        np.testing.assert_array_equal(p1, p2)

    def test_backbone_mismatch_changes_projection(self):
        factory = SyntheticImageDataset(SyntheticSpec())
        clean, _ = factory.pretrained_backbone(mismatch=0.0)
        noisy, _ = factory.pretrained_backbone(mismatch=0.1)
        assert not np.allclose(clean, noisy)

    def test_make_cifar10_like(self, rng):
        train, test = make_cifar10_like(SyntheticSpec(), 30, 10, rng)
        assert len(train) == 30 and len(test) == 10


class TestClientClassProbs:
    def test_uniform_when_zero_skew(self):
        probs = client_class_probs(0, 3, skew=0.0)
        np.testing.assert_allclose(probs, 0.1)

    def test_favoured_classes_heavier(self):
        probs = client_class_probs(0, 3, skew=1.0)
        assert probs[0] == pytest.approx(2 * probs[1])
        assert probs.sum() == pytest.approx(1.0)

    def test_clients_favour_disjoint_classes(self):
        p0 = client_class_probs(0, 3, skew=1.0)
        p1 = client_class_probs(1, 3, skew=1.0)
        assert p0.argmax() != p1.argmax()

    def test_validation(self):
        with pytest.raises(DataError):
            client_class_probs(3, 3)
        with pytest.raises(DataError):
            client_class_probs(0, 3, skew=-1.0)


class TestPartitioners:
    @pytest.fixture
    def labelled(self, rng):
        return Dataset(rng.normal(size=(120, 4)), np.repeat(np.arange(10), 12))

    def test_iid_sizes(self, labelled, rng):
        plan = partition_iid(labelled, ["A", "B", "C"], rng)
        assert sum(plan.sizes().values()) == 120
        assert all(size == 40 for size in plan.sizes().values())

    def test_iid_disjoint(self, rng):
        ds = Dataset(np.arange(30).reshape(30, 1).astype(float), np.zeros(30, dtype=int))
        plan = partition_iid(ds, ["A", "B"], rng)
        a = set(plan.client_datasets["A"].x.ravel())
        b = set(plan.client_datasets["B"].x.ravel())
        assert not a & b

    def test_duplicate_ids_rejected(self, labelled, rng):
        with pytest.raises(PartitionError):
            partition_iid(labelled, ["A", "A"], rng)

    def test_empty_clients_rejected(self, labelled, rng):
        with pytest.raises(PartitionError):
            partition_iid(labelled, [], rng)

    def test_dirichlet_covers_everything(self, labelled, rng):
        plan = partition_dirichlet(labelled, ["A", "B", "C"], rng, alpha=0.5)
        assert sum(plan.sizes().values()) == 120

    def test_dirichlet_skews_more_at_low_alpha(self, labelled):
        def imbalance(alpha, seed):
            plan = partition_dirichlet(labelled, ["A", "B", "C"], np.random.default_rng(seed), alpha=alpha)
            dist = plan.label_distribution(10)
            stds = [np.std([dist[c][k] for c in dist]) for k in range(10)]
            return np.mean(stds)

        assert imbalance(0.1, 3) > imbalance(100.0, 3)

    def test_dirichlet_invalid_alpha(self, labelled, rng):
        with pytest.raises(PartitionError):
            partition_dirichlet(labelled, ["A"], rng, alpha=0.0)

    def test_shards_pathological_noniid(self, labelled, rng):
        plan = partition_shards(labelled, ["A", "B", "C"], rng, shards_per_client=2)
        # Each client sees few distinct labels (2 shards x <=3 labels each).
        for ds in plan.client_datasets.values():
            assert len(np.unique(ds.y)) <= 6

    def test_shards_too_many_rejected(self, rng):
        tiny = Dataset(np.zeros((4, 1)), np.zeros(4, dtype=int))
        with pytest.raises(PartitionError):
            partition_shards(tiny, ["A", "B", "C"], rng, shards_per_client=2)

    def test_label_distribution_reporting(self, labelled, rng):
        plan = partition_iid(labelled, ["A", "B"], rng)
        dist = plan.label_distribution(10)
        assert set(dist) == {"A", "B"}
        assert dist["A"].sum() + dist["B"].sum() == 120


class TestTransforms:
    def test_normalize(self):
        x = np.array([2.0, 4.0])
        np.testing.assert_allclose(normalize(x, mean=3.0, std=1.0), [-1.0, 1.0])

    def test_normalize_zero_std_safe(self):
        assert np.isfinite(normalize(np.ones(3), std=0.0)).all()

    def test_per_dataset_stats_images(self, rng):
        x = rng.normal(2.0, 3.0, size=(50, 4, 4, 3))
        mean, std = per_dataset_stats(x)
        assert mean.shape == (3,)
        np.testing.assert_allclose(mean, 2.0, atol=0.5)
        np.testing.assert_allclose(std, 3.0, atol=0.5)

    def test_flip_preserves_shape(self, rng):
        x = rng.normal(size=(10, 8, 8, 3))
        assert random_flip(x, rng).shape == x.shape

    def test_flip_p1_mirrors(self, rng):
        x = rng.normal(size=(2, 4, 4, 1))
        flipped = random_flip(x, rng, p=1.0)
        np.testing.assert_array_equal(flipped, x[:, :, ::-1, :])

    def test_flip_p0_identity(self, rng):
        x = rng.normal(size=(2, 4, 4, 1))
        np.testing.assert_array_equal(random_flip(x, rng, p=0.0), x)

    def test_shift_preserves_shape(self, rng):
        x = rng.normal(size=(5, 8, 8, 3))
        assert random_crop_shift(x, rng).shape == x.shape

    def test_zero_shift_identity(self, rng):
        x = rng.normal(size=(3, 4, 4, 2))
        np.testing.assert_array_equal(random_crop_shift(x, rng, max_shift=0), x)

    def test_augment_batch(self, rng):
        x = rng.normal(size=(6, 8, 8, 3))
        assert augment_batch(x, rng).shape == x.shape

    def test_non_nhwc_rejected(self, rng):
        with pytest.raises(ShapeError):
            random_flip(rng.normal(size=(4, 8)), rng)
