"""Classification metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of argmax predictions matching integer labels.

    ``predictions`` may be logits/probabilities ``(batch, classes)`` or
    already-argmaxed class ids ``(batch,)``.
    """
    if predictions.ndim == 2:
        predicted = predictions.argmax(axis=1)
    elif predictions.ndim == 1:
        predicted = predictions
    else:
        raise ShapeError(f"predictions must be 1-D or 2-D, got {predictions.shape}")
    if predicted.shape[0] != labels.shape[0]:
        raise ShapeError(f"{predicted.shape[0]} predictions vs {labels.shape[0]} labels")
    if predicted.shape[0] == 0:
        return 0.0
    return float((predicted == labels).mean())


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose true label is in the top-k logits."""
    if logits.ndim != 2:
        raise ShapeError(f"logits must be (batch, classes), got {logits.shape}")
    if k < 1 or k > logits.shape[1]:
        raise ValueError(f"k={k} out of range for {logits.shape[1]} classes")
    top_k = np.argsort(logits, axis=1)[:, -k:]
    hits = (top_k == labels[:, None]).any(axis=1)
    return float(hits.mean()) if len(hits) else 0.0


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """``(num_classes, num_classes)`` matrix, rows = true, cols = predicted."""
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    for true, pred in zip(labels, predictions):
        matrix[int(true), int(pred)] += 1
    return matrix


def per_class_accuracy(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Recall per class; NaN-free (classes with no samples report 0)."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    totals = matrix.sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.where(totals > 0, np.diag(matrix) / np.maximum(totals, 1), 0.0)
    return result
