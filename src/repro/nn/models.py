"""The paper's two evaluation models.

* **SimpleNN** — the paper's hand-built network ("constructed from scratch
  with only 62K parameters").  Ours is a two-hidden-layer MLP over the
  flattened 32x32x3 image, sized to land near 62k parameters, trained from
  scratch.  Its signature dynamic: starts near chance and climbs slowly
  (paper: 0.14 -> 0.58 over ten rounds).

* **EfficientNetB0Sim** — the paper fine-tunes EfficientNet-B0 (5.3M
  params) by "modifying its final layer" (transfer learning).  Our analog
  keeps the same *structure*: a frozen feature backbone shared by every
  peer (:class:`~repro.nn.layers.FrozenFeatureMap`, standing in for the
  pretrained trunk) and a trainable linear head.  Signature dynamic: starts
  high (paper: ~0.78 round 1) and plateaus (~0.85), and aggregation
  combinations matter more than for SimpleNN.

A CNN variant (``build_simple_cnn``) is provided for completeness and used
by unit tests; the experiment harness defaults to the MLP models for CPU
speed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    FrozenFeatureMap,
    MaxPool2D,
    PretrainedRBFBackbone,
    ReLU,
)
from repro.nn.model import Sequential

#: Input shape of the (synthetic) CIFAR-10-like images.
IMAGE_SHAPE = (32, 32, 3)
NUM_CLASSES = 10

#: Flattened input dimension for MLP-style models.
FLAT_DIM = int(np.prod(IMAGE_SHAPE))


def build_simple_nn(rng: np.random.Generator, input_dim: int = FLAT_DIM, num_classes: int = NUM_CLASSES) -> Sequential:
    """The paper's ~62k-parameter SimpleNN, trained from scratch.

    Architecture: 3072 -> 20 -> 24 -> 10 MLP with ReLU, which gives
    3072*20 + 20 + 20*24 + 24 + 24*10 + 10 = 62,214 parameters — matching
    the paper's "only 62K parameters".
    """
    model = Sequential(
        [
            Dense(20, name="hidden1"),
            ReLU(),
            Dense(24, name="hidden2"),
            ReLU(),
            Dense(num_classes, name="head"),
        ],
        name="simple_nn",
    )
    return model.build(rng, (input_dim,))


def build_efficientnet_b0_sim(
    rng: np.random.Generator,
    input_dim: int = FLAT_DIM,
    num_classes: int = NUM_CLASSES,
    backbone: tuple[np.ndarray, np.ndarray] | None = None,
    sigma: float = 0.6,
    feature_dim: int = 256,
    backbone_seed: int = 2024,
) -> Sequential:
    """Transfer-learning analog of EfficientNet-B0.

    A frozen backbone (identical across peers, like a shared pretrained
    checkpoint) feeds a trainable linear head — the exact "modify its final
    layer" recipe of the paper at CPU scale.

    ``backbone`` is the (projection, anchors) pair from
    :meth:`repro.data.synthetic.SyntheticImageDataset.pretrained_backbone`
    — a trunk pretrained on the experiment's visual domain, which is what
    gives the paper's round-1 ~0.78 accuracy.  Without it, a generic frozen
    random-feature trunk (:class:`~repro.nn.layers.FrozenFeatureMap`) is
    used — structurally identical but domain-agnostic, like transferring a
    checkpoint from an unrelated dataset.
    """
    if backbone is not None:
        projection, anchors = backbone
        trunk = PretrainedRBFBackbone(projection, anchors, sigma=sigma, name="backbone")
    else:
        trunk = FrozenFeatureMap(feature_dim, backbone_seed=backbone_seed, name="backbone")
    model = Sequential(
        [trunk, Dense(num_classes, name="head")],
        name="efficientnet_b0_sim",
    )
    return model.build(rng, (input_dim,))


def build_simple_cnn(rng: np.random.Generator, num_classes: int = NUM_CLASSES) -> Sequential:
    """A small convolutional classifier over (32, 32, 3) images.

    Not used in the headline tables (too slow for the full sweep on CPU)
    but exercises Conv2D/MaxPool2D end to end in tests and examples.
    """
    model = Sequential(
        [
            Conv2D(8, kernel_size=3, padding="same", name="conv1"),
            ReLU(),
            MaxPool2D(2),
            Conv2D(16, kernel_size=3, padding="same", name="conv2"),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(32, name="fc"),
            ReLU(),
            Dropout(0.25, rng=rng),
            Dense(num_classes, name="head"),
        ],
        name="simple_cnn",
    )
    return model.build(rng, IMAGE_SHAPE)


#: Registry used by experiment configs.
MODEL_BUILDERS = {
    "simple_nn": build_simple_nn,
    "efficientnet_b0_sim": build_efficientnet_b0_sim,
}


def build_model(kind: str, rng: np.random.Generator, **kwargs) -> Sequential:
    """Build a registered model by name (``simple_nn`` / ``efficientnet_b0_sim``)."""
    try:
        builder = MODEL_BUILDERS[kind]
    except KeyError:
        raise ConfigError(
            f"unknown model kind {kind!r}; choose from {sorted(MODEL_BUILDERS)}"
        ) from None
    return builder(rng, **kwargs)


def count_parameters(model: Sequential, trainable_only: bool = False) -> int:
    """Parameter count helper mirroring the paper's reporting."""
    return model.parameter_count(trainable_only=trainable_only)
