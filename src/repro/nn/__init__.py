"""From-scratch numpy deep-learning substrate (the PyTorch stand-in).

Provides the pieces FedAvg-style federated learning needs:

* layers with explicit forward/backward (:mod:`repro.nn.layers`) — the
  conv/pooling hot paths are vectorized (stride-tricks im2col, a col2im
  scatter whose formulation was chosen by measurement, tie-normalized
  pooling backward),
* losses (:mod:`repro.nn.losses`) and optimizers (:mod:`repro.nn.optimizers`),
* a :class:`~repro.nn.model.Sequential` container with named parameters,
* weight (de)serialization for on-chain commitment
  (:mod:`repro.nn.serialize`), centred on the cached
  :class:`~repro.nn.serialize.WeightArchive` whose single encoding serves
  payload, commitment hash, and size on the commitment pipeline,
* the two evaluation models of the paper (:mod:`repro.nn.models`):
  ``SimpleNN`` (~62k params, trained from scratch) and
  ``EfficientNetB0Sim`` (frozen pretrained-style backbone + trainable head).
"""

from repro.nn.initializers import he_init, xavier_init, zeros_init
from repro.nn.layers import (
    Layer,
    Dense,
    ReLU,
    Softmax,
    Dropout,
    Flatten,
    Conv2D,
    MaxPool2D,
    BatchNorm,
    FrozenFeatureMap,
    PretrainedRBFBackbone,
)
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optimizers import SGD, Momentum, Adam
from repro.nn.model import Sequential
from repro.nn.serialize import (
    SERIALIZATION_STATS,
    WeightArchive,
    as_archive,
    weights_to_bytes,
    weights_from_bytes,
    weights_hash,
    weights_size_bytes,
)
from repro.nn.metrics import accuracy, confusion_matrix, top_k_accuracy
from repro.nn.models import build_simple_nn, build_efficientnet_b0_sim, build_model, count_parameters

__all__ = [
    "he_init",
    "xavier_init",
    "zeros_init",
    "Layer",
    "Dense",
    "ReLU",
    "Softmax",
    "Dropout",
    "Flatten",
    "Conv2D",
    "MaxPool2D",
    "BatchNorm",
    "FrozenFeatureMap",
    "PretrainedRBFBackbone",
    "CrossEntropyLoss",
    "MSELoss",
    "SGD",
    "Momentum",
    "Adam",
    "Sequential",
    "SERIALIZATION_STATS",
    "WeightArchive",
    "as_archive",
    "weights_to_bytes",
    "weights_from_bytes",
    "weights_hash",
    "weights_size_bytes",
    "accuracy",
    "confusion_matrix",
    "top_k_accuracy",
    "build_simple_nn",
    "build_efficientnet_b0_sim",
    "build_model",
    "count_parameters",
]
