"""Neural-network layers with explicit forward/backward passes.

Each layer owns named parameters (``params``) and matching gradients
(``grads``).  ``forward`` caches what ``backward`` needs; ``backward``
receives dL/d(output) and returns dL/d(input), accumulating parameter
gradients.  Layers flagged ``trainable = False`` (the frozen backbone)
skip gradient accumulation, implementing transfer learning.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import NotBuiltError, ShapeError
from repro.nn.initializers import he_init, xavier_init, zeros_init


class Layer:
    """Base layer: parameter bookkeeping plus the forward/backward contract."""

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__.lower()
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.trainable = True
        self.built = False

    def build(self, rng: np.random.Generator, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Create parameters for ``input_shape`` (sans batch); return output shape."""
        self.built = True
        return input_shape

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        """Compute outputs; cache for backward when ``training``."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Propagate gradients; accumulate parameter grads; return input grad."""
        raise NotImplementedError

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero."""
        for key, value in self.params.items():
            self.grads[key] = np.zeros_like(value)

    def parameter_count(self) -> int:
        """Total number of scalar parameters in this layer."""
        return sum(int(value.size) for value in self.params.values())

    def _require_built(self) -> None:
        if not self.built:
            raise NotBuiltError(f"layer {self.name!r} used before build()")


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(self, units: int, name: str = "") -> None:
        super().__init__(name or f"dense_{units}")
        if units < 1:
            raise ValueError("units must be >= 1")
        self.units = units
        self._cache_x: Optional[np.ndarray] = None

    def build(self, rng: np.random.Generator, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 1:
            raise ShapeError(f"Dense expects flat input, got shape {input_shape}")
        fan_in = input_shape[0]
        self.params = {
            "W": he_init(rng, (fan_in, self.units), fan_in=fan_in),
            "b": zeros_init((self.units,)),
        }
        self.zero_grads()
        self.built = True
        return (self.units,)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._require_built()
        if x.ndim != 2 or x.shape[1] != self.params["W"].shape[0]:
            raise ShapeError(
                f"{self.name}: expected (batch, {self.params['W'].shape[0]}), got {x.shape}"
            )
        if training:
            self._cache_x = x
        return x @ self.params["W"] + self.params["b"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._cache_x is None:
            raise NotBuiltError(f"{self.name}: backward before forward")
        if self.trainable:
            self.grads["W"] += self._cache_x.T @ grad_out
            self.grads["b"] += grad_out.sum(axis=0)
        return grad_out @ self.params["W"].T


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self._mask: Optional[np.ndarray] = None
        self.built = True

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mask = x > 0
        if training:
            self._mask = mask
        return np.where(mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise NotBuiltError(f"{self.name}: backward before forward")
        return grad_out * self._mask


class Softmax(Layer):
    """Softmax over the last axis (inference-only head; training pairs
    logits with :class:`~repro.nn.losses.CrossEntropyLoss` instead)."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self.built = True
        self._cache_y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        y = exp / exp.sum(axis=-1, keepdims=True)
        if training:
            self._cache_y = y
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_y is None:
            raise NotBuiltError(f"{self.name}: backward before forward")
        y = self._cache_y
        dot = (grad_out * y).sum(axis=-1, keepdims=True)
        return y * (grad_out - dot)


class Dropout(Layer):
    """Inverted dropout; identity at inference."""

    def __init__(self, rate: float, rng: Optional[np.random.Generator] = None, name: str = "") -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None
        self.built = True

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Flatten(Layer):
    """Collapse all non-batch dimensions."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self._input_shape: Optional[tuple[int, ...]] = None

    def build(self, rng: np.random.Generator, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        self.built = True
        return (int(np.prod(input_shape)),)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise NotBuiltError(f"{self.name}: backward before forward")
        return grad_out.reshape(self._input_shape)


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> tuple[np.ndarray, int, int]:
    """Rearrange (N, H, W, C) into (N, OH, OW, kh*kw*C) patches."""
    n, h, w, c = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    strides = x.strides
    shape = (n, oh, ow, kh, kw, c)
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=shape,
        strides=(strides[0], strides[1] * stride, strides[2] * stride, strides[1], strides[2], strides[3]),
        writeable=False,
    )
    return view.reshape(n, oh, ow, kh * kw * c), oh, ow


def _col2im(dcols: np.ndarray, xp_shape: tuple[int, ...], k: int, stride: int) -> np.ndarray:
    """Scatter (N, OH, OW, k, k, C) patch gradients back onto the input grid.

    Non-overlapping windows (``stride == k``, the patch-embedding case) are
    a pure transpose/reshape assignment — no unfold at all.  Overlapping
    windows need summation into shared cells, done as a bounded ``k*k``
    unfold of full-array strided adds.  Loop-free alternatives were
    measured and rejected: a dilated full-correlation matmul and an
    einsum over a sliding-window view are both 2-10x slower here because
    they materialize the k^2-times-larger column tensor, while this
    unfold is at most 25 fully vectorized adds.
    """
    n, oh, ow = dcols.shape[:3]
    dxp = np.zeros(xp_shape, dtype=dcols.dtype)
    if stride == k and oh * k <= xp_shape[1] and ow * k <= xp_shape[2]:
        target = dxp[:, : oh * k, : ow * k, :].reshape(n, oh, k, ow, k, xp_shape[3])
        target[...] = dcols.transpose(0, 1, 3, 2, 4, 5)
        return dxp
    for i in range(k):
        for j in range(k):
            dxp[:, i : i + oh * stride : stride, j : j + ow * stride : stride, :] += dcols[:, :, :, i, j, :]
    return dxp


class Conv2D(Layer):
    """2D convolution over NHWC input with 'valid' or 'same' padding."""

    def __init__(self, filters: int, kernel_size: int = 3, stride: int = 1, padding: str = "same", name: str = "") -> None:
        super().__init__(name or f"conv_{filters}")
        if padding not in ("same", "valid"):
            raise ValueError(f"padding must be 'same' or 'valid', got {padding!r}")
        self.filters = filters
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self._cache: Optional[tuple] = None
        self._pad: tuple[int, int] = (0, 0)

    def build(self, rng: np.random.Generator, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 3:
            raise ShapeError(f"Conv2D expects (H, W, C) input, got {input_shape}")
        h, w, c = input_shape
        k = self.kernel_size
        fan_in = k * k * c
        self.params = {
            "W": he_init(rng, (k, k, c, self.filters), fan_in=fan_in),
            "b": zeros_init((self.filters,)),
        }
        self.zero_grads()
        if self.padding == "same":
            total = max(k - self.stride, 0) if h % self.stride == 0 else max(k - h % self.stride, 0)
            self._pad = (total // 2, total - total // 2)
            oh = int(np.ceil(h / self.stride))
            ow = int(np.ceil(w / self.stride))
        else:
            self._pad = (0, 0)
            oh = (h - k) // self.stride + 1
            ow = (w - k) // self.stride + 1
        self.built = True
        return (oh, ow, self.filters)

    def _padded(self, x: np.ndarray) -> np.ndarray:
        lo, hi = self._pad
        if lo == 0 and hi == 0:
            return x
        return np.pad(x, ((0, 0), (lo, hi), (lo, hi), (0, 0)))

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._require_built()
        k = self.kernel_size
        xp = self._padded(x)
        cols, oh, ow = _im2col(xp, k, k, self.stride)
        w_mat = self.params["W"].reshape(-1, self.filters)
        out = cols @ w_mat + self.params["b"]
        if training:
            self._cache = (x.shape, xp.shape, cols)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        self._require_built()
        if self._cache is None:
            raise NotBuiltError(f"{self.name}: backward before forward")
        x_shape, xp_shape, cols = self._cache
        n, oh, ow, _ = grad_out.shape
        k = self.kernel_size
        s = self.stride
        c = xp_shape[3]

        grad_flat = grad_out.reshape(-1, self.filters)
        if self.trainable:
            self.grads["W"] += (cols.reshape(-1, cols.shape[-1]).T @ grad_flat).reshape(self.params["W"].shape)
            self.grads["b"] += grad_flat.sum(axis=0)

        w_mat = self.params["W"].reshape(-1, self.filters)
        dcols = (grad_flat @ w_mat.T).reshape(n, oh, ow, k, k, c)
        dxp = _col2im(dcols, xp_shape, k, s)
        lo, hi = self._pad
        if lo or hi:
            dxp = dxp[:, lo : dxp.shape[1] - hi, lo : dxp.shape[2] - hi, :]
        return dxp.reshape(x_shape)


class MaxPool2D(Layer):
    """Max pooling over NHWC input with non-overlapping windows.

    Forward is a reshape + axis max (no copies beyond the output).
    Backward broadcasts each output gradient across its window's maxima
    mask, *split equally among ties*: the previous formulation handed
    every tied maximum the full gradient, inflating it by the tie count
    (common after ReLU zeros).  Equal split is the symmetric subgradient
    and costs one small reduction.  An argmax/index-scatter variant was
    measured 2-3x slower than this mask formulation.
    """

    def __init__(self, pool_size: int = 2, name: str = "") -> None:
        super().__init__(name)
        self.pool_size = pool_size
        self._cache: Optional[tuple] = None

    def build(self, rng: np.random.Generator, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        h, w, c = input_shape
        p = self.pool_size
        if h % p or w % p:
            raise ShapeError(f"MaxPool2D: input {input_shape} not divisible by pool {p}")
        self.built = True
        return (h // p, w // p, c)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, h, w, c = x.shape
        p = self.pool_size
        windows = x.reshape(n, h // p, p, w // p, p, c)
        out = windows.max(axis=(2, 4))
        if training:
            # Cache the window view (no copy) and the maxima; the mask is
            # built on demand in backward, keeping forward allocation-free.
            self._cache = (x.shape, windows, out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise NotBuiltError(f"{self.name}: backward before forward")
        x_shape, windows, out = self._cache
        mask = windows == out[:, :, None, :, None, :]
        ties = mask.sum(axis=(2, 4))
        scaled = (grad_out / ties)[:, :, None, :, None, :]
        return (scaled * mask).reshape(x_shape)


class BatchNorm(Layer):
    """Batch normalization over the feature axis with running statistics."""

    def __init__(self, momentum: float = 0.9, epsilon: float = 1e-5, name: str = "") -> None:
        super().__init__(name)
        self.momentum = momentum
        self.epsilon = epsilon
        self.running_mean: Optional[np.ndarray] = None
        self.running_var: Optional[np.ndarray] = None
        self._cache: Optional[tuple] = None

    def build(self, rng: np.random.Generator, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        features = input_shape[-1]
        self.params = {"gamma": np.ones(features), "beta": np.zeros(features)}
        self.zero_grads()
        self.running_mean = np.zeros(features)
        self.running_var = np.ones(features)
        self.built = True
        return input_shape

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._require_built()
        axes = tuple(range(x.ndim - 1))
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        x_hat = (x - mean) / np.sqrt(var + self.epsilon)
        if training:
            self._cache = (x_hat, var, axes, x.shape)
        return self.params["gamma"] * x_hat + self.params["beta"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise NotBuiltError(f"{self.name}: backward before forward")
        x_hat, var, axes, x_shape = self._cache
        m = int(np.prod([x_shape[a] for a in axes]))
        if self.trainable:
            self.grads["gamma"] += (grad_out * x_hat).sum(axis=axes)
            self.grads["beta"] += grad_out.sum(axis=axes)
        gamma = self.params["gamma"]
        dx_hat = grad_out * gamma
        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        return (
            inv_std
            / m
            * (m * dx_hat - dx_hat.sum(axis=axes) - x_hat * (dx_hat * x_hat).sum(axis=axes))
        )


class PretrainedRBFBackbone(Layer):
    """Frozen domain-pretrained trunk: project to latent space, then RBF units.

    Stands in for EfficientNet-B0's pretrained convolutional trunk.  A real
    pretrained network maps images into a semantic feature space where
    samples cluster around visual concepts; this layer does the same with
    explicit machinery: a fixed linear ``projection`` (flat pixels ->
    latent code, denoising by construction) followed by Gaussian RBF units
    centred on fixed ``anchors`` (the concept prototypes).

    Features are *normalized* RBF responses (a softmax over anchor
    distances), which keeps them informative even when the projection is
    imperfect — and the projection IS imperfect by design: the backbone
    carries a calibrated mismatch (pretrained on a *similar* domain, the
    way ImageNet is similar to but not identical to CIFAR-10), which is
    what keeps the classifier head in the variance-limited regime where
    aggregating more peers' models measurably helps (the paper's
    "aggregating the entire set of models in complex models yields
    superior results").

    The (projection, anchors) pair comes from
    :meth:`repro.data.synthetic.SyntheticImageDataset.pretrained_backbone`
    — every peer shares the identical frozen trunk, exactly like every peer
    downloading the same EfficientNet checkpoint.  Only layers *after* this
    one train (the paper: "we employ transfer learning by modifying its
    final layer").
    """

    def __init__(self, projection: np.ndarray, anchors: np.ndarray, sigma: float = 0.6, name: str = "") -> None:
        super().__init__(name or "pretrained_backbone")
        if projection.ndim != 2 or anchors.ndim != 2:
            raise ShapeError("projection and anchors must be 2-D")
        if projection.shape[1] != anchors.shape[1]:
            raise ShapeError(
                f"latent dim mismatch: projection {projection.shape} vs anchors {anchors.shape}"
            )
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.projection = projection.astype(np.float64)
        self.anchors = anchors.astype(np.float64)
        self.sigma = float(sigma)

    def build(self, rng: np.random.Generator, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 1 or input_shape[0] != self.projection.shape[0]:
            raise ShapeError(
                f"backbone expects flat input of dim {self.projection.shape[0]}, got {input_shape}"
            )
        # Frozen weights are fixed at construction; nothing to initialize.
        self.params = {}
        self.zero_grads()
        self.trainable = False
        self.built = True
        return (self.anchors.shape[0],)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._require_built()
        z = x @ self.projection  # (batch, latent)
        d2 = ((z[:, None, :] - self.anchors[None, :, :]) ** 2).sum(axis=2)
        # Normalized responses: shift by the row minimum (numerical safety,
        # and scale-robustness against uniform distance inflation) then
        # softmax so the features sum to one per sample.
        d2 = d2 - d2.min(axis=1, keepdims=True)
        responses = np.exp(-d2 / (2.0 * self.sigma**2))
        return responses / responses.sum(axis=1, keepdims=True)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        # Frozen trunk: gradients stop here (nothing upstream trains).
        return np.zeros((grad_out.shape[0], self.projection.shape[0]), dtype=grad_out.dtype)

    def parameter_count(self) -> int:
        """Report the frozen trunk size (like EfficientNet's 5.3M backbone)."""
        return int(self.projection.size + self.anchors.size)


class FrozenFeatureMap(Layer):
    """Fixed random-projection feature extractor (the transfer-learning backbone).

    Stands in for EfficientNet-B0's pretrained convolutional trunk: a
    deterministic, *shared-across-peers* nonlinear projection whose weights
    never train.  Two projection stages with ReLU give features rich enough
    that a trainable head reaches high accuracy immediately — reproducing
    the paper's "starts at ~0.78 in round 1" transfer-learning dynamic.

    The weights derive from ``backbone_seed`` only, so every peer holds the
    *same* backbone, exactly like every peer downloading the same pretrained
    EfficientNet checkpoint.
    """

    def __init__(self, output_dim: int, backbone_seed: int = 2024, hidden_dim: Optional[int] = None, name: str = "") -> None:
        super().__init__(name or "frozen_backbone")
        self.output_dim = output_dim
        self.hidden_dim = hidden_dim if hidden_dim is not None else output_dim * 2
        self.backbone_seed = backbone_seed

    def build(self, rng: np.random.Generator, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 1:
            raise ShapeError(f"FrozenFeatureMap expects flat input, got {input_shape}")
        # Deliberately ignores the model's rng: backbone is global/pretrained.
        backbone_rng = np.random.default_rng(self.backbone_seed)
        fan_in = input_shape[0]
        self.params = {
            "W1": xavier_init(backbone_rng, (fan_in, self.hidden_dim)),
            "b1": zeros_init((self.hidden_dim,)),
            "W2": xavier_init(backbone_rng, (self.hidden_dim, self.output_dim)),
            "b2": zeros_init((self.output_dim,)),
        }
        self.zero_grads()
        self.trainable = False
        self.built = True
        return (self.output_dim,)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._require_built()
        h = np.maximum(x @ self.params["W1"] + self.params["b1"], 0.0)
        return np.maximum(h @ self.params["W2"] + self.params["b2"], 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        # Frozen trunk: gradients stop here (nothing upstream trains).
        fan_in = self.params["W1"].shape[0]
        return np.zeros((grad_out.shape[0], fan_in), dtype=grad_out.dtype)
