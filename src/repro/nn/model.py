"""Sequential model container with flat named parameters.

The container exposes parameters as a flat ``{"layer/param": array}`` dict —
the currency of federated aggregation: FedAvg averages these dicts, the
serializer turns them into bytes for on-chain commitment, and
``set_weights`` installs an aggregated dict back into the network.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import NotBuiltError, ShapeError
from repro.nn.layers import Layer
from repro.nn.losses import CrossEntropyLoss


class Sequential:
    """A linear stack of layers."""

    def __init__(self, layers: Sequence[Layer], name: str = "model") -> None:
        self.layers = list(layers)
        self.name = name
        self.built = False
        self.input_shape: Optional[tuple[int, ...]] = None
        self.output_shape: Optional[tuple[int, ...]] = None
        # Guarantee unique layer names so parameter keys never collide.
        seen: dict[str, int] = {}
        for layer in self.layers:
            count = seen.get(layer.name, 0)
            seen[layer.name] = count + 1
            if count:
                layer.name = f"{layer.name}_{count + 1}"

    def build(self, rng: np.random.Generator, input_shape: tuple[int, ...]) -> "Sequential":
        """Initialize every layer for ``input_shape`` (sans batch)."""
        shape = tuple(input_shape)
        self.input_shape = shape
        for layer in self.layers:
            shape = layer.build(rng, shape)
        self.output_shape = shape
        self.built = True
        return self

    def _require_built(self) -> None:
        if not self.built:
            raise NotBuiltError(f"model {self.name!r} used before build()")

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        """Run the full stack."""
        self._require_built()
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Inference-mode forward pass."""
        return self.forward(x, training=False)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate from the output gradient; returns input gradient."""
        self._require_built()
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grads(self) -> None:
        """Reset every layer's accumulated gradients."""
        for layer in self.layers:
            layer.zero_grads()

    # ------------------------------------------------------------------
    # Parameter access (FedAvg currency)
    # ------------------------------------------------------------------

    def parameters(self) -> dict[str, np.ndarray]:
        """Live references to every parameter, keyed ``layer/param``."""
        params: dict[str, np.ndarray] = {}
        for layer in self.layers:
            for key, value in layer.params.items():
                params[f"{layer.name}/{key}"] = value
        return params

    def gradients(self) -> dict[str, np.ndarray]:
        """Live references to every gradient, keyed like :meth:`parameters`."""
        grads: dict[str, np.ndarray] = {}
        for layer in self.layers:
            for key, value in layer.grads.items():
                grads[f"{layer.name}/{key}"] = value
        return grads

    def trainable_parameters(self) -> dict[str, np.ndarray]:
        """Parameters of trainable layers only (excludes frozen backbone)."""
        params: dict[str, np.ndarray] = {}
        for layer in self.layers:
            if layer.trainable:
                for key, value in layer.params.items():
                    params[f"{layer.name}/{key}"] = value
        return params

    def trainable_gradients(self) -> dict[str, np.ndarray]:
        """Gradients matching :meth:`trainable_parameters`."""
        grads: dict[str, np.ndarray] = {}
        for layer in self.layers:
            if layer.trainable:
                for key, value in layer.grads.items():
                    grads[f"{layer.name}/{key}"] = value
        return grads

    def get_weights(self) -> dict[str, np.ndarray]:
        """Deep copy of all parameters (safe to ship to other peers)."""
        return {key: value.copy() for key, value in self.parameters().items()}

    def set_weights(self, weights: dict[str, np.ndarray]) -> None:
        """Install a weight dict produced by :meth:`get_weights` / FedAvg."""
        self._require_built()
        params = self.parameters()
        if set(weights) != set(params):
            missing = set(params) - set(weights)
            extra = set(weights) - set(params)
            raise ShapeError(f"weight keys mismatch (missing={sorted(missing)}, extra={sorted(extra)})")
        for key, value in weights.items():
            if params[key].shape != value.shape:
                raise ShapeError(f"{key}: shape {value.shape} != expected {params[key].shape}")
            params[key][...] = value

    def parameter_count(self, trainable_only: bool = False) -> int:
        """Total scalar parameters (optionally trainable only)."""
        layers = [l for l in self.layers if l.trainable] if trainable_only else self.layers
        return sum(layer.parameter_count() for layer in layers)

    # ------------------------------------------------------------------
    # Training convenience
    # ------------------------------------------------------------------

    def train_step(
        self,
        x: np.ndarray,
        y: np.ndarray,
        loss_fn: CrossEntropyLoss,
        optimizer,
    ) -> float:
        """One forward/backward/update step; returns the batch loss."""
        self.zero_grads()
        logits = self.forward(x, training=True)
        loss, grad = loss_fn.loss_and_grad(logits, y)
        self.backward(grad)
        optimizer.step(self.trainable_parameters(), self.trainable_gradients())
        return loss

    def evaluate_accuracy(self, x: np.ndarray, y: np.ndarray, batch_size: int = 512) -> float:
        """Classification accuracy over a dataset, batched for memory."""
        correct = 0
        for start in range(0, len(x), batch_size):
            logits = self.predict(x[start : start + batch_size])
            correct += int((logits.argmax(axis=1) == y[start : start + batch_size]).sum())
        return correct / len(x) if len(x) else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(layer.name for layer in self.layers)
        return f"Sequential(name={self.name!r}, layers=[{inner}])"
