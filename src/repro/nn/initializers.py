"""Weight initializers.

All initializers take an explicit numpy ``Generator`` so model construction
is deterministic per-seed — required for the reproducibility contract of the
experiment tables.
"""

from __future__ import annotations

import numpy as np


def he_init(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int | None = None) -> np.ndarray:
    """He (Kaiming) normal initialization, suited to ReLU networks."""
    if fan_in is None:
        fan_in = int(np.prod(shape[:-1])) if len(shape) > 1 else shape[0]
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float64)


def xavier_init(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int | None = None, fan_out: int | None = None) -> np.ndarray:
    """Xavier (Glorot) uniform initialization, suited to linear/tanh layers."""
    if fan_in is None:
        fan_in = int(np.prod(shape[:-1])) if len(shape) > 1 else shape[0]
    if fan_out is None:
        fan_out = shape[-1]
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float64)


def zeros_init(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros (biases)."""
    return np.zeros(shape, dtype=np.float64)
