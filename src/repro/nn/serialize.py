"""Weight (de)serialization and hashing.

Serialized weights are what peers exchange: the bytes go to the off-chain
content-addressed store, and their hash goes on chain as the non-repudiable
commitment (see :class:`repro.contracts.model_store.ModelStore`).  The
format is the library's canonical JSON-with-tagged-ndarrays encoding, so a
byte-identical round trip is guaranteed for any weight dict.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SerializationError
from repro.utils.hashing import keccak_like
from repro.utils.serialization import canonical_dumps, canonical_loads

_FORMAT_VERSION = 1


def weights_to_bytes(weights: dict[str, np.ndarray]) -> bytes:
    """Serialize a named weight dict to canonical bytes."""
    for key, value in weights.items():
        if not isinstance(value, np.ndarray):
            raise SerializationError(f"weight {key!r} is {type(value).__name__}, not ndarray")
    return canonical_dumps({"version": _FORMAT_VERSION, "weights": weights})


def weights_from_bytes(payload: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`weights_to_bytes`."""
    decoded = canonical_loads(payload)
    if not isinstance(decoded, dict) or "weights" in decoded is None:
        raise SerializationError("payload is not a weight archive")
    version = decoded.get("version")
    if version != _FORMAT_VERSION:
        raise SerializationError(f"unsupported weight format version {version!r}")
    weights = decoded.get("weights")
    if not isinstance(weights, dict):
        raise SerializationError("weight archive missing 'weights' dict")
    for key, value in weights.items():
        if not isinstance(value, np.ndarray):
            raise SerializationError(f"entry {key!r} did not decode to ndarray")
    return weights


def weights_hash(weights: dict[str, np.ndarray]) -> str:
    """Commitment hash of a weight dict (what goes on chain)."""
    return keccak_like(weights_to_bytes(weights))


def weights_size_bytes(weights: dict[str, np.ndarray]) -> int:
    """Size of the serialized archive — the paper's 'model size' metric."""
    return len(weights_to_bytes(weights))
