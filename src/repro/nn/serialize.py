"""Weight (de)serialization, hashing, and the cached commitment archive.

Serialized weights are what peers exchange: the bytes go to the off-chain
content-addressed store, and their hash goes on chain as the non-repudiable
commitment (see :class:`repro.contracts.model_store.ModelStore`).  The
format is the library's canonical JSON-with-tagged-ndarrays encoding, so a
byte-identical round trip is guaranteed for any weight dict.

Encoding a full weight dict is the most expensive marshalling step on the
commitment hot path, so :class:`WeightArchive` memoizes it: ``payload``,
``hash``, and ``size`` are all derived from a *single* encoding (and a
single decoding on the fetch side).  The free functions below remain for
one-shot use; anything per-round should go through an archive — see
:meth:`repro.core.offchain.OffchainStore.put_archive` and the peer submit
path in :meth:`repro.core.peer.FullPeer.train_and_commit`.

Module-level :data:`SERIALIZATION_STATS` counts real encode/decode work so
tests and benchmarks can assert the hot path serializes once per model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.errors import SerializationError
from repro.utils.hashing import keccak_like
from repro.utils.serialization import canonical_dumps, canonical_loads

_FORMAT_VERSION = 1


@dataclass
class SerializationStats:
    """Counters of actual (non-memoized) weight marshalling work."""

    encodes: int = 0
    decodes: int = 0

    def reset(self) -> None:
        """Zero the counters (tests/benchmarks call this between phases)."""
        self.encodes = 0
        self.decodes = 0

    def as_dict(self) -> dict:
        return {"encodes": self.encodes, "decodes": self.decodes}


#: Process-wide marshalling counters; every :func:`weights_to_bytes` /
#: :func:`weights_from_bytes` call increments these exactly once.
SERIALIZATION_STATS = SerializationStats()


def weights_to_bytes(weights: dict[str, np.ndarray]) -> bytes:
    """Serialize a named weight dict to canonical bytes."""
    for key, value in weights.items():
        if not isinstance(value, np.ndarray):
            raise SerializationError(f"weight {key!r} is {type(value).__name__}, not ndarray")
    SERIALIZATION_STATS.encodes += 1
    return canonical_dumps({"version": _FORMAT_VERSION, "weights": weights})


def weights_from_bytes(payload: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`weights_to_bytes`."""
    decoded = canonical_loads(payload)
    if not isinstance(decoded, dict) or "weights" not in decoded:
        raise SerializationError("payload is not a weight archive")
    version = decoded.get("version")
    if version != _FORMAT_VERSION:
        raise SerializationError(f"unsupported weight format version {version!r}")
    weights = decoded.get("weights")
    if not isinstance(weights, dict):
        raise SerializationError("weight archive missing 'weights' dict")
    for key, value in weights.items():
        if not isinstance(value, np.ndarray):
            raise SerializationError(f"entry {key!r} did not decode to ndarray")
    SERIALIZATION_STATS.decodes += 1
    return weights


class WeightArchive:
    """One weight dict behind a single cached encoding.

    The commitment pipeline needs three views of the same model —
    ``payload`` (off-chain bytes), ``hash`` (on-chain commitment), and
    ``size`` (the paper's model-size telemetry) — and the seed code paid
    one full serialization for each.  An archive computes the encoding
    lazily, once, and answers all three from it; built from bytes, it
    decodes lazily, once.

    Arrays reachable through :attr:`weights` are shared, not copied:
    treat them as read-only (the off-chain store hands out copies to
    callers that may mutate).

    Exactly one of ``weights`` / ``payload`` may be supplied: the other
    view is always *derived* from it, so an archive can never carry an
    inconsistent pair (e.g. honest bytes hiding a different decoded dict
    — which would let a byzantine peer poison the off-chain store's
    decoded cache under an honest commitment hash).
    """

    __slots__ = ("_weights", "_payload", "_hash")

    def __init__(
        self,
        weights: Optional[dict[str, np.ndarray]] = None,
        payload: Optional[bytes] = None,
    ) -> None:
        if (weights is None) == (payload is None):
            raise SerializationError("WeightArchive needs exactly one of weights or payload")
        self._weights = weights
        self._payload = payload
        self._hash: Optional[str] = None

    @classmethod
    def from_weights(cls, weights: dict[str, np.ndarray]) -> "WeightArchive":
        """Archive an in-memory weight dict (encoding deferred)."""
        return cls(weights=weights)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "WeightArchive":
        """Archive stored bytes (decoding deferred)."""
        return cls(payload=bytes(payload))

    @property
    def encoded(self) -> bool:
        """Whether the canonical bytes have been materialized yet."""
        return self._payload is not None

    @property
    def payload(self) -> bytes:
        """Canonical archive bytes (encoded once, then cached)."""
        if self._payload is None:
            self._payload = weights_to_bytes(self._weights)
        return self._payload

    @property
    def weights(self) -> dict[str, np.ndarray]:
        """The weight dict (decoded once, then cached); treat as read-only."""
        if self._weights is None:
            self._weights = weights_from_bytes(self._payload)
        return self._weights

    @property
    def hash(self) -> str:
        """Commitment hash of the canonical bytes (what goes on chain)."""
        if self._hash is None:
            self._hash = keccak_like(self.payload)
        return self._hash

    @property
    def size(self) -> int:
        """Serialized byte size — the paper's 'model size' metric."""
        return len(self.payload)

    def copy_weights(self) -> dict[str, np.ndarray]:
        """Fresh array copies, safe for callers to mutate."""
        return {key: value.copy() for key, value in self.weights.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.size}B" if self.encoded else "unencoded"
        return f"WeightArchive({state})"


WeightsLike = Union[dict, WeightArchive]


def as_archive(weights: WeightsLike) -> WeightArchive:
    """Coerce a weight dict (or pass through an archive) to an archive."""
    if isinstance(weights, WeightArchive):
        return weights
    return WeightArchive.from_weights(weights)


def weights_hash(weights: WeightsLike) -> str:
    """Commitment hash of a weight dict (what goes on chain).

    One-shot convenience: serializes from scratch for a plain dict.  Code
    that also needs the bytes or the size should build a
    :class:`WeightArchive` instead and read all three off it.
    """
    return as_archive(weights).hash


def weights_size_bytes(weights: WeightsLike) -> int:
    """Size of the serialized archive — the paper's 'model size' metric."""
    return as_archive(weights).size
