"""Weight (de)serialization, hashing, and the cached commitment archive.

Serialized weights are what peers exchange: the bytes go to the off-chain
content-addressed store, and their hash goes on chain as the non-repudiable
commitment (see :class:`repro.contracts.model_store.ModelStore`).  A
byte-identical round trip is guaranteed for any weight dict in either
format version (see below).

Encoding a full weight dict is the most expensive marshalling step on the
commitment hot path, so :class:`WeightArchive` memoizes it: ``payload``,
``hash``, and ``size`` are all derived from a *single* encoding (and a
single decoding on the fetch side).  The free functions below remain for
one-shot use; anything per-round should go through an archive — see
:meth:`repro.core.offchain.OffchainStore.put_archive` and the peer submit
path in :meth:`repro.core.peer.FullPeer.train_and_commit`.

Two wire formats coexist behind the same functions.  **v2** (the default)
is binary: a fixed magic, a compact JSON header describing name/dtype/shape
per entry, then the raw C-contiguous array buffers concatenated — no
base64, no JSON number parsing for array data, so encoding is a header
plus ``len(weights)`` buffer copies.  **v1** is the library's canonical
JSON-with-tagged-ndarrays encoding; it is still produced on request
(``weights_to_bytes(..., version=1)``) and always decoded, so archives
written before the codec change remain readable.  The decoder dispatches
on the magic prefix, and both formats round-trip byte-identically.

Module-level :data:`SERIALIZATION_STATS` counts real encode/decode work so
tests and benchmarks can assert the hot path serializes once per model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.errors import SerializationError
from repro.utils.hashing import keccak_like
from repro.utils.serialization import canonical_dumps, canonical_loads

_V1_VERSION = 1
_FORMAT_VERSION = 2
#: v2 payloads start with this magic (never valid JSON, so v1 is unambiguous).
_V2_MAGIC = b"WAv2\x00"
_V2_HEADER_LEN_BYTES = 8


@dataclass
class SerializationStats:
    """Counters of actual (non-memoized) weight marshalling work."""

    encodes: int = 0
    decodes: int = 0

    def reset(self) -> None:
        """Zero the counters (tests/benchmarks call this between phases)."""
        self.encodes = 0
        self.decodes = 0

    def as_dict(self) -> dict:
        return {"encodes": self.encodes, "decodes": self.decodes}


#: Process-wide marshalling counters; every :func:`weights_to_bytes` /
#: :func:`weights_from_bytes` call increments these exactly once.
SERIALIZATION_STATS = SerializationStats()


def weights_to_bytes(weights: dict[str, np.ndarray], version: int = _FORMAT_VERSION) -> bytes:
    """Serialize a named weight dict to canonical bytes.

    ``version=2`` (default) emits the raw-buffer binary format; ``version=1``
    emits the legacy JSON/base64 encoding (kept for compatibility tests and
    cross-version measurements).
    """
    for key, value in weights.items():
        if not isinstance(value, np.ndarray):
            raise SerializationError(f"weight {key!r} is {type(value).__name__}, not ndarray")
    if version == _V1_VERSION:
        SERIALIZATION_STATS.encodes += 1
        return canonical_dumps({"version": _V1_VERSION, "weights": weights})
    if version != _FORMAT_VERSION:
        raise SerializationError(f"unknown weight format version {version!r}")
    entries = []
    buffers = []
    for key in sorted(weights):
        array = weights[key]
        if array.dtype.hasobject:
            # tobytes() would serialize pointers: an undecodable payload
            # that still hashes fine — refuse before it can be committed.
            raise SerializationError(f"weight {key!r} has non-serializable dtype {array.dtype}")
        if not array.flags.c_contiguous:  # ascontiguousarray would promote 0-d to 1-d
            array = np.ascontiguousarray(array)
        entries.append({"name": key, "dtype": str(array.dtype), "shape": list(array.shape)})
        buffers.append(array.tobytes())
    header = json.dumps(
        {"version": _FORMAT_VERSION, "entries": entries},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    SERIALIZATION_STATS.encodes += 1
    return b"".join(
        [_V2_MAGIC, len(header).to_bytes(_V2_HEADER_LEN_BYTES, "big"), header, *buffers]
    )


def _weights_from_v2(payload: bytes) -> dict[str, np.ndarray]:
    offset = len(_V2_MAGIC) + _V2_HEADER_LEN_BYTES
    header_len = int.from_bytes(payload[len(_V2_MAGIC):offset], "big")
    try:
        header = json.loads(payload[offset:offset + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"corrupt v2 weight header: {exc}") from exc
    if not isinstance(header, dict) or not isinstance(header.get("entries"), list):
        raise SerializationError("payload is not a weight archive")
    if header.get("version") != _FORMAT_VERSION:
        raise SerializationError(f"unsupported weight format version {header.get('version')!r}")
    cursor = offset + header_len
    weights: dict[str, np.ndarray] = {}
    for entry in header["entries"]:
        try:
            name = entry["name"]
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(dim) for dim in entry["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"corrupt v2 weight entry: {exc}") from exc
        count = 1
        for dim in shape:
            count *= dim
        nbytes = count * dtype.itemsize
        if cursor + nbytes > len(payload):
            raise SerializationError(f"truncated v2 buffer for entry {name!r}")
        try:
            array = np.frombuffer(payload, dtype=dtype, count=count, offset=cursor)
            weights[name] = array.reshape(shape).copy()
        except (ValueError, TypeError) as exc:  # e.g. object dtype in a forged header
            raise SerializationError(f"undecodable v2 buffer for entry {name!r}: {exc}") from exc
        cursor += nbytes
    if cursor != len(payload):
        raise SerializationError("trailing bytes after v2 weight buffers")
    return weights


def weights_from_bytes(payload: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`weights_to_bytes` (accepts v2 and legacy v1)."""
    if payload[: len(_V2_MAGIC)] == _V2_MAGIC:
        weights = _weights_from_v2(bytes(payload))
        SERIALIZATION_STATS.decodes += 1
        return weights
    decoded = canonical_loads(payload)
    if not isinstance(decoded, dict) or "weights" not in decoded:
        raise SerializationError("payload is not a weight archive")
    version = decoded.get("version")
    if version != _V1_VERSION:
        raise SerializationError(f"unsupported weight format version {version!r}")
    weights = decoded.get("weights")
    if not isinstance(weights, dict):
        raise SerializationError("weight archive missing 'weights' dict")
    for key, value in weights.items():
        if not isinstance(value, np.ndarray):
            raise SerializationError(f"entry {key!r} did not decode to ndarray")
    SERIALIZATION_STATS.decodes += 1
    return weights


class WeightArchive:
    """One weight dict behind a single cached encoding.

    The commitment pipeline needs three views of the same model —
    ``payload`` (off-chain bytes), ``hash`` (on-chain commitment), and
    ``size`` (the paper's model-size telemetry) — and the seed code paid
    one full serialization for each.  An archive computes the encoding
    lazily, once, and answers all three from it; built from bytes, it
    decodes lazily, once.

    Arrays reachable through :attr:`weights` are shared, not copied:
    treat them as read-only (the off-chain store hands out copies to
    callers that may mutate).

    Exactly one of ``weights`` / ``payload`` may be supplied: the other
    view is always *derived* from it, so an archive can never carry an
    inconsistent pair (e.g. honest bytes hiding a different decoded dict
    — which would let a byzantine peer poison the off-chain store's
    decoded cache under an honest commitment hash).
    """

    __slots__ = ("_weights", "_payload", "_hash")

    def __init__(
        self,
        weights: Optional[dict[str, np.ndarray]] = None,
        payload: Optional[bytes] = None,
    ) -> None:
        if (weights is None) == (payload is None):
            raise SerializationError("WeightArchive needs exactly one of weights or payload")
        self._weights = weights
        self._payload = payload
        self._hash: Optional[str] = None

    @classmethod
    def from_weights(cls, weights: dict[str, np.ndarray]) -> "WeightArchive":
        """Archive an in-memory weight dict (encoding deferred)."""
        return cls(weights=weights)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "WeightArchive":
        """Archive stored bytes (decoding deferred)."""
        return cls(payload=bytes(payload))

    @property
    def encoded(self) -> bool:
        """Whether the canonical bytes have been materialized yet."""
        return self._payload is not None

    @property
    def payload(self) -> bytes:
        """Canonical archive bytes (encoded once, then cached)."""
        if self._payload is None:
            self._payload = weights_to_bytes(self._weights)
        return self._payload

    @property
    def weights(self) -> dict[str, np.ndarray]:
        """The weight dict (decoded once, then cached); treat as read-only."""
        if self._weights is None:
            self._weights = weights_from_bytes(self._payload)
        return self._weights

    @property
    def hash(self) -> str:
        """Commitment hash of the canonical bytes (what goes on chain)."""
        if self._hash is None:
            self._hash = keccak_like(self.payload)
        return self._hash

    @property
    def size(self) -> int:
        """Serialized byte size — the paper's 'model size' metric."""
        return len(self.payload)

    def copy_weights(self) -> dict[str, np.ndarray]:
        """Fresh array copies, safe for callers to mutate."""
        return {key: value.copy() for key, value in self.weights.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.size}B" if self.encoded else "unencoded"
        return f"WeightArchive({state})"


WeightsLike = Union[dict, WeightArchive]


def as_archive(weights: WeightsLike) -> WeightArchive:
    """Coerce a weight dict (or pass through an archive) to an archive."""
    if isinstance(weights, WeightArchive):
        return weights
    return WeightArchive.from_weights(weights)


def weights_hash(weights: WeightsLike) -> str:
    """Commitment hash of a weight dict (what goes on chain).

    One-shot convenience: serializes from scratch for a plain dict.  Code
    that also needs the bytes or the size should build a
    :class:`WeightArchive` instead and read all three off it.
    """
    return as_archive(weights).hash


def weights_size_bytes(weights: WeightsLike) -> int:
    """Size of the serialized archive — the paper's 'model size' metric."""
    return as_archive(weights).size
