"""Optimizers operating on a model's named parameter/gradient dicts."""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base optimizer: subclasses implement :meth:`update_param`."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate
        self.steps = 0

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        """Apply one update to every parameter in place."""
        self.steps += 1
        for key in params:
            self.update_param(key, params[key], grads[key])

    def update_param(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        """Update one named parameter in place."""
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional weight decay."""

    def __init__(self, learning_rate: float = 0.01, weight_decay: float = 0.0) -> None:
        super().__init__(learning_rate)
        self.weight_decay = weight_decay

    def update_param(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        if self.weight_decay:
            grad = grad + self.weight_decay * param
        param -= self.learning_rate * grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.9, weight_decay: float = 0.0) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[str, np.ndarray] = {}

    def update_param(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        if self.weight_decay:
            grad = grad + self.weight_decay * param
        velocity = self._velocity.get(key)
        if velocity is None:
            velocity = np.zeros_like(param)
        velocity = self.momentum * velocity - self.learning_rate * grad
        self._velocity[key] = velocity
        param += velocity


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(learning_rate)
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t: dict[str, int] = {}

    def update_param(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        if self.weight_decay:
            grad = grad + self.weight_decay * param
        m = self._m.get(key, np.zeros_like(param))
        v = self._v.get(key, np.zeros_like(param))
        t = self._t.get(key, 0) + 1
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad**2
        self._m[key], self._v[key], self._t[key] = m, v, t
        m_hat = m / (1 - self.beta1**t)
        v_hat = v / (1 - self.beta2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
