"""Loss functions pairing a scalar loss with its input gradient."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


class CrossEntropyLoss:
    """Softmax + cross entropy over integer class labels.

    Operates on raw logits; combining softmax with the loss keeps the
    backward pass numerically stable (``softmax - onehot``).
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = label_smoothing

    def _probs(self, logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def _targets(self, labels: np.ndarray, num_classes: int) -> np.ndarray:
        onehot = np.eye(num_classes)[labels]
        if self.label_smoothing:
            smooth = self.label_smoothing
            onehot = onehot * (1 - smooth) + smooth / num_classes
        return onehot

    def loss(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross entropy over the batch."""
        if logits.ndim != 2:
            raise ShapeError(f"logits must be (batch, classes), got {logits.shape}")
        if labels.shape[0] != logits.shape[0]:
            raise ShapeError(f"{labels.shape[0]} labels for {logits.shape[0]} logits")
        probs = self._probs(logits)
        targets = self._targets(labels, logits.shape[1])
        return float(-(targets * np.log(probs + 1e-12)).sum(axis=1).mean())

    def gradient(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """dL/dlogits, already averaged over the batch."""
        probs = self._probs(logits)
        targets = self._targets(labels, logits.shape[1])
        return (probs - targets) / logits.shape[0]

    def loss_and_grad(self, logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        """Convenience: both loss and gradient in one call."""
        return self.loss(logits, labels), self.gradient(logits, labels)


class MSELoss:
    """Mean squared error for regression-style targets."""

    def loss(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Mean of squared residuals."""
        if predictions.shape != targets.shape:
            raise ShapeError(f"shape mismatch {predictions.shape} vs {targets.shape}")
        return float(((predictions - targets) ** 2).mean())

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """dL/dpredictions."""
        return 2.0 * (predictions - targets) / predictions.size

    def loss_and_grad(self, predictions: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        """Convenience: both loss and gradient in one call."""
        return self.loss(predictions, targets), self.gradient(predictions, targets)
