"""Command-line experiment runner: regenerate any paper artifact.

Usage::

    python -m repro.experiments table1 [--model simple_nn|efficientnet_b0_sim]
    python -m repro.experiments table2            # client A combinations
    python -m repro.experiments table3            # client B
    python -m repro.experiments table4            # client C
    python -m repro.experiments fig3              # vanilla curves
    python -m repro.experiments fig4              # combination curves
    python -m repro.experiments tradeoff          # wait-for-k sweep
    python -m repro.experiments all               # everything

Each command runs the calibrated full-size experiment (10 rounds, 3 peers)
and prints the corresponding table or figure series.  Results are
deterministic per ``--seed``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.config import default_config
from repro.core.decentralized import DecentralizedConfig
from repro.core.experiment import run_decentralized_experiment, run_vanilla_experiment
from repro.fl.async_policy import WaitForAll, WaitForK
from repro.metrics.figures import (
    combination_figure_series,
    render_ascii_chart,
    vanilla_figure_series,
)
from repro.metrics.tables import format_combination_table, format_table1, render_table

MODEL_LABELS = {"simple_nn": "Simple NN", "efficientnet_b0_sim": "Efficient-B0"}
_PEER_OF_TABLE = {"table2": "A", "table3": "B", "table4": "C"}


def _table1(model_kind: str, seed: int) -> str:
    config = default_config(model_kind, seed=seed)
    consider = run_vanilla_experiment(config, consider=True)
    not_consider = run_vanilla_experiment(config, consider=False)
    series = {
        client: {
            "consider": consider.client_accuracy[client],
            "not_consider": not_consider.client_accuracy[client],
        }
        for client in config.client_ids
    }
    return format_table1(MODEL_LABELS[model_kind], series)


def _combination_table(model_kind: str, peer_id: str, seed: int) -> str:
    config = default_config(model_kind, seed=seed)
    result = run_decentralized_experiment(config)
    return format_combination_table(
        MODEL_LABELS[model_kind], peer_id, result.combination_accuracy[peer_id]
    )


def _fig3(model_kind: str, seed: int) -> str:
    config = default_config(model_kind, seed=seed)
    consider = run_vanilla_experiment(config, consider=True)
    not_consider = run_vanilla_experiment(config, consider=False)
    series = {
        client: {
            "consider": consider.client_accuracy[client],
            "not consider": not_consider.client_accuracy[client],
        }
        for client in config.client_ids
    }
    blocks = [
        render_ascii_chart(curves, title=f"Fig 3 ({MODEL_LABELS[model_kind]}) {panel}")
        for panel, curves in vanilla_figure_series(series).items()
    ]
    return "\n\n".join(blocks)


def _fig4(model_kind: str, seed: int) -> str:
    config = default_config(model_kind, seed=seed)
    result = run_decentralized_experiment(config)
    blocks = [
        render_ascii_chart(curves, title=f"Fig 4 ({MODEL_LABELS[model_kind]}) {panel}")
        for panel, curves in combination_figure_series(result.combination_accuracy).items()
    ]
    return "\n\n".join(blocks)


def _tradeoff(model_kind: str, seed: int) -> str:
    config = default_config(model_kind, seed=seed)
    rows = []
    for policy in (WaitForK(1), WaitForK(2), WaitForAll()):
        result = run_decentralized_experiment(
            config, chain_config=DecentralizedConfig(policy=policy)
        )
        mean_wait = float(np.mean(list(result.wait_times.values())))
        final_acc = float(np.mean([log.chosen_accuracy for log in result.round_logs[-3:]]))
        visible = float(np.mean([log.updates_visible for log in result.round_logs]))
        rows.append(
            [policy.describe(), f"{mean_wait:.1f}", f"{final_acc:.4f}", f"{visible:.2f}"]
        )
    return render_table(
        f"Wait-or-not sweep ({MODEL_LABELS[model_kind]})",
        ["policy", "mean wait (sim s)", "final acc", "models visible"],
        rows,
    )


COMMANDS = {
    "table1": _table1,
    "fig3": _fig3,
    "fig4": _fig4,
    "tradeoff": _tradeoff,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=["table1", "table2", "table3", "table4", "fig3", "fig4", "tradeoff", "all"],
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--model",
        choices=["simple_nn", "efficientnet_b0_sim", "both"],
        default="both",
        help="model family (default: both, as in the paper's tables)",
    )
    parser.add_argument("--seed", type=int, default=42, help="experiment seed")
    args = parser.parse_args(argv)

    model_kinds = (
        ["simple_nn", "efficientnet_b0_sim"] if args.model == "both" else [args.model]
    )
    artifacts = (
        ["table1", "table2", "table3", "table4", "fig3", "fig4", "tradeoff"]
        if args.artifact == "all"
        else [args.artifact]
    )

    for artifact in artifacts:
        for model_kind in model_kinds:
            if artifact in _PEER_OF_TABLE:
                text = _combination_table(model_kind, _PEER_OF_TABLE[artifact], args.seed)
            else:
                text = COMMANDS[artifact](model_kind, args.seed)
            print(text)
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
