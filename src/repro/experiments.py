"""Command-line scenario runner: one declarative entry point per workload.

Usage::

    python -m repro.experiments list                  # registered scenarios
    python -m repro.experiments run paper/table1      # any scenario by name
    python -m repro.experiments run cohort/25 --quick
    python -m repro.experiments run adversarial/label_flip --seed 7
    python -m repro.experiments sweep cohort --sizes 10 25 50

``run`` executes a named scenario from the registry
(:mod:`repro.scenarios.registry`) — the paper's artifacts
(``paper/table1``, ``paper/tables234``, ``paper/tradeoff``), cohort-scaling
workloads (any ``cohort/<n>``), adversarial and heterogeneous-device
setups — and prints its rendered report.  ``sweep`` drives grids through
the shared-dataset sweep driver (:mod:`repro.scenarios.sweep`); the
``cohort`` axis is the ROADMAP's 10-50-peer speed/precision measurement.
Results are deterministic per ``--seed``; ``--quick`` shrinks any scenario
to test scale.

The pre-scenario artifact commands (``table1`` … ``table4``, ``fig3``,
``fig4``, ``tradeoff``, ``all``) are kept as aliases and print
byte-identical output.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro.chain.gateway import GATEWAY_BACKENDS
from repro.core.config import default_config
from repro.core.decentralized import DecentralizedConfig
from repro.core.experiment import run_decentralized_experiment, run_vanilla_experiment
from repro.errors import ConfigError
from repro.fl.async_policy import WaitForAll, WaitForK
from repro.metrics.figures import (
    combination_figure_series,
    render_ascii_chart,
    vanilla_figure_series,
)
from repro.metrics.tables import (
    MODEL_LABELS,
    format_combination_table,
    format_sweep_table,
    format_table1,
    render_table,
)
from repro.scenarios import (
    ScenarioContext,
    cohort_sweep,
    get_scenario,
    list_scenarios,
    replace_axis,
    run_scenario,
)
from repro.scenarios.registry import PAPER_MODELS, TRADEOFF_HEADER, tradeoff_row
from repro.scenarios.spec import RUNTIME_KINDS

_PEER_OF_TABLE = {"table2": "A", "table3": "B", "table4": "C"}
_LEGACY_ARTIFACTS = ("table1", "table2", "table3", "table4", "fig3", "fig4", "tradeoff")


# ---------------------------------------------------------------------------
# Legacy artifact helpers (alias commands print byte-identical output)
# ---------------------------------------------------------------------------


def _table1(model_kind: str, seed: int) -> str:
    config = default_config(model_kind, seed=seed)
    consider = run_vanilla_experiment(config, consider=True)
    not_consider = run_vanilla_experiment(config, consider=False)
    series = {
        client: {
            "consider": consider.client_accuracy[client],
            "not_consider": not_consider.client_accuracy[client],
        }
        for client in config.client_ids
    }
    return format_table1(MODEL_LABELS[model_kind], series)


def _combination_table(model_kind: str, peer_id: str, seed: int) -> str:
    config = default_config(model_kind, seed=seed)
    result = run_decentralized_experiment(config)
    return format_combination_table(
        MODEL_LABELS[model_kind], peer_id, result.combination_accuracy[peer_id]
    )


def _fig3(model_kind: str, seed: int) -> str:
    config = default_config(model_kind, seed=seed)
    consider = run_vanilla_experiment(config, consider=True)
    not_consider = run_vanilla_experiment(config, consider=False)
    series = {
        client: {
            "consider": consider.client_accuracy[client],
            "not consider": not_consider.client_accuracy[client],
        }
        for client in config.client_ids
    }
    blocks = [
        render_ascii_chart(curves, title=f"Fig 3 ({MODEL_LABELS[model_kind]}) {panel}")
        for panel, curves in vanilla_figure_series(series).items()
    ]
    return "\n\n".join(blocks)


def _fig4(model_kind: str, seed: int) -> str:
    config = default_config(model_kind, seed=seed)
    result = run_decentralized_experiment(config)
    blocks = [
        render_ascii_chart(curves, title=f"Fig 4 ({MODEL_LABELS[model_kind]}) {panel}")
        for panel, curves in combination_figure_series(result.combination_accuracy).items()
    ]
    return "\n\n".join(blocks)


def _tradeoff(model_kind: str, seed: int) -> str:
    config = default_config(model_kind, seed=seed)
    rows = []
    for policy in (WaitForK(1), WaitForK(2), WaitForAll()):
        result = run_decentralized_experiment(
            config, chain_config=DecentralizedConfig(policy=policy)
        )
        rows.append(tradeoff_row(policy.describe(), result.wait_times, result.round_logs))
    return render_table(
        f"Wait-or-not sweep ({MODEL_LABELS[model_kind]})", TRADEOFF_HEADER, rows
    )


COMMANDS = {
    "table1": _table1,
    "fig3": _fig3,
    "fig4": _fig4,
    "tradeoff": _tradeoff,
}


def _run_legacy(artifact: str, model: str, seed: int) -> int:
    model_kinds = list(PAPER_MODELS) if model == "both" else [model]
    artifacts = list(_LEGACY_ARTIFACTS) if artifact == "all" else [artifact]
    for name in artifacts:
        for model_kind in model_kinds:
            if name in _PEER_OF_TABLE:
                text = _combination_table(model_kind, _PEER_OF_TABLE[name], seed)
            else:
                text = COMMANDS[name](model_kind, seed)
            print(text)
            print()
    return 0


# ---------------------------------------------------------------------------
# Scenario commands
# ---------------------------------------------------------------------------


def _run_named_scenario(
    name: str,
    seed: int,
    quick: bool,
    model: str | None,
    workers: int = 0,
    gateway: str | None = None,
    runtime: str | None = None,
    runtime_workers: int = 0,
    sampled_k: int = 0,
    execution: str | None = None,
    execution_workers: int = 0,
    cold_storage: bool = False,
) -> int:
    models = None
    if model is not None:
        models = PAPER_MODELS if model == "both" else (model,)
    try:
        definition = get_scenario(name)
        specs = definition.build(seed=seed, quick=quick, models=models)
        if sampled_k:
            # Participation knob: each round trains a sampled k-peer
            # subcohort (deterministic per seed; vanilla specs have no
            # round structure to sample).
            specs = tuple(
                replace_axis(spec, "participation.sampled_k", sampled_k)
                if spec.kind == "decentralized"
                else spec
                for spec in specs
            )
        if workers:
            # Pure wall-clock knob: the combination-scoring engine produces
            # identical results at any worker count (vanilla specs have no
            # combination search to parallelize and keep their field as-is).
            specs = tuple(
                replace(spec, selection_workers=workers) if spec.kind == "decentralized" else spec
                for spec in specs
            )
        if gateway:
            # Pure transport knob: ledger reads are head-pure, so the
            # backend changes round trips, never results.
            specs = tuple(
                replace_axis(spec, "chain.gateway", gateway)
                if spec.kind == "decentralized"
                else spec
                for spec in specs
            )
        if runtime or runtime_workers:
            # Process-topology knob: the multiprocess runtime is
            # byte-identical to in-process at the same seed.
            overrides = {}
            if runtime:
                overrides["runtime"] = runtime
            if runtime_workers:
                overrides["runtime_workers"] = runtime_workers
            specs = tuple(
                replace(spec, **overrides) if spec.kind == "decentralized" else spec
                for spec in specs
            )
        # Chain scale-out knobs: byte-neutral resource axes (parallel
        # execution and cold storage change memory/wall-clock, never
        # results).
        for axis_path, value in (
            ("chain.execution", execution),
            ("chain.execution_workers", execution_workers or None),
            ("chain.cold_storage", True if cold_storage else None),
        ):
            if value is None:
                continue
            specs = tuple(
                replace_axis(spec, axis_path, value)
                if spec.kind == "decentralized"
                else spec
                for spec in specs
            )
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    context = ScenarioContext()
    results = [run_scenario(spec, context=context) for spec in specs]
    for block in definition.render(specs, results):
        print(block)
        print()
    return 0


def _run_sweep(
    axis: str,
    sizes: list[int],
    wait_for: int | None,
    seed: int,
    quick: bool,
    workers: int = 0,
    gateway: str | None = None,
    runtime: str | None = None,
    runtime_workers: int = 0,
    sampled_k: int = 0,
) -> int:
    del axis  # only "cohort" exists today; argparse restricts the choice
    try:
        policy = WaitForK(wait_for) if wait_for is not None else None
        rows = cohort_sweep(
            sizes,
            seed=seed,
            quick=quick,
            policy=policy,
            selection_workers=workers or None,
            gateway=gateway,
            runtime=runtime,
            runtime_workers=runtime_workers or None,
            sampled_k=sampled_k or None,
        )
    except ConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_sweep_table("Cohort scaling sweep (speed vs precision)", rows))
    return 0


def _run_list() -> int:
    rows = [[definition.name, definition.description] for definition in list_scenarios()]
    rows.append(["cohort/<n>", "any cohort size n >= 2 resolves dynamically"])
    rows.append(
        ["cohort/<n>/sampled/<k>", "cohort/<n> with k-of-n client sampling per round"]
    )
    print(render_table("Registered scenarios", ["name", "description"], rows))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    model_choices = ["simple_nn", "efficientnet_b0_sim", "both"]
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run declarative scenarios (and regenerate the paper's artifacts).",
    )
    # The seed CLI accepted flag-first orderings like `--seed 7 table1`;
    # keep them valid by mirroring --seed/--model at the top level (the
    # per-subcommand flags, when given, win).
    parser.add_argument(
        "--seed", type=int, default=None, dest="global_seed", help=argparse.SUPPRESS
    )
    parser.add_argument(
        "--model",
        choices=model_choices,
        default=None,
        dest="global_model",
        help=argparse.SUPPRESS,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run a named scenario from the registry")
    run_parser.add_argument("scenario", help="scenario name, e.g. paper/table1 or cohort/25")
    run_parser.add_argument("--seed", type=int, default=None, help="experiment seed (default 42)")
    run_parser.add_argument(
        "--quick", action="store_true", help="shrink to test scale (2 rounds, small splits)"
    )
    run_parser.add_argument(
        "--model",
        choices=model_choices,
        default=None,
        help="override the scenario's model families",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="combination-search worker processes (0 = in-process; results identical)",
    )
    run_parser.add_argument(
        "--gateway",
        choices=list(GATEWAY_BACKENDS),
        default=None,
        help="ledger gateway backend (batching coalesces reads; results identical)",
    )
    run_parser.add_argument(
        "--runtime",
        choices=list(RUNTIME_KINDS),
        default=None,
        help="cohort process topology (multiprocess is byte-identical to inprocess)",
    )
    run_parser.add_argument(
        "--runtime-workers",
        type=int,
        default=0,
        help="worker processes for --runtime multiprocess (default 2)",
    )
    run_parser.add_argument(
        "--sampled-k",
        type=int,
        default=0,
        help="train a sampled k-peer subcohort per round (0 = full participation)",
    )
    run_parser.add_argument(
        "--execution",
        choices=["serial", "parallel"],
        default=None,
        help="block transaction execution mode (parallel is byte-identical to serial)",
    )
    run_parser.add_argument(
        "--execution-workers",
        type=int,
        default=0,
        help="speculation worker processes for --execution parallel (0 = inline)",
    )
    run_parser.add_argument(
        "--cold-storage",
        action="store_true",
        help="spill old blocks/receipts to a shared cold store (results identical)",
    )

    sweep_parser = subparsers.add_parser(
        "sweep", help="sweep a scenario axis through the shared-dataset driver"
    )
    sweep_parser.add_argument("axis", choices=["cohort"], help="axis to sweep")
    sweep_parser.add_argument(
        "--sizes", type=int, nargs="+", default=[10, 25, 50], help="cohort sizes"
    )
    sweep_parser.add_argument(
        "--wait-for", type=int, default=None, help="use wait-for-k instead of wait-for-all"
    )
    sweep_parser.add_argument("--seed", type=int, default=None, help="experiment seed (default 42)")
    sweep_parser.add_argument("--quick", action="store_true", help="shrink to test scale")
    sweep_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="combination-search worker processes (0 = in-process; results identical)",
    )
    sweep_parser.add_argument(
        "--gateway",
        choices=list(GATEWAY_BACKENDS),
        default=None,
        help="ledger gateway backend (batching coalesces reads; results identical)",
    )
    sweep_parser.add_argument(
        "--runtime",
        choices=list(RUNTIME_KINDS),
        default=None,
        help="cohort process topology (multiprocess is byte-identical to inprocess)",
    )
    sweep_parser.add_argument(
        "--runtime-workers",
        type=int,
        default=0,
        help="worker processes for --runtime multiprocess (default 2)",
    )
    sweep_parser.add_argument(
        "--sampled-k",
        type=int,
        default=0,
        help="train a sampled k-peer subcohort per round (0 = full participation)",
    )

    subparsers.add_parser("list", help="list registered scenarios")

    for artifact in (*_LEGACY_ARTIFACTS, "all"):
        legacy = subparsers.add_parser(
            artifact, help=f"(legacy alias) regenerate {artifact}"
        )
        legacy.add_argument(
            "--model",
            choices=model_choices,
            default=None,
            help="model family (default: both, as in the paper's tables)",
        )
        legacy.add_argument("--seed", type=int, default=None, help="experiment seed (default 42)")

    args = parser.parse_args(argv)
    seed = next(
        (value for value in (getattr(args, "seed", None), args.global_seed) if value is not None),
        42,
    )
    model = getattr(args, "model", None) or args.global_model

    if args.command == "run":
        return _run_named_scenario(
            args.scenario,
            seed,
            args.quick,
            model,
            args.workers,
            args.gateway,
            args.runtime,
            args.runtime_workers,
            args.sampled_k,
            args.execution,
            args.execution_workers,
            args.cold_storage,
        )
    if args.command == "sweep":
        return _run_sweep(
            args.axis,
            args.sizes,
            args.wait_for,
            seed,
            args.quick,
            args.workers,
            args.gateway,
            args.runtime,
            args.runtime_workers,
            args.sampled_k,
        )
    if args.command == "list":
        return _run_list()
    return _run_legacy(args.command, model or "both", seed)


if __name__ == "__main__":
    sys.exit(main())
