"""Deterministic fault plans: seeded schedules of injected chain faults.

A :class:`FaultSpec` declares *rates* (per-gateway-call probabilities of
transient errors, timeouts, latency spikes, duplicate deliveries, stale
reads) and *windows* (which rounds which peers are crashed).  A
:class:`FaultPlan` resolves the spec against a concrete cohort, and a
:class:`FaultInjector` turns it into per-call decisions drawn from the
experiment's named rng streams (``faults/<peer_id>``, mirroring the
``attack/<id>`` streams of the adversary axis) — so the same seed always
produces the same injected-fault trace, and changing fault intensity
never perturbs any other stream.

The injector is consulted by :class:`~repro.faults.gateway.FaultyGateway`
*before* the wrapped operation takes effect: an injected transient error
or timeout means the call never reached the ledger, so a retry is the
first real delivery.  That pre-effect discipline is what makes
transient-only plans byte-equivalent to fault-free runs once
:class:`~repro.faults.gateway.ResilientGateway` absorbs them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ConfigError
from repro.utils.rng import RngFactory

#: Fault kinds in threshold order — the fixed bands one uniform draw is
#: compared against.  Order is part of the reproducibility contract.
FAULT_KINDS = ("transient", "timeout", "latency", "duplicate", "stale")

#: Kinds that surface as raised errors (subject to ``max_consecutive``).
ERROR_KINDS = frozenset({"transient", "timeout"})

#: Minimum peers that must stay live through any crash window.
MIN_LIVE_PEERS = 2


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/breaker knobs for :class:`ResilientGateway`.

    Backoff is deterministic capped exponential — attempt ``k`` waits
    ``min(backoff_base * 2**(k-1), backoff_cap)`` simulated seconds,
    *accounted* against the per-method budget rather than physically
    advancing the clock (retrying a pre-effect fault must not shift the
    mining trace).  ``read_budget`` / ``submit_budget`` bound the total
    backoff a single logical operation may accumulate.
    """

    max_attempts: int = 4
    backoff_base: float = 0.5
    backoff_cap: float = 8.0
    read_budget: float = 60.0
    submit_budget: float = 120.0
    breaker_threshold: int = 8
    breaker_cooldown: float = 120.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise ConfigError(
                f"need 0 < backoff_base <= backoff_cap, got "
                f"{self.backoff_base}/{self.backoff_cap}"
            )
        if self.read_budget <= 0 or self.submit_budget <= 0:
            raise ConfigError("retry budgets must be positive")
        if self.breaker_threshold < 1:
            raise ConfigError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown <= 0:
            raise ConfigError(
                f"breaker_cooldown must be positive, got {self.breaker_cooldown}"
            )

    def backoff(self, attempt: int) -> float:
        """Backoff charged after failed attempt ``attempt`` (1-based)."""
        return min(self.backoff_base * (2.0 ** (attempt - 1)), self.backoff_cap)

    def budget_for(self, method: str) -> float:
        """Total backoff budget for one logical operation of ``method``."""
        return self.submit_budget if method == "submit" else self.read_budget


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault axis: per-call rates plus crash windows.

    Rates are probabilities per intercepted gateway call; their sum must
    stay below 1 because one uniform draw per call is partitioned into
    cumulative bands (:data:`FAULT_KINDS` order).  ``crash_fraction``
    crashes the *last* ``ceil(fraction * n)`` peers (the same tail-of-
    cohort convention the adversary and straggler axes use) for rounds
    ``[crash_round, crash_round + crash_rounds)``, capped so at least
    :data:`MIN_LIVE_PEERS` stay live.  ``resilience`` toggles the
    retry/backoff layer; with it off, injected faults surface raw.
    """

    transient_rate: float = 0.0
    timeout_rate: float = 0.0
    latency_rate: float = 0.0
    latency_spike: float = 5.0
    duplicate_rate: float = 0.0
    stale_read_rate: float = 0.0
    stale_window: float = 30.0
    max_consecutive: int = 2
    crash_fraction: float = 0.0
    crash_round: int = 2
    crash_rounds: int = 1
    resilience: bool = True
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        for name in (
            "transient_rate",
            "timeout_rate",
            "latency_rate",
            "duplicate_rate",
            "stale_read_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigError(f"{name} must be in [0, 1), got {rate}")
        if sum(self.rates()) >= 1.0:
            raise ConfigError(
                f"fault rates must sum below 1 (one draw per call), "
                f"got {sum(self.rates())}"
            )
        if self.latency_spike <= 0:
            raise ConfigError(f"latency_spike must be positive, got {self.latency_spike}")
        if self.stale_window <= 0:
            raise ConfigError(f"stale_window must be positive, got {self.stale_window}")
        if self.max_consecutive < 1:
            raise ConfigError(
                f"max_consecutive must be >= 1, got {self.max_consecutive}"
            )
        if not 0.0 <= self.crash_fraction <= 1.0:
            raise ConfigError(
                f"crash_fraction must be in [0, 1], got {self.crash_fraction}"
            )
        if self.crash_round < 0 or self.crash_rounds < 1:
            raise ConfigError(
                f"need crash_round >= 0 and crash_rounds >= 1, got "
                f"{self.crash_round}/{self.crash_rounds}"
            )
        if self.resilience and self.max_consecutive >= self.retry.max_attempts:
            raise ConfigError(
                f"retry.max_attempts ({self.retry.max_attempts}) must exceed "
                f"max_consecutive ({self.max_consecutive}) or retries cannot "
                f"be guaranteed to converge"
            )

    def rates(self) -> tuple[float, ...]:
        """Per-call rates in :data:`FAULT_KINDS` order."""
        return (
            self.transient_rate,
            self.timeout_rate,
            self.latency_rate,
            self.duplicate_rate,
            self.stale_read_rate,
        )

    @property
    def call_faults_active(self) -> bool:
        """True iff any per-call fault can fire (streams will be drawn)."""
        return any(rate > 0 for rate in self.rates())

    @property
    def active(self) -> bool:
        """True iff this spec injects anything at all."""
        return self.call_faults_active or self.crash_fraction > 0


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the reproducible trace."""

    seq: int
    peer_id: str
    method: str
    kind: str


class FaultPlan:
    """A :class:`FaultSpec` resolved against a concrete cohort."""

    def __init__(self, spec: FaultSpec, peer_ids: Sequence[str]) -> None:
        self.spec = spec
        self.peer_ids = tuple(peer_ids)
        n = len(self.peer_ids)
        wanted = math.ceil(spec.crash_fraction * n)
        allowed = max(0, n - MIN_LIVE_PEERS)
        count = min(wanted, allowed)
        # Deterministic tail-of-cohort assignment, mirroring the
        # adversary axis ("last k clients attack").
        self.crashed_peers: tuple[str, ...] = self.peer_ids[n - count :] if count else ()

    @classmethod
    def from_spec(cls, spec: FaultSpec, peer_ids: Sequence[str]) -> "FaultPlan":
        return cls(spec, peer_ids)

    def crash_window(self) -> range:
        """Round ids during which the crashed peers are down."""
        return range(
            self.spec.crash_round, self.spec.crash_round + self.spec.crash_rounds
        )

    def down(self, round_id: int) -> frozenset:
        """Peers crashed for the whole of round ``round_id``."""
        if self.crashed_peers and round_id in self.crash_window():
            return frozenset(self.crashed_peers)
        return frozenset()


class FaultInjector:
    """Draws per-call fault decisions from seeded ``faults/<peer>`` streams.

    One uniform draw per intercepted call, partitioned into cumulative
    bands in :data:`FAULT_KINDS` order; a band whose kind does not apply
    to the intercepted method (duplicates only make sense on ``submit``,
    stale serves only on reads) resolves to "no fault" with the draw
    consumed, keeping stream consumption uniform per call.  Error faults
    (transient/timeout) are bounded: after ``max_consecutive`` in a row
    on the same (peer, method) the next would-be error is forced clean
    and the counter resets — with ``retry.max_attempts`` above the bound,
    a retry loop always reaches a clean attempt.

    Every delivered fault is appended to ``trace`` so two injectors built
    from the same spec, cohort, and seed yield identical traces (the
    reproducibility contract the fault tests pin).
    """

    #: Methods whose decisions only make sense for specific kinds.
    _DUPLICATE_METHODS = frozenset({"submit"})
    _STALE_METHODS = frozenset({"call", "batch_call", "has_contract"})

    def __init__(self, plan: FaultPlan, rngs: RngFactory) -> None:
        self.plan = plan
        self.spec = plan.spec
        self._rngs = rngs
        self.round_id: Optional[int] = None
        self._ended = False
        self.trace: list[FaultEvent] = []
        self._consecutive: dict[tuple[str, str], int] = {}
        rates = self.spec.rates()
        self._thresholds: list[tuple[float, str]] = []
        upper = 0.0
        for rate, kind in zip(rates, FAULT_KINDS):
            upper += rate
            if rate > 0:
                self._thresholds.append((upper, kind))
        self._ceiling = upper

    def begin_round(self, round_id: int) -> None:
        """Position the injector at the start of ``round_id``."""
        self.round_id = round_id
        self._ended = False

    def end_run(self) -> None:
        """Go inert: the run is over, post-run reporting must be clean.

        No peer counts as crashed afterwards and :meth:`decide` stops
        drawing (stats/height reads after the final round are part of
        reporting, not of the faulted workload).
        """
        self.round_id = None
        self._ended = True

    def crashed(self, peer_id: str) -> bool:
        """True iff ``peer_id`` is down for the current round."""
        if self.round_id is None:
            return False
        return peer_id in self.plan.down(self.round_id)

    def decide(self, peer_id: str, method: str) -> Optional[str]:
        """Fault kind to inject for this call, or ``None`` for a clean one.

        Short-circuits with *zero* rng draws when no per-call rate is
        set, so crash-only plans leave the ``faults/*`` streams untouched
        (and rate-zero runs are byte-identical to never constructing an
        injector at all).
        """
        if self._ended or self._ceiling <= 0.0:
            return None
        draw = float(self._rngs.get("faults", peer_id).random())
        kind: Optional[str] = None
        if draw < self._ceiling:
            for upper, candidate in self._thresholds:
                if draw < upper:
                    kind = candidate
                    break
        if kind == "duplicate" and method not in self._DUPLICATE_METHODS:
            kind = None
        elif kind == "stale" and method not in self._STALE_METHODS:
            kind = None
        key = (peer_id, method)
        if kind in ERROR_KINDS:
            seen = self._consecutive.get(key, 0)
            if seen >= self.spec.max_consecutive:
                self._consecutive[key] = 0
                kind = None
            else:
                self._consecutive[key] = seen + 1
        else:
            self._consecutive[key] = 0
        if kind is not None:
            self.trace.append(FaultEvent(len(self.trace), peer_id, method, kind))
        return kind
