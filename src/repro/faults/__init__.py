"""Deterministic fault injection and gateway resilience.

The chaos-engineering layer of the repro: seeded, fully reproducible
fault plans (:mod:`repro.faults.plan`) injected at the FL <-> chain seam
by gateway decorators (:mod:`repro.faults.gateway`).  See the README's
"Fault injection & resilience" section for the stack composition and the
``faults/*`` scenarios.
"""

from repro.faults.gateway import RETRYABLE_ERRORS, FaultyGateway, ResilientGateway
from repro.faults.plan import (
    ERROR_KINDS,
    FAULT_KINDS,
    MIN_LIVE_PEERS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)

__all__ = [
    "ERROR_KINDS",
    "FAULT_KINDS",
    "MIN_LIVE_PEERS",
    "RETRYABLE_ERRORS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultyGateway",
    "ResilientGateway",
    "RetryPolicy",
]
