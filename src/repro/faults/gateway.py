"""Fault-injecting and resilient :class:`ChainGateway` decorators.

:class:`FaultyGateway` sits just above the transport and consults a
:class:`~repro.faults.plan.FaultInjector` on every operation: injected
transient errors and timeouts are raised *before* the wrapped call takes
effect (the call never reached the ledger, so a retry is the first real
delivery), latency spikes advance the simulated clock, stale decisions
serve a bounded-stale earlier read, and duplicate decisions deliver a
``submit`` twice.  A crashed peer's gateway refuses everything with
:class:`~repro.errors.GatewayUnavailableError`.

:class:`ResilientGateway` sits at the top of the stack and absorbs the
retryable subset — :class:`~repro.errors.TransientGatewayError` and
:class:`~repro.errors.GatewayTimeoutError` — with bounded retries under
deterministic capped exponential backoff.  Backoff is *accounted* in
simulated seconds against a per-method budget (``stats.backoff_seconds``)
rather than physically advancing the clock: a retried pre-effect fault
must leave the mining/gossip trace untouched, which is what makes
transient-only fault plans byte-equivalent to fault-free runs.  Give-ups
and an open circuit breaker surface as the single typed
:class:`~repro.errors.GatewayUnavailableError` the round driver uses to
drop a peer from the current round instead of aborting the run.

Both decorators expose the wrapped gateway as ``.inner``, composing with
:class:`~repro.chain.gateway.BatchingGateway` and the stack-walking stats
helpers.  Canonical per-peer stack, outermost first::

    ResilientGateway -> [BatchingGateway ->] FaultyGateway -> InProcessGateway
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.chain.crypto import Address
from repro.chain.gateway import CallRequest, ChainGateway, GatewayStats
from repro.chain.network import NetworkStats
from repro.chain.transaction import Transaction
from repro.errors import (
    GatewayTimeoutError,
    GatewayUnavailableError,
    TransactionRejectedError,
    TransientGatewayError,
)
from repro.faults.plan import FaultInjector, RetryPolicy
from repro.utils.events import Simulator

#: Exceptions :class:`ResilientGateway` retries; everything else —
#: rejections, reverts, unknown contract/method — is permanent.
RETRYABLE_ERRORS = (TransientGatewayError, GatewayTimeoutError)


class FaultyGateway:
    """Gateway decorator injecting the faults an injector schedules.

    ``network_stats`` (the shared :class:`~repro.chain.network.NetworkStats`)
    is credited for delivered duplicates and latency spikes so fault
    benches can report what the injector actually did alongside the
    organic network counters.
    """

    def __init__(
        self,
        inner: ChainGateway,
        peer_id: str,
        injector: FaultInjector,
        simulator: Optional[Simulator] = None,
        network_stats: Optional[NetworkStats] = None,
    ) -> None:
        self.inner = inner
        self.peer_id = peer_id
        self.injector = injector
        self.simulator = simulator
        self.network_stats = network_stats
        self.stats = GatewayStats()
        self._seen: dict[tuple, tuple[Any, float]] = {}

    # -- injection core ----------------------------------------------------

    def _delay(self, seconds: float) -> None:
        """Physically advance the simulated clock by ``seconds``.

        ``Simulator.run(until=...)`` only advances to ``until`` when a
        later event exists, so a no-op wake event pins the target time
        even on an otherwise-drained queue.
        """
        if self.simulator is None:
            return
        target = self.simulator.now + seconds
        self.simulator.schedule_at(target, lambda: None, label="fault-latency")
        self.simulator.run(until=target)

    def _intercept(self, method: str) -> Optional[str]:
        """Apply crash/latency/error faults; return kinds needing method help."""
        if self.injector.crashed(self.peer_id):
            raise GatewayUnavailableError(
                f"peer {self.peer_id} is crashed this round"
            )
        kind = self.injector.decide(self.peer_id, method)
        if kind is None:
            return None
        self.stats.faults_injected += 1
        if kind == "latency":
            self._delay(self.injector.spec.latency_spike)
            if self.network_stats is not None:
                self.network_stats.messages_delayed += 1
            return None
        if kind == "transient":
            raise TransientGatewayError(
                f"injected transient failure on {method} for peer {self.peer_id}"
            )
        if kind == "timeout":
            raise GatewayTimeoutError(
                f"injected timeout on {method} for peer {self.peer_id}"
            )
        return kind  # "duplicate" / "stale": handled by the method itself

    def _stale_fresh(self, key: tuple) -> tuple[bool, Any]:
        entry = self._seen.get(key)
        if entry is None:
            return False, None
        value, at = entry
        if (self.inner.now() - at) > self.injector.spec.stale_window:
            return False, None
        return True, value

    # -- reads -------------------------------------------------------------

    def call(self, contract: Address, method: str, **args: Any) -> Any:
        self.stats.calls += 1
        kind = self._intercept("call")
        key = ("call",) + CallRequest(contract, method, args).key()
        if kind == "stale":
            usable, value = self._stale_fresh(key)
            if usable:
                self.stats.cache_hits += 1
                return value
        value = self.inner.call(contract, method, **args)
        self._seen[key] = (value, self.inner.now())
        return value

    def batch_call(self, requests: Sequence[CallRequest]) -> list[Any]:
        self.stats.batch_calls += 1
        self.stats.batched_reads += len(requests)
        kind = self._intercept("batch_call")
        keys = [("call",) + request.key() for request in requests]
        if kind == "stale":
            remembered = [self._stale_fresh(key) for key in keys]
            if remembered and all(usable for usable, _ in remembered):
                self.stats.cache_hits += len(keys)
                return [value for _, value in remembered]
        values = self.inner.batch_call(requests)
        now = self.inner.now()
        for key, value in zip(keys, values):
            self._seen[key] = (value, now)
        return values

    def has_contract(self, address: Address) -> bool:
        self.stats.contract_checks += 1
        kind = self._intercept("has_contract")
        key = ("has_contract", address)
        if kind == "stale":
            usable, value = self._stale_fresh(key)
            if usable:
                self.stats.cache_hits += 1
                return value
        value = self.inner.has_contract(address)
        self._seen[key] = (value, self.inner.now())
        return value

    def height(self) -> int:
        self.stats.height_reads += 1
        self._intercept("height")
        return self.inner.height()

    def head_hash(self) -> str:
        self.stats.head_checks += 1
        self._intercept("head_hash")
        return self.inner.head_hash()

    def get_logs(
        self,
        address: Optional[Address] = None,
        topic: Optional[str] = None,
        from_block: int = 0,
        to_block: Optional[int] = None,
    ) -> list:
        self.stats.log_queries += 1
        self._intercept("get_logs")
        return self.inner.get_logs(
            address=address, topic=topic, from_block=from_block, to_block=to_block
        )

    def next_nonce(self, address: Address) -> int:
        self.stats.nonce_reads += 1
        self._intercept("next_nonce")
        return self.inner.next_nonce(address)

    # -- writes ------------------------------------------------------------

    def submit(self, tx: Transaction) -> str:
        """Submit with pre-effect error faults and duplicate delivery.

        Error faults fire *before* ``inner.submit`` — the transaction
        never reached the ledger, so a retry is the first delivery.  A
        duplicate decision delivers the accepted transaction a second
        time; the mempool treats the re-delivery as benign, and a typed
        rejection (e.g. the nonce already advanced) is deliberately
        swallowed — exactly the at-least-once delivery a real gossip
        layer exhibits.
        """
        self.stats.submits += 1
        kind = self._intercept("submit")
        tx_hash = self.inner.submit(tx)
        if kind == "duplicate":
            try:
                self.inner.submit(tx)
            except TransactionRejectedError:
                pass
            if self.network_stats is not None:
                self.network_stats.messages_duplicated += 1
        return tx_hash

    # -- clock / waits -----------------------------------------------------

    def now(self) -> float:
        return self.inner.now()

    def wait_for(
        self,
        predicate: Callable[[], bool],
        what: str,
        deadline: Optional[float] = None,
    ) -> float:
        """Waits pass through uninjected — the polled reads inside the
        predicate go through the full stack and get faulted there."""
        self.stats.waits += 1
        return self.inner.wait_for(predicate, what, deadline=deadline)


class ResilientGateway:
    """Retry/backoff/breaker gateway decorator (the top of the stack).

    Retries :data:`RETRYABLE_ERRORS` up to ``policy.max_attempts`` with
    deterministic capped exponential backoff accounted against the
    per-method simulated-seconds budget.  ``submit`` is idempotent: an
    acknowledged tx hash is never re-sent, and a typed rejection on a
    retry *after* an ambiguous failure is treated as "already applied"
    (the first attempt may have landed before the fault) — so a retried
    submit never double-applies.  ``breaker_threshold`` consecutive
    give-ups open the circuit for ``breaker_cooldown`` simulated seconds;
    the first call after cooldown is the half-open probe.
    """

    def __init__(self, inner: ChainGateway, policy: Optional[RetryPolicy] = None) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.stats = GatewayStats()
        self._acked: set[str] = set()
        self._failures = 0
        self._tripped_at: Optional[float] = None

    # -- breaker -----------------------------------------------------------

    def _check_breaker(self, method: str) -> None:
        if self._tripped_at is None:
            return
        elapsed = self.inner.now() - self._tripped_at
        if elapsed < self.policy.breaker_cooldown:
            raise GatewayUnavailableError(
                f"circuit open: {method} refused "
                f"({self.policy.breaker_cooldown - elapsed:.1f}s of cooldown left)"
            )
        # Past cooldown: leave the trip mark in place and let this call
        # through as the half-open probe — success closes the breaker,
        # another give-up re-trips it from now.

    def _note_success(self) -> None:
        self._failures = 0
        self._tripped_at = None

    def _note_give_up(self) -> None:
        self._failures += 1
        if self._failures >= self.policy.breaker_threshold or self._tripped_at is not None:
            self._tripped_at = self.inner.now()

    # -- retry core --------------------------------------------------------

    def _run(self, method: str, op: Callable[[], Any]) -> Any:
        self._check_breaker(method)
        budget = self.policy.budget_for(method)
        attempts = 0
        waited = 0.0
        while True:
            attempts += 1
            try:
                value = op()
            except RETRYABLE_ERRORS as exc:
                if isinstance(exc, GatewayTimeoutError):
                    self.stats.deadline_misses += 1
                delay = self.policy.backoff(attempts)
                if attempts >= self.policy.max_attempts or waited + delay > budget:
                    self.stats.gave_up += 1
                    self._note_give_up()
                    raise GatewayUnavailableError(
                        f"{method} gave up after {attempts} attempts "
                        f"({waited:.1f}s of backoff)"
                    ) from exc
                waited += delay
                self.stats.retries += 1
                self.stats.backoff_seconds += delay
                continue
            self._note_success()
            return value

    # -- reads -------------------------------------------------------------

    def call(self, contract: Address, method: str, **args: Any) -> Any:
        self.stats.calls += 1
        return self._run("call", lambda: self.inner.call(contract, method, **args))

    def batch_call(self, requests: Sequence[CallRequest]) -> list[Any]:
        self.stats.batch_calls += 1
        self.stats.batched_reads += len(requests)
        return self._run("batch_call", lambda: self.inner.batch_call(requests))

    def height(self) -> int:
        self.stats.height_reads += 1
        return self._run("height", self.inner.height)

    def head_hash(self) -> str:
        self.stats.head_checks += 1
        return self._run("head_hash", self.inner.head_hash)

    def has_contract(self, address: Address) -> bool:
        self.stats.contract_checks += 1
        return self._run("has_contract", lambda: self.inner.has_contract(address))

    def get_logs(
        self,
        address: Optional[Address] = None,
        topic: Optional[str] = None,
        from_block: int = 0,
        to_block: Optional[int] = None,
    ) -> list:
        self.stats.log_queries += 1
        return self._run(
            "get_logs",
            lambda: self.inner.get_logs(
                address=address, topic=topic, from_block=from_block, to_block=to_block
            ),
        )

    def next_nonce(self, address: Address) -> int:
        self.stats.nonce_reads += 1
        return self._run("next_nonce", lambda: self.inner.next_nonce(address))

    # -- writes ------------------------------------------------------------

    def submit(self, tx: Transaction) -> str:
        self.stats.submits += 1
        tx_hash = tx.tx_hash
        if tx_hash in self._acked:
            self.stats.deduped_submits += 1
            return tx_hash
        self._check_breaker("submit")
        budget = self.policy.submit_budget
        attempts = 0
        waited = 0.0
        ambiguous = False
        while True:
            attempts += 1
            try:
                self.inner.submit(tx)
            except RETRYABLE_ERRORS as exc:
                # The fault may have struck before OR after the ledger
                # saw the transaction — ambiguous from out here.
                ambiguous = True
                if isinstance(exc, GatewayTimeoutError):
                    self.stats.deadline_misses += 1
                delay = self.policy.backoff(attempts)
                if attempts >= self.policy.max_attempts or waited + delay > budget:
                    self.stats.gave_up += 1
                    self._note_give_up()
                    raise GatewayUnavailableError(
                        f"submit gave up after {attempts} attempts "
                        f"({waited:.1f}s of backoff)"
                    ) from exc
                waited += delay
                self.stats.retries += 1
                self.stats.backoff_seconds += delay
                continue
            except TransactionRejectedError:
                if ambiguous:
                    # A retry after an ambiguous failure got rejected:
                    # the earlier attempt landed (nonce consumed), so the
                    # transaction is already applied — success, not error.
                    self.stats.deduped_submits += 1
                    break
                raise
            break
        self._note_success()
        self._acked.add(tx_hash)
        return tx_hash

    # -- clock / waits -----------------------------------------------------

    def now(self) -> float:
        return self.inner.now()

    def wait_for(
        self,
        predicate: Callable[[], bool],
        what: str,
        deadline: Optional[float] = None,
    ) -> float:
        """Waits pass through un-retried: the deadline is the caller's
        protocol-level timeout, not a transport hiccup, and retryable
        faults inside the predicate are absorbed where the predicate
        calls back into this layer."""
        self.stats.waits += 1
        return self.inner.wait_for(predicate, what, deadline=deadline)
