"""The paper's contribution: fully coupled blockchain-based FL.

Every peer is simultaneously data holder, trainer, miner, and aggregator
(:mod:`repro.core.peer`); the decentralized orchestrator
(:mod:`repro.core.decentralized`) runs communication rounds over the
simulated Ethereum network, reproducing Tables II-IV and Figure 4; the
round state machine (:mod:`repro.core.rounds`) tracks wait-for-k progress;
:mod:`repro.core.nonrepudiation` assembles and verifies the on-chain
authorship evidence; :mod:`repro.core.config` and
:mod:`repro.core.experiment` define and run the calibrated experiments.

Model commitments flow through a content-addressed cached pipeline: each
local model is serialized exactly once per round into a
:class:`~repro.nn.serialize.WeightArchive` whose single encoding supplies
the off-chain payload (:mod:`repro.core.offchain`), the on-chain
commitment hash, and the model-size telemetry carried by ``submit_model``;
the off-chain store memoizes decoded archives so cross-peer fetches never
re-deserialize.  ``OffchainStore.marshalling_stats()`` and
``DecentralizedFL.chain_stats()`` expose the counters, and
``benchmarks/bench_commitment_pipeline.py`` tracks the speedup.
"""

from repro.core.offchain import OffchainStore
from repro.core.rounds import RoundState, RoundTracker
from repro.core.peer import FullPeer, PeerConfig
from repro.core.decentralized import DecentralizedFL, DecentralizedConfig, PeerRoundLog
from repro.core.nonrepudiation import EvidenceBundle, collect_evidence, verify_evidence
from repro.core.config import ExperimentConfig, default_config, calibrated_spec
from repro.core.experiment import (
    run_vanilla_experiment,
    run_decentralized_experiment,
    VanillaExperimentResult,
    DecentralizedExperimentResult,
)

__all__ = [
    "OffchainStore",
    "RoundState",
    "RoundTracker",
    "FullPeer",
    "PeerConfig",
    "DecentralizedFL",
    "DecentralizedConfig",
    "PeerRoundLog",
    "EvidenceBundle",
    "collect_evidence",
    "verify_evidence",
    "ExperimentConfig",
    "default_config",
    "calibrated_spec",
    "run_vanilla_experiment",
    "run_decentralized_experiment",
    "VanillaExperimentResult",
    "DecentralizedExperimentResult",
]
