"""Experiment runners producing the paper's tables and figures.

``run_vanilla_experiment`` regenerates Table I / Figure 3 series for one
aggregation type; ``run_decentralized_experiment`` regenerates Tables
II-IV / Figure 4.  Both are deterministic functions of their config.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Optional

import numpy as np

from repro.core.config import ExperimentConfig
from repro.core.decentralized import DecentralizedConfig, DecentralizedFL, PeerRoundLog
from repro.core.peer import PeerConfig
from repro.data.dataset import Dataset
from repro.data.synthetic import SyntheticImageDataset, client_class_probs
from repro.fl.async_policy import AsyncPolicy, WaitForAll
from repro.fl.client import ClientConfig, FLClient
from repro.fl.vanilla import VanillaConfig, VanillaFL, VanillaRoundLog
from repro.nn.models import build_model
from repro.utils.rng import RngFactory


@dataclass
class VanillaExperimentResult:
    """Table I slice: per-client accuracy series for one aggregation type."""

    config: ExperimentConfig
    aggregation_type: str
    client_accuracy: dict[str, list[float]]
    round_logs: list[VanillaRoundLog] = field(default_factory=list)

    def final_accuracy(self, client_id: str) -> float:
        """Accuracy after the last round."""
        return self.client_accuracy[client_id][-1]


@dataclass
class DecentralizedExperimentResult:
    """Tables II-IV: per-peer, per-combination accuracy series."""

    config: ExperimentConfig
    combination_accuracy: dict[str, dict[str, list[float]]]  # peer -> combo -> series
    wait_times: dict[str, float]
    chain_stats: dict
    round_logs: list[PeerRoundLog] = field(default_factory=list)

    def series(self, peer_id: str, combination: str) -> list[float]:
        """One table row."""
        return self.combination_accuracy[peer_id][combination]


def _build_datasets(
    config: ExperimentConfig, rngs: RngFactory
) -> tuple[SyntheticImageDataset, dict[str, Dataset], dict[str, Dataset], Dataset]:
    """Per-client train/test splits plus the aggregator's default test set.

    Every split samples the *same* underlying distribution through
    independent streams — the IID-ish setting of the paper's deployment
    (three VMs fed from one dataset).
    """
    factory = SyntheticImageDataset(config.data_spec)
    train_sets: dict[str, Dataset] = {}
    test_sets: dict[str, Dataset] = {}
    for index, client_id in enumerate(config.client_ids):
        probs = client_class_probs(
            index,
            len(config.client_ids),
            config.data_spec.num_classes,
            skew=config.client_skew,
        )
        train_sets[client_id] = factory.sample(
            config.train_samples_per_client,
            rngs.get("data", "train", client_id),
            name=f"train/{client_id}",
            class_probs=probs,
        )
        test_sets[client_id] = factory.sample(
            config.test_samples_per_client,
            rngs.get("data", "test", client_id),
            name=f"test/{client_id}",
        )
    aggregator_test = factory.sample(
        config.aggregator_test_samples,
        rngs.get("data", "test", "aggregator"),
        name="test/aggregator",
    )
    return factory, train_sets, test_sets, aggregator_test


def _model_builder(config: ExperimentConfig, factory: SyntheticImageDataset):
    """Shared-architecture builder; init seed comes from the caller's rng.

    The transfer-learning model receives the domain-pretrained backbone
    derived from the dataset factory (see DESIGN.md §2 for the
    substitution); SimpleNN trains from scratch.
    """
    if config.model_kind == "efficientnet_b0_sim":
        backbone = factory.pretrained_backbone(mismatch=config.backbone_mismatch)
        return partial(build_model, config.model_kind, backbone=backbone, sigma=config.backbone_sigma)
    return partial(build_model, config.model_kind)


def run_vanilla_experiment(
    config: ExperimentConfig,
    consider: bool,
) -> VanillaExperimentResult:
    """Centralized FL, one aggregation type (half of Table I)."""
    rngs = RngFactory(config.seed)
    factory, train_sets, test_sets, aggregator_test = _build_datasets(config, rngs)
    builder = _model_builder(config, factory)
    # All clients start from identical initial weights (the shared model),
    # matching both the paper's deployment and standard FedAvg.
    init_rng_seed = rngs.integers("model-init")
    clients = [
        FLClient(
            ClientConfig(client_id=client_id, train_config=config.train_config(), model_kind=config.model_kind),
            train_sets[client_id],
            test_sets[client_id],
            lambda rng, _seed=init_rng_seed: builder(np.random.default_rng(_seed)),
            rngs.get("client", client_id),
        )
        for client_id in config.client_ids
    ]
    driver = VanillaFL(
        clients,
        aggregator_test,
        VanillaConfig(rounds=config.rounds, consider=consider),
        model_builder=lambda rng: builder(np.random.default_rng(init_rng_seed)),
        rng=rngs.get("tie-break"),
    )
    logs = driver.run()
    return VanillaExperimentResult(
        config=config,
        aggregation_type="consider" if consider else "not_consider",
        client_accuracy={client_id: driver.accuracy_series(client_id) for client_id in config.client_ids},
        round_logs=logs,
    )


def run_decentralized_experiment(
    config: ExperimentConfig,
    policy: Optional[AsyncPolicy] = None,
    chain_config: Optional[DecentralizedConfig] = None,
    training_times: Optional[dict[str, float]] = None,
) -> DecentralizedExperimentResult:
    """Blockchain-based FL (Tables II-IV / Figure 4).

    ``policy`` defaults to wait-for-all, the setting under which the paper
    tabulates every combination; pass :class:`~repro.fl.async_policy.WaitForK`
    for the asynchronous trade-off benchmark.  ``training_times`` optionally
    assigns each client a simulated local-training duration (heterogeneous
    devices — the situation that motivates not waiting); the default is a
    homogeneous 30 s, matching the paper's three equal VMs.
    """
    rngs = RngFactory(config.seed)
    factory, train_sets, test_sets, _ = _build_datasets(config, rngs)
    builder = _model_builder(config, factory)
    init_rng_seed = rngs.integers("model-init")

    dec_config = chain_config if chain_config is not None else DecentralizedConfig()
    if policy is not None:
        dec_config = DecentralizedConfig(
            rounds=dec_config.rounds,
            policy=policy,
            target_block_interval=dec_config.target_block_interval,
            latency=dec_config.latency,
            hashrate=dec_config.hashrate,
            max_round_time=dec_config.max_round_time,
            poll_interval=dec_config.poll_interval,
        )
    dec_config.rounds = config.rounds

    peer_configs = [
        PeerConfig(
            peer_id=client_id,
            train_config=config.train_config(),
            model_kind=config.model_kind,
            training_time=(
                training_times[client_id] if training_times is not None else 30.0
            ),
        )
        for client_id in config.client_ids
    ]
    driver = DecentralizedFL(
        peer_configs,
        train_sets,
        test_sets,
        model_builder=lambda rng: builder(np.random.default_rng(init_rng_seed)),
        config=dec_config,
        rng_factory=rngs.spawn("chain"),
    )
    logs = driver.run()

    combination_accuracy: dict[str, dict[str, list[float]]] = {}
    for log in logs:
        peer_table = combination_accuracy.setdefault(log.peer_id, {})
        for combo, acc in log.combination_accuracy.items():
            peer_table.setdefault(combo, []).append(acc)

    return DecentralizedExperimentResult(
        config=config,
        combination_accuracy=combination_accuracy,
        wait_times=driver.wait_time_summary(),
        chain_stats=driver.chain_stats(),
        round_logs=logs,
    )
