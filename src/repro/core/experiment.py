"""Legacy experiment runners — thin shims over the scenario API.

``run_vanilla_experiment`` regenerates Table I / Figure 3 series for one
aggregation type; ``run_decentralized_experiment`` regenerates Tables
II-IV / Figure 4.  Both are deterministic functions of their config, and
both now delegate to :func:`repro.scenarios.run_scenario` — the scenario
runner uses the same named random streams, so results are bit-identical
to the pre-scenario implementations.  New workloads (large cohorts,
adversaries, heterogeneity) should build a
:class:`~repro.scenarios.ScenarioSpec` directly instead of extending
these signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.config import ExperimentConfig
from repro.core.decentralized import DecentralizedConfig, PeerRoundLog
from repro.data.dataset import Dataset
from repro.data.synthetic import SyntheticImageDataset
from repro.fl.async_policy import AsyncPolicy
from repro.fl.vanilla import VanillaRoundLog
from repro.utils.rng import RngFactory

# repro.scenarios imports this package's siblings, and this module is part
# of repro.core's public __init__ — import the scenario layer lazily to
# keep `import repro.scenarios` and `import repro.core` both cycle-free.


def _scenarios():
    from repro import scenarios

    return scenarios


@dataclass
class VanillaExperimentResult:
    """Table I slice: per-client accuracy series for one aggregation type."""

    config: ExperimentConfig
    aggregation_type: str
    client_accuracy: dict[str, list[float]]
    round_logs: list[VanillaRoundLog] = field(default_factory=list)

    def final_accuracy(self, client_id: str) -> float:
        """Accuracy after the last round."""
        return self.client_accuracy[client_id][-1]


@dataclass
class DecentralizedExperimentResult:
    """Tables II-IV: per-peer, per-combination accuracy series."""

    config: ExperimentConfig
    combination_accuracy: dict[str, dict[str, list[float]]]  # peer -> combo -> series
    wait_times: dict[str, float]
    chain_stats: dict
    round_logs: list[PeerRoundLog] = field(default_factory=list)

    def series(self, peer_id: str, combination: str) -> list[float]:
        """One table row."""
        return self.combination_accuracy[peer_id][combination]


def _build_datasets(
    config: ExperimentConfig, rngs: RngFactory
) -> tuple[SyntheticImageDataset, dict[str, Dataset], dict[str, Dataset], Dataset]:
    """Per-client train/test splits plus the aggregator's default test set.

    Kept for the benchmark harness; the scenario runner owns the logic
    (identical streams) and this wrapper adapts its return shape.
    """
    from repro.scenarios.runner import ScenarioContext, _cohort_datasets

    sc = _scenarios()
    ctx = ScenarioContext()
    spec = sc.ScenarioSpec.from_experiment_config(config)
    train_sets, test_sets, aggregator_test = _cohort_datasets(spec, rngs, ctx)
    return ctx.factory(spec.data_spec), train_sets, test_sets, aggregator_test


def _model_builder(config: ExperimentConfig, factory: SyntheticImageDataset):
    """Shared-architecture builder; init seed comes from the caller's rng."""
    from repro.scenarios.runner import ScenarioContext, _builder

    del factory  # the scenario context re-derives the backbone deterministically
    sc = _scenarios()
    return _builder(sc.ScenarioSpec.from_experiment_config(config), ScenarioContext())


def run_vanilla_experiment(
    config: ExperimentConfig,
    consider: bool,
) -> VanillaExperimentResult:
    """Centralized FL, one aggregation type (half of Table I)."""
    sc = _scenarios()
    spec = sc.ScenarioSpec.from_experiment_config(config, kind="vanilla", consider=consider)
    result = sc.run_scenario(spec)
    return VanillaExperimentResult(
        config=config,
        aggregation_type="consider" if consider else "not_consider",
        client_accuracy=result.client_accuracy,
        round_logs=result.round_logs,
    )


def run_decentralized_experiment(
    config: ExperimentConfig,
    policy: Optional[AsyncPolicy] = None,
    chain_config: Optional[DecentralizedConfig] = None,
    training_times: Optional[dict[str, float]] = None,
) -> DecentralizedExperimentResult:
    """Blockchain-based FL (Tables II-IV / Figure 4).

    ``policy`` defaults to wait-for-all, the setting under which the paper
    tabulates every combination; pass :class:`~repro.fl.async_policy.WaitForK`
    for the asynchronous trade-off benchmark.  ``training_times`` optionally
    assigns each client a simulated local-training duration (heterogeneous
    devices — the situation that motivates not waiting); the default is a
    homogeneous 30 s, matching the paper's three equal VMs.

    ``policy`` overrides only the waiting policy of ``chain_config``
    (``dataclasses.replace``) — every other field, including ``mode`` and
    ``enable_reputation``, survives.
    """
    sc = _scenarios()
    dec_config = chain_config if chain_config is not None else DecentralizedConfig()
    if policy is not None:
        dec_config = replace(dec_config, policy=policy)

    if training_times is not None:
        missing = [cid for cid in config.client_ids if cid not in training_times]
        if missing:
            from repro.errors import ConfigError

            raise ConfigError(f"training_times missing entries for {missing}")
        heterogeneity = sc.HeterogeneitySpec(
            kind="custom",
            times=tuple(training_times[cid] for cid in config.client_ids),
        )
    else:
        heterogeneity = sc.HeterogeneitySpec()

    spec = sc.ScenarioSpec.from_experiment_config(
        config,
        kind="decentralized",
        policy=dec_config.policy,
        mode=dec_config.mode,
        enable_reputation=dec_config.enable_reputation,
        reputation_fitness_margin=dec_config.reputation_fitness_margin,
        selection=dec_config.selection,
        exhaustive_limit=dec_config.exhaustive_limit,
        heterogeneity=heterogeneity,
        chain=sc.ChainSpec(
            target_block_interval=dec_config.target_block_interval,
            gossip_batch_window=dec_config.gossip_batch_window,
            hashrate=dec_config.hashrate,
            max_round_time=dec_config.max_round_time,
            poll_interval=dec_config.poll_interval,
            latency_base=dec_config.latency.base,
            latency_jitter=dec_config.latency.jitter,
            gateway=dec_config.gateway,
            gateway_staleness=dec_config.gateway_staleness,
        ),
    )
    result = sc.run_scenario(spec)
    return DecentralizedExperimentResult(
        config=config,
        combination_accuracy=result.combination_accuracy,
        wait_times=result.wait_times,
        chain_stats=result.chain_stats,
        round_logs=result.round_logs,
    )
