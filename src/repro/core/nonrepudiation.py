"""Non-repudiation evidence: prove who committed which model.

The paper's Case 3: "ensuring non-repudiation of the participant about
their models ... providing strong evidence against detected abnormal
clients."  The evidence bundle for a (round, author) pair contains:

* the signed ``submit_model`` transaction (authorship — only the key holder
  could sign it),
* the Merkle proof placing that transaction in a mined block (inclusion),
* the block header chain linking that block to the canonical head
  (finality under PoW), and
* the committed weights hash (binding to exact bytes).

``verify_evidence`` checks all four against a verifier's own chain view, so
an accused peer cannot deny authorship and an accuser cannot fabricate it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.block import Block
from repro.chain.merkle import merkle_proof, verify_proof
from repro.chain import Node
from repro.chain.transaction import Transaction
from repro.errors import ChainError
from repro.nn.serialize import as_archive


@dataclass
class EvidenceBundle:
    """Portable authorship proof for one model submission."""

    author: str               # chain address
    round_id: int
    committed_hash: str       # weights hash the author signed over
    transaction: Transaction
    block_hash: str
    block_number: int
    tx_index: int
    proof: list[tuple[str, bytes]]
    tx_root: str


def collect_evidence(node: Node, author: str, round_id: int, model_store_address: str) -> EvidenceBundle:
    """Assemble the evidence bundle from a node's canonical chain.

    Scans canonical blocks for the author's ``submit_model`` transaction of
    ``round_id`` and builds the Merkle inclusion proof.
    """
    for block in node.store.canonical_chain():
        for index, tx in enumerate(block.transactions):
            if (
                tx.sender == author
                and tx.to == model_store_address
                and tx.method == "submit_model"
                and tx.args.get("round_id") == round_id
            ):
                leaves = block.tx_hashes()
                return EvidenceBundle(
                    author=author,
                    round_id=round_id,
                    committed_hash=tx.args["weights_hash"],
                    transaction=tx,
                    block_hash=block.block_hash,
                    block_number=block.number,
                    tx_index=index,
                    proof=merkle_proof(leaves, index),
                    tx_root=block.header.tx_root,
                )
    raise ChainError(
        f"no submission by {author[:10]}... for round {round_id} on canonical chain"
    )


def verify_evidence(node: Node, evidence: EvidenceBundle, weights=None) -> bool:
    """Check an evidence bundle against this verifier's chain view.

    Verifies: (1) the transaction signature recovers the claimed author;
    (2) the transaction commits to the claimed hash and round; (3) the
    Merkle proof places it under the block's tx root; (4) the block is on
    this node's canonical chain; and optionally (5) supplied ``weights``
    hash to the committed value (binding the accusation to exact bytes).

    ``weights`` may be a plain weight dict or an already-encoded
    :class:`~repro.nn.serialize.WeightArchive` (e.g. straight from the
    off-chain store), in which case no re-serialization happens.
    """
    tx = evidence.transaction
    if not tx.verify_signature() or tx.sender != evidence.author:
        return False
    if tx.method != "submit_model" or tx.args.get("round_id") != evidence.round_id:
        return False
    if tx.args.get("weights_hash") != evidence.committed_hash:
        return False

    leaf = bytes.fromhex(tx.tx_hash[2:])
    root = bytes.fromhex(evidence.tx_root[2:])
    if not verify_proof(leaf, evidence.proof, root):
        return False

    if not _on_canonical_chain(node, evidence):
        return False

    if weights is not None and as_archive(weights).hash != evidence.committed_hash:
        return False
    return True


def _on_canonical_chain(node: Node, evidence: EvidenceBundle) -> bool:
    """Check the committed transaction reached this node's canonical chain.

    Fast path: the evidence's block is known and canonical here.  Fallback:
    under PoW different nodes may have included the same transaction in
    different (competing) blocks, so authorship evidence remains valid as
    long as the *transaction* is canonical on the verifier — search for it
    by hash.
    """
    try:
        block: Block = node.store.get(evidence.block_hash)
    except ChainError:
        block = None
    if block is not None and block.header.tx_root == evidence.tx_root and node.store.is_canonical(
        evidence.block_hash
    ):
        return True
    wanted = evidence.transaction.tx_hash
    for canonical_block in node.store.canonical_chain():
        for tx in canonical_block.transactions:
            if tx.tx_hash == wanted:
                return True
    return False
