"""Client sampling, availability windows, and churn — the participation axis.

Production cross-device FL never trains every client every round: a small
subcohort is *sampled* per round, devices come and go (churn), and some are
simply offline for a stretch (availability windows).  This module supplies
the declarative knob (:class:`ParticipationSpec`, an axis of
:class:`~repro.scenarios.spec.ScenarioSpec`) and its deterministic
resolution (:class:`ParticipationPlan`): given the spec, the cohort order,
the round count, and an rng factory, the plan precomputes which peers are
offline and which are selected for every round.

Determinism contract: the plan draws only from dedicated
``participation/<round>`` and ``participation/churn/<round>`` streams, one
draw batch per stream, so it is a pure function of ``(spec, peer_ids,
rounds, seed)``.  The in-process driver, the multiprocess coordinator, and
every worker rebuild the identical plan independently — participation can
never depend on runtime, worker count, or wall-clock.

Two kinds of absence, deliberately different:

* **Sampled out** (``sampled_k``): the peer is healthy and its node keeps
  mining; it just does no FL work this round (no training, no submission,
  no rating, no vote) and keeps its personalized model.
* **Offline** (windows/churn): the peer's node is partitioned from the
  network for the duration, exactly like a PR-7 crash window; on return it
  re-syncs the chain and catches up through the FedAvg path.

The head peer (``peer_ids[0]``) deploys the contracts and anchors the
genesis bookkeeping, so it is always selected and never goes offline —
specs that would take it down are rejected up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.utils.rng import RngFactory

#: A sampled round still needs two participants: the FL passes compare and
#: aggregate across peers, and a 1-peer "cohort" degenerates to local SGD.
MIN_SAMPLED_K = 2


@dataclass(frozen=True)
class ParticipationSpec:
    """Declarative per-round participation policy.

    ``sampled_k``
        Train only ``k`` of the available peers each round, chosen from a
        dedicated ``participation/<round>`` rng stream.  ``None`` (the
        default) keeps today's full participation; ``sampled_k == n`` is
        byte-identical to it at the same seed.
    ``windows``
        Scheduled absences as ``(peer_index, first_round, rounds)`` tuples:
        the peer at that cohort index (1-based rounds, index 0 is the head
        and may never be scheduled offline) leaves the network at
        ``first_round`` and rejoins after ``rounds`` rounds away.
    ``churn_rate``
        Per-round probability in ``[0, 1)`` that a non-head peer is offline
        that round, drawn from ``participation/churn/<round>`` streams.
        Consecutive offline draws merge into one absence; the rejoin takes
        the same sync + FedAvg catch-up path as a window's end.
    """

    sampled_k: Optional[int] = None
    windows: Tuple[Tuple[int, int, int], ...] = ()
    churn_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.sampled_k is not None:
            if int(self.sampled_k) != self.sampled_k or self.sampled_k < MIN_SAMPLED_K:
                raise ConfigError(
                    f"sampled_k must be an int >= {MIN_SAMPLED_K}, got {self.sampled_k!r}"
                )
            object.__setattr__(self, "sampled_k", int(self.sampled_k))
        normalized = []
        for window in self.windows:
            entries = tuple(int(value) for value in window)
            if len(entries) != 3:
                raise ConfigError(
                    f"availability windows are (peer_index, first_round, rounds) "
                    f"triples, got {window!r}"
                )
            peer_index, first_round, length = entries
            if peer_index < 1:
                raise ConfigError(
                    "availability windows cannot take the cohort head (index 0) "
                    "offline — it deploys the contracts and anchors catch-up"
                )
            if first_round < 1 or length < 1:
                raise ConfigError(
                    f"availability window {entries!r} needs first_round >= 1 "
                    f"and rounds >= 1"
                )
            normalized.append(entries)
        # Canonical order: logically equal specs must compare (and hash)
        # equal — they key dataset-memo entries.
        object.__setattr__(self, "windows", tuple(sorted(normalized)))
        if not 0.0 <= float(self.churn_rate) < 1.0:
            raise ConfigError(
                f"churn_rate must be in [0, 1), got {self.churn_rate!r}"
            )

    @property
    def engaged(self) -> bool:
        """Whether any participation knob departs from full participation."""
        return (
            self.sampled_k is not None
            or bool(self.windows)
            or self.churn_rate > 0.0
        )

    @property
    def has_absences(self) -> bool:
        """Whether peers can be *offline* (as opposed to merely unsampled)."""
        return bool(self.windows) or self.churn_rate > 0.0


class ParticipationPlan:
    """The spec resolved against a concrete cohort: who does what, when.

    Built once per run (and rebuilt bit-identically by every runtime
    process); all queries are dictionary lookups afterwards.  ``offline``
    and ``active`` answer per round; ``ever_active`` bounds which peers the
    driver must materialize at all — at 1000 registered / 25 sampled / 3
    rounds that is at most 76 peers, which is what makes thousand-peer
    cohorts affordable.
    """

    def __init__(
        self,
        spec: ParticipationSpec,
        peer_ids: Sequence[str],
        rounds: int,
        rngs: RngFactory,
    ) -> None:
        self.spec = spec
        self.peer_ids: Tuple[str, ...] = tuple(peer_ids)
        cohort = len(self.peer_ids)
        if spec.sampled_k is not None and spec.sampled_k > cohort:
            raise ConfigError(
                f"sampled_k {spec.sampled_k} exceeds the cohort size {cohort}"
            )
        for peer_index, _first, _length in spec.windows:
            if peer_index >= cohort:
                raise ConfigError(
                    f"availability window peer index {peer_index} is out of "
                    f"range for cohort size {cohort}"
                )
        head = self.peer_ids[0]
        churn_pool = self.peer_ids[1:]
        self._offline: Dict[int, FrozenSet[str]] = {}
        self._active: Dict[int, Tuple[str, ...]] = {}
        ever = {head}
        for round_id in range(1, int(rounds) + 1):
            away = set()
            for peer_index, first_round, length in spec.windows:
                if first_round <= round_id < first_round + length:
                    away.add(self.peer_ids[peer_index])
            if spec.churn_rate > 0.0 and churn_pool:
                # One fixed-size draw batch per round, independent of who is
                # already away, so window edits never perturb churn draws.
                draws = rngs.get("participation", "churn", round_id).random(
                    len(churn_pool)
                )
                away.update(
                    peer_id
                    for peer_id, draw in zip(churn_pool, draws)
                    if draw < spec.churn_rate
                )
            offline = frozenset(away)
            self._offline[round_id] = offline
            candidates = [pid for pid in self.peer_ids if pid not in offline]
            k = spec.sampled_k
            if k is not None and len(candidates) > k:
                picks = rngs.get("participation", round_id).choice(
                    len(candidates), size=k, replace=False
                )
                chosen = {candidates[int(index)] for index in picks}
                active = tuple(pid for pid in candidates if pid in chosen)
            else:
                active = tuple(candidates)
            self._active[round_id] = active
            ever.update(active)
        self.ever_active: FrozenSet[str] = frozenset(ever)

    @property
    def engaged(self) -> bool:
        return self.spec.engaged

    @property
    def has_absences(self) -> bool:
        return self.spec.has_absences

    def offline(self, round_id: int) -> FrozenSet[str]:
        """Peers partitioned from the network for ``round_id``."""
        return self._offline.get(round_id, frozenset())

    def active(self, round_id: int) -> Tuple[str, ...]:
        """The round's selected subcohort, in cohort order."""
        return self._active.get(round_id, self.peer_ids)
