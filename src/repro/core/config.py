"""Calibrated experiment configuration.

Single source of truth for the parameters reproducing the paper's setup:
three clients A/B/C, ten communication rounds, five local epochs, two model
complexities, and a synthetic-dataset difficulty calibrated so accuracy
trajectories land near the paper's (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.data.synthetic import SyntheticSpec
from repro.errors import ConfigError
from repro.fl.trainer import TrainConfig

#: The paper's three clients.
CLIENT_IDS = ("A", "B", "C")


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything a table-reproducing run needs."""

    model_kind: str = "simple_nn"          # "simple_nn" | "efficientnet_b0_sim"
    rounds: int = 10
    local_epochs: int = 5
    batch_size: int = 32
    learning_rate: float = 0.008
    client_ids: tuple[str, ...] = CLIENT_IDS
    train_samples_per_client: int = 800
    test_samples_per_client: int = 500
    aggregator_test_samples: int = 500
    client_skew: float = 1.0               # per-client label heterogeneity
    backbone_sigma: float = 0.55           # RBF width of the pretrained trunk
    backbone_mismatch: float = 0.075       # pretrained-domain mismatch
    seed: int = 42
    data_spec: SyntheticSpec = field(default_factory=SyntheticSpec)

    def __post_init__(self) -> None:
        if self.model_kind not in ("simple_nn", "efficientnet_b0_sim"):
            raise ConfigError(f"unknown model kind {self.model_kind!r}")
        if self.rounds < 1:
            raise ConfigError("rounds must be >= 1")
        if self.local_epochs < 1:
            raise ConfigError(f"local_epochs must be >= 1, got {self.local_epochs}")
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ConfigError(f"learning_rate must be positive, got {self.learning_rate}")
        if len(self.client_ids) < 2:
            raise ConfigError("need at least two clients")
        if len(set(self.client_ids)) != len(self.client_ids):
            raise ConfigError(f"client_ids must be unique, got {self.client_ids!r}")
        if min(self.train_samples_per_client, self.test_samples_per_client, self.aggregator_test_samples) < 1:
            raise ConfigError("per-client and aggregator sample counts must be >= 1")
        if self.client_skew < 0:
            raise ConfigError(f"client_skew must be non-negative, got {self.client_skew}")

    def train_config(self) -> TrainConfig:
        """Local-training hyperparameters for this experiment."""
        return TrainConfig(
            epochs=self.local_epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
        )


def calibrated_spec(model_kind: str = "simple_nn", seed: int = 1234) -> SyntheticSpec:
    """Dataset difficulty calibrated for the reproduction.

    One shared spec keeps the task identical across models (as CIFAR-10
    is); the knobs were tuned so that, over ten rounds of 3-client FedAvg:

    * ``simple_nn`` climbs steadily through the 0.4-0.6 range (paper:
      0.28 -> 0.60), limited by having to learn the antipodal hard-class
      features from noisy pixels from scratch, and
    * ``efficientnet_b0_sim`` starts near 0.78 and plateaus in the mid
      0.8s (paper: 0.79 -> 0.86), limited by label noise.
    """
    del model_kind  # same data for both models, like CIFAR-10 in the paper
    return SyntheticSpec(seed=seed)


#: Calibrated per-model learning rates: the from-scratch MLP needs a small
#: step on noisy 3072-dim inputs; the linear head on frozen RBF features
#: tolerates (and needs, for the paper's fast round-1 rise) a large one.
MODEL_LEARNING_RATES = {"simple_nn": 0.008, "efficientnet_b0_sim": 0.5}


def default_config(model_kind: str, seed: int = 42) -> ExperimentConfig:
    """Paper-faithful configuration for one model family."""
    return ExperimentConfig(
        model_kind=model_kind,
        learning_rate=MODEL_LEARNING_RATES[model_kind],
        seed=seed,
        data_spec=calibrated_spec(model_kind),
    )


def quick_config(model_kind: str, seed: int = 42) -> ExperimentConfig:
    """Small/fast variant for tests: fewer rounds, less data."""
    return replace(
        default_config(model_kind, seed=seed),
        rounds=2,
        local_epochs=1,
        train_samples_per_client=200,
        test_samples_per_client=150,
        aggregator_test_samples=150,
    )
