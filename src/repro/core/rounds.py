"""Round state machine for the decentralized protocol.

Tracks, per communication round, which peers have visible on-chain
submissions and when each waiting policy fired — the raw material of the
speed side of the speed/precision trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.errors import RoundError
from repro.fl.async_policy import AsyncPolicy


class RoundState(Enum):
    """Lifecycle of one round from a single peer's perspective."""

    IDLE = "idle"
    TRAINING = "training"
    SUBMITTED = "submitted"
    WAITING = "waiting"
    AGGREGATED = "aggregated"


@dataclass
class RoundTimeline:
    """Timestamps (simulated seconds) of one peer's round milestones."""

    round_id: int
    opened_at: float = 0.0
    training_done_at: Optional[float] = None
    submitted_at: Optional[float] = None
    quorum_at: Optional[float] = None
    aggregated_at: Optional[float] = None

    @property
    def wait_time(self) -> Optional[float]:
        """Seconds spent between submitting and reaching quorum."""
        if self.submitted_at is None or self.quorum_at is None:
            return None
        return max(self.quorum_at - self.submitted_at, 0.0)

    @property
    def total_time(self) -> Optional[float]:
        """Seconds from round open to aggregation."""
        if self.aggregated_at is None:
            return None
        return self.aggregated_at - self.opened_at


@dataclass
class RoundTracker:
    """Per-peer state machine with policy-based readiness checks."""

    peer_id: str
    policy: AsyncPolicy
    cohort_size: int
    state: RoundState = RoundState.IDLE
    current_round: int = -1
    timelines: dict[int, RoundTimeline] = field(default_factory=dict)

    def open_round(self, round_id: int, now: float) -> RoundTimeline:
        """Begin a round (moves to TRAINING)."""
        if round_id in self.timelines:
            raise RoundError(f"{self.peer_id}: round {round_id} already opened")
        timeline = RoundTimeline(round_id=round_id, opened_at=now)
        self.timelines[round_id] = timeline
        self.current_round = round_id
        self.state = RoundState.TRAINING
        return timeline

    def mark_trained(self, round_id: int, now: float) -> None:
        """Local training finished."""
        self._timeline(round_id).training_done_at = now
        self.state = RoundState.SUBMITTED

    def mark_submitted(self, round_id: int, now: float) -> None:
        """Model commitment broadcast to the chain."""
        self._timeline(round_id).submitted_at = now
        self.state = RoundState.WAITING

    def check_ready(
        self,
        round_id: int,
        submissions_visible: int,
        now: float,
        expected: Optional[int] = None,
    ) -> bool:
        """Evaluate the waiting policy; record the first time it fires.

        ``expected`` overrides the cohort size the policy quorums
        against — the round driver passes the number of peers actually
        live this round when fault plans crash or drop peers, so
        wait-for-all degrades to wait-for-the-survivors instead of
        waiting forever for a crashed peer.
        """
        timeline = self._timeline(round_id)
        elapsed = now - timeline.opened_at
        cohort = self.cohort_size if expected is None else expected
        ready = self.policy.ready(submissions_visible, cohort, elapsed)
        if ready and timeline.quorum_at is None:
            timeline.quorum_at = now
        return ready

    def mark_aggregated(self, round_id: int, now: float) -> None:
        """Aggregation complete (moves to AGGREGATED)."""
        self._timeline(round_id).aggregated_at = now
        self.state = RoundState.AGGREGATED

    def _timeline(self, round_id: int) -> RoundTimeline:
        try:
            return self.timelines[round_id]
        except KeyError:
            raise RoundError(f"{self.peer_id}: round {round_id} never opened") from None

    def wait_times(self) -> dict[int, float]:
        """Completed wait times per round (speed metric)."""
        return {
            round_id: timeline.wait_time
            for round_id, timeline in sorted(self.timelines.items())
            if timeline.wait_time is not None
        }
