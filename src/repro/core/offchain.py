"""Content-addressed off-chain weight store (the IPFS stand-in).

Full model weights are too large for economical on-chain storage (the paper
works around this by lifting Ethereum's size limits; related systems use
IPFS).  We store serialized weights in a content-addressed map shared by
the cohort: the key IS the hash committed on chain, so fetching by the
committed hash guarantees integrity — a peer cannot be served different
bytes than the author committed to.

The store is archive-aware: :meth:`put_archive` ingests a
:class:`~repro.nn.serialize.WeightArchive` whose single cached encoding
supplies both the payload and the content hash, and :meth:`get_archive`
memoizes decoded archives per content hash in a bounded LRU, so a blob
fetched by many peers across many polls is deserialized exactly once
while its round is live (historical models fall out of the cache instead
of pinning their ndarrays forever).  ``serializations`` /
``deserializations`` count the real marshalling work the store triggered
— the commitment-pipeline tests pin these to one per model per round.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional

import numpy as np

from repro.errors import SerializationError
from repro.nn.serialize import WeightArchive, WeightsLike, as_archive
from repro.utils.hashing import keccak_like

#: Decoded archives kept live at once.  A round re-fetches only the current
#: cohort's models, so the cache needs to span a couple of rounds of a large
#: cohort — beyond that, pinning every historical model's ndarrays alongside
#: the (already retained) serialized blobs would grow without bound.
DEFAULT_ARCHIVE_CACHE_SIZE = 64


class OffchainStore:
    """Shared content-addressed blob store with a decoded-archive LRU cache."""

    def __init__(self, archive_cache_size: int = DEFAULT_ARCHIVE_CACHE_SIZE) -> None:
        if archive_cache_size < 1:
            raise SerializationError("archive_cache_size must be >= 1")
        self._blobs: dict[str, bytes] = {}
        self._archives: OrderedDict[str, WeightArchive] = OrderedDict()
        self._archive_cache_size = archive_cache_size
        self.puts = 0
        self.gets = 0
        self.batch_fetches = 0      # batched multi-key fetch round trips
        self.serializations = 0     # weight encodes this store triggered
        self.deserializations = 0   # weight decodes this store triggered
        self.decode_hits = 0        # fetches answered from the decoded cache

    def put(self, payload: bytes) -> str:
        """Store bytes; returns their content hash (idempotent)."""
        key = keccak_like(payload)
        if key not in self._blobs:
            self._blobs[key] = bytes(payload)
        self.puts += 1
        return key

    def get(self, key: str) -> bytes:
        """Fetch bytes by content hash; raises if unknown."""
        try:
            blob = self._blobs[key]
        except KeyError:
            raise SerializationError(f"no off-chain blob for {key[:16]}...") from None
        self.gets += 1
        return blob

    def __contains__(self, key: str) -> bool:
        return key in self._blobs

    def __len__(self) -> int:
        return len(self._blobs)

    # -- typed helpers ------------------------------------------------------

    def put_archive(self, archive: WeightArchive) -> str:
        """Store an archive; returns the commitment hash.

        The archive's cached encoding is the single source of payload,
        hash, and size — no re-serialization, no re-hash.  The decoded
        form is retained so subsequent fetches skip deserialization too.
        """
        freshly_encoded = not archive.encoded
        key = archive.hash  # materializes the payload (at most one encode)
        if freshly_encoded:  # counted only once the encode succeeded
            self.serializations += 1
        if key not in self._blobs:
            self._blobs[key] = archive.payload
        if key in self._archives:
            self._archives.move_to_end(key)  # re-commit marks the entry hot
        else:
            self._cache_archive(key, archive)
        self.puts += 1
        return key

    def _cache_archive(self, key: str, archive: WeightArchive) -> None:
        """Insert a not-yet-cached key at the LRU's hot end, evicting the
        stalest entry (both callers handle the already-cached case)."""
        self._archives[key] = archive
        while len(self._archives) > self._archive_cache_size:
            self._archives.popitem(last=False)

    def put_weights(self, weights: WeightsLike) -> str:
        """Serialize (at most once) and store weights; returns the hash."""
        return self.put_archive(as_archive(weights))

    def get_archive(self, key: str) -> WeightArchive:
        """Fetch the archive for ``key``, decoding at most once per
        residency in the LRU cache (once ever, for live working sets).

        Content integrity (bytes hash back to ``key``) is verified when
        the archive is materialized; cached hits skip the recheck because
        the blob map is append-only and cached entries derive from it.
        """
        cached = self._archives.get(key)
        if cached is not None:
            self.gets += 1
            self.decode_hits += 1
            self._archives.move_to_end(key)
            return cached
        payload = self.get(key)
        if keccak_like(payload) != key:  # defensive: store corruption
            raise SerializationError(f"content hash mismatch for {key[:16]}...")
        archive = WeightArchive.from_bytes(payload)
        archive.weights  # decode eagerly so corrupt payloads fail here
        self.deserializations += 1  # counted only once the decode succeeded
        self._cache_archive(key, archive)
        return archive

    def get_weights(self, key: str) -> dict[str, np.ndarray]:
        """Fetch a weight dict (fresh array copies, safe to mutate)."""
        return self.get_archive(key).copy_weights()

    def total_bytes(self) -> int:
        """Total stored payload size (for the model-size telemetry)."""
        return sum(len(blob) for blob in self._blobs.values())

    def maybe_get_weights(self, key: str) -> Optional[dict[str, np.ndarray]]:
        """Like :meth:`get_weights` but returns ``None`` when missing."""
        if key not in self._blobs:
            return None
        return self.get_weights(key)

    def fetch_available(self, keys: Iterable[str]) -> dict[str, dict[str, np.ndarray]]:
        """Batched fetch: every *present* key's weights in one lookup.

        The round-trip-shaped read path of the FL layer: a peer resolves
        all of a round's committed hashes in a single store visit (one
        IPFS batch request in a real deployment) instead of one probe per
        commitment.  Missing keys — blobs that have not propagated yet —
        are simply absent from the result.  Duplicate keys are fetched
        once.
        """
        self.batch_fetches += 1
        found: dict[str, dict[str, np.ndarray]] = {}
        for key in keys:
            if key not in found and key in self._blobs:
                found[key] = self.get_weights(key)
        return found

    def marshalling_stats(self) -> dict:
        """Counters for the commitment-pipeline benchmarks."""
        return {
            "puts": self.puts,
            "gets": self.gets,
            "batch_fetches": self.batch_fetches,
            "serializations": self.serializations,
            "deserializations": self.deserializations,
            "decode_hits": self.decode_hits,
        }
