"""Content-addressed off-chain weight store (the IPFS stand-in).

Full model weights are too large for economical on-chain storage (the paper
works around this by lifting Ethereum's size limits; related systems use
IPFS).  We store serialized weights in a content-addressed map shared by
the cohort: the key IS the hash committed on chain, so fetching by the
committed hash guarantees integrity — a peer cannot be served different
bytes than the author committed to.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SerializationError
from repro.nn.serialize import weights_from_bytes, weights_to_bytes
from repro.utils.hashing import keccak_like


class OffchainStore:
    """Shared content-addressed blob store."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}
        self.puts = 0
        self.gets = 0

    def put(self, payload: bytes) -> str:
        """Store bytes; returns their content hash (idempotent)."""
        key = keccak_like(payload)
        if key not in self._blobs:
            self._blobs[key] = bytes(payload)
        self.puts += 1
        return key

    def get(self, key: str) -> bytes:
        """Fetch bytes by content hash; raises if unknown."""
        try:
            blob = self._blobs[key]
        except KeyError:
            raise SerializationError(f"no off-chain blob for {key[:16]}...") from None
        self.gets += 1
        return blob

    def __contains__(self, key: str) -> bool:
        return key in self._blobs

    def __len__(self) -> int:
        return len(self._blobs)

    # -- typed helpers ------------------------------------------------------

    def put_weights(self, weights: dict[str, np.ndarray]) -> str:
        """Serialize and store a weight dict; returns the commitment hash."""
        return self.put(weights_to_bytes(weights))

    def get_weights(self, key: str) -> dict[str, np.ndarray]:
        """Fetch and deserialize a weight dict, verifying content integrity."""
        payload = self.get(key)
        if keccak_like(payload) != key:  # defensive: store corruption
            raise SerializationError(f"content hash mismatch for {key[:16]}...")
        return weights_from_bytes(payload)

    def total_bytes(self) -> int:
        """Total stored payload size (for the model-size telemetry)."""
        return sum(len(blob) for blob in self._blobs.values())

    def maybe_get_weights(self, key: str) -> Optional[dict[str, np.ndarray]]:
        """Like :meth:`get_weights` but returns ``None`` when missing."""
        if key not in self._blobs:
            return None
        return self.get_weights(key)
