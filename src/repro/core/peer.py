"""The fully coupled peer: data holder + trainer + ledger client + aggregator.

One :class:`FullPeer` owns a :class:`~repro.chain.gateway.ChainGateway`
(its only window onto the ledger — in-process today, remotable tomorrow),
an :class:`~repro.fl.client.FLClient` (so it trains), and the wiring
between them: committing local models on chain, reading other peers'
commitments back, fetching weights off-chain, and running the
personalized combination aggregation of Section III.  The peer never
touches a raw :class:`~repro.chain.node.Node`; a seam test enforces that
for the whole FL layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.chain.crypto import Address, KeyPair
from repro.chain.gateway import ChainGateway
from repro.chain.transaction import Transaction
from repro.core.offchain import OffchainStore
from repro.data.dataset import Dataset
from repro.errors import ConfigError
from repro.fl.aggregation import ModelUpdate
from repro.fl.client import ClientConfig, FLClient
from repro.fl.poisoning import Attacker
from repro.fl.trainer import TrainConfig
from repro.nn.model import Sequential


@dataclass
class PeerConfig:
    """Identity plus FL hyperparameters for one peer.

    ``attacker`` makes the peer adversarial: the hook is forwarded to the
    embedded :class:`~repro.fl.client.FLClient`, so every update the peer
    commits on chain has passed through
    :meth:`~repro.fl.poisoning.Attacker.poison_update`.
    """

    peer_id: str                      # display id, e.g. "A"
    train_config: TrainConfig
    model_kind: str = "simple_nn"
    training_time: float = 30.0       # simulated seconds of local training
    training_time_jitter: float = 5.0
    attacker: Optional[Attacker] = None

    def __post_init__(self) -> None:
        if not self.peer_id:
            raise ConfigError("peer_id must be non-empty")
        if self.training_time <= 0:
            raise ConfigError("training_time must be positive")


def registration_transaction(
    keypair: KeyPair, registry_address: Address, display_name: str, nonce: int
) -> Transaction:
    """Signed ``register`` call for an identity with no instantiated peer.

    Under client sampling most of a thousand-peer cohort never trains, so
    the driver materializes no :class:`FullPeer` (no node, no gateway) for
    those identities — but the on-chain registry must still hold the whole
    roster.  Any live gateway can broadcast the returned transaction on the
    absent identity's behalf: it is signed with the identity's own key, so
    the chain sees exactly the self-registration an instantiated peer would
    have sent.
    """
    tx = Transaction(
        sender=keypair.address,
        to=registry_address,
        nonce=nonce,
        method="register",
        args={"display_name": display_name},
    )
    return tx.sign_with(keypair)


class FullPeer:
    """One fully coupled participant of the decentralized deployment."""

    def __init__(
        self,
        config: PeerConfig,
        keypair: KeyPair,
        gateway: ChainGateway,
        offchain: OffchainStore,
        train_set: Optional[Dataset],
        test_set: Optional[Dataset],
        model_builder: Optional[Callable[[np.random.Generator], Sequential]],
        rng: np.random.Generator,
        attack_rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.config = config
        self.peer_id = config.peer_id
        self.keypair = keypair
        self.gateway = gateway
        self.offchain = offchain
        self.rng = rng
        # Chain-only mode (no datasets/model builder): the peer signs,
        # submits, and reads the ledger but owns no local model.  The
        # multiprocess coordinator (repro.runtime) holds the cohort this
        # way — training, evaluation, and adoption live in the workers.
        self.client: Optional[FLClient] = None
        if train_set is not None and test_set is not None and model_builder is not None:
            self.client = FLClient(
                ClientConfig(
                    client_id=config.peer_id,
                    train_config=config.train_config,
                    model_kind=config.model_kind,
                    attacker=config.attacker,
                ),
                train_set,
                test_set,
                model_builder,
                rng,
                attack_rng=attack_rng,
            )
        self.model_store_address: Optional[Address] = None
        self.coordinator_address: Optional[Address] = None

    def _require_client(self) -> FLClient:
        if self.client is None:
            raise ConfigError(
                f"{self.peer_id}: chain-only peer has no local model "
                "(training and evaluation live in the worker processes)"
            )
        return self.client

    @property
    def address(self) -> Address:
        """On-chain address of this peer."""
        return self.keypair.address

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def make_transaction(self, to: Optional[Address], method: str = "", args: Optional[dict] = None, data: bytes = b"") -> Transaction:
        """Build and sign a transaction from this peer's account."""
        tx = Transaction(
            sender=self.address,
            to=to,
            nonce=self.gateway.next_nonce(self.address),
            method=method,
            args=args or {},
            data=data,
        )
        return tx.sign_with(self.keypair)

    def sample_training_time(self) -> float:
        """Simulated duration of this round's local training."""
        jitter = self.config.training_time_jitter
        extra = float(self.rng.uniform(0.0, jitter)) if jitter > 0 else 0.0
        return self.config.training_time + extra

    # ------------------------------------------------------------------
    # FL protocol steps
    # ------------------------------------------------------------------

    def train_and_commit(self, round_id: int) -> tuple[ModelUpdate, Transaction]:
        """Local training, off-chain upload, and on-chain commitment tx.

        Returns the update (for local bookkeeping) and the signed
        ``submit_model`` transaction ready for broadcast.

        The update's :class:`~repro.nn.serialize.WeightArchive` is the
        single encoding behind everything committed here: the off-chain
        payload, the on-chain hash, and the reported model size all come
        from one serialization (the seed code paid one each).
        """
        if self.model_store_address is None:
            raise ConfigError(f"{self.peer_id}: model store address not set")
        update = self._require_client().train_local(round_id)
        archive = update.archive()
        commitment = self.offchain.put_archive(archive)
        tx = self.make_transaction(
            to=self.model_store_address,
            method="submit_model",
            args={
                "round_id": round_id,
                "weights_hash": commitment,
                "num_samples": update.num_samples,
                "model_kind": self.config.model_kind,
                "reported_accuracy": update.reported_accuracy,
                "size_bytes": archive.size,
            },
            data=commitment.encode("ascii"),
        )
        return update, tx

    def visible_submissions(self, round_id: int) -> list[dict]:
        """Commitments visible on this peer's canonical chain view."""
        if self.model_store_address is None:
            raise ConfigError(f"{self.peer_id}: model store address not set")
        return self.gateway.call(
            self.model_store_address, "round_submissions", round_id=round_id
        )

    def fetch_updates(self, round_id: int, id_of: dict[Address, str]) -> list[ModelUpdate]:
        """Materialize :class:`ModelUpdate` objects from on-chain commitments.

        ``id_of`` maps chain addresses to display peer ids.  The round's
        committed hashes are fetched from the off-chain store in one
        batched lookup; submissions whose weights have not propagated yet
        are skipped (they will be visible next check).
        """
        records = self.visible_submissions(round_id)
        available = self.offchain.fetch_available(
            [record["weights_hash"] for record in records]
        )
        updates = []
        for record in records:
            weights = available.get(record["weights_hash"])
            if weights is None:
                continue
            updates.append(
                ModelUpdate(
                    client_id=id_of.get(record["author"], record["author"]),
                    weights=weights,
                    num_samples=record["num_samples"],
                    round_id=round_id,
                    reported_accuracy=record["reported_accuracy"],
                )
            )
        return updates

    def evaluate_weights(self, weights: dict[str, np.ndarray]) -> float:
        """Fitness of ``weights`` on this peer's private test set."""
        return self._require_client().evaluate_weights(weights)

    def adopt(self, weights: dict[str, np.ndarray]) -> None:
        """Install the chosen aggregated model for the next round."""
        self._require_client().apply_global(weights)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FullPeer(id={self.peer_id!r}, address={self.address[:10]}...)"
