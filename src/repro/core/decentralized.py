"""Decentralized blockchain-based FL orchestrator (Tables II-IV, Figure 4).

Wires :class:`~repro.core.peer.FullPeer` objects into the simulated
Ethereum network and drives communication rounds end to end:

1. a peer deploys the contract suite (registry, model store, coordinator)
   and everyone registers — all mined through PoW like any other tx;
2. each round, every peer trains locally (simulated duration), uploads its
   weights off-chain, and broadcasts a ``submit_model`` transaction;
3. miners include the submissions in blocks; each peer polls its *own*
   chain view until its waiting policy fires (wait-for-all reproduces the
   paper's tables; wait-for-k drives the async trade-off benchmark);
4. the peer then enumerates model combinations against its private test
   set, logs the full accuracy table, adopts the best combination, and
   moves on (ties broken uniformly at random, as the paper specifies).

The result object holds, for every (peer, round, combination), the accuracy
that Tables II-IV report, plus the timing telemetry behind the headline
speed/precision claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

import numpy as np

from repro.chain.crypto import Address, KeyPair
from repro.chain.gateway import (
    GATEWAY_BACKENDS,
    BatchingGateway,
    CallRequest,
    ChainGateway,
    GatewayStats,
    InProcessGateway,
    stacked_stats,
    transport_stats,
)
from repro.chain import ColdStore, GenesisSpec, Node, NodeConfig
from repro.chain.network import LatencyModel, P2PNetwork
from repro.chain.pow import ProofOfWork, RetargetRule
from repro.chain.runtime import ContractRuntime
from repro.contracts import register_all
from repro.core.offchain import OffchainStore
from repro.core.participation import ParticipationPlan, ParticipationSpec
from repro.core.peer import FullPeer, PeerConfig, registration_transaction
from repro.core.rounds import RoundTracker
from repro.data.dataset import Dataset
from repro.errors import (
    ConfigError,
    GatewayError,
    GatewayUnavailableError,
    RoundError,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec, FaultyGateway, ResilientGateway
from repro.fl.aggregation import ModelUpdate, fedavg
from repro.fl.async_policy import AsyncPolicy, WaitForAll
from repro.fl.scoring import CombinationEngine, ScoredSubset, run_peer_searches
from repro.fl.selection import enumerate_combinations, greedy_combination, pick_best
from repro.nn.model import Sequential
from repro.nn.serialize import weights_to_bytes
from repro.utils.events import Simulator
from repro.utils.hashing import sha256_bytes
from repro.utils.rng import RngFactory

#: Initial balance funding each peer's gas spend.
PEER_ALLOCATION = 10**15

#: Score every participant starts with on the reputation ledger; scores
#: below it mark peers the cohort has rated down (the exclusion signal).
REPUTATION_INITIAL_SCORE = 100


@dataclass
class DecentralizedConfig:
    """Parameters of the decentralized deployment.

    ``mode`` selects between the paper's two operating modes (§III-B):

    * ``"personalized"`` — each peer customizes its aggregation with an
      arbitrary subset of local models (decentralized learning; the
      default, and what Tables II-IV report);
    * ``"global_vote"`` — peers aggregate the full visible set, vote the
      resulting hash on chain, and adopt whichever aggregate reaches the
      finalization threshold: a common global model without a fixed single
      aggregator.

    ``enable_reputation`` adds the incentive extension: after aggregating,
    each peer rates the others on the reputation ledger according to
    whether their solo models passed its local fitness check.

    ``selection`` picks the combination-search strategy in personalized
    mode: ``"exhaustive"`` enumerates every subset (the paper's Tables
    II-IV), ``"greedy"`` runs forward selection
    (:func:`~repro.fl.selection.greedy_combination`, O(n^2) instead of
    O(2^n)), and ``"auto"`` — the default — stays exhaustive up to
    ``exhaustive_limit`` visible updates and switches to greedy beyond it,
    so the paper's 3-peer tables are bit-identical while 10-50-peer
    cohorts stay tractable.

    ``scoring`` picks the combination-scoring implementation:
    ``"engine"`` (the default) runs searches through the memoized
    incremental :class:`~repro.fl.scoring.CombinationEngine`;
    ``"serial"`` keeps the seed per-subset loop from
    :mod:`repro.fl.selection`.  Both produce identical accuracy tables,
    chosen combinations, and tie-break RNG draws — ``"serial"`` exists
    as the reference for equivalence tests and benchmarks.

    ``selection_workers`` (engine mode only) fans the peers' independent
    combination searches out to that many worker processes; ``0`` stays
    in-process.  Worker count never changes any result.

    ``gateway`` selects the ledger backend every peer talks through
    (:mod:`repro.chain.gateway`): ``"inprocess"`` is the pure-delegation
    wrapper around each peer's node (bit-identical to the pre-gateway
    driver), ``"batching"`` coalesces the per-round fan-out of contract
    reads behind a head-keyed cache whose entries also expire after
    ``gateway_staleness`` simulated seconds.  Reads are pure functions of
    the canonical head, so the backend never changes a result — only the
    number of transport round trips (``chain_stats()["gateway"]``).

    ``faults`` (a :class:`~repro.faults.FaultSpec`) activates the
    deterministic fault-injection harness: every peer's gateway stack
    gains a :class:`~repro.faults.FaultyGateway` just above the transport
    and (with ``faults.resilience``) a
    :class:`~repro.faults.ResilientGateway` on top, rounds degrade to the
    live quorum when peers are crashed or dropped, and ``run()`` records
    ``completed_rounds`` / ``abort_reason`` instead of propagating round
    failures.  The default (inactive) spec changes nothing — the stack,
    the rng draws, and every result are identical to pre-fault builds.

    ``drop_rate`` is the p2p message-drop probability, drawn from the
    dedicated ``network/drop`` stream so fault intensities A/B cleanly
    against each other without perturbing latency draws.

    ``participation`` (a :class:`~repro.core.participation.ParticipationSpec`)
    activates client sampling and churn: only the round's selected
    subcohort trains/submits/rates/votes, window/churn absences partition
    the peer like a PR-7 crash (with the same sync + FedAvg catch-up on
    rejoin), and peers that are never selected are never materialized at
    all — which is what lets ``cohort/1000`` run with 25 trainers per
    round.  The default (full participation) spec changes nothing: the
    peer set, rng draws, transactions, and results are byte-identical to
    pre-participation builds.
    """

    rounds: int = 10
    policy: AsyncPolicy = field(default_factory=WaitForAll)
    mode: str = "personalized"
    enable_reputation: bool = False
    reputation_fitness_margin: float = 0.10
    selection: str = "auto"
    exhaustive_limit: int = 6
    scoring: str = "engine"
    selection_workers: int = 0
    gateway: str = "inprocess"
    gateway_staleness: float = 5.0
    target_block_interval: float = 13.0
    latency: LatencyModel = field(default_factory=LatencyModel)
    gossip_batch_window: float = 0.01
    hashrate: float = 1000.0
    max_round_time: float = 100_000.0
    poll_interval: float = 1.0
    faults: FaultSpec = field(default_factory=FaultSpec)
    drop_rate: float = 0.0
    participation: ParticipationSpec = field(default_factory=ParticipationSpec)
    execution: str = "serial"
    execution_workers: int = 0
    parallel_min_txs: int = 64
    cold_storage: bool = False
    hot_window: int = 16
    snapshot_interval: int = 0

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ConfigError(f"rounds must be >= 1, got {self.rounds}")
        if self.mode not in ("personalized", "global_vote"):
            raise ConfigError(f"unknown mode {self.mode!r}")
        if self.selection not in ("exhaustive", "greedy", "auto"):
            raise ConfigError(f"unknown selection strategy {self.selection!r}")
        if self.exhaustive_limit < 1:
            raise ConfigError(
                f"exhaustive_limit must be >= 1, got {self.exhaustive_limit}"
            )
        if self.scoring not in ("engine", "serial"):
            raise ConfigError(f"unknown scoring implementation {self.scoring!r}")
        if self.selection_workers < 0:
            raise ConfigError(
                f"selection_workers must be >= 0, got {self.selection_workers}"
            )
        if self.scoring == "serial" and self.selection_workers > 0:
            raise ConfigError(
                "selection_workers requires the scoring engine; "
                'the "serial" reference path is single-process'
            )
        if self.gateway not in GATEWAY_BACKENDS:
            raise ConfigError(
                f"unknown gateway backend {self.gateway!r}; "
                f"choose from {GATEWAY_BACKENDS}"
            )
        if self.gateway_staleness <= 0:
            raise ConfigError(
                f"gateway_staleness must be positive, got {self.gateway_staleness}"
            )
        if not 0.0 <= self.drop_rate < 1.0:
            raise ConfigError(f"drop_rate must be in [0, 1), got {self.drop_rate}")
        if self.execution not in ("serial", "parallel"):
            raise ConfigError(
                f"execution must be 'serial' or 'parallel', got {self.execution!r}"
            )
        if self.execution_workers < 0:
            raise ConfigError("execution_workers must be >= 0")
        if self.parallel_min_txs < 1:
            raise ConfigError("parallel_min_txs must be >= 1")
        if self.hot_window < 1:
            raise ConfigError("hot_window must be >= 1")
        if self.snapshot_interval < 0:
            raise ConfigError("snapshot_interval must be >= 0")
        if self.snapshot_interval > 0 and not self.cold_storage:
            raise ConfigError("snapshot_interval requires cold_storage")


@dataclass
class PeerRoundLog:
    """One peer's view of one round."""

    peer_id: str
    round_id: int
    combination_accuracy: dict[str, float] = field(default_factory=dict)
    chosen_combination: tuple[str, ...] = ()
    chosen_accuracy: float = 0.0
    models_used: int = 0          # size of the adopted combination
    updates_visible: int = 0      # updates on-chain when aggregation ran
    submitted_at: float = 0.0
    ready_at: float = 0.0
    aggregated_at: float = 0.0

    @property
    def wait_time(self) -> float:
        """Simulated seconds between own submission and policy readiness."""
        return max(self.ready_at - self.submitted_at, 0.0)


# ---------------------------------------------------------------------------
# Per-peer round logic, shared with the out-of-process runtime
# ---------------------------------------------------------------------------
# These module-level functions are the single copy of the byte-sensitive
# per-peer work: the in-process driver calls them directly and the worker
# processes (repro.runtime.worker) call the very same code on their side of
# the wire, so the two runtimes cannot drift apart.


def choose_combination(
    peer: FullPeer,
    engine: Optional[CombinationEngine],
    updates: list[ModelUpdate],
    use_greedy: bool,
) -> tuple[list, object]:
    """One peer's combination search; returns ``(scored, chosen)``.

    Tie-breaking draws from ``peer.rng`` (exhaustive paths only), so the
    caller must hold the peer's canonical named stream.
    """
    if use_greedy:
        if engine is not None:
            chosen = engine.greedy(updates)
        else:
            chosen = greedy_combination(
                updates, peer.client.model, peer.client.test_set, aggregator=fedavg
            )
        return [chosen], chosen
    if engine is not None:
        scored = engine.enumerate(updates)
        top = pick_best(scored, peer.rng)
        return scored, engine.materialize(top.members, updates, top.accuracy)
    scored = enumerate_combinations(
        updates, peer.client.model, peer.client.test_set, aggregator=fedavg
    )
    return scored, pick_best(scored, peer.rng)


def adopt_choice(
    peer: FullPeer,
    round_id: int,
    updates: list[ModelUpdate],
    scored: list,
    chosen,
) -> PeerRoundLog:
    """Shared tail of every aggregation path: log the accuracy table
    (``scored``: anything with ``label``/``accuracy``), record the
    adopted combination, and install its weights — one copy, so the
    serial, pooled, and multiprocess paths cannot drift apart."""
    log = PeerRoundLog(peer_id=peer.peer_id, round_id=round_id)
    for result in scored:
        log.combination_accuracy[result.label] = result.accuracy
    log.chosen_combination = chosen.members
    log.chosen_accuracy = chosen.accuracy
    log.models_used = len(chosen.members)
    log.updates_visible = len(updates)
    peer.adopt(chosen.weights)
    return log


def rate_visible_updates(
    rater: FullPeer,
    engine: Optional[CombinationEngine],
    updates: list[ModelUpdate],
    round_id: int,
    reputation_address: Address,
    address_of: Callable[[str], Address],
    fitness_margin: float,
) -> None:
    """One rater's reputation pass over its visible updates.

    A peer whose solo model scores within ``fitness_margin`` of the
    rater's own solo earns +5; one that falls further behind earns -10.
    Solo scores were already computed during the aggregation search, so
    in engine mode the fitness lookups are pure cache hits.
    """

    def solo_fitness(update: ModelUpdate) -> float:
        if engine is not None:
            return engine.solo_accuracy(update)
        return rater.evaluate_weights(update.weights)

    own = next((u for u in updates if u.client_id == rater.peer_id), None)
    if own is None:
        return
    own_accuracy = solo_fitness(own)
    for update in updates:
        if update.client_id == rater.peer_id:
            continue
        fit = solo_fitness(update)
        delta = 5 if fit >= own_accuracy - fitness_margin else -10
        rate_tx = rater.make_transaction(
            to=reputation_address,
            method="rate",
            args={
                "round_id": round_id,
                "subject": address_of(update.client_id),
                "delta": delta,
                "reason": f"fitness {fit:.3f} vs own {own_accuracy:.3f}",
            },
        )
        rater.gateway.submit(rate_tx)


def submit_global_vote(
    peer: FullPeer, updates: list[ModelUpdate], round_id: int, offchain
) -> None:
    """Aggregate the peer's visible set and vote its hash on chain.

    Identical visible sets produce byte-identical aggregates, so the
    content-addressed put stores the blob once; each peer still pays one
    serialization to discover its aggregate's hash.
    """
    aggregate_hash = offchain.put_weights(fedavg(updates))
    vote_tx = peer.make_transaction(
        to=peer.coordinator_address,
        method="vote_global",
        args={"round_id": round_id, "aggregate_hash": aggregate_hash},
    )
    peer.gateway.submit(vote_tx)


def adopt_global_model(
    peer: FullPeer, updates: list[ModelUpdate], round_id: int, offchain
) -> PeerRoundLog:
    """Read the finalized aggregate, evaluate it locally, and adopt it."""
    final_hash = peer.gateway.call(
        peer.coordinator_address, "finalized_hash", round_id=round_id
    )
    weights = offchain.get_weights(final_hash)
    accuracy = peer.evaluate_weights(weights)
    peer.adopt(weights)
    members = tuple(sorted(update.client_id for update in updates))
    return PeerRoundLog(
        peer_id=peer.peer_id,
        round_id=round_id,
        combination_accuracy={",".join(members): accuracy},
        chosen_combination=members,
        chosen_accuracy=accuracy,
        models_used=len(members),
        updates_visible=len(updates),
    )


class DecentralizedFL:
    """Drives the full blockchain-FL deployment."""

    def __init__(
        self,
        peer_configs: list[PeerConfig],
        train_sets: dict[str, Dataset],
        test_sets: dict[str, Dataset],
        model_builder: Callable[[np.random.Generator], Sequential],
        config: DecentralizedConfig,
        rng_factory: Optional[RngFactory] = None,
    ) -> None:
        if len(peer_configs) < 2:
            raise ConfigError("decentralized FL needs at least two peers")
        self.config = config
        self.rngs = rng_factory if rng_factory is not None else RngFactory(0)

        # --- chain fabric -------------------------------------------------
        self.sim = Simulator()
        self.pow = ProofOfWork(
            self.rngs.get("pow"),
            retarget=RetargetRule(target_interval=config.target_block_interval),
        )
        self.runtime = ContractRuntime()
        register_all(self.runtime)
        self.offchain = OffchainStore()

        keypairs = {pc.peer_id: KeyPair.from_seed(f"peer-{pc.peer_id}") for pc in peer_configs}
        # Start at the retarget equilibrium so the very first blocks already
        # arrive near the target interval (a real private net warms up the
        # same way via its genesis difficulty).
        equilibrium_difficulty = max(int(config.hashrate * config.target_block_interval), 1)
        genesis = GenesisSpec(
            allocations={kp.address: PEER_ALLOCATION for kp in keypairs.values()},
            difficulty=equilibrium_difficulty,
        )
        self.network = P2PNetwork(
            self.sim,
            self.pow,
            latency=config.latency,
            rng=self.rngs.get("network"),
            drop_rate=config.drop_rate,
            batch_window=config.gossip_batch_window,
            drop_rng=self.rngs.get("network", "drop"),
        )
        self.peer_ids = [pc.peer_id for pc in peer_configs]
        self.keypairs = keypairs
        self.addresses: dict[str, Address] = {
            peer_id: keypairs[peer_id].address for peer_id in self.peer_ids
        }
        # Participation plan: who is offline/selected each round, resolved
        # once from the dedicated participation/* streams.  With the
        # default spec it draws nothing and selects everyone, so the loop
        # below materializes the whole cohort exactly as before.
        self.participation = ParticipationPlan(
            config.participation, self.peer_ids, config.rounds, self.rngs
        )
        # Fault harness (inactive spec -> no plan, no injector, and the
        # gateway stack below stays exactly the pre-fault one).
        self.fault_plan: Optional[FaultPlan] = None
        self.fault_injector: Optional[FaultInjector] = None
        if config.faults.active:
            self.fault_plan = FaultPlan(config.faults, self.peer_ids)
            self.fault_injector = FaultInjector(self.fault_plan, self.rngs)
        self.peers: dict[str, FullPeer] = {}
        # One content-addressed cold store backs the whole cohort: blocks,
        # receipts, and snapshots are consensus data, so the first node to
        # spill pays the encode and everyone else dedups against it.
        self.cold_store: Optional[ColdStore] = ColdStore() if config.cold_storage else None
        node_config = NodeConfig(
            execution=config.execution,
            execution_workers=config.execution_workers,
            parallel_min_txs=config.parallel_min_txs,
            cold_store=self.cold_store,
            hot_window=config.hot_window if self.cold_store is not None else None,
            snapshot_interval=config.snapshot_interval,
        )
        for pc in peer_configs:
            if pc.peer_id not in self.participation.ever_active:
                continue  # registered on chain below, but never trains
            node = Node(keypairs[pc.peer_id], genesis, self.runtime, replace(node_config))
            self.network.add_node(node, hashrate=config.hashrate)
            gateway: ChainGateway = InProcessGateway(
                node,
                network=self.network,
                simulator=self.sim,
                default_deadline=config.max_round_time,
            )
            if self.fault_injector is not None:
                gateway = FaultyGateway(
                    gateway,
                    pc.peer_id,
                    self.fault_injector,
                    simulator=self.sim,
                    network_stats=self.network.stats,
                )
            if config.gateway == "batching":
                gateway = BatchingGateway(gateway, staleness=config.gateway_staleness)
            if self.fault_injector is not None and config.faults.resilience:
                gateway = ResilientGateway(gateway, policy=config.faults.retry)
            self.peers[pc.peer_id] = self._build_peer(
                pc, keypairs[pc.peer_id], gateway, train_sets, test_sets, model_builder
            )
        self.id_of_address: dict[Address, str] = {
            self.addresses[peer_id]: peer_id for peer_id in self.peer_ids
        }
        self.trackers: dict[str, RoundTracker] = {
            peer_id: RoundTracker(peer_id, config.policy, cohort_size=len(self.peer_ids))
            for peer_id in self.peer_ids
        }
        self.round_logs: list[PeerRoundLog] = []
        self.reputation_address: Optional[Address] = None
        self._deployed = False
        #: Rounds that ran to completion (== config.rounds on a clean run).
        self.completed_rounds = 0
        #: Why ``run()`` stopped early, or "" (faults-active runs only).
        self.abort_reason = ""
        #: Crash-window bookkeeping: who is down now, and every rejoin
        #: catch-up performed ({"peer", "round", "models"} records).
        self._down_prev: frozenset = frozenset()
        self.catch_ups: list[dict] = []
        #: Participation bookkeeping: rounds skipped because fewer than two
        #: peers were available, and the id of the last round that actually
        #: finished (what rejoin catch-up fetches — never the dense count).
        self.skipped_rounds: list[int] = []
        self.last_finished_round = 0
        #: Per-peer scoring engines (empty in the serial reference mode).
        #: Tests may attach an ``instrument`` hook to count evaluations.
        self.engines: dict[str, CombinationEngine] = self._build_engines()

    def _build_peer(
        self,
        pc: PeerConfig,
        keypair: KeyPair,
        gateway: ChainGateway,
        train_sets: dict[str, Dataset],
        test_sets: dict[str, Dataset],
        model_builder: Optional[Callable[[np.random.Generator], Sequential]],
    ) -> FullPeer:
        """Materialize one peer on its gateway stack.

        Overridden by the multiprocess coordinator
        (:mod:`repro.runtime.coordinator`), whose peers are chain-only
        handles — datasets, models, and rng draws live in the workers.
        """
        return FullPeer(
            config=pc,
            keypair=keypair,
            gateway=gateway,
            offchain=self.offchain,
            train_set=train_sets[pc.peer_id],
            test_set=test_sets[pc.peer_id],
            model_builder=model_builder,
            rng=self.rngs.get("peer", pc.peer_id),
            attack_rng=(
                self.rngs.get("attack", pc.peer_id) if pc.attacker is not None else None
            ),
        )

    def _build_engines(self) -> dict[str, CombinationEngine]:
        """Per-peer scoring engines (empty for serial scoring and for the
        multiprocess coordinator, whose engines live worker-side)."""
        if self.config.scoring != "engine":
            return {}
        return {
            peer_id: CombinationEngine(peer.client.model, peer.client.test_set)
            for peer_id, peer in self.peers.items()
        }

    # ------------------------------------------------------------------
    # Deployment phase
    # ------------------------------------------------------------------

    def deploy_contracts(self) -> None:
        """Deploy registry/store/coordinator and register every peer.

        The first peer deploys (any peer could — no special role beyond
        paying the gas); all contract addresses are deterministic, so every
        peer derives them locally, like reading a Truffle artifact.
        """
        deployer = self.peers[self.peer_ids[0]]
        registry_tx = deployer.make_transaction(
            to=None, args={"contract": "participant_registry", "open_enrollment": True}
        )
        registry_address = self.runtime.contract_address(deployer.address, registry_tx.nonce)
        deployer.gateway.submit(registry_tx)

        store_tx = deployer.make_transaction(
            to=None, args={"contract": "model_store", "registry_address": registry_address}
        )
        store_address = self.runtime.contract_address(deployer.address, store_tx.nonce)
        deployer.gateway.submit(store_tx)

        coord_tx = deployer.make_transaction(
            to=None,
            args={
                "contract": "aggregation_coordinator",
                "model_store_address": store_address,
                "quorum": len(self.peer_ids),
                "vote_threshold": (len(self.peer_ids) // 2) + 1,
            },
        )
        coordinator_address = self.runtime.contract_address(deployer.address, coord_tx.nonce)
        deployer.gateway.submit(coord_tx)

        reputation_tx = deployer.make_transaction(
            to=None,
            args={"contract": "reputation_ledger", "initial_score": REPUTATION_INITIAL_SCORE},
        )
        self.reputation_address = self.runtime.contract_address(
            deployer.address, reputation_tx.nonce
        )
        deployer.gateway.submit(reputation_tx)

        for peer in self.peers.values():
            peer.model_store_address = store_address
            peer.coordinator_address = coordinator_address

        # Phase 1: mine the deployments everywhere before anyone registers,
        # otherwise registration transactions execute against an address
        # with no code yet and revert.
        self.network.start_mining()
        self._wait_until(
            lambda: all(
                peer.gateway.has_contract(coordinator_address)
                and peer.gateway.has_contract(self.reputation_address)
                for peer in self.peers.values()
            ),
            "contract deployment",
        )

        # Phase 2: every peer self-registers (open enrollment).  Identities
        # that participation never materializes still register — the
        # on-chain roster is the whole cohort — but their transactions,
        # signed with their own keys, are broadcast through the deployer's
        # gateway since they have none.  Full-participation runs take only
        # the first branch, exactly the pre-participation path.
        for peer_id in self.peer_ids:
            peer = self.peers.get(peer_id)
            if peer is not None:
                register_tx = peer.make_transaction(
                    to=registry_address, method="register", args={"display_name": peer_id}
                )
                peer.gateway.submit(register_tx)
            else:
                address = self.addresses[peer_id]
                register_tx = registration_transaction(
                    self.keypairs[peer_id],
                    registry_address,
                    peer_id,
                    deployer.gateway.next_nonce(address),
                )
                deployer.gateway.submit(register_tx)
        self._wait_until(
            lambda: all(self._is_registered(peer, registry_address) for peer in self.peers.values()),
            "participant registration",
        )
        self._deployed = True

    def _is_registered(self, peer: FullPeer, registry_address: Address) -> bool:
        if not peer.gateway.has_contract(registry_address):
            return False
        # One batched round trip checks the whole cohort's membership.
        memberships = peer.gateway.batch_call(
            [
                CallRequest(registry_address, "is_member", {"address": self.addresses[other_id]})
                for other_id in self.peer_ids
            ]
        )
        return all(memberships)

    def _registry_address(self) -> Address:
        deployer = self.peers[self.peer_ids[0]]
        return self.runtime.contract_address(deployer.address, 0)

    def _wait_until(self, predicate: Callable[[], bool], what: str, deadline: Optional[float] = None) -> float:
        """Advance the ledger transport until ``predicate`` holds.

        Delegates to the gateway's ``wait_for`` (all in-process gateways
        share one event engine, so any peer's gateway can drive it); the
        deadline defaults to ``max_round_time``, and timeout/drain raise
        the same error types the pre-gateway driver did.
        """
        gateway = self.peers[self.peer_ids[0]].gateway
        return gateway.wait_for(predicate, what, deadline=deadline)

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------

    def run_round(self, round_id: int) -> list[PeerRoundLog]:
        """Execute one communication round for every live peer.

        Fault-free runs execute exactly the pre-fault logic (``live`` is
        the whole cohort and nothing can be dropped).  With the fault
        harness active, crashed peers sit the round out, a peer whose
        gateway gives up mid-round (:class:`GatewayUnavailableError`) is
        dropped from it, and the waiting policy quorums against the
        survivors — the round completes on whoever is left.
        """
        if not self._deployed:
            raise RoundError("deploy_contracts() must run before rounds")
        injector = self.fault_injector
        if injector is not None:
            injector.begin_round(round_id)
        fault_down = (
            self.fault_plan.down(round_id) if self.fault_plan is not None else frozenset()
        )
        if injector is not None or self.participation.has_absences:
            self._apply_absences(round_id, fault_down)
        # The round's working set: the participation plan's selected
        # subcohort (the whole cohort under full participation) minus any
        # fault-plan crash window.
        live = [
            peer_id
            for peer_id in self.participation.active(round_id)
            if peer_id not in fault_down
        ]
        if self.participation.engaged and len(live) < 2:
            # Churn/windows left no workable subcohort: the scheduled round
            # is skipped outright (no open_round, no training) rather than
            # degenerating to single-peer "federation".
            self.skipped_rounds.append(round_id)
            return []
        dropped: set[str] = set()

        # The first peer is never in a crash window (windows take the
        # cohort tail and always leave the head live), so the coordinator
        # and the wait-driving gateway stay the same peer as fault-free.
        coordinator = self.peers[self.peer_ids[0]]
        open_args: dict = {"round_id": round_id}
        if self.participation.engaged and len(live) != len(self.peer_ids):
            # Partial participation: the round is quorate over — and its
            # global vote thresholded against — the selected subcohort, not
            # the full roster.  Full-participation rounds pass no override,
            # keeping their transaction bytes identical to older builds.
            open_args["quorum"] = len(live)
            open_args["vote_threshold"] = (len(live) // 2) + 1
        open_tx = coordinator.make_transaction(
            to=coordinator.coordinator_address,
            method="open_round",
            args=open_args,
        )
        coordinator.gateway.submit(open_tx)

        round_start = self.sim.now
        submitted_at: dict[str, float] = {}

        # Train locally (real computation now, simulated completion later).
        # The simulated clock is frozen throughout `_train_cohort`, nonce
        # reads are per-address, and off-chain puts are content-addressed
        # — so the per-peer work is order-independent and the multiprocess
        # coordinator fans it out to workers; submissions stay serialized
        # on the event engine below either way.
        for peer_id in live:
            self.trackers[peer_id].open_round(round_id, round_start)
        trained = self._train_cohort(live, round_id)
        for peer_id in live:
            tx, duration = trained[peer_id]

            def submit(peer_id=peer_id, tx=tx) -> None:
                self.trackers[peer_id].mark_trained(round_id, self.sim.now)
                try:
                    self._submit_trained(peer_id, tx)
                except GatewayUnavailableError:
                    if injector is None:
                        raise
                    dropped.add(peer_id)
                    return
                self.trackers[peer_id].mark_submitted(round_id, self.sim.now)
                submitted_at[peer_id] = self.sim.now

            self.sim.schedule_in(duration, submit, label=f"train-{peer_id}-r{round_id}")

        # Each peer waits (per policy) on its own chain view, then aggregates.
        logs: list[PeerRoundLog] = []
        pending = set(live)
        ready_at: dict[str, float] = {}

        def poll() -> bool:
            for peer_id in sorted(pending):
                if peer_id not in submitted_at:
                    if peer_id in dropped:
                        pending.discard(peer_id)
                    continue
                peer = self.peers[peer_id]
                try:
                    visible = len(peer.visible_submissions(round_id))
                except GatewayUnavailableError:
                    if injector is None:
                        raise
                    dropped.add(peer_id)
                    pending.discard(peer_id)
                    continue
                expected = (
                    len(live) - len(dropped)
                    if injector is not None or self.participation.engaged
                    else None
                )
                if self.trackers[peer_id].check_ready(
                    round_id, visible, self.sim.now, expected=expected
                ):
                    ready_at[peer_id] = self.sim.now
                    pending.discard(peer_id)
            return not pending

        self._wait_until(poll, f"round {round_id} quorum")

        updates_by_view: dict[str, list[ModelUpdate]] = {}
        for peer_id in live:
            if peer_id in dropped:
                continue
            try:
                updates = self._fetch_view(peer_id, round_id)
            except GatewayUnavailableError:
                if injector is None:
                    raise
                dropped.add(peer_id)
                continue
            if not updates:
                raise RoundError(f"{peer_id}: no updates visible in round {round_id}")
            updates_by_view[peer_id] = updates
        if not updates_by_view:
            raise RoundError(f"round {round_id}: every peer crashed or was dropped")

        # Scores never carry across rounds (every peer retrains), so the
        # engine caches are cleared here to bound memory; within a round
        # the solo scores stay live for the reputation rating pass.
        for engine in self.engines.values():
            engine.cache.clear()

        # Survivors in cohort order: fault-free this IS self.peer_ids, so
        # every downstream iteration is byte-identical to the seed's.
        survivors = [peer_id for peer_id in self.peer_ids if peer_id in updates_by_view]
        if self.config.mode == "global_vote":
            logs = self._global_vote_round(round_id, updates_by_view)
        else:
            logs = self._personalized_round(round_id, survivors, updates_by_view)
        for log in logs:
            log.submitted_at = submitted_at[log.peer_id]
            log.ready_at = ready_at[log.peer_id]
            log.aggregated_at = self.sim.now
            self.trackers[log.peer_id].mark_aggregated(round_id, self.sim.now)
            self.round_logs.append(log)

        if self.config.enable_reputation:
            self._rate_round(round_id, updates_by_view)
        self.last_finished_round = round_id
        return logs

    def _apply_absences(self, round_id: int, fault_down: frozenset) -> None:
        """Enact crash windows and participation absences at a round boundary.

        A peer *entering* an absence (fault-plan crash window, availability
        window, or churn) is partitioned from every other node and stops
        mining — its chain view freezes, exactly a powered-off VM.  A peer
        *leaving* one is healed and restarted; its node catches up over the
        existing sync-on-orphan path (the next block the others broadcast
        triggers a chain pull), and the FL layer catches up by adopting the
        federated average of the last finished round's on-chain updates —
        the same weights a vanilla client joining late would pull.

        Merely *unsampled* peers are not absences: their nodes keep mining
        and they simply do no FL work this round.
        """
        self._transition_crashes(
            frozenset(fault_down | self.participation.offline(round_id)), round_id
        )

    def _transition_crashes(self, now_down: frozenset, round_id: int) -> None:
        # Identities participation never materialized have no node to
        # partition or heal; their planned absences are vacuous.
        now_down = frozenset(pid for pid in now_down if pid in self.peers)
        entering = now_down - self._down_prev
        leaving = self._down_prev - now_down
        self._down_prev = now_down
        addresses = {
            peer_id: self.addresses[peer_id]
            for peer_id in self.peer_ids
            if peer_id in self.peers
        }
        for peer_id in sorted(entering):
            addr = addresses[peer_id]
            for other_id, other_addr in addresses.items():
                if other_id != peer_id:
                    self.network.partition(addr, other_addr)
            self.network.stop_mining([addr])
        for peer_id in sorted(leaving):
            addr = addresses[peer_id]
            for other_id, other_addr in addresses.items():
                if other_id != peer_id:
                    self.network.heal(addr, other_addr)
            self.network.start_mining([addr])
            rejoined = self.peers[peer_id]
            reference = self.peers[self.peer_ids[0]]
            self._wait_until(
                lambda: rejoined.gateway.head_hash() == reference.gateway.head_hash(),
                f"{peer_id} chain catch-up after rejoin",
            )
            # Fetch the last round that actually *finished* — under
            # participation skips that can be further back than round_id-1,
            # and for fault-only runs it is exactly round_id-1 as before.
            models = self._catch_up_peer(peer_id, self.last_finished_round)
            self.catch_ups.append(
                {"peer": peer_id, "round": round_id, "models": models}
            )

    def _catch_up_peer(self, peer_id: str, fetch_round: int) -> int:
        """FL-layer rejoin catch-up: adopt the FedAvg of ``fetch_round``.

        Runtime seam — the multiprocess coordinator ships this to the
        worker that owns the peer, since the model lives worker-side.
        Returns how many on-chain updates fed the catch-up aggregate.
        """
        rejoined = self.peers[peer_id]
        updates = rejoined.fetch_updates(fetch_round, self.id_of_address)
        if updates:
            rejoined.adopt(fedavg(updates))
        return len(updates)

    def _finalize_faults(self) -> None:
        """Rejoin any peers still crashed or absent when the run ends.

        A crash or availability window reaching the final round would
        otherwise leave its peers partitioned and "down" forever —
        post-run reporting (height reads, reputation queries) must see a
        whole cohort again.  The rejoin uses the same heal/catch-up path
        as a mid-run window end, anchored on the last finished round, and
        the injector leaves its round context so no further calls count
        as crashed.
        """
        if self.fault_injector is not None:
            # Leave round context first: the rejoin wait below reads the
            # rejoining peer's own gateway, which must no longer refuse.
            self.fault_injector.end_run()
        if self.fault_plan is not None or self.participation.has_absences:
            self._transition_crashes(frozenset(), self.last_finished_round + 1)

    def _use_greedy(self, n_updates: int) -> bool:
        """Whether this round's combination search should be greedy."""
        if self.config.selection == "greedy":
            return True
        return self.config.selection == "auto" and n_updates > self.config.exhaustive_limit

    # -- runtime seams -----------------------------------------------------
    # Everything a round needs from a peer's *local* side (its datasets,
    # model, rng) funnels through these four methods, so the multiprocess
    # coordinator can ship exactly this work to the owning worker while the
    # round barrier, event engine, and ledger stay right here.

    def _train_cohort(self, live: list[str], round_id: int) -> dict[str, tuple]:
        """Train every live peer; returns ``{peer_id: (commit_tx, duration)}``."""
        return {peer_id: self._train_peer(peer_id, round_id) for peer_id in live}

    def _train_peer(self, peer_id: str, round_id: int) -> tuple:
        peer = self.peers[peer_id]
        _update, tx = peer.train_and_commit(round_id)
        return tx, peer.sample_training_time()

    def _submit_trained(self, peer_id: str, tx) -> None:
        """Broadcast a peer's commit transaction (event-engine context)."""
        self.peers[peer_id].gateway.submit(tx)

    def _fetch_view(self, peer_id: str, round_id: int) -> list[ModelUpdate]:
        """One peer's decoded view of the round's on-chain submissions."""
        return self.peers[peer_id].fetch_updates(round_id, self.id_of_address)

    def _personalized_round(
        self, round_id: int, survivors: list[str], updates_by_view: dict[str, list[ModelUpdate]]
    ) -> list[PeerRoundLog]:
        """Combination search + adoption for every survivor, in cohort order."""
        if self.engines and self.config.selection_workers > 0:
            logs = self._aggregate_round_parallel(round_id, updates_by_view)
            if logs is not None:
                return logs
        return [
            self._aggregate_for(self.peers[peer_id], round_id, updates_by_view[peer_id])
            for peer_id in survivors
        ]

    def _aggregate_for(self, peer: FullPeer, round_id: int, updates: list[ModelUpdate]) -> PeerRoundLog:
        """Search combinations on the peer's test set; adopt the best.

        Exhaustive enumeration reproduces the paper's tables; above the
        configured cohort threshold forward selection takes over and the
        log records only the adopted combination (the full table would
        have 2^n rows).
        """
        engine = self.engines.get(peer.peer_id)
        scored, chosen = choose_combination(
            peer, engine, updates, self._use_greedy(len(updates))
        )
        return self._adopt_choice(peer, round_id, updates, scored, chosen)

    def _adopt_choice(
        self,
        peer: FullPeer,
        round_id: int,
        updates: list[ModelUpdate],
        scored: list,
        chosen,
    ) -> PeerRoundLog:
        """Shared tail of every aggregation path — see :func:`adopt_choice`."""
        return adopt_choice(peer, round_id, updates, scored, chosen)

    def _aggregate_round_parallel(
        self, round_id: int, updates_by_view: dict[str, list[ModelUpdate]]
    ) -> Optional[list[PeerRoundLog]]:
        """Fan the peers' independent searches out to a process pool.

        Workers only *score*; tie-breaking (with each peer's own RNG, in
        peer order), winner materialization, and adoption happen here —
        so logs, RNG streams, and adopted weights are identical to the
        serial path.  Returns None when the host cannot fork, and the
        caller falls back to the in-process loop.
        """
        searchers = [peer_id for peer_id in self.peer_ids if peer_id in updates_by_view]
        tasks = []
        for peer_id in searchers:
            peer = self.peers[peer_id]
            updates = updates_by_view[peer_id]
            tasks.append(
                (peer.client.model, peer.client.test_set, updates, self._use_greedy(len(updates)))
            )
        outcomes = run_peer_searches(tasks, workers=self.config.selection_workers)
        if outcomes is None:  # pragma: no cover - host-dependent
            return None
        logs = []
        for peer_id, outcome in zip(searchers, outcomes):
            peer = self.peers[peer_id]
            updates = updates_by_view[peer_id]
            engine = self.engines[peer_id]
            for key, accuracy in outcome["solos"]:
                engine.cache.absorb(key, accuracy)
            if "greedy" in outcome:
                members, accuracy = outcome["greedy"]
                chosen = engine.materialize(members, updates, accuracy)
                scored = [chosen]
            else:
                scored = [
                    ScoredSubset(tuple(members), accuracy)
                    for members, accuracy in outcome["scored"]
                ]
                top = pick_best(scored, peer.rng)
                chosen = engine.materialize(top.members, updates, top.accuracy)
            logs.append(self._adopt_choice(peer, round_id, updates, scored, chosen))
        return logs

    def _global_vote_round(
        self, round_id: int, updates_by_view: dict[str, list[ModelUpdate]]
    ) -> list[PeerRoundLog]:
        """Operating mode 2: vote a common global model on chain.

        Every peer aggregates everything it can see, uploads the aggregate
        off-chain, and votes its hash through the coordinator.  Once a hash
        reaches the finalization threshold, all peers adopt it — a global
        model without a fixed single aggregator (the paper's single-point-
        of-failure fix in its FL-flavoured mode).
        """
        voters = [peer_id for peer_id in self.peer_ids if peer_id in updates_by_view]
        for peer_id in voters:
            submit_global_vote(self.peers[peer_id], updates_by_view[peer_id], round_id, self.offchain)

        def finalized_everywhere() -> bool:
            return all(
                peer.gateway.call(
                    peer.coordinator_address, "finalized_hash", round_id=round_id
                )
                is not None
                for peer in (self.peers[peer_id] for peer_id in voters)
            )

        self._wait_until(finalized_everywhere, f"round {round_id} finalization")

        return [
            adopt_global_model(self.peers[peer_id], updates_by_view[peer_id], round_id, self.offchain)
            for peer_id in voters
        ]

    def _rate_round(self, round_id: int, updates_by_view: dict[str, list[ModelUpdate]]) -> None:
        """Reputation extension: rate peers by local fitness evaluation.

        A peer whose solo model scores within ``reputation_fitness_margin``
        of the rater's own solo model earns +5; one that falls further
        behind (an abnormal/noisy model) earns -10, building the on-chain
        record used to exclude low-credibility peers.

        Every solo model was already scored during this round's
        aggregation search, so in engine mode the fitness lookups here
        are pure cache hits — the rating pass adds zero model
        evaluations (the seed re-evaluated every solo a second time).
        """
        raters = [peer_id for peer_id in self.peer_ids if peer_id in updates_by_view]
        for rater_id in raters:
            rate_visible_updates(
                self.peers[rater_id],
                self.engines.get(rater_id),
                updates_by_view[rater_id],
                round_id,
                self.reputation_address,
                lambda peer_id: self.addresses[peer_id],
                self.config.reputation_fitness_margin,
            )

    def reputation_of(self, peer_id: str, viewer_id: Optional[str] = None) -> int:
        """Current on-chain reputation score of ``peer_id``."""
        viewer = self.peers[viewer_id if viewer_id is not None else self.peer_ids[0]]
        return int(
            viewer.gateway.call(
                self.reputation_address, "score_of", address=self.addresses[peer_id]
            )
        )

    def reputation_scores(self, viewer_id: Optional[str] = None) -> dict[str, int]:
        """Every peer's reputation score in one batched gateway round trip."""
        viewer = self.peers[viewer_id if viewer_id is not None else self.peer_ids[0]]
        scores = viewer.gateway.batch_call(
            [
                CallRequest(self.reputation_address, "score_of", {"address": self.addresses[peer_id]})
                for peer_id in self.peer_ids
            ]
        )
        return {peer_id: int(score) for peer_id, score in zip(self.peer_ids, scores)}

    def run(self) -> list[PeerRoundLog]:
        """Deploy (if needed) and run every configured round.

        With the fault harness active, a round that still fails after
        degradation (quorum unreachable, every peer dropped, coordinator
        circuit-broken) *aborts the run* instead of raising: the logs so
        far are returned, ``completed_rounds`` counts the rounds that
        finished, and ``abort_reason`` says why.  Fault-free runs keep
        the original raise-on-failure contract.
        """
        faults_on = self.fault_injector is not None
        absences_on = self.participation.has_absences
        self.completed_rounds = 0
        self.abort_reason = ""
        self.skipped_rounds = []
        self.last_finished_round = 0
        if not self._deployed:
            if faults_on:
                try:
                    self.deploy_contracts()
                except (RoundError, GatewayError) as exc:
                    self.abort_reason = f"deploy: {exc}"
                    self._finalize_faults()
                    self.network.stop_mining()
                    return self.round_logs
            else:
                self.deploy_contracts()
        for round_id in range(1, self.config.rounds + 1):
            if faults_on:
                try:
                    self.run_round(round_id)
                except (RoundError, GatewayError) as exc:
                    self.abort_reason = f"round {round_id}: {exc}"
                    break
            else:
                self.run_round(round_id)
            if self.skipped_rounds and self.skipped_rounds[-1] == round_id:
                continue  # scheduled but skipped: not a completed round
            self.completed_rounds += 1
        if faults_on or absences_on:
            self._finalize_faults()
        if self.config.enable_reputation:
            # Let the final round's rating transactions get mined before
            # the chain quiesces.
            self.network.run_for(5 * self.config.target_block_interval)
        self.network.stop_mining()
        return self.round_logs

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def combination_series(self, peer_id: str, combination: str) -> list[float]:
        """Per-round accuracy of one combination row (a Table II-IV row)."""
        return [
            log.combination_accuracy[combination]
            for log in self.round_logs
            if log.peer_id == peer_id and combination in log.combination_accuracy
        ]

    def export_model_bytes(self, peer_id: str) -> bytes:
        """One peer's current model weights as canonical codec-v2 bytes.

        This is the byte surface the runtime-equivalence tests compare: a
        multiprocess run must produce exactly these bytes for every peer.
        """
        peer = self.peers[peer_id]
        return weights_to_bytes(peer.client.model.get_weights())

    def model_digests(self) -> dict[str, str]:
        """SHA-256 of every materialized peer's model bytes, in cohort order.

        Under client sampling, never-selected identities have no model to
        digest (they were never instantiated); full participation covers
        the whole cohort as before.
        """
        return {
            peer_id: sha256_bytes(self.export_model_bytes(peer_id)).hex()
            for peer_id in self.peer_ids
            if peer_id in self.peers
        }

    def wait_time_summary(self) -> dict[str, float]:
        """Mean wait time per peer (the speed metric)."""
        totals: dict[str, list[float]] = {}
        for log in self.round_logs:
            totals.setdefault(log.peer_id, []).append(log.wait_time)
        return {peer_id: float(np.mean(times)) for peer_id, times in sorted(totals.items())}

    def gateway_stats(self) -> dict:
        """Cohort-aggregated ledger-gateway instrumentation.

        ``requested`` sums what the FL layer asked of the peers' gateways;
        ``transport`` sums what actually reached the ledger transport —
        identical for the in-process backend, and the round-trip reduction
        the batching backend is measured by
        (``benchmarks/bench_chain_gateway.py``).
        """
        requested = GatewayStats()
        transport = GatewayStats()
        everything = GatewayStats()
        for peer_id in self.peer_ids:
            if peer_id not in self.peers:
                continue  # never materialized under sampling: no gateway
            gateway = self.peers[peer_id].gateway
            requested.add(gateway.stats)
            # For an undecorated backend this is the same object, so the
            # two aggregates coincide — no backend-specific branching.
            transport.add(transport_stats(gateway))
            everything.add(stacked_stats(gateway))
        payload = {
            "backend": self.config.gateway,
            "requested": requested.as_dict(),
            "transport": transport.as_dict(),
        }
        # The resilience counters live mid-stack (injection on the fault
        # layer, retries on the top layer), so they are summed across
        # every layer of every peer's stack rather than read off either
        # end.  All zero when the fault harness is inactive.
        payload["resilience"] = {
            name: getattr(everything, name)
            for name in (
                "retries",
                "faults_injected",
                "deadline_misses",
                "gave_up",
                "deduped_submits",
                "backoff_seconds",
            )
        }
        return payload

    def chain_stats(self) -> dict:
        """Network counters, per-peer heights, and gateway instrumentation.

        Every number here comes from the service surfaces — the network's
        own counters, the gateways' height reads and request telemetry,
        and the off-chain store — never from reaching into peer nodes.
        """
        heights = {
            peer_id: peer.gateway.height() for peer_id, peer in sorted(self.peers.items())
        }
        stats = self.network.stats.as_dict()
        stats["heights"] = heights
        stats["offchain_blobs"] = len(self.offchain)
        stats["offchain_bytes"] = self.offchain.total_bytes()
        stats["offchain_marshalling"] = self.offchain.marshalling_stats()
        stats["gateway"] = self.gateway_stats()
        # Scale-out telemetry: per-node storage/execution counters summed
        # across the cohort, plus the shared cold store's own stats.
        storage: dict = {}
        execution: dict = {}
        for node in self.network.nodes():
            node_scale = node.scale_stats()
            for key, value in node_scale["storage"].items():
                storage[key] = storage.get(key, 0) + value
            for key, value in node_scale["execution"].items():
                execution[key] = execution.get(key, 0) + value
        if self.cold_store is not None:
            storage["cold"] = self.cold_store.stats.as_dict()
            storage["cold_entries"] = len(self.cold_store)
            storage["cold_bytes"] = self.cold_store.bytes_stored()
        stats["storage"] = storage
        stats["execution"] = execution
        if self.participation.engaged:
            stats["participation"] = {
                "registered": len(self.peer_ids),
                "instantiated": len(self.peers),
                "skipped_rounds": list(self.skipped_rounds),
                "last_finished_round": self.last_finished_round,
                "catch_ups": len(self.catch_ups),
            }
        if self.fault_injector is not None:
            stats["faults"] = {
                "injected": len(self.fault_injector.trace),
                "crashed_peers": list(self.fault_plan.crashed_peers),
                "catch_ups": len(self.catch_ups),
                "completed_rounds": self.completed_rounds,
                "abort_reason": self.abort_reason,
            }
        return stats
