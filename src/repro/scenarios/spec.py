"""Declarative scenario specification — every workload as one value.

A :class:`ScenarioSpec` composes independent axes:

* **cohort** — how many clients, how their ids are generated, how skewed
  their label distributions are, and how much data each holds;
* **adversary** — which attacker (from :mod:`repro.fl.poisoning`) corrupts
  what fraction of the cohort;
* **heterogeneity** — the distribution of simulated local-training times
  (the situation that motivates not waiting);
* **chain** — block interval, hashrate, gossip batching, link latency,
  message drop rate;
* **faults** — deterministic fault injection at the FL <-> chain seam
  (:class:`~repro.faults.FaultSpec`: transient/timeout/latency/duplicate/
  stale rates, crash windows, retry policy);
* plus the waiting policy, operating mode, combination-selection strategy,
  and the usual model/rounds/seed knobs.

Specs are frozen dataclasses: hashable, comparable, and cheap to derive
variants from with :func:`replace_axis` (dotted-path ``dataclasses.replace``),
which is what the sweep driver iterates over.  Validation raises
:class:`~repro.errors.ConfigError` at construction time, never mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass, replace
from typing import Optional

import numpy as np

from repro.chain.gateway import GATEWAY_BACKENDS
from repro.core.config import MODEL_LEARNING_RATES, ExperimentConfig
from repro.core.participation import ParticipationSpec
from repro.data.synthetic import SyntheticSpec
from repro.errors import ConfigError
from repro.faults import FaultSpec
from repro.fl.async_policy import AsyncPolicy, WaitForAll
from repro.fl.poisoning import Attacker, LabelFlipAttacker, NoiseAttacker, ScaleAttacker

#: The paper's three clients; cohorts of three reproduce the tables exactly.
PAPER_CLIENT_IDS = ("A", "B", "C")

#: Execution runtimes for the decentralized deployment.  ``"inprocess"``
#: runs the whole cohort in the calling process; ``"multiprocess"`` fans
#: the peers out to worker OS processes that reach the ledger only over a
#: wire-served gateway (:mod:`repro.runtime`).  The runtime never changes
#: a result — equivalence tests pin the two byte-identical at every seed.
RUNTIME_KINDS = ("inprocess", "multiprocess")

_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def default_client_ids(size: int) -> tuple[str, ...]:
    """Generated cohort ids: ``A..Z`` up to 26 peers, ``P00, P01, ...`` beyond.

    Sizes up to 26 keep the paper's single-letter ids (size 3 is exactly
    ``A, B, C``), so scaling the cohort axis never renames the paper's
    clients.
    """
    if size <= len(_ALPHABET):
        return tuple(_ALPHABET[:size])
    return tuple(f"P{index:02d}" for index in range(size))


@dataclass(frozen=True)
class CohortSpec:
    """Who participates and what data they hold.

    ``volumes`` (explicit per-client training-set sizes) overrides
    ``train_samples``; ``volume_profile="linear"`` spreads sizes from
    0.5x to 1.5x of ``train_samples`` across the cohort (per-client data
    volume heterogeneity with the same total budget).
    """

    size: int = 3
    client_ids: Optional[tuple[str, ...]] = None   # explicit override
    label_skew: float = 1.0
    train_samples: int = 800
    test_samples: int = 500
    volume_profile: str = "uniform"                # "uniform" | "linear"
    volumes: Optional[tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ConfigError(f"cohort size must be >= 2, got {self.size}")
        if self.client_ids is not None:
            if len(self.client_ids) != self.size:
                raise ConfigError(
                    f"client_ids has {len(self.client_ids)} entries for cohort size {self.size}"
                )
            if len(set(self.client_ids)) != len(self.client_ids):
                raise ConfigError(f"client_ids must be unique, got {self.client_ids!r}")
        if self.label_skew < 0:
            raise ConfigError(f"label_skew must be non-negative, got {self.label_skew}")
        if min(self.train_samples, self.test_samples) < 1:
            raise ConfigError("train_samples and test_samples must be >= 1")
        if self.volume_profile not in ("uniform", "linear"):
            raise ConfigError(f"unknown volume_profile {self.volume_profile!r}")
        if self.volumes is not None:
            if len(self.volumes) != self.size:
                raise ConfigError(
                    f"volumes has {len(self.volumes)} entries for cohort size {self.size}"
                )
            if min(self.volumes) < 1:
                raise ConfigError("every per-client volume must be >= 1")

    def ids(self) -> tuple[str, ...]:
        """Resolved client ids."""
        return self.client_ids if self.client_ids is not None else default_client_ids(self.size)

    def volume_of(self, index: int) -> int:
        """Training-set size of client ``index``."""
        if self.volumes is not None:
            return self.volumes[index]
        if self.volume_profile == "linear" and self.size > 1:
            return max(1, round(self.train_samples * (0.5 + index / (self.size - 1))))
        return self.train_samples


@dataclass(frozen=True)
class AdversarySpec:
    """Attacker kind and how much of the cohort it controls.

    The adversarial clients are the *last* ``round(fraction * size)``
    cohort ids, with a floor of one for any positive fraction
    (deterministic; matches the ablation benches where client ``C``
    attacks).  Kind-specific knobs mirror the attacker dataclasses in
    :mod:`repro.fl.poisoning`.
    """

    kind: str = "none"        # "none" | "label_flip" | "noise" | "scale"
    fraction: float = 0.0
    flip_fraction: float = 1.0
    target_class: int = 0
    noise_std: float = 0.5
    scale: float = 10.0

    def __post_init__(self) -> None:
        if self.kind not in ("none", "label_flip", "noise", "scale"):
            raise ConfigError(f"unknown attacker kind {self.kind!r}")
        if not 0.0 <= self.fraction <= 1.0:
            raise ConfigError(
                f"attacker_fraction must be in [0, 1], got {self.fraction}"
            )
        if self.kind != "none" and self.fraction == 0.0:
            raise ConfigError(f"attacker kind {self.kind!r} needs fraction > 0")
        if self.kind == "none" and self.fraction > 0.0:
            raise ConfigError(
                f"attacker_fraction {self.fraction} needs an attacker kind "
                "(label_flip, noise, or scale)"
            )
        # Kind-specific knobs fail here, not when a sweep point finally
        # instantiates the attacker mid-grid.
        if self.kind == "label_flip" and not 0.0 < self.flip_fraction <= 1.0:
            raise ConfigError(f"flip_fraction must be in (0, 1], got {self.flip_fraction}")
        if self.kind == "noise" and self.noise_std <= 0:
            raise ConfigError(f"noise_std must be positive, got {self.noise_std}")
        if self.kind == "scale" and self.scale == 1.0:
            raise ConfigError("scale of 1.0 is not an attack")

    def build_attacker(self) -> Optional[Attacker]:
        """Instantiate the configured attacker (``None`` when honest)."""
        if self.kind == "none" or self.fraction == 0.0:
            return None
        if self.kind == "label_flip":
            return LabelFlipAttacker(
                flip_fraction=self.flip_fraction, target_class=self.target_class
            )
        if self.kind == "noise":
            return NoiseAttacker(noise_std=self.noise_std)
        return ScaleAttacker(scale=self.scale)

    def adversary_ids(self, client_ids: tuple[str, ...]) -> tuple[str, ...]:
        """Which cohort members attack: the last ``round(fraction * n)`` ids,
        but — like the stragglers convention — any positive fraction
        corrupts at least one client (an attack axis point is never
        silently honest; the honest baseline is ``kind="none"``)."""
        if self.kind == "none" or self.fraction == 0.0:
            return ()
        count = min(len(client_ids), max(1, round(self.fraction * len(client_ids))))
        return tuple(client_ids[len(client_ids) - count:])


@dataclass(frozen=True)
class HeterogeneitySpec:
    """Distribution of simulated local-training durations.

    * ``homogeneous`` — everyone takes ``base_time`` (the paper's three
      equal VMs);
    * ``uniform`` — ``base_time`` ± ``spread``, drawn per client;
    * ``lognormal`` — ``base_time`` times a log-normal factor of sigma
      ``spread`` (long-tailed device speeds);
    * ``stragglers`` — ``base_time`` for most, ``base_time *
      straggler_factor`` for the last ``round(straggler_fraction * n)``
      clients (deterministic, like the adversary convention; any positive
      fraction straggles at least one client, 0.0 straggles none — the
      honest baseline of a straggler-fraction sweep);
    * ``custom`` — explicit per-client ``times``.
    """

    kind: str = "homogeneous"   # homogeneous | uniform | lognormal | stragglers | custom
    base_time: float = 30.0
    spread: float = 0.0
    straggler_fraction: float = 0.2
    straggler_factor: float = 5.0
    times: Optional[tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("homogeneous", "uniform", "lognormal", "stragglers", "custom"):
            raise ConfigError(f"unknown heterogeneity kind {self.kind!r}")
        if self.base_time <= 0:
            raise ConfigError(f"base_time must be positive, got {self.base_time}")
        if self.spread < 0 or (self.kind == "uniform" and self.spread >= self.base_time):
            raise ConfigError(
                f"spread must be in [0, base_time) for uniform heterogeneity, got {self.spread}"
            )
        if not 0.0 <= self.straggler_fraction <= 1.0:
            raise ConfigError(
                f"straggler_fraction must be in [0, 1], got {self.straggler_fraction}"
            )
        if self.straggler_factor < 1.0:
            raise ConfigError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )
        if self.kind == "custom" and self.times is None:
            raise ConfigError("custom heterogeneity needs explicit times")
        if self.times is not None and min(self.times) <= 0:
            raise ConfigError("every training time must be positive")

    def training_times(
        self, client_ids: tuple[str, ...], rng: np.random.Generator
    ) -> dict[str, float]:
        """Per-client simulated training durations.

        ``rng`` is consumed only by the stochastic kinds (``uniform`` /
        ``lognormal``), so the deterministic kinds never draw.
        """
        n = len(client_ids)
        if self.kind == "custom":
            if len(self.times) != n:
                raise ConfigError(
                    f"custom times has {len(self.times)} entries for cohort size {n}"
                )
            return dict(zip(client_ids, self.times))
        if self.kind == "uniform":
            draws = rng.uniform(-self.spread, self.spread, size=n)
            return {cid: float(self.base_time + d) for cid, d in zip(client_ids, draws)}
        if self.kind == "lognormal":
            draws = rng.lognormal(0.0, self.spread, size=n)
            return {cid: float(self.base_time * d) for cid, d in zip(client_ids, draws)}
        times = {cid: self.base_time for cid in client_ids}
        if self.kind == "stragglers" and self.straggler_fraction > 0.0:
            count = min(n, max(1, round(self.straggler_fraction * n)))
            for cid in client_ids[n - count:]:
                times[cid] = self.base_time * self.straggler_factor
        return times


@dataclass(frozen=True)
class ChainSpec:
    """Blockchain/network parameters of the simulated deployment.

    ``gateway`` selects the ledger backend every peer talks through
    (:mod:`repro.chain.gateway`): ``"inprocess"`` delegates straight to
    the peer's node, ``"batching"`` coalesces the per-round read fan-out
    behind a head-keyed cache whose entries also expire after
    ``gateway_staleness`` simulated seconds.  The backend never changes a
    result — only transport round trips (a sweepable axis:
    ``replace_axis(spec, "chain.gateway", "batching")``).

    ``drop_rate`` makes the p2p links lossy: each gossiped message is
    dropped with that probability, drawn from the dedicated
    ``network/drop`` stream so sweeping it never perturbs latency draws.

    The scale-out axes are byte-neutral — they change resource usage,
    never results: ``execution="parallel"`` routes large blocks through
    the speculate/merge scheduler with ``execution_workers`` processes
    (0 = inline speculation); ``cold_storage`` gives the cohort a shared
    content-addressed cold store with ``hot_window`` resident blocks per
    node and a world-state checkpoint every ``snapshot_interval`` blocks
    (0 disables checkpoints).
    """

    target_block_interval: float = 13.0
    gossip_batch_window: float = 0.01
    hashrate: float = 1000.0
    max_round_time: float = 100_000.0
    poll_interval: float = 1.0
    latency_base: float = 0.05
    latency_jitter: float = 0.02
    drop_rate: float = 0.0
    gateway: str = "inprocess"
    gateway_staleness: float = 5.0
    execution: str = "serial"
    execution_workers: int = 0
    parallel_min_txs: int = 64
    cold_storage: bool = False
    hot_window: int = 16
    snapshot_interval: int = 0

    def __post_init__(self) -> None:
        if self.target_block_interval <= 0:
            raise ConfigError("target_block_interval must be positive")
        if self.hashrate <= 0:
            raise ConfigError("hashrate must be positive")
        if self.gossip_batch_window < 0 or self.latency_base < 0 or self.latency_jitter < 0:
            raise ConfigError("gossip_batch_window and latencies must be non-negative")
        if not 0.0 <= self.drop_rate < 1.0:
            raise ConfigError(f"drop_rate must be in [0, 1), got {self.drop_rate}")
        if self.max_round_time <= 0:
            raise ConfigError("max_round_time must be positive")
        if self.gateway not in GATEWAY_BACKENDS:
            raise ConfigError(
                f"unknown gateway backend {self.gateway!r}; "
                f"choose from {GATEWAY_BACKENDS}"
            )
        if self.gateway_staleness <= 0:
            raise ConfigError(
                f"gateway_staleness must be positive, got {self.gateway_staleness}"
            )
        if self.execution not in ("serial", "parallel"):
            raise ConfigError(
                f"execution must be 'serial' or 'parallel', got {self.execution!r}"
            )
        if self.execution_workers < 0:
            raise ConfigError("execution_workers must be >= 0")
        if self.parallel_min_txs < 1:
            raise ConfigError("parallel_min_txs must be >= 1")
        if self.hot_window < 1:
            raise ConfigError("hot_window must be >= 1")
        if self.snapshot_interval < 0:
            raise ConfigError("snapshot_interval must be >= 0")
        if self.snapshot_interval > 0 and not self.cold_storage:
            raise ConfigError("snapshot_interval requires cold_storage")


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully specified workload.

    ``kind`` selects the deployment: ``"vanilla"`` (centralized aggregator,
    Table I) or ``"decentralized"`` (blockchain peers, Tables II-IV).
    ``learning_rate=None`` resolves to the calibrated per-model rate.

    ``runtime`` selects how a decentralized cohort executes:
    ``"inprocess"`` (default) runs everything in the calling process;
    ``"multiprocess"`` spawns ``runtime_workers`` worker processes that
    hold the peers' datasets, models, and rng streams and reach the
    ledger only through the wire-served gateway (:mod:`repro.runtime`).
    Results are byte-identical across runtimes and worker counts.  The
    ``"vanilla"`` kind has no chain and ignores the knob.  Fault
    injection and ``selection_workers`` are in-process features and are
    rejected in combination with the multiprocess runtime.
    """

    name: str = ""
    kind: str = "decentralized"            # "vanilla" | "decentralized"
    model_kind: str = "simple_nn"
    rounds: int = 10
    local_epochs: int = 5
    batch_size: int = 32
    learning_rate: Optional[float] = None
    seed: int = 42
    consider: bool = True                  # vanilla aggregation type
    mode: str = "personalized"             # decentralized operating mode
    policy: AsyncPolicy = field(default_factory=WaitForAll)
    selection: str = "auto"                # "exhaustive" | "greedy" | "auto"
    exhaustive_limit: int = 6
    selection_workers: int = 0             # combination-search worker processes
    enable_reputation: bool = False
    reputation_fitness_margin: float = 0.10
    cohort: CohortSpec = field(default_factory=CohortSpec)
    adversary: AdversarySpec = field(default_factory=AdversarySpec)
    heterogeneity: HeterogeneitySpec = field(default_factory=HeterogeneitySpec)
    chain: ChainSpec = field(default_factory=ChainSpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    participation: ParticipationSpec = field(default_factory=ParticipationSpec)
    data_spec: SyntheticSpec = field(default_factory=SyntheticSpec)
    aggregator_test_samples: int = 500
    backbone_sigma: float = 0.55
    backbone_mismatch: float = 0.075
    runtime: str = "inprocess"             # "inprocess" | "multiprocess"
    runtime_workers: int = 2               # worker processes (multiprocess)

    def __post_init__(self) -> None:
        if self.kind not in ("vanilla", "decentralized"):
            raise ConfigError(f"unknown scenario kind {self.kind!r}")
        if self.model_kind not in MODEL_LEARNING_RATES:
            raise ConfigError(
                f"unknown model kind {self.model_kind!r}; choose from {sorted(MODEL_LEARNING_RATES)}"
            )
        if self.rounds < 1:
            raise ConfigError("rounds must be >= 1")
        if self.local_epochs < 1 or self.batch_size < 1:
            raise ConfigError("local_epochs and batch_size must be >= 1")
        if self.learning_rate is not None and self.learning_rate <= 0:
            raise ConfigError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.mode not in ("personalized", "global_vote"):
            raise ConfigError(f"unknown mode {self.mode!r}")
        if self.selection not in ("exhaustive", "greedy", "auto"):
            raise ConfigError(f"unknown selection strategy {self.selection!r}")
        if self.exhaustive_limit < 1:
            raise ConfigError("exhaustive_limit must be >= 1")
        if self.selection_workers < 0:
            raise ConfigError(
                f"selection_workers must be >= 0, got {self.selection_workers}"
            )
        if self.aggregator_test_samples < 1:
            raise ConfigError("aggregator_test_samples must be >= 1")
        if self.runtime not in RUNTIME_KINDS:
            raise ConfigError(
                f"unknown runtime {self.runtime!r}; choose from {RUNTIME_KINDS}"
            )
        if self.runtime_workers < 1:
            raise ConfigError(
                f"runtime_workers must be >= 1, got {self.runtime_workers}"
            )
        if self.runtime == "multiprocess":
            if self.faults.active:
                raise ConfigError(
                    "fault injection is an in-process feature; "
                    "the multiprocess runtime does not support it"
                )
            if self.selection_workers > 0:
                raise ConfigError(
                    "selection_workers forks from the driver process; "
                    "the multiprocess runtime already owns the process "
                    "fan-out, so combine one or the other"
                )
        if self.kind == "vanilla" and self.faults.active:
            raise ConfigError(
                "fault injection targets the FL <-> chain seam; "
                'the "vanilla" centralized deployment has none'
            )
        if self.kind == "vanilla" and self.participation.engaged:
            raise ConfigError(
                "the participation axis (sampling, windows, churn) targets "
                'the decentralized deployment; the "vanilla" kind always '
                "trains every client"
            )
        if (
            self.participation.sampled_k is not None
            and self.participation.sampled_k > self.cohort.size
        ):
            raise ConfigError(
                f"sampled_k {self.participation.sampled_k} exceeds the "
                f"cohort size {self.cohort.size}"
            )
        for window in self.participation.windows:
            if window[0] >= self.cohort.size:
                raise ConfigError(
                    f"availability window peer index {window[0]} is out of "
                    f"range for cohort size {self.cohort.size}"
                )
        if self.heterogeneity.times is not None and len(self.heterogeneity.times) != self.cohort.size:
            raise ConfigError(
                f"heterogeneity times has {len(self.heterogeneity.times)} entries "
                f"for cohort size {self.cohort.size}"
            )

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------

    def resolved_learning_rate(self) -> float:
        """Explicit learning rate, or the calibrated per-model default."""
        if self.learning_rate is not None:
            return self.learning_rate
        return MODEL_LEARNING_RATES[self.model_kind]

    def client_ids(self) -> tuple[str, ...]:
        """Resolved cohort ids (delegates to the cohort axis)."""
        return self.cohort.ids()

    def quick(self) -> "ScenarioSpec":
        """Test-scale variant: 2 rounds, 1 epoch, small splits, same cohort."""
        return replace(
            self,
            rounds=min(self.rounds, 2),
            local_epochs=1,
            cohort=replace(
                self.cohort,
                train_samples=min(self.cohort.train_samples, 200),
                test_samples=min(self.cohort.test_samples, 150),
                volumes=None if self.cohort.volumes is None
                else tuple(min(v, 200) for v in self.cohort.volumes),
            ),
            aggregator_test_samples=min(self.aggregator_test_samples, 150),
        )

    def to_experiment_config(self) -> ExperimentConfig:
        """Project onto the legacy :class:`ExperimentConfig` (uniform volumes)."""
        return ExperimentConfig(
            model_kind=self.model_kind,
            rounds=self.rounds,
            local_epochs=self.local_epochs,
            batch_size=self.batch_size,
            learning_rate=self.resolved_learning_rate(),
            client_ids=self.client_ids(),
            train_samples_per_client=self.cohort.train_samples,
            test_samples_per_client=self.cohort.test_samples,
            aggregator_test_samples=self.aggregator_test_samples,
            client_skew=self.cohort.label_skew,
            backbone_sigma=self.backbone_sigma,
            backbone_mismatch=self.backbone_mismatch,
            seed=self.seed,
            data_spec=self.data_spec,
        )

    @classmethod
    def from_experiment_config(
        cls,
        config: ExperimentConfig,
        kind: str = "decentralized",
        **overrides: object,
    ) -> "ScenarioSpec":
        """Lift a legacy :class:`ExperimentConfig` into a spec."""
        return cls(
            kind=kind,
            model_kind=config.model_kind,
            rounds=config.rounds,
            local_epochs=config.local_epochs,
            batch_size=config.batch_size,
            learning_rate=config.learning_rate,
            seed=config.seed,
            cohort=CohortSpec(
                size=len(config.client_ids),
                client_ids=config.client_ids,
                label_skew=config.client_skew,
                train_samples=config.train_samples_per_client,
                test_samples=config.test_samples_per_client,
            ),
            data_spec=config.data_spec,
            aggregator_test_samples=config.aggregator_test_samples,
            backbone_sigma=config.backbone_sigma,
            backbone_mismatch=config.backbone_mismatch,
            **overrides,
        )


def replace_axis(spec: ScenarioSpec, axis: str, value: object) -> ScenarioSpec:
    """Return ``spec`` with the dotted-path ``axis`` replaced by ``value``.

    ``replace_axis(spec, "cohort.size", 25)`` rebuilds the nested frozen
    dataclasses (and re-validates them) along the path; ``"policy"`` or any
    top-level field works too.  Unknown path components raise
    :class:`~repro.errors.ConfigError` — the sweep driver's whole interface
    to spec surgery.
    """
    head, _, rest = axis.partition(".")
    known = {f.name for f in fields(spec)}
    if head not in known:
        raise ConfigError(f"unknown spec axis {head!r}; choose from {sorted(known)}")
    if not rest:
        return replace(spec, **{head: value})
    inner = getattr(spec, head)
    if not is_dataclass(inner):
        raise ConfigError(f"axis {head!r} has no sub-fields (got path {axis!r})")
    return replace(spec, **{head: replace_axis(inner, rest, value)})
