"""Declarative scenario API — one entry point for every workload.

Compose a :class:`ScenarioSpec` (cohort, adversary, heterogeneity, chain,
policy, mode, selection axes), run it with :func:`run_scenario`, or run a
registered name (``paper/table1``, ``cohort/25``, ``adversarial/label_flip``,
…) via :func:`get_scenario`.  Grids over any axis run through the sweep
driver (:func:`grid` / :func:`run_grid` / :func:`cohort_sweep`) with
datasets shared across points.

Quick taste::

    from repro.scenarios import ScenarioSpec, CohortSpec, AdversarySpec, run_scenario

    spec = ScenarioSpec(
        cohort=CohortSpec(size=10, train_samples=200, test_samples=150),
        adversary=AdversarySpec(kind="label_flip", fraction=0.2),
        rounds=3,
    )
    result = run_scenario(spec)
    print(result.summary())
"""

from repro.core.participation import ParticipationSpec
from repro.faults import FaultSpec
from repro.scenarios.spec import (
    AdversarySpec,
    ChainSpec,
    CohortSpec,
    HeterogeneitySpec,
    PAPER_CLIENT_IDS,
    ScenarioSpec,
    default_client_ids,
    replace_axis,
)
from repro.scenarios.runner import ScenarioContext, ScenarioResult, run_scenario
from repro.scenarios.registry import (
    ScenarioDefinition,
    cohort_scenario,
    fault_scenario,
    get_scenario,
    list_scenarios,
    paper_spec,
    register_scenario,
)
from repro.scenarios.sweep import SweepPoint, cohort_sweep, grid, run_grid, sweep_axis

__all__ = [
    "AdversarySpec",
    "ChainSpec",
    "CohortSpec",
    "FaultSpec",
    "HeterogeneitySpec",
    "PAPER_CLIENT_IDS",
    "ParticipationSpec",
    "ScenarioContext",
    "ScenarioDefinition",
    "ScenarioResult",
    "ScenarioSpec",
    "SweepPoint",
    "cohort_scenario",
    "cohort_sweep",
    "default_client_ids",
    "fault_scenario",
    "get_scenario",
    "grid",
    "list_scenarios",
    "paper_spec",
    "register_scenario",
    "replace_axis",
    "run_grid",
    "run_scenario",
    "sweep_axis",
]
