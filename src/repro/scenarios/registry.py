"""Named-scenario registry: every workload reproducible by name.

A :class:`ScenarioDefinition` bundles the specs a named workload runs and
how to render their results.  Built-ins cover the paper's artifacts
(``paper/table1``, ``paper/tables234``, ``paper/tradeoff``), cohort-scaling
workloads (``cohort/10`` … ``cohort/50`` — any ``cohort/<n>`` resolves
dynamically), the adversarial ablations (``adversarial/label_flip``,
``adversarial/reputation`` — the latter measures the reputation ledger's
exclusion quality against ``consider``-only selection),
device heterogeneity (``hetero/stragglers``), and the fault-injection
workloads (``faults/transient``, ``faults/crash``, ``faults/lossy`` —
deterministic chain faults absorbed by the resilient gateway, or ridden
out via quorum rounds and rejoin catch-up).  Unknown names raise
:class:`~repro.errors.ConfigError` with a did-you-mean listing.

Register project-specific workloads with :func:`register_scenario`::

    @register_scenario("mylab/night-run", "50 peers, scale attack, wait-for-10")
    def _night_run(seed=42, quick=False, models=None):
        return (replace(cohort_scenario(50, seed=seed), ...),)
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.config import default_config
from repro.core.decentralized import REPUTATION_INITIAL_SCORE
from repro.errors import ConfigError
from repro.fl.async_policy import WaitForAll, WaitForK
from repro.metrics.tables import (
    MODEL_LABELS,
    format_combination_table,
    format_table1,
    render_table,
)
from repro.core.participation import ParticipationSpec
from repro.faults import FaultSpec
from repro.scenarios.runner import ScenarioResult
from repro.scenarios.spec import (
    AdversarySpec,
    ChainSpec,
    CohortSpec,
    HeterogeneitySpec,
    ScenarioSpec,
)

#: Model families a paper artifact covers, in the paper's table order.
PAPER_MODELS = ("simple_nn", "efficientnet_b0_sim")

#: ``build`` signature: (seed, quick, models) -> ordered specs to run.
BuildFn = Callable[..., tuple[ScenarioSpec, ...]]
#: ``render`` signature: (specs, results) -> printable text blocks.
RenderFn = Callable[[Sequence[ScenarioSpec], Sequence[ScenarioResult]], list[str]]


def default_render(specs: Sequence[ScenarioSpec], results: Sequence[ScenarioResult]) -> list[str]:
    """Generic speed/precision summary — one row per scenario run."""
    rows = []
    for result in results:
        summary = result.summary()
        rows.append(
            [
                summary["scenario"],
                str(summary["cohort"]),
                summary["policy"],
                f"{summary['mean_wait_s']:.1f}",
                f"{summary['final_accuracy']:.4f}",
                ",".join(result.adversaries) or "-",
            ]
        )
    table = render_table(
        "Scenario summary",
        ["scenario", "cohort", "policy", "mean wait (sim s)", "final acc", "adversaries"],
        rows,
    )
    return [table]


@dataclass(frozen=True)
class ScenarioDefinition:
    """One named workload: what it runs and how it reports."""

    name: str
    description: str
    build: BuildFn
    render: RenderFn = default_render


_REGISTRY: dict[str, ScenarioDefinition] = {}


def register_scenario(
    name: str, description: str, render: Optional[RenderFn] = None
) -> Callable[[BuildFn], BuildFn]:
    """Decorator registering ``build`` under ``name``."""
    def decorator(build: BuildFn) -> BuildFn:
        if name in _REGISTRY:
            raise ConfigError(f"scenario {name!r} already registered")
        _REGISTRY[name] = ScenarioDefinition(
            name=name,
            description=description,
            build=build,
            render=render if render is not None else default_render,
        )
        return build
    return decorator


def list_scenarios() -> list[ScenarioDefinition]:
    """Registered definitions, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


_COHORT_PATTERN = re.compile(r"^cohort/(\d+)(?:/sampled/(\d+))?$")


def get_scenario(name: str) -> ScenarioDefinition:
    """Resolve a scenario by name.

    ``cohort/<n>`` resolves for any integer n >= 2, registered or not,
    and ``cohort/<n>/sampled/<k>`` adds per-round client sampling of k
    peers (2 <= k <= n); anything else must be registered.  Unknown
    names get a did-you-mean listing built from the registry.
    """
    if name in _REGISTRY:
        return _REGISTRY[name]
    match = _COHORT_PATTERN.match(name)
    if match:
        size = int(match.group(1))
        sampled_k = int(match.group(2)) if match.group(2) else None
        if size < 2:
            raise ConfigError(f"cohort size must be >= 2, got {name!r}")
        if sampled_k is not None and not 2 <= sampled_k <= size:
            raise ConfigError(
                f"sampled k must be in [2, {size}], got {name!r}"
            )
        return _cohort_definition(size, sampled_k)
    suggestions = difflib.get_close_matches(name, sorted(_REGISTRY), n=3, cutoff=0.4)
    hint = f"; did you mean: {', '.join(suggestions)}?" if suggestions else ""
    raise ConfigError(
        f"unknown scenario {name!r}{hint} "
        f"(run `python -m repro.experiments list` for all names)"
    )


# ---------------------------------------------------------------------------
# Paper artifacts
# ---------------------------------------------------------------------------


def _paper_models(models: Optional[Sequence[str]]) -> tuple[str, ...]:
    return tuple(models) if models else PAPER_MODELS


def _maybe_quick(spec: ScenarioSpec, quick: bool) -> ScenarioSpec:
    return spec.quick() if quick else spec


def paper_spec(
    model_kind: str, seed: int = 42, kind: str = "decentralized", **overrides: object
) -> ScenarioSpec:
    """The paper-faithful spec for one model family (3 clients, 10 rounds)."""
    return ScenarioSpec.from_experiment_config(
        default_config(model_kind, seed=seed), kind=kind, **overrides
    )


def _render_table1(specs, results) -> list[str]:
    blocks = []
    for index in range(0, len(results), 2):
        consider, not_consider = results[index], results[index + 1]
        model_kind = specs[index].model_kind
        series = {
            client: {
                "consider": consider.client_accuracy[client],
                "not_consider": not_consider.client_accuracy[client],
            }
            for client in specs[index].client_ids()
        }
        blocks.append(format_table1(MODEL_LABELS[model_kind], series))
    return blocks


@register_scenario(
    "paper/table1",
    "Table I: vanilla FL, consider vs not-consider, both model families",
    render=_render_table1,
)
def _build_table1(seed: int = 42, quick: bool = False, models=None) -> tuple[ScenarioSpec, ...]:
    specs = []
    for model_kind in _paper_models(models):
        for consider in (True, False):
            specs.append(
                _maybe_quick(
                    paper_spec(
                        model_kind,
                        seed=seed,
                        kind="vanilla",
                        consider=consider,
                        name="paper/table1",
                    ),
                    quick,
                )
            )
    return tuple(specs)


def _render_tables234(specs, results) -> list[str]:
    blocks = []
    for peer_id in ("A", "B", "C"):
        for spec, result in zip(specs, results):
            blocks.append(
                format_combination_table(
                    MODEL_LABELS[spec.model_kind],
                    peer_id,
                    result.combination_accuracy[peer_id],
                )
            )
    return blocks


@register_scenario(
    "paper/tables234",
    "Tables II-IV: blockchain FL combination tables for clients A, B, C",
    render=_render_tables234,
)
def _build_tables234(seed: int = 42, quick: bool = False, models=None) -> tuple[ScenarioSpec, ...]:
    return tuple(
        _maybe_quick(paper_spec(model_kind, seed=seed, name="paper/tables234"), quick)
        for model_kind in _paper_models(models)
    )


#: Column headers of the wait-or-not sweep table (shared with the legacy
#: ``tradeoff`` CLI alias so the two outputs cannot drift apart).
TRADEOFF_HEADER = ["policy", "mean wait (sim s)", "final acc", "models visible"]


def tradeoff_row(policy_label: str, wait_times: dict, round_logs: list) -> list[str]:
    """One wait-or-not sweep row: policy, mean wait, final acc, visibility.

    The single source of the row formula — the registry render and the
    legacy ``tradeoff`` CLI alias both call it, keeping their outputs
    byte-identical by construction.
    """
    mean_wait = float(np.mean(list(wait_times.values())))
    final_acc = float(np.mean([log.chosen_accuracy for log in round_logs[-3:]]))
    visible = float(np.mean([log.updates_visible for log in round_logs]))
    return [policy_label, f"{mean_wait:.1f}", f"{final_acc:.4f}", f"{visible:.2f}"]


def _render_tradeoff(specs, results) -> list[str]:
    blocks = []
    for index in range(0, len(results), 3):
        model_kind = specs[index].model_kind
        rows = [
            tradeoff_row(result.spec.policy.describe(), result.wait_times, result.round_logs)
            for result in results[index:index + 3]
        ]
        blocks.append(
            render_table(
                f"Wait-or-not sweep ({MODEL_LABELS[model_kind]})",
                TRADEOFF_HEADER,
                rows,
            )
        )
    return blocks


@register_scenario(
    "paper/tradeoff",
    "Headline trade-off: wait-for-k sweep (k = 1, 2, all) per model family",
    render=_render_tradeoff,
)
def _build_tradeoff(seed: int = 42, quick: bool = False, models=None) -> tuple[ScenarioSpec, ...]:
    specs = []
    for model_kind in _paper_models(models):
        for policy in (WaitForK(1), WaitForK(2), WaitForAll()):
            specs.append(
                _maybe_quick(
                    paper_spec(
                        model_kind, seed=seed, policy=policy, name="paper/tradeoff"
                    ),
                    quick,
                )
            )
    return tuple(specs)


# ---------------------------------------------------------------------------
# Beyond the paper: cohorts, adversaries, heterogeneity
# ---------------------------------------------------------------------------


def cohort_scenario(
    size: int,
    seed: int = 42,
    selection_workers: int = 0,
    sampled_k: Optional[int] = None,
) -> ScenarioSpec:
    """Bench-scale ``size``-peer decentralized scenario.

    Reduced data and rounds keep 10-50-peer runs tractable; heterogeneous
    device speeds (uniform 60 ± 40 s) make the waiting policy matter, and
    ``selection="auto"`` switches to greedy forward selection above the
    exhaustive limit — the configuration behind the ROADMAP's
    speed/precision-at-scale measurement.  ``selection_workers`` fans the
    per-peer combination searches out to worker processes (results are
    identical at any worker count).  ``sampled_k`` trains only a k-peer
    subcohort per round (``cohort/<n>/sampled/<k>``) — the cross-device
    configuration that stretches n into the thousands.
    """
    participation = (
        ParticipationSpec(sampled_k=sampled_k)
        if sampled_k is not None
        else ParticipationSpec()
    )
    name = (
        f"cohort/{size}"
        if sampled_k is None
        else f"cohort/{size}/sampled/{sampled_k}"
    )
    return ScenarioSpec(
        name=name,
        kind="decentralized",
        model_kind="simple_nn",
        rounds=3,
        local_epochs=2,
        cohort=CohortSpec(size=size, train_samples=200, test_samples=150),
        heterogeneity=HeterogeneitySpec(kind="uniform", base_time=60.0, spread=40.0),
        seed=seed,
        aggregator_test_samples=150,
        selection_workers=selection_workers,
        participation=participation,
    )


def _cohort_build(size: int, seed: int = 42, quick: bool = False, models=None, sampled_k=None):
    return tuple(
        _maybe_quick(
            replace(
                cohort_scenario(size, seed=seed, sampled_k=sampled_k),
                model_kind=model_kind,
            ),
            quick,
        )
        for model_kind in (models or ("simple_nn",))
    )


def _cohort_definition(size: int, sampled_k: Optional[int] = None) -> ScenarioDefinition:
    """The one source of ``cohort/<n>[/sampled/<k>]`` definitions —
    registered sizes and dynamically resolved ones describe the workload
    identically."""
    if sampled_k is None:
        name = f"cohort/{size}"
        description = (
            f"{size}-peer decentralized cohort at bench scale (greedy selection, "
            "heterogeneous devices)"
        )
    else:
        name = f"cohort/{size}/sampled/{sampled_k}"
        description = (
            f"{size}-peer cohort training a sampled {sampled_k}-peer subcohort "
            "per round (deterministic participation streams)"
        )
    return ScenarioDefinition(
        name=name,
        description=description,
        build=lambda seed=42, quick=False, models=None, _n=size, _k=sampled_k: _cohort_build(
            _n, seed=seed, quick=quick, models=models, sampled_k=_k
        ),
    )


for _size in (10, 25, 50):
    _REGISTRY[f"cohort/{_size}"] = _cohort_definition(_size)


@register_scenario(
    "adversarial/label_flip",
    "Paper cohort with one label-flipping adversary (consider should exclude it)",
)
def _build_label_flip(seed: int = 42, quick: bool = False, models=None) -> tuple[ScenarioSpec, ...]:
    return tuple(
        _maybe_quick(
            paper_spec(
                model_kind,
                seed=seed,
                name="adversarial/label_flip",
                adversary=AdversarySpec(kind="label_flip", fraction=1 / 3),
            ),
            quick,
        )
        for model_kind in (models or ("simple_nn",))
    )


def _render_reputation(specs, results) -> list[str]:
    """Exclusion quality: the reputation ledger vs ``consider``-only search.

    Two signals identify the abnormal client: the combination search
    excluding its model from adopted aggregates (the paper's ``consider``
    behaviour, available without the extension), and the on-chain
    reputation score dropping below the initial grant.  The table shows
    both per client; the summary lines compare them head to head.
    """
    blocks = []
    for spec, result in zip(specs, results):
        adversaries = set(result.adversaries)
        rows = []
        for client_id in spec.client_ids():
            score = result.reputation.get(client_id)
            rows.append(
                [
                    client_id,
                    "yes" if client_id in adversaries else "-",
                    "-" if score is None else str(score),
                    f"{result.exclusion_rate(client_id):.2f}",
                ]
            )
        blocks.append(
            render_table(
                f"Reputation vs consider-only exclusion ({MODEL_LABELS[spec.model_kind]})",
                ["client", "adversary", "reputation", "excluded by selection"],
                rows,
            )
        )
        flagged = sorted(
            client_id
            for client_id, score in result.reputation.items()
            if score < REPUTATION_INITIAL_SCORE
        )
        adv_excluded = (
            float(np.mean([result.exclusion_rate(cid) for cid in sorted(adversaries)]))
            if adversaries
            else 0.0
        )
        honest = [cid for cid in spec.client_ids() if cid not in adversaries]
        honest_excluded = (
            float(np.mean([result.exclusion_rate(cid) for cid in honest])) if honest else 0.0
        )
        blocks.append(
            "\n".join(
                [
                    f"reputation flags (score < {REPUTATION_INITIAL_SCORE}): "
                    f"{', '.join(flagged) or 'none'} "
                    f"(adversaries: {', '.join(sorted(adversaries)) or 'none'})",
                    "consider-only exclusion rate: "
                    f"adversaries {adv_excluded:.2f} vs honest {honest_excluded:.2f}",
                ]
            )
        )
    return blocks


@register_scenario(
    "adversarial/reputation",
    "Label-flip cohort with the reputation ledger on; reports exclusion quality vs consider-only",
    render=_render_reputation,
)
def _build_reputation(seed: int = 42, quick: bool = False, models=None) -> tuple[ScenarioSpec, ...]:
    return tuple(
        _maybe_quick(
            paper_spec(
                model_kind,
                seed=seed,
                name="adversarial/reputation",
                adversary=AdversarySpec(kind="label_flip", fraction=1 / 3),
                enable_reputation=True,
            ),
            quick,
        )
        for model_kind in (models or ("simple_nn",))
    )


# ---------------------------------------------------------------------------
# Fault injection & resilience
# ---------------------------------------------------------------------------


def fault_scenario(
    name: str, faults: FaultSpec, seed: int = 42, drop_rate: float = 0.0
) -> ScenarioSpec:
    """Bench-scale 5-peer scenario with the fault axis engaged.

    Small data and few rounds keep fault sweeps cheap; the cohort is
    large enough (5 peers) that crashing the tail still leaves a quorum
    and the retry layer sees plenty of intercepted calls.
    """
    return ScenarioSpec(
        name=name,
        kind="decentralized",
        model_kind="simple_nn",
        rounds=3,
        local_epochs=2,
        cohort=CohortSpec(size=5, train_samples=200, test_samples=150),
        chain=ChainSpec(drop_rate=drop_rate),
        faults=faults,
        seed=seed,
        aggregator_test_samples=150,
    )


def _render_faults(specs, results) -> list[str]:
    """Resilience summary: completion, injected faults, retry absorption."""
    rows = []
    for spec, result in zip(specs, results):
        faults = result.chain_stats.get("faults", {})
        resilience = result.chain_stats.get("gateway", {}).get("resilience", {})
        rows.append(
            [
                spec.name,
                f"{result.completed_rounds}/{spec.rounds}",
                str(faults.get("injected", 0)),
                str(resilience.get("retries", 0)),
                str(resilience.get("gave_up", 0)),
                str(faults.get("catch_ups", 0)),
                f"{result.mean_final_accuracy():.4f}",
                result.abort_reason or "-",
            ]
        )
    table = render_table(
        "Fault resilience",
        [
            "scenario",
            "rounds",
            "injected",
            "retries",
            "gave up",
            "catch-ups",
            "final acc",
            "abort",
        ],
        rows,
    )
    return [table]


@register_scenario(
    "faults/transient",
    "Transient chain errors + timeouts fully absorbed by retry/backoff "
    "(byte-equivalent to the fault-free run)",
    render=_render_faults,
)
def _build_faults_transient(seed: int = 42, quick: bool = False, models=None):
    return tuple(
        _maybe_quick(
            replace(
                fault_scenario(
                    "faults/transient",
                    FaultSpec(transient_rate=0.15, timeout_rate=0.05),
                    seed=seed,
                ),
                model_kind=model_kind,
            ),
            quick,
        )
        for model_kind in (models or ("simple_nn",))
    )


@register_scenario(
    "faults/crash",
    "Tail peers crash for a mid-run round; quorum rounds proceed and the "
    "rejoining peers catch up",
    render=_render_faults,
)
def _build_faults_crash(seed: int = 42, quick: bool = False, models=None):
    return tuple(
        _maybe_quick(
            replace(
                fault_scenario(
                    "faults/crash",
                    FaultSpec(crash_fraction=0.4, crash_round=2, crash_rounds=1),
                    seed=seed,
                ),
                model_kind=model_kind,
            ),
            quick,
        )
        for model_kind in (models or ("simple_nn",))
    )


@register_scenario(
    "faults/lossy",
    "Lossy gossip (10% drops) plus latency spikes and occasional transient "
    "errors under the resilient gateway",
    render=_render_faults,
)
def _build_faults_lossy(seed: int = 42, quick: bool = False, models=None):
    return tuple(
        _maybe_quick(
            replace(
                fault_scenario(
                    "faults/lossy",
                    FaultSpec(
                        transient_rate=0.05, latency_rate=0.1, latency_spike=5.0
                    ),
                    seed=seed,
                    drop_rate=0.1,
                ),
                model_kind=model_kind,
            ),
            quick,
        )
        for model_kind in (models or ("simple_nn",))
    )


@register_scenario(
    "hetero/stragglers",
    "5-peer cohort with one 5x straggler device under wait-for-all",
)
def _build_stragglers(seed: int = 42, quick: bool = False, models=None) -> tuple[ScenarioSpec, ...]:
    return tuple(
        _maybe_quick(
            ScenarioSpec(
                name="hetero/stragglers",
                kind="decentralized",
                model_kind=model_kind,
                rounds=5,
                local_epochs=2,
                cohort=CohortSpec(size=5, train_samples=400, test_samples=300),
                heterogeneity=HeterogeneitySpec(
                    kind="stragglers",
                    base_time=30.0,
                    straggler_fraction=0.2,
                    straggler_factor=5.0,
                ),
                policy=WaitForAll(),
                seed=seed,
                aggregator_test_samples=300,
            ),
            quick,
        )
        for model_kind in (models or ("simple_nn",))
    )
