"""Sweep driver: run grids of scenarios with shared datasets.

``grid`` derives spec variants along any dotted axis
(:func:`~repro.scenarios.spec.replace_axis`), ``run_grid`` executes them
through one shared :class:`~repro.scenarios.runner.ScenarioContext` (the
dataset factory, sampled splits, and pretrained backbones are paid for
once per distinct configuration, not once per grid point), and
``cohort_sweep`` is the packaged 10-50-peer speed/precision measurement
the ROADMAP asks for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from itertools import product
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.fl.async_policy import AsyncPolicy
from repro.scenarios.registry import cohort_scenario
from repro.scenarios.runner import ScenarioContext, ScenarioResult, run_scenario
from repro.scenarios.spec import ScenarioSpec, replace_axis


@dataclass
class SweepPoint:
    """One executed grid point."""

    label: str
    spec: ScenarioSpec
    result: ScenarioResult
    wall_seconds: float

    def row(self) -> dict:
        """Summary row: the scenario digest plus wall-clock cost."""
        summary = self.result.summary()
        summary["scenario"] = self.label
        summary["wall_s"] = round(self.wall_seconds, 2)
        return summary


def grid(base: ScenarioSpec, axes: dict[str, Sequence[object]]) -> list[tuple[str, ScenarioSpec]]:
    """Cartesian product of axis values over ``base``.

    ``axes`` maps dotted axis paths to value lists, e.g.
    ``{"cohort.size": [10, 25, 50], "policy": [WaitForK(5), WaitForAll()]}``.
    Labels encode the coordinates (``cohort.size=10,policy=wait-for-5``).
    """
    if not axes:
        raise ConfigError("grid needs at least one axis")
    points: list[tuple[str, ScenarioSpec]] = []
    names = list(axes)
    for values in product(*(axes[name] for name in names)):
        spec = base
        parts = []
        for name, value in zip(names, values):
            spec = replace_axis(spec, name, value)
            shown = value.describe() if isinstance(value, AsyncPolicy) else value
            parts.append(f"{name}={shown}")
        points.append((",".join(parts), spec))
    return points


def run_grid(
    points: Sequence[tuple[str, ScenarioSpec]],
    context: Optional[ScenarioContext] = None,
) -> list[SweepPoint]:
    """Execute labelled specs sequentially through one shared context."""
    ctx = context if context is not None else ScenarioContext()
    executed = []
    for label, spec in points:
        start = time.perf_counter()
        result = run_scenario(spec, context=ctx)
        executed.append(
            SweepPoint(
                label=label,
                spec=spec,
                result=result,
                wall_seconds=time.perf_counter() - start,
            )
        )
    return executed


def sweep_axis(
    base: ScenarioSpec,
    axis: str,
    values: Sequence[object],
    context: Optional[ScenarioContext] = None,
) -> list[SweepPoint]:
    """One-axis convenience wrapper over :func:`grid` + :func:`run_grid`."""
    return run_grid(grid(base, {axis: list(values)}), context=context)


def cohort_sweep(
    sizes: Sequence[int],
    base: Optional[ScenarioSpec] = None,
    seed: int = 42,
    quick: bool = False,
    policy: Optional[AsyncPolicy] = None,
    context: Optional[ScenarioContext] = None,
    selection_workers: Optional[int] = None,
    gateway: Optional[str] = None,
    runtime: Optional[str] = None,
    runtime_workers: Optional[int] = None,
    sampled_k: Optional[int] = None,
) -> list[dict]:
    """The ROADMAP measurement: speed/precision rows per cohort size.

    Each row reports the cohort size, waiting policy, mean per-peer wait
    (simulated seconds), cohort-mean final accuracy, mean adopted-
    combination size, and wall-clock cost.  All sizes share one
    :class:`ScenarioContext`.  ``selection_workers`` overrides the
    template's combination-search parallelism, ``gateway`` its ledger
    backend, and ``runtime``/``runtime_workers`` the process topology
    (all pure wall-clock/transport knobs: rows are identical at any
    worker count, backend, or runtime).  ``sampled_k`` sweeps the sizes
    under k-of-n client sampling (every size must admit k peers).
    """
    if not sizes:
        raise ConfigError("cohort_sweep needs at least one size")
    template = base if base is not None else cohort_scenario(min(sizes), seed=seed)
    if policy is not None:
        template = replace(template, policy=policy)
    if selection_workers is not None:
        template = replace(template, selection_workers=selection_workers)
    if sampled_k is not None:
        template = replace_axis(template, "participation.sampled_k", sampled_k)
    if gateway is not None:
        template = replace_axis(template, "chain.gateway", gateway)
    if runtime is not None:
        template = replace(template, runtime=runtime)
    if runtime_workers is not None:
        template = replace(template, runtime_workers=runtime_workers)
    if quick:
        template = template.quick()
    points = grid(template, {"cohort.size": list(sizes)})
    rows = []
    for point in run_grid(points, context=context):
        result = point.result
        rows.append(
            {
                "cohort": result.spec.cohort.size,
                "policy": result.spec.policy.describe(),
                "mean_wait_s": round(result.mean_wait(), 2),
                "final_accuracy": round(result.mean_final_accuracy(), 6),
                "mean_models_used": round(
                    float(np.mean([log.models_used for log in result.round_logs])), 2
                ),
                "wall_s": round(point.wall_seconds, 2),
            }
        )
    return rows
