"""Run one :class:`~repro.scenarios.spec.ScenarioSpec` end to end.

``run_scenario`` is the single entry point behind every workload: the
paper's tables, large cohorts, adversarial cohorts, heterogeneous-device
sweeps.  The legacy ``run_vanilla_experiment`` / ``run_decentralized_experiment``
functions are thin shims over it.

Determinism contract: for a given spec, results are a pure function of
``spec.seed``.  Every random stream is named (see
:class:`~repro.utils.rng.RngFactory`), and the stream names used here for
the honest, homogeneous, 3-client paper configuration are *exactly* the
seed implementation's names — so the paper tables regenerate
bit-identically through the scenario API.  New axes (adversaries,
heterogeneity) draw from their own streams (``attack/...``, ``hetero``),
which by construction never perturb the honest streams.

A :class:`ScenarioContext` memoizes the dataset factory, sampled splits,
and pretrained backbones across runs; the sweep driver passes one context
to every point of a grid so a 10-50-peer sweep pays for each dataset once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Optional

import numpy as np

from repro.core.decentralized import DecentralizedConfig, DecentralizedFL
from repro.core.participation import ParticipationPlan
from repro.core.peer import PeerConfig
from repro.chain.network import LatencyModel
from repro.data.dataset import Dataset
from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec, client_class_probs
from repro.fl.client import ClientConfig, FLClient
from repro.fl.trainer import TrainConfig
from repro.fl.vanilla import VanillaConfig, VanillaFL
from repro.nn.models import build_model
from repro.scenarios.spec import ScenarioSpec
from repro.utils.rng import RngFactory


class ScenarioContext:
    """Caches shared across the runs of a sweep.

    Dataset splits are deterministic functions of (data spec, experiment
    seed, split name, size, class skew), so memoizing them is
    behaviour-preserving: a cache hit returns byte-identical arrays to what
    a fresh run would sample.  Consumers treat datasets as read-only
    (adversarial corruption copies before mutating).
    """

    def __init__(self) -> None:
        self._factories: dict[SyntheticSpec, SyntheticImageDataset] = {}
        self._backbones: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        self._datasets: dict[tuple, Dataset] = {}
        self.stats = {"dataset_hits": 0, "dataset_misses": 0}

    def factory(self, data_spec: SyntheticSpec) -> SyntheticImageDataset:
        """The (cached) dataset factory for one generation spec."""
        if data_spec not in self._factories:
            self._factories[data_spec] = SyntheticImageDataset(data_spec)
        return self._factories[data_spec]

    def backbone(self, data_spec: SyntheticSpec, mismatch: float):
        """Cached pretrained trunk for the transfer-learning model."""
        key = (data_spec, mismatch)
        if key not in self._backbones:
            self._backbones[key] = self.factory(data_spec).pretrained_backbone(mismatch=mismatch)
        return self._backbones[key]

    def dataset(self, key: tuple, sample) -> Dataset:
        """Memoized split: ``sample()`` runs only on a cache miss."""
        if key not in self._datasets:
            self.stats["dataset_misses"] += 1
            self._datasets[key] = sample()
        else:
            self.stats["dataset_hits"] += 1
        return self._datasets[key]


@dataclass
class ScenarioResult:
    """Everything one scenario run produced.

    ``client_accuracy`` is the per-client accuracy series in both kinds
    (vanilla: local test accuracy after each round; decentralized: the
    adopted combination's accuracy).  ``combination_accuracy`` /
    ``wait_times`` / ``chain_stats`` are decentralized-only.
    """

    spec: ScenarioSpec
    client_accuracy: dict[str, list[float]]
    combination_accuracy: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    wait_times: dict[str, float] = field(default_factory=dict)
    chain_stats: dict = field(default_factory=dict)
    round_logs: list = field(default_factory=list)
    adversaries: tuple[str, ...] = ()
    training_times: dict[str, float] = field(default_factory=dict)
    #: Final on-chain reputation per client (reputation-enabled runs only).
    reputation: dict[str, int] = field(default_factory=dict)
    #: Rounds that ran to completion (== spec.rounds on a clean run).
    completed_rounds: int = 0
    #: Why a faults-active run stopped early, or "" (clean / fault-free).
    abort_reason: str = ""
    #: Scheduled round ids skipped because churn/windows left fewer than
    #: two available peers (participation-engaged runs only).
    skipped_rounds: tuple[int, ...] = ()
    #: SHA-256 of every peer's final model bytes (decentralized only) —
    #: the byte surface the runtime-equivalence tests compare.
    model_digests: dict[str, str] = field(default_factory=dict)

    def final_accuracy(self, client_id: str) -> float:
        """Accuracy after the last round for one client."""
        return self.client_accuracy[client_id][-1]

    def mean_final_accuracy(self, honest_only: bool = False) -> float:
        """Cohort-mean final accuracy (optionally excluding adversaries).

        Clients with no completed round (crashed before ever aggregating
        in an aborted faulty run) are skipped; 0.0 if nobody finished.
        """
        ids = [
            cid for cid in self.client_accuracy
            if self.client_accuracy[cid]
            and not (honest_only and cid in self.adversaries)
        ]
        if not ids:
            return 0.0
        return float(np.mean([self.client_accuracy[cid][-1] for cid in ids]))

    def mean_wait(self) -> float:
        """Mean per-peer wait time (0.0 for vanilla runs)."""
        if not self.wait_times:
            return 0.0
        return float(np.mean(list(self.wait_times.values())))

    def exclusion_rate(self, client_id: str) -> float:
        """How often *other* peers' adopted combinations excluded a client.

        The ``consider``-style signal of the decentralized mode: the
        fraction of (rater peer, round) aggregation decisions that left
        ``client_id`` out.  A high rate for an adversary (and a low rate
        for honest clients) means combination search alone already
        rejects the abnormal model.
        """
        views = [
            log
            for log in self.round_logs
            if log.peer_id != client_id and log.chosen_combination
        ]
        if not views:
            return 0.0
        return float(
            np.mean([client_id not in log.chosen_combination for log in views])
        )

    def summary(self) -> dict:
        """Speed/precision digest — one sweep-table row."""
        return {
            "scenario": self.spec.name or self.spec.kind,
            "kind": self.spec.kind,
            "cohort": len(self.client_accuracy),
            "policy": self.spec.policy.describe() if self.spec.kind == "decentralized" else "-",
            "mean_wait_s": round(self.mean_wait(), 4),
            "final_accuracy": round(self.mean_final_accuracy(), 6),
            "adversaries": len(self.adversaries),
        }


# ---------------------------------------------------------------------------
# Shared building blocks (stream names identical to the seed implementation)
# ---------------------------------------------------------------------------


def _cohort_datasets(
    spec: ScenarioSpec,
    rngs: RngFactory,
    ctx: ScenarioContext,
    only: Optional[frozenset] = None,
) -> tuple[dict[str, Dataset], dict[str, Dataset], Dataset]:
    """Per-client train/test splits plus the aggregator's default test set.

    Streams: ``data/train/<id>`` and ``data/test/<id>`` per client,
    ``data/test/aggregator`` for the central set — the seed layout.
    Adversarial dataset corruption (``attack/<id>``) happens here, after
    sampling, so honest splits stay cache-shareable across scenarios.

    ``only`` restricts materialization to the named clients (the ones a
    participation plan ever selects).  Streams are named per client, so
    skipping a client draws nothing and cannot perturb anyone else's
    split; the memo keys include the participation axis, so a sampled
    run can never hand back (or receive) a full-participation cache
    entry.
    """
    factory = ctx.factory(spec.data_spec)
    client_ids = spec.client_ids()
    attacker = spec.adversary.build_attacker()
    adversary_ids = set(spec.adversary.adversary_ids(client_ids))
    train_sets: dict[str, Dataset] = {}
    test_sets: dict[str, Dataset] = {}
    for index, client_id in enumerate(client_ids):
        if only is not None and client_id not in only:
            continue
        probs = client_class_probs(
            index,
            len(client_ids),
            spec.data_spec.num_classes,
            skew=spec.cohort.label_skew,
        )
        volume = spec.cohort.volume_of(index)
        train_key = (spec.data_spec, spec.seed, "train", client_id, volume,
                     index, len(client_ids), spec.cohort.label_skew,
                     spec.participation)
        train_sets[client_id] = ctx.dataset(
            train_key,
            lambda: factory.sample(
                volume,
                rngs.get("data", "train", client_id),
                name=f"train/{client_id}",
                class_probs=probs,
            ),
        )
        test_key = (spec.data_spec, spec.seed, "test", client_id,
                    spec.cohort.test_samples, spec.participation)
        test_sets[client_id] = ctx.dataset(
            test_key,
            lambda: factory.sample(
                spec.cohort.test_samples,
                rngs.get("data", "test", client_id),
                name=f"test/{client_id}",
            ),
        )
        if attacker is not None and client_id in adversary_ids:
            train_sets[client_id] = attacker.poison_dataset(
                train_sets[client_id], rngs.get("attack", client_id)
            )
    aggregator_key = (spec.data_spec, spec.seed, "aggregator",
                      spec.aggregator_test_samples, spec.participation)
    aggregator_test = ctx.dataset(
        aggregator_key,
        lambda: factory.sample(
            spec.aggregator_test_samples,
            rngs.get("data", "test", "aggregator"),
            name="test/aggregator",
        ),
    )
    return train_sets, test_sets, aggregator_test


def _builder(spec: ScenarioSpec, ctx: ScenarioContext):
    """Shared-architecture builder; init seed comes from the caller's rng."""
    if spec.model_kind == "efficientnet_b0_sim":
        backbone = ctx.backbone(spec.data_spec, spec.backbone_mismatch)
        return partial(
            build_model, spec.model_kind, backbone=backbone, sigma=spec.backbone_sigma
        )
    return partial(build_model, spec.model_kind)


def _train_config(spec: ScenarioSpec) -> TrainConfig:
    """Local-training hyperparameters of the scenario."""
    return TrainConfig(
        epochs=spec.local_epochs,
        batch_size=spec.batch_size,
        learning_rate=spec.resolved_learning_rate(),
    )


# ---------------------------------------------------------------------------
# The two deployment kinds
# ---------------------------------------------------------------------------


def _run_vanilla(
    spec: ScenarioSpec, rngs: RngFactory, ctx: ScenarioContext
) -> ScenarioResult:
    train_sets, test_sets, aggregator_test = _cohort_datasets(spec, rngs, ctx)
    builder = _builder(spec, ctx)
    client_ids = spec.client_ids()
    attacker = spec.adversary.build_attacker()
    adversary_ids = spec.adversary.adversary_ids(client_ids)
    # All clients start from identical initial weights (the shared model),
    # matching both the paper's deployment and standard FedAvg.
    init_rng_seed = rngs.integers("model-init")
    train_config = _train_config(spec)
    clients = [
        FLClient(
            ClientConfig(
                client_id=client_id,
                train_config=train_config,
                model_kind=spec.model_kind,
                attacker=attacker if client_id in adversary_ids else None,
            ),
            train_sets[client_id],
            test_sets[client_id],
            lambda rng, _seed=init_rng_seed: builder(np.random.default_rng(_seed)),
            rngs.get("client", client_id),
            attack_rng=(
                rngs.get("attack", client_id) if client_id in adversary_ids else None
            ),
        )
        for client_id in client_ids
    ]
    driver = VanillaFL(
        clients,
        aggregator_test,
        VanillaConfig(rounds=spec.rounds, consider=spec.consider),
        model_builder=lambda rng: builder(np.random.default_rng(init_rng_seed)),
        rng=rngs.get("tie-break"),
    )
    logs = driver.run()
    return ScenarioResult(
        spec=spec,
        client_accuracy={cid: driver.accuracy_series(cid) for cid in client_ids},
        round_logs=logs,
        adversaries=adversary_ids,
        completed_rounds=spec.rounds,
    )


@dataclass
class DecentralizedInputs:
    """Everything a decentralized driver needs, derived from one spec.

    The in-process runner materializes all of it; the multiprocess
    coordinator asks for ``materialize=False`` (no datasets, no model
    builder — those live in the worker processes), and each worker calls
    :func:`decentralized_inputs` again with the same spec to rebuild the
    identical datasets, initial weights, and rng draws on its side.
    """

    config: DecentralizedConfig
    peer_configs: list[PeerConfig]
    train_sets: dict[str, Dataset]
    test_sets: dict[str, Dataset]
    model_builder: Optional[object]
    adversary_ids: tuple[str, ...]
    training_times: dict[str, float]


def decentralized_inputs(
    spec: ScenarioSpec,
    rngs: RngFactory,
    ctx: ScenarioContext,
    materialize: bool = True,
) -> DecentralizedInputs:
    """Derive the decentralized driver's construction inputs from ``spec``.

    Every random stream here is named — derived from ``(seed, label
    path)``, never from draw order — so skipping materialization cannot
    perturb any other stream: two processes deriving from the same spec
    agree on every value whether or not they built the datasets.
    """
    client_ids = spec.client_ids()
    attacker = spec.adversary.build_attacker()
    adversary_ids = spec.adversary.adversary_ids(client_ids)
    train_sets: dict[str, Dataset] = {}
    test_sets: dict[str, Dataset] = {}
    model_builder = None
    needed = None
    if materialize and spec.participation.engaged:
        # Only the peers the participation plan ever selects need data.
        # The plan is rebuilt from the same chain-spawned streams the
        # driver uses, so both sides agree on the set; skipping the rest
        # is what makes a 1000-registered / 25-sampled cohort affordable.
        needed = ParticipationPlan(
            spec.participation, list(client_ids), spec.rounds, rngs.spawn("chain")
        ).ever_active
    if materialize:
        train_sets, test_sets, _ = _cohort_datasets(spec, rngs, ctx, only=needed)
        builder = _builder(spec, ctx)
    init_rng_seed = rngs.integers("model-init")
    if materialize:
        model_builder = lambda rng: builder(np.random.default_rng(init_rng_seed))
    training_times = spec.heterogeneity.training_times(client_ids, rngs.get("hetero"))

    dec_config = DecentralizedConfig(
        rounds=spec.rounds,
        policy=spec.policy,
        mode=spec.mode,
        enable_reputation=spec.enable_reputation,
        reputation_fitness_margin=spec.reputation_fitness_margin,
        selection=spec.selection,
        exhaustive_limit=spec.exhaustive_limit,
        selection_workers=spec.selection_workers,
        gateway=spec.chain.gateway,
        gateway_staleness=spec.chain.gateway_staleness,
        target_block_interval=spec.chain.target_block_interval,
        latency=LatencyModel(base=spec.chain.latency_base, jitter=spec.chain.latency_jitter),
        gossip_batch_window=spec.chain.gossip_batch_window,
        hashrate=spec.chain.hashrate,
        max_round_time=spec.chain.max_round_time,
        poll_interval=spec.chain.poll_interval,
        faults=spec.faults,
        drop_rate=spec.chain.drop_rate,
        participation=spec.participation,
        execution=spec.chain.execution,
        execution_workers=spec.chain.execution_workers,
        parallel_min_txs=spec.chain.parallel_min_txs,
        cold_storage=spec.chain.cold_storage,
        hot_window=spec.chain.hot_window,
        snapshot_interval=spec.chain.snapshot_interval,
    )
    train_config = _train_config(spec)
    peer_configs = [
        PeerConfig(
            peer_id=client_id,
            train_config=train_config,
            model_kind=spec.model_kind,
            training_time=training_times[client_id],
            attacker=attacker if client_id in adversary_ids else None,
        )
        for client_id in client_ids
    ]
    return DecentralizedInputs(
        config=dec_config,
        peer_configs=peer_configs,
        train_sets=train_sets,
        test_sets=test_sets,
        model_builder=model_builder,
        adversary_ids=adversary_ids,
        training_times=training_times,
    )


def _run_decentralized(
    spec: ScenarioSpec, rngs: RngFactory, ctx: ScenarioContext
) -> ScenarioResult:
    if spec.runtime == "multiprocess":
        # Imported lazily: repro.runtime's worker side imports this module
        # back to rebuild its inputs, so the dependency stays one-way at
        # import time.
        from repro.runtime.coordinator import MultiprocessDecentralizedFL

        inputs = decentralized_inputs(spec, rngs, ctx, materialize=False)
        driver: DecentralizedFL = MultiprocessDecentralizedFL(
            spec,
            inputs.peer_configs,
            config=inputs.config,
            rng_factory=rngs.spawn("chain"),
            workers=spec.runtime_workers,
        )
    else:
        inputs = decentralized_inputs(spec, rngs, ctx)
        driver = DecentralizedFL(
            inputs.peer_configs,
            inputs.train_sets,
            inputs.test_sets,
            model_builder=inputs.model_builder,
            config=inputs.config,
            rng_factory=rngs.spawn("chain"),
        )
    client_ids = spec.client_ids()
    adversary_ids = inputs.adversary_ids
    training_times = inputs.training_times
    logs = driver.run()

    combination_accuracy: dict[str, dict[str, list[float]]] = {}
    client_accuracy: dict[str, list[float]] = {cid: [] for cid in client_ids}
    for log in logs:
        peer_table = combination_accuracy.setdefault(log.peer_id, {})
        for combo, acc in log.combination_accuracy.items():
            peer_table.setdefault(combo, []).append(acc)
        client_accuracy[log.peer_id].append(log.chosen_accuracy)

    reputation: dict[str, int] = {}
    if spec.enable_reputation:
        reputation = driver.reputation_scores()

    return ScenarioResult(
        spec=spec,
        client_accuracy=client_accuracy,
        combination_accuracy=combination_accuracy,
        wait_times=driver.wait_time_summary(),
        chain_stats=driver.chain_stats(),
        round_logs=logs,
        adversaries=adversary_ids,
        training_times=training_times,
        reputation=reputation,
        completed_rounds=driver.completed_rounds,
        abort_reason=driver.abort_reason,
        skipped_rounds=tuple(driver.skipped_rounds),
        model_digests=driver.model_digests(),
    )


def run_scenario(
    spec: ScenarioSpec, context: Optional[ScenarioContext] = None
) -> ScenarioResult:
    """Execute one scenario; deterministic in ``spec`` (including its seed).

    Pass a shared :class:`ScenarioContext` when running several related
    scenarios (the sweep driver does) to reuse dataset splits and
    pretrained backbones across runs.
    """
    rngs = RngFactory(spec.seed)
    ctx = context if context is not None else ScenarioContext()
    if spec.kind == "vanilla":
        return _run_vanilla(spec, rngs, ctx)
    return _run_decentralized(spec, rngs, ctx)
