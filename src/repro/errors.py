"""Shared exception hierarchy for the ``repro`` library.

Every subsystem raises subclasses of :class:`ReproError` so that callers can
catch library failures without also swallowing programming errors such as
``TypeError``.  The hierarchy mirrors the package layout: chain errors,
contract errors, neural-network errors, federated-learning errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Blockchain substrate
# ---------------------------------------------------------------------------


class ChainError(ReproError):
    """Base class for blockchain-substrate failures."""


class InvalidTransactionError(ChainError):
    """A transaction failed static or stateful validation."""


class InvalidBlockError(ChainError):
    """A block failed validation (header, PoW, or body checks)."""


class InvalidSignatureError(ChainError):
    """A signature did not verify against the claimed sender."""


class UnknownBlockError(ChainError):
    """A referenced block hash is not present in the chain store."""


class InsufficientFundsError(InvalidTransactionError):
    """Sender balance cannot cover value + max gas cost."""


class NonceError(InvalidTransactionError):
    """Transaction nonce does not match the sender account nonce."""


class OutOfGasError(ChainError):
    """Contract execution exceeded the transaction gas limit."""


class ContractError(ChainError):
    """Base class for smart-contract level failures."""


class ContractNotFoundError(ContractError):
    """A call targeted an address with no deployed contract."""


class ContractRevertError(ContractError):
    """A contract explicitly reverted; state changes are rolled back."""

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason or "execution reverted")
        self.reason = reason


class MethodNotFoundError(ContractRevertError):
    """A call named a method the target contract does not expose.

    Subclass of :class:`ContractRevertError` so transaction execution
    semantics (gas charged, nonce bumped, state rolled back) are untouched;
    the distinct type lets the ledger gateway surface it as a typed
    :class:`UnknownMethodError` instead of a generic revert.
    """


class MempoolError(ChainError):
    """Mempool admission failure (duplicate, underpriced, full)."""


class NetworkError(ChainError):
    """Simulated p2p network failure (unknown peer, partitioned link)."""


# ---------------------------------------------------------------------------
# Neural-network substrate
# ---------------------------------------------------------------------------


class NNError(ReproError):
    """Base class for neural-network substrate failures."""


class ShapeError(NNError):
    """An array did not have the expected shape."""


class SerializationError(NNError):
    """Model weights could not be serialized or deserialized."""


class NotBuiltError(NNError):
    """A layer was used before its parameters were initialized."""


# ---------------------------------------------------------------------------
# Data substrate
# ---------------------------------------------------------------------------


class DataError(ReproError):
    """Base class for dataset and partitioning failures."""


class PartitionError(DataError):
    """A requested partition is infeasible (too many clients, empty shard)."""


# ---------------------------------------------------------------------------
# Federated learning
# ---------------------------------------------------------------------------


class FLError(ReproError):
    """Base class for federated-learning failures."""


class AggregationError(FLError):
    """Model aggregation failed (no models, mismatched parameters)."""


class SelectionError(FLError):
    """Combination selection failed (no candidate passed the filter)."""


class RoundError(FLError):
    """A federated round could not complete (quorum never reached)."""


class ConfigError(ReproError):
    """An experiment configuration is inconsistent."""


# ---------------------------------------------------------------------------
# Ledger gateway (the FL-layer <-> chain service boundary)
# ---------------------------------------------------------------------------


class GatewayError(ReproError):
    """Base class for ledger-gateway failures.

    The gateway is the transport-agnostic service API between the FL layer
    and the chain (:mod:`repro.chain.gateway`); every backend maps its
    transport-specific failures onto this hierarchy so callers never have
    to catch raw ``KeyError`` / backend internals.
    """


class UnknownContractError(GatewayError):
    """A gateway call targeted an address with no deployed contract."""


class UnknownMethodError(GatewayError):
    """A gateway call named a method the contract does not expose."""


class CallRevertedError(GatewayError):
    """A read-only gateway call reverted inside the contract."""

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason or "call reverted")
        self.reason = reason


class TransactionRejectedError(GatewayError):
    """A submitted transaction was rejected before entering the ledger."""


class GatewayTimeoutError(GatewayError, RoundError):
    """A gateway wait ran past its deadline.

    Also a :class:`RoundError`: existing round-driver callers that catch
    the pre-gateway timeout type keep working unchanged.
    """


class TransientGatewayError(GatewayError):
    """A gateway operation failed in a way that is safe to retry.

    Raised by fault injection (and, later, by out-of-process transports)
    for momentary transport hiccups: the operation had no effect and an
    identical re-issue may succeed.  :class:`ResilientGateway` retries
    exactly this type plus :class:`GatewayTimeoutError`; everything else
    (rejections, reverts, unknown contract/method) is permanent.
    """


class GatewayUnavailableError(GatewayError):
    """The gateway gave up on an operation or is circuit-broken.

    Surfaced by :class:`~repro.faults.gateway.ResilientGateway` when the
    retry budget is exhausted or the circuit breaker is open, and by
    :class:`~repro.faults.gateway.FaultyGateway` for a crashed peer.  The
    round driver catches exactly this type to drop a peer from the
    current round instead of aborting the run.
    """


class WireProtocolError(GatewayError):
    """A wire frame violated the runtime's framing or codec contract.

    Raised by :mod:`repro.runtime.wire` for malformed frames (bad magic,
    truncated payload, undeclared blob, unknown message type) — a
    programming or version-skew error, never something a retry fixes.
    """


class WorkerCrashedError(GatewayUnavailableError):
    """A worker OS process died or its wire channel closed unexpectedly.

    Subclass of :class:`GatewayUnavailableError` so the PR-7 resilience
    path (drop the peer from the round, keep the quorum going) absorbs a
    crashed worker exactly like a circuit-broken gateway.
    """
