"""Participant registry contract.

Gate-keeps the FL cohort: the deployer is the initial admin; participants
register themselves (open enrollment, permissionless-Ethereum style) or the
admin can pre-register and ban.  The model store and coordinator consult
this registry before accepting submissions, mirroring "only authorized
devices can contribute updates" (BFLC) while staying permissionless at the
chain layer like the paper argues for.
"""

from __future__ import annotations

from typing import Any

from repro.chain.runtime import CallContext, Contract

_ADMIN_KEY = "admin"
_OPEN_KEY = "open_enrollment"
_MEMBER_PREFIX = "member:"
_BANNED_PREFIX = "banned:"


class ParticipantRegistry(Contract):
    """On-chain membership list for the FL cohort."""

    NAME = "participant_registry"

    def init(self, ctx: CallContext, open_enrollment: bool = True) -> None:
        """Deployer becomes admin; enrollment defaults to open."""
        ctx.sstore(_ADMIN_KEY, ctx.sender)
        ctx.sstore(_OPEN_KEY, bool(open_enrollment))

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def register(self, ctx: CallContext, display_name: str = "") -> dict[str, Any]:
        """Self-register the sender as a participant."""
        ctx.require(bool(ctx.sload(_OPEN_KEY)), "enrollment closed")
        ctx.require(not ctx.sload(_BANNED_PREFIX + ctx.sender, False), "address banned")
        key = _MEMBER_PREFIX + ctx.sender
        ctx.require(ctx.sload(key) is None, "already registered")
        record = {
            "address": ctx.sender,
            "display_name": display_name,
            "registered_at_block": ctx.block_number,
        }
        ctx.sstore(key, record)
        ctx.log("ParticipantRegistered", address=ctx.sender, display_name=display_name)
        return record

    def admit(self, ctx: CallContext, address: str, display_name: str = "") -> None:
        """Admin-only enrollment of another address."""
        ctx.require(ctx.sender == ctx.sload(_ADMIN_KEY), "admin only")
        key = _MEMBER_PREFIX + address
        ctx.require(ctx.sload(key) is None, "already registered")
        ctx.sstore(key, {
            "address": address,
            "display_name": display_name,
            "registered_at_block": ctx.block_number,
        })
        ctx.log("ParticipantRegistered", address=address, display_name=display_name)

    def ban(self, ctx: CallContext, address: str, reason: str = "") -> None:
        """Admin-only ban: removes membership and blocks re-registration.

        This is the enforcement hook for "strong evidence against detected
        abnormal clients" — the evidence itself lives in the model store.
        """
        ctx.require(ctx.sender == ctx.sload(_ADMIN_KEY), "admin only")
        ctx.sstore(_BANNED_PREFIX + address, True)
        if ctx.sload(_MEMBER_PREFIX + address) is not None:
            ctx.sdelete(_MEMBER_PREFIX + address)
        ctx.log("ParticipantBanned", address=address, reason=reason)

    def close_enrollment(self, ctx: CallContext) -> None:
        """Admin-only: freeze the cohort."""
        ctx.require(ctx.sender == ctx.sload(_ADMIN_KEY), "admin only")
        ctx.sstore(_OPEN_KEY, False)
        ctx.log("EnrollmentClosed")

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def is_member(self, ctx: CallContext, address: str) -> bool:
        """True iff ``address`` is an active participant."""
        return ctx.sload(_MEMBER_PREFIX + address) is not None

    def is_banned(self, ctx: CallContext, address: str) -> bool:
        """True iff ``address`` has been banned."""
        return bool(ctx.sload(_BANNED_PREFIX + address, False))

    def member_count(self, ctx: CallContext) -> int:
        """Number of active participants (derived from the member keys —
        no shared counter slot, so concurrent registrations in one block
        touch disjoint storage and parallelize conflict-free)."""
        return len(ctx.skeys(_MEMBER_PREFIX))

    def members(self, ctx: CallContext) -> list[str]:
        """Sorted active participant addresses."""
        return [key[len(_MEMBER_PREFIX):] for key in ctx.skeys(_MEMBER_PREFIX)]

    def admin(self, ctx: CallContext) -> str:
        """Current admin address."""
        return ctx.sload(_ADMIN_KEY)
