"""Reputation / incentive ledger contract (extension).

The paper's related work (BESIFL, Biscotti, VFChain) and its future-work
section motivate credit-based participant scoring.  This contract provides
that extension: peers rate each other's model submissions after evaluating
them locally; scores feed the poisoning-ablation benchmark, where a peer
whose models repeatedly fail the fitness threshold loses reputation and can
be excluded from future aggregations.
"""

from __future__ import annotations

from repro.chain.runtime import CallContext, Contract

_SCORE_PREFIX = "score:"
_RATING_PREFIX = "rating:"   # rating:<round>:<rater>:<subject>


class ReputationLedger(Contract):
    """Additive reputation scores with per-round, per-rater idempotence."""

    NAME = "reputation_ledger"

    def init(self, ctx: CallContext, initial_score: int = 100) -> None:
        """Set the score assigned to first-seen subjects."""
        ctx.require(initial_score >= 0, "initial score must be non-negative")
        ctx.sstore("initial_score", int(initial_score))

    def rate(self, ctx: CallContext, round_id: int, subject: str, delta: int, reason: str = "") -> int:
        """Apply ``delta`` to ``subject``'s score for ``round_id``.

        A rater may rate a given subject once per round; self-rating is
        rejected.  Returns the subject's new score (floored at zero).
        """
        ctx.require(subject != ctx.sender, "cannot rate yourself")
        ctx.require(-100 <= delta <= 100, "delta out of range [-100, 100]")
        rating_key = f"{_RATING_PREFIX}{int(round_id):08d}:{ctx.sender}:{subject}"
        ctx.require(ctx.sload(rating_key) is None, "already rated this round")
        ctx.sstore(rating_key, int(delta))
        score_key = _SCORE_PREFIX + subject
        current = ctx.sload(score_key)
        if current is None:
            current = int(ctx.sload("initial_score", 100))
        new_score = max(int(current) + int(delta), 0)
        ctx.sstore(score_key, new_score)
        ctx.log("Rated", round_id=int(round_id), rater=ctx.sender, subject=subject, delta=int(delta), reason=reason)
        return new_score

    def score_of(self, ctx: CallContext, address: str) -> int:
        """Current score (initial score for unseen addresses)."""
        score = ctx.sload(_SCORE_PREFIX + address)
        if score is None:
            return int(ctx.sload("initial_score", 100))
        return int(score)

    def is_credible(self, ctx: CallContext, address: str, threshold: int = 50) -> bool:
        """BESIFL-style credibility gate."""
        return self.score_of(ctx, address) >= int(threshold)

    def rating_of(self, ctx: CallContext, round_id: int, rater: str, subject: str) -> int | None:
        """The delta ``rater`` applied to ``subject`` in ``round_id``."""
        return ctx.sload(f"{_RATING_PREFIX}{int(round_id):08d}:{rater}:{subject}")
