"""Aggregation coordination contract.

Implements the round lifecycle of Section III-B: a round opens, peers
submit (tracked by the :class:`ModelStore`), and the coordinator answers the
central question of the paper — *wait or not to wait* — by exposing
quorum state for any wait-for-k policy.  It also supports the paper's
second operating mode ("agreeing on a common block of local updates"):
peers vote for the aggregated-model hash they computed, and a hash reaching
the vote threshold becomes the round's canonical global model.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.chain.runtime import CallContext, Contract

_STORE_KEY = "model_store_address"
_ROUND_PREFIX = "round:"          # round:<id> -> round record
_VOTE_PREFIX = "vote:"            # vote:<id>:<address> -> hash voted for
_TALLY_PREFIX = "tally:"          # tally:<id> -> {hash: count}


def _round_key(round_id: int) -> str:
    return f"{_ROUND_PREFIX}{int(round_id):08d}"


class AggregationCoordinator(Contract):
    """Round lifecycle + wait-for-k quorum + global-model finalization."""

    NAME = "aggregation_coordinator"

    def init(
        self,
        ctx: CallContext,
        model_store_address: str,
        quorum: int = 1,
        vote_threshold: int = 2,
    ) -> None:
        """Bind to a model store; set defaults for quorum and votes.

        ``quorum`` is the minimum submissions before ``quorum_reached``
        reports true (the k of wait-for-k); ``vote_threshold`` is the number
        of matching finalization votes that canonizes a global model.
        """
        ctx.require(quorum >= 1, "quorum must be >= 1")
        ctx.require(vote_threshold >= 1, "vote_threshold must be >= 1")
        ctx.sstore(_STORE_KEY, model_store_address)
        ctx.sstore("default_quorum", int(quorum))
        ctx.sstore("vote_threshold", int(vote_threshold))
        ctx.sstore("current_round", -1)

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------

    def open_round(
        self,
        ctx: CallContext,
        round_id: int,
        quorum: Optional[int] = None,
        vote_threshold: Optional[int] = None,
    ) -> dict:
        """Open a round; any participant may do it (no central party).

        ``quorum`` and ``vote_threshold`` override the contract defaults
        for this round only — under client sampling each round is quorate
        over (and finalized against) its selected subcohort, not the full
        roster.  When omitted, the record stores the default quorum and no
        threshold key, so pre-sampling round records are byte-identical.
        """
        ctx.require(round_id >= 0, "round_id must be non-negative")
        key = _round_key(round_id)
        ctx.require(ctx.sload(key) is None, "round already open")
        record = {
            "round_id": int(round_id),
            "opened_by": ctx.sender,
            "opened_at_block": ctx.block_number,
            "opened_at": ctx.timestamp,
            "quorum": int(quorum) if quorum is not None else int(ctx.sload("default_quorum", 1)),
            "finalized_hash": None,
            "finalized_at": None,
        }
        if vote_threshold is not None:
            ctx.require(int(vote_threshold) >= 1, "vote_threshold must be >= 1")
            record["vote_threshold"] = int(vote_threshold)
        ctx.sstore(key, record)
        current = int(ctx.sload("current_round", -1))
        if round_id > current:
            ctx.sstore("current_round", int(round_id))
        ctx.log("RoundOpened", round_id=int(round_id), opened_by=ctx.sender)
        return record

    def submission_count(self, ctx: CallContext, round_id: int) -> int:
        """Delegate count to the bound model store."""
        store = ctx.sload(_STORE_KEY)
        return int(ctx.call(store, "submission_count", round_id=round_id))

    def quorum_reached(self, ctx: CallContext, round_id: int) -> bool:
        """Has the round collected at least its quorum of submissions?

        This is the on-chain primitive behind *wait-for-k*: an asynchronous
        aggregator proceeds as soon as this flips true instead of waiting
        for the full cohort.
        """
        record = ctx.sload(_round_key(round_id))
        ctx.require(record is not None, "round not open")
        return self.submission_count(ctx, round_id) >= record["quorum"]

    def round_info(self, ctx: CallContext, round_id: int) -> Optional[dict]:
        """Round record, or ``None`` if never opened."""
        return ctx.sload(_round_key(round_id))

    def current_round(self, ctx: CallContext) -> int:
        """Highest round id ever opened (-1 before the first)."""
        return int(ctx.sload("current_round", -1))

    # ------------------------------------------------------------------
    # Global-model finalization votes (operating mode 2)
    # ------------------------------------------------------------------

    def vote_global(self, ctx: CallContext, round_id: int, aggregate_hash: str) -> dict[str, Any]:
        """Vote that ``aggregate_hash`` is the round's global model.

        One vote per address per round; changing a vote is a revert (votes
        are evidence).  When the tally reaches ``vote_threshold``, the hash
        is finalized — any peer becoming "the aggregator" without a fixed
        single aggregator, exactly the paper's single-point-of-failure fix.
        """
        record = ctx.sload(_round_key(round_id))
        ctx.require(record is not None, "round not open")
        ctx.require(bool(aggregate_hash), "aggregate_hash required")
        vote_key = f"{_VOTE_PREFIX}{int(round_id):08d}:{ctx.sender}"
        ctx.require(ctx.sload(vote_key) is None, "already voted this round")
        ctx.sstore(vote_key, aggregate_hash)
        tally_key = f"{_TALLY_PREFIX}{int(round_id):08d}"
        tally = dict(ctx.sload(tally_key, {}))
        tally[aggregate_hash] = int(tally.get(aggregate_hash, 0)) + 1
        ctx.sstore(tally_key, tally)
        ctx.log("GlobalVote", round_id=int(round_id), voter=ctx.sender, aggregate_hash=aggregate_hash)

        # Per-round override (partial-participation rounds) falls back to
        # the contract-wide default set at deployment.
        threshold = int(record.get("vote_threshold", ctx.sload("vote_threshold", 1)))
        if tally[aggregate_hash] >= threshold and record["finalized_hash"] is None:
            record = dict(record)
            record["finalized_hash"] = aggregate_hash
            record["finalized_at"] = ctx.timestamp
            ctx.sstore(_round_key(round_id), record)
            ctx.log("GlobalFinalized", round_id=int(round_id), aggregate_hash=aggregate_hash)
        return {"tally": tally[aggregate_hash], "finalized": record["finalized_hash"] is not None}

    def finalized_hash(self, ctx: CallContext, round_id: int) -> Optional[str]:
        """The canonized global-model hash, or ``None``."""
        record = ctx.sload(_round_key(round_id))
        ctx.require(record is not None, "round not open")
        return record["finalized_hash"]

    def vote_tally(self, ctx: CallContext, round_id: int) -> dict:
        """Current vote counts per candidate hash."""
        return dict(ctx.sload(f"{_TALLY_PREFIX}{int(round_id):08d}", {}))

    def vote_of(self, ctx: CallContext, round_id: int, address: str) -> Optional[str]:
        """What ``address`` voted for, or ``None``."""
        return ctx.sload(f"{_VOTE_PREFIX}{int(round_id):08d}:{address}")
