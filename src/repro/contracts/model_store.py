"""Model commitment store contract.

Each training round, every peer submits the hash of its serialized local
model weights (plus metadata: round, sample count, self-reported accuracy).
Full weights travel off-chain through a content-addressed store (as IPFS
does in related work, see DESIGN.md §5.3); the on-chain hash makes the
submission non-repudiable — the signed transaction binds author, round, and
exact weights.

The contract optionally consults a :class:`ParticipantRegistry` so banned or
unregistered addresses cannot submit.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.chain.runtime import CallContext, Contract

_REGISTRY_KEY = "registry_address"
_SUBMISSION_PREFIX = "submission:"   # submission:<round>:<address>
_ROUND_INDEX_PREFIX = "round_index:"  # round_index:<round> -> [addresses]


def _submission_key(round_id: int, address: str) -> str:
    return f"{_SUBMISSION_PREFIX}{int(round_id):08d}:{address}"


def _round_index_key(round_id: int) -> str:
    return f"{_ROUND_INDEX_PREFIX}{int(round_id):08d}"


class ModelStore(Contract):
    """Per-round local-model commitments with author attribution."""

    NAME = "model_store"

    def init(self, ctx: CallContext, registry_address: Optional[str] = None) -> None:
        """Optionally bind to a participant registry for authorization."""
        ctx.sstore(_REGISTRY_KEY, registry_address)
        ctx.sstore("total_submissions", 0)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def submit_model(
        self,
        ctx: CallContext,
        round_id: int,
        weights_hash: str,
        num_samples: int,
        model_kind: str = "",
        reported_accuracy: float = 0.0,
        size_bytes: int = 0,
    ) -> dict[str, Any]:
        """Commit the sender's local model for ``round_id``.

        Re-submission in the same round is rejected — one model per peer per
        round, as in the paper's protocol.  ``size_bytes`` carries the
        serialized model size (the paper's model-size metric), read off the
        same single encoding that produced ``weights_hash``.
        """
        ctx.require(round_id >= 0, "round_id must be non-negative")
        ctx.require(bool(weights_hash), "weights_hash required")
        ctx.require(num_samples > 0, "num_samples must be positive")
        ctx.require(size_bytes >= 0, "size_bytes must be non-negative")
        registry = ctx.sload(_REGISTRY_KEY)
        if registry is not None:
            ctx.require(
                bool(ctx.call(registry, "is_member", address=ctx.sender)),
                "sender not a registered participant",
            )
        key = _submission_key(round_id, ctx.sender)
        ctx.require(ctx.sload(key) is None, "already submitted this round")
        record = {
            "author": ctx.sender,
            "round_id": int(round_id),
            "weights_hash": weights_hash,
            "num_samples": int(num_samples),
            "model_kind": model_kind,
            "reported_accuracy": float(reported_accuracy),
            "size_bytes": int(size_bytes),
            "block_number": ctx.block_number,
            "timestamp": ctx.timestamp,
        }
        ctx.sstore(key, record)
        index = list(ctx.sload(_round_index_key(round_id), []))
        index.append(ctx.sender)
        ctx.sstore(_round_index_key(round_id), sorted(index))
        ctx.sstore("total_submissions", int(ctx.sload("total_submissions", 0)) + 1)
        ctx.log(
            "ModelSubmitted",
            author=ctx.sender,
            round_id=int(round_id),
            weights_hash=weights_hash,
            num_samples=int(num_samples),
        )
        return record

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def get_submission(self, ctx: CallContext, round_id: int, address: str) -> Optional[dict]:
        """One peer's commitment for a round, or ``None``."""
        return ctx.sload(_submission_key(round_id, address))

    def round_submitters(self, ctx: CallContext, round_id: int) -> list[str]:
        """Sorted addresses that submitted in ``round_id``."""
        return list(ctx.sload(_round_index_key(round_id), []))

    def round_submissions(self, ctx: CallContext, round_id: int) -> list[dict]:
        """All commitments for a round, author-sorted."""
        return [
            ctx.sload(_submission_key(round_id, address))
            for address in ctx.sload(_round_index_key(round_id), [])
        ]

    def submission_count(self, ctx: CallContext, round_id: int) -> int:
        """How many peers have submitted in ``round_id``."""
        return len(ctx.sload(_round_index_key(round_id), []))

    def total_submissions(self, ctx: CallContext) -> int:
        """Lifetime number of commitments."""
        return int(ctx.sload("total_submissions", 0))

    def verify_authorship(self, ctx: CallContext, round_id: int, address: str, weights_hash: str) -> bool:
        """Non-repudiation check: did ``address`` commit ``weights_hash``?

        A ``True`` answer is backed by the signed transaction embedded in a
        mined block — the author cannot deny it.
        """
        record = ctx.sload(_submission_key(round_id, address))
        return record is not None and record["weights_hash"] == weights_hash
