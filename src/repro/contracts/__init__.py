"""Smart contracts for blockchain-based federated learning.

These are the Python equivalents of the paper's Solidity contract suite,
executed by :class:`repro.chain.runtime.ContractRuntime`:

* :class:`ParticipantRegistry` — who may train/aggregate (authorization).
* :class:`ModelStore` — per-round local-model commitments (hash of the
  serialized weights) with signer attribution: the non-repudiation record.
* :class:`AggregationCoordinator` — round lifecycle, wait-for-k quorum
  tracking, and finalization votes for the "common global model" mode.
* :class:`ReputationLedger` — score-based incentive extension (the paper's
  related-work/future-work direction, used by ablation benchmarks).
"""

from repro.contracts.registry import ParticipantRegistry
from repro.contracts.model_store import ModelStore
from repro.contracts.aggregation import AggregationCoordinator
from repro.contracts.reputation import ReputationLedger


def register_all(runtime) -> None:
    """Register every FL contract class on a runtime."""
    runtime.register(ParticipantRegistry)
    runtime.register(ModelStore)
    runtime.register(AggregationCoordinator)
    runtime.register(ReputationLedger)


__all__ = [
    "ParticipantRegistry",
    "ModelStore",
    "AggregationCoordinator",
    "ReputationLedger",
    "register_all",
]
