"""Federated data partitioning: IID, Dirichlet non-IID, and label shards.

The paper's three clients train on their own slices; heterogeneity across
clients is what makes "abnormal (noisy) models" appear naturally.  The
Dirichlet partitioner is the standard non-IID benchmark knob (lower alpha =
more skew).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import PartitionError


@dataclass
class PartitionPlan:
    """Named client slices of one source dataset."""

    client_datasets: dict[str, Dataset]

    def sizes(self) -> dict[str, int]:
        """Samples per client."""
        return {client: len(dataset) for client, dataset in self.client_datasets.items()}

    def label_distribution(self, num_classes: int) -> dict[str, np.ndarray]:
        """Per-client label histograms (for heterogeneity reporting)."""
        return {
            client: dataset.class_counts(num_classes)
            for client, dataset in self.client_datasets.items()
        }


def _validate(dataset: Dataset, client_ids: list[str]) -> None:
    if not client_ids:
        raise PartitionError("need at least one client")
    if len(set(client_ids)) != len(client_ids):
        raise PartitionError("client ids must be unique")
    if len(dataset) < len(client_ids):
        raise PartitionError(f"{len(dataset)} samples cannot cover {len(client_ids)} clients")


def partition_iid(dataset: Dataset, client_ids: list[str], rng: np.random.Generator) -> PartitionPlan:
    """Shuffle and deal samples round-robin into equal-ish IID slices."""
    _validate(dataset, client_ids)
    indices = np.arange(len(dataset))
    rng.shuffle(indices)
    splits = np.array_split(indices, len(client_ids))
    return PartitionPlan(
        {
            client: dataset.subset(split, f"{dataset.name}/{client}")
            for client, split in zip(client_ids, splits)
        }
    )


def partition_dirichlet(
    dataset: Dataset,
    client_ids: list[str],
    rng: np.random.Generator,
    alpha: float = 0.5,
    num_classes: int | None = None,
    min_per_client: int = 1,
) -> PartitionPlan:
    """Label-skewed split: class ``c``'s samples divide by Dirichlet(alpha).

    Small ``alpha`` concentrates each class on few clients (strong non-IID);
    large ``alpha`` approaches IID.  Retries until every client has at least
    ``min_per_client`` samples, then raises if infeasible.
    """
    _validate(dataset, client_ids)
    if alpha <= 0:
        raise PartitionError(f"alpha must be positive, got {alpha}")
    classes = int(num_classes if num_classes is not None else dataset.y.max() + 1)
    n_clients = len(client_ids)
    for _attempt in range(20):
        buckets: list[list[int]] = [[] for _ in range(n_clients)]
        for class_id in range(classes):
            class_idx = np.flatnonzero(dataset.y == class_id)
            if len(class_idx) == 0:
                continue
            rng.shuffle(class_idx)
            proportions = rng.dirichlet([alpha] * n_clients)
            cuts = (np.cumsum(proportions)[:-1] * len(class_idx)).astype(int)
            for bucket, part in zip(buckets, np.split(class_idx, cuts)):
                bucket.extend(part.tolist())
        if all(len(bucket) >= min_per_client for bucket in buckets):
            return PartitionPlan(
                {
                    client: dataset.subset(np.array(sorted(bucket)), f"{dataset.name}/{client}")
                    for client, bucket in zip(client_ids, buckets)
                }
            )
    raise PartitionError(
        f"could not give every client >= {min_per_client} samples (alpha={alpha})"
    )


def partition_shards(
    dataset: Dataset,
    client_ids: list[str],
    rng: np.random.Generator,
    shards_per_client: int = 2,
) -> PartitionPlan:
    """McMahan-style pathological non-IID: sort by label, deal shards."""
    _validate(dataset, client_ids)
    n_clients = len(client_ids)
    total_shards = n_clients * shards_per_client
    if total_shards > len(dataset):
        raise PartitionError(f"{total_shards} shards exceed {len(dataset)} samples")
    order = np.argsort(dataset.y, kind="stable")
    shards = np.array_split(order, total_shards)
    shard_ids = np.arange(total_shards)
    rng.shuffle(shard_ids)
    assignments = np.array_split(shard_ids, n_clients)
    plan = {}
    for client, shard_group in zip(client_ids, assignments):
        indices = np.concatenate([shards[s] for s in shard_group])
        plan[client] = dataset.subset(np.sort(indices), f"{dataset.name}/{client}")
    return PartitionPlan(plan)
