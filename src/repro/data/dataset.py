"""Dataset container and batching utilities (the DataLoader stand-in)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.errors import DataError, ShapeError


@dataclass
class Dataset:
    """Immutable pair of feature array and integer label array."""

    x: np.ndarray
    y: np.ndarray
    name: str = "dataset"

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ShapeError(f"{len(self.x)} samples vs {len(self.y)} labels")
        if self.y.ndim != 1:
            raise ShapeError(f"labels must be 1-D, got shape {self.y.shape}")

    def __len__(self) -> int:
        return len(self.x)

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "Dataset":
        """Row-select a new dataset (copies, so slices are independent)."""
        return Dataset(self.x[indices].copy(), self.y[indices].copy(), name or self.name)

    def flattened(self) -> "Dataset":
        """View with images flattened to vectors (for MLP models)."""
        return Dataset(self.x.reshape(len(self.x), -1), self.y, self.name)

    def class_counts(self, num_classes: int) -> np.ndarray:
        """Histogram of labels."""
        return np.bincount(self.y, minlength=num_classes)

    def take(self, n: int) -> "Dataset":
        """First ``n`` samples."""
        if n > len(self):
            raise DataError(f"cannot take {n} from {len(self)} samples")
        return Dataset(self.x[:n].copy(), self.y[:n].copy(), self.name)


def batch_iterator(
    dataset: Dataset,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
    drop_last: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(x, y)`` minibatches, shuffled when ``rng`` is given."""
    if batch_size < 1:
        raise DataError(f"batch_size must be >= 1, got {batch_size}")
    indices = np.arange(len(dataset))
    if rng is not None:
        rng.shuffle(indices)
    for start in range(0, len(indices), batch_size):
        batch = indices[start : start + batch_size]
        if drop_last and len(batch) < batch_size:
            break
        yield dataset.x[batch], dataset.y[batch]


def train_test_split(
    dataset: Dataset,
    test_fraction: float,
    rng: np.random.Generator,
) -> tuple[Dataset, Dataset]:
    """Shuffle-split into train/test datasets."""
    if not 0.0 < test_fraction < 1.0:
        raise DataError(f"test_fraction must be in (0, 1), got {test_fraction}")
    indices = np.arange(len(dataset))
    rng.shuffle(indices)
    n_test = max(int(round(len(dataset) * test_fraction)), 1)
    test_idx, train_idx = indices[:n_test], indices[n_test:]
    if len(train_idx) == 0:
        raise DataError("split left no training samples")
    return (
        dataset.subset(train_idx, f"{dataset.name}/train"),
        dataset.subset(test_idx, f"{dataset.name}/test"),
    )
