"""Input transforms: normalization and light augmentation.

Augmentations operate on NHWC image batches; ``augment_batch`` composes
them the way a torchvision pipeline would.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def normalize(x: np.ndarray, mean: float | np.ndarray = 0.0, std: float | np.ndarray = 1.0) -> np.ndarray:
    """Standardize: ``(x - mean) / std`` (std floored to avoid division by 0)."""
    return (x - mean) / np.maximum(std, 1e-8)


def per_dataset_stats(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Channel-wise mean/std for NHWC images, global mean/std otherwise."""
    if x.ndim == 4:
        axes = (0, 1, 2)
        return x.mean(axis=axes), x.std(axis=axes)
    return np.asarray(x.mean()), np.asarray(x.std())


def _require_nhwc(x: np.ndarray) -> None:
    if x.ndim != 4:
        raise ShapeError(f"expected NHWC batch, got shape {x.shape}")


def random_flip(x: np.ndarray, rng: np.random.Generator, p: float = 0.5) -> np.ndarray:
    """Horizontally flip each image with probability ``p``."""
    _require_nhwc(x)
    out = x.copy()
    flips = rng.random(len(x)) < p
    out[flips] = out[flips, :, ::-1, :]
    return out

def random_crop_shift(x: np.ndarray, rng: np.random.Generator, max_shift: int = 2) -> np.ndarray:
    """Shift each image by up to ``max_shift`` pixels (zero padded)."""
    _require_nhwc(x)
    n, h, w, c = x.shape
    out = np.zeros_like(x)
    shifts = rng.integers(-max_shift, max_shift + 1, size=(n, 2))
    for i, (dy, dx) in enumerate(shifts):
        src_y = slice(max(0, -dy), min(h, h - dy))
        src_x = slice(max(0, -dx), min(w, w - dx))
        dst_y = slice(max(0, dy), min(h, h + dy))
        dst_x = slice(max(0, dx), min(w, w + dx))
        out[i, dst_y, dst_x, :] = x[i, src_y, src_x, :]
    return out


def augment_batch(x: np.ndarray, rng: np.random.Generator, flip_p: float = 0.5, max_shift: int = 2) -> np.ndarray:
    """Standard light augmentation: random flip then random shift."""
    return random_crop_shift(random_flip(x, rng, flip_p), rng, max_shift)
