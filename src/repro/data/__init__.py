"""Dataset substrate: synthetic CIFAR-10-like data and federated partitioning.

The paper trains on CIFAR-10; this offline reproduction generates a seeded
synthetic 10-class image dataset with the same shape contract (32x32x3
float images, integer labels) and tunable difficulty (see DESIGN.md for the
substitution rationale).
"""

from repro.data.synthetic import SyntheticImageDataset, SyntheticSpec, make_cifar10_like
from repro.data.dataset import Dataset, batch_iterator, train_test_split
from repro.data.partition import partition_iid, partition_dirichlet, partition_shards, PartitionPlan
from repro.data.transforms import normalize, random_flip, random_crop_shift, augment_batch

__all__ = [
    "SyntheticImageDataset",
    "SyntheticSpec",
    "make_cifar10_like",
    "Dataset",
    "batch_iterator",
    "train_test_split",
    "partition_iid",
    "partition_dirichlet",
    "partition_shards",
    "PartitionPlan",
    "normalize",
    "random_flip",
    "random_crop_shift",
    "augment_batch",
]
