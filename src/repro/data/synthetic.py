"""Synthetic CIFAR-10-like dataset generator.

No network access means no real CIFAR-10, so we synthesize a 10-class image
dataset preserving what the paper's experiments actually measure — the
*relative* behaviour of aggregation policies across two model complexities.
The construction:

* Each class owns ``modes_per_class`` latent prototypes.  A configurable
  fraction of classes are **hard**: their prototypes come in antipodal
  pairs (``+v``, ``-v``), so no linear function of the pixels separates the
  class — a from-scratch network must *learn* sign-invariant features,
  which is what makes the SimpleNN climb slowly across rounds (CIFAR-10's
  pose/colour variation plays the same role for the paper's SimpleNN).
* A sample is its latent prototype (plus latent jitter) pushed through a
  fixed random "renderer" into 32x32x3 pixel space, plus heavy Gaussian
  pixel noise — the reason a 62k-parameter pixel-space model saturates near
  0.6 while a denoising pretrained backbone does not.
* ``label_noise`` flips a fraction of labels uniformly, bounding reachable
  test accuracy the way CIFAR-10's irreducible error bounds the paper's
  ~86% EfficientNet plateau.

The factory also exposes :meth:`SyntheticImageDataset.pretrained_backbone`:
the (projection, anchors) pair a "pretrained on this visual domain" network
would have learned, consumed by
:func:`repro.nn.models.build_efficientnet_b0_sim` as the frozen trunk —
the honest analog of downloading an EfficientNet-B0 checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import DataError

IMAGE_SHAPE = (32, 32, 3)
NUM_CLASSES = 10

#: CIFAR-10 label names, kept for API familiarity.
CIFAR10_LABELS = (
    "airplane",
    "automobile",
    "bird",
    "cat",
    "deer",
    "dog",
    "frog",
    "horse",
    "ship",
    "truck",
)


@dataclass(frozen=True)
class SyntheticSpec:
    """Generation parameters for the synthetic dataset.

    Defaults are the calibrated values used by the experiment harness (see
    ``repro.core.config.calibrated_spec``): they land a 3-client FedAvg of
    SimpleNN near the paper's 0.28->0.60 trajectory and the transfer-
    learning analog near 0.78->0.85.
    """

    num_classes: int = NUM_CLASSES
    modes_per_class: int = 2
    hard_classes: int = 0            # classes with antipodal (non-linear) modes
    latent_dim: int = 32
    noise_std: float = 2.5           # per-pixel Gaussian noise
    latent_jitter: float = 0.12      # within-mode latent variation
    brightness_std: float = 0.05
    label_noise: float = 0.12
    image_shape: tuple[int, int, int] = IMAGE_SHAPE
    seed: int = 1234

    def __post_init__(self) -> None:
        if not 0 <= self.hard_classes <= self.num_classes:
            raise DataError(
                f"hard_classes {self.hard_classes} out of range for {self.num_classes} classes"
            )
        if self.modes_per_class < 1:
            raise DataError("modes_per_class must be >= 1")
        if not 0.0 <= self.label_noise < 1.0:
            raise DataError("label_noise must be in [0, 1)")

    @property
    def flat_dim(self) -> int:
        """Flattened image dimension."""
        h, w, c = self.image_shape
        return h * w * c


class SyntheticImageDataset:
    """Factory for seeded splits of the synthetic dataset.

    Class prototypes and the renderer derive *only* from ``spec.seed`` so
    every client in an experiment shares one underlying distribution (same
    task), while per-split sampling uses independent caller-provided RNGs.
    """

    def __init__(self, spec: SyntheticSpec) -> None:
        self.spec = spec
        rng = np.random.default_rng(spec.seed)
        # Renderer: latent -> pixels through fixed random unit rows.
        renderer = rng.normal(size=(spec.latent_dim, spec.flat_dim))
        self._renderer = renderer / np.linalg.norm(renderer, axis=1, keepdims=True)
        self._prototypes = self._build_prototypes(rng)

    def _build_prototypes(self, rng: np.random.Generator) -> np.ndarray:
        """(num_classes, modes_per_class, latent_dim) unit prototypes.

        Hard classes alternate ``+v, -v, +v2, -v2, ...`` so the class mean
        is (near) zero in pixel space; easy classes use independent random
        directions.
        """
        spec = self.spec
        prototypes = np.zeros((spec.num_classes, spec.modes_per_class, spec.latent_dim))
        for class_id in range(spec.num_classes):
            if class_id < spec.hard_classes:
                base = None
                for mode_id in range(spec.modes_per_class):
                    if mode_id % 2 == 0:
                        base = rng.normal(size=spec.latent_dim)
                        base /= np.linalg.norm(base)
                        prototypes[class_id, mode_id] = base
                    else:
                        prototypes[class_id, mode_id] = -base
            else:
                for mode_id in range(spec.modes_per_class):
                    vec = rng.normal(size=spec.latent_dim)
                    prototypes[class_id, mode_id] = vec / np.linalg.norm(vec)
        return prototypes

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def renderer(self) -> np.ndarray:
        """The fixed (latent_dim, flat_dim) rendering matrix."""
        return self._renderer

    def mode_of(self, class_id: int, mode_id: int) -> np.ndarray:
        """Latent prototype of one (class, mode) pair."""
        spec = self.spec
        if not 0 <= class_id < spec.num_classes:
            raise DataError(f"class_id {class_id} out of range")
        if not 0 <= mode_id < spec.modes_per_class:
            raise DataError(f"mode_id {mode_id} out of range")
        return self._prototypes[class_id, mode_id].copy()

    def pretrained_backbone(self, mismatch: float = 0.075) -> tuple[np.ndarray, np.ndarray]:
        """What a domain-pretrained trunk knows: (projection, anchors).

        ``projection`` is the (flat_dim, latent_dim) map recovering latent
        codes from pixels (the renderer's transpose); ``anchors`` are the
        mode prototypes — the visual "concepts" a pretrained network
        clusters images around.  These feed the frozen RBF trunk of
        ``build_efficientnet_b0_sim``.

        ``mismatch`` perturbs the projection with a fixed random matrix
        (seeded from the dataset seed, so every peer gets the identical
        trunk): a pretrained checkpoint is trained on a *similar* domain,
        not this exact one.  The calibrated default keeps the head in the
        variance-limited regime where aggregating more peers helps — the
        behaviour the paper reports for the complex model.
        """
        spec = self.spec
        projection = self._renderer.T / np.sqrt(spec.flat_dim)
        if mismatch > 0:
            mis_rng = np.random.default_rng(spec.seed + 777_000_001)
            perturbation = mis_rng.normal(size=projection.shape) / np.sqrt(spec.flat_dim)
            projection = projection + mismatch * perturbation
        anchors = self._prototypes.reshape(-1, spec.latent_dim).copy()
        return projection, anchors

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample(
        self,
        n: int,
        rng: np.random.Generator,
        flat: bool = True,
        name: str = "synthetic",
        class_probs: np.ndarray | None = None,
    ) -> Dataset:
        """Draw ``n`` labelled samples.

        ``flat=True`` returns (n, 3072) vectors for the MLP models;
        ``flat=False`` returns (n, 32, 32, 3) images for the CNN.
        ``class_probs`` optionally skews the label distribution — the
        per-client heterogeneity knob (see :func:`client_class_probs`).
        """
        if n < 1:
            raise DataError(f"need n >= 1, got {n}")
        spec = self.spec
        if class_probs is not None:
            probs = np.asarray(class_probs, dtype=np.float64)
            if probs.shape != (spec.num_classes,):
                raise DataError(
                    f"class_probs must have shape ({spec.num_classes},), got {probs.shape}"
                )
            if not np.isclose(probs.sum(), 1.0) or (probs < 0).any():
                raise DataError("class_probs must be a probability vector")
            labels = rng.choice(spec.num_classes, size=n, p=probs)
        else:
            labels = rng.integers(0, spec.num_classes, size=n)
        modes = rng.integers(0, spec.modes_per_class, size=n)
        latents = self._prototypes[labels, modes]
        latents = latents + rng.normal(0.0, spec.latent_jitter, size=latents.shape)
        pixels = latents @ self._renderer * np.sqrt(spec.flat_dim)
        pixels += rng.normal(0.0, spec.noise_std, size=pixels.shape)
        if spec.brightness_std > 0:
            pixels += rng.normal(0.0, spec.brightness_std, size=(n, 1))
        observed = labels.copy()
        if spec.label_noise > 0:
            flip = rng.random(n) < spec.label_noise
            observed[flip] = rng.integers(0, spec.num_classes, size=int(flip.sum()))
        x = pixels.astype(np.float64)
        if not flat:
            x = x.reshape((n, *spec.image_shape))
        return Dataset(x, observed.astype(np.int64), name)


def client_class_probs(client_index: int, num_clients: int, num_classes: int = NUM_CLASSES, skew: float = 1.0) -> np.ndarray:
    """Mild per-client label skew (the paper's natural data heterogeneity).

    Client ``i`` over-weights the classes congruent to ``i`` modulo
    ``num_clients`` by a factor of ``1 + skew``.  ``skew=0`` is IID; the
    calibrated experiments use ``skew=1`` (favoured classes twice as
    likely), enough that a solo-trained model measurably tilts toward its
    local prior while combinations rebalance.
    """
    if skew < 0:
        raise DataError(f"skew must be non-negative, got {skew}")
    if not 0 <= client_index < num_clients:
        raise DataError(f"client_index {client_index} out of range for {num_clients} clients")
    weights = np.ones(num_classes, dtype=np.float64)
    favoured = np.arange(num_classes) % num_clients == client_index
    weights[favoured] += skew
    return weights / weights.sum()


def make_cifar10_like(
    spec: SyntheticSpec,
    train_size: int,
    test_size: int,
    rng: np.random.Generator,
    flat: bool = True,
) -> tuple[Dataset, Dataset]:
    """Convenience constructor for one train/test pair."""
    factory = SyntheticImageDataset(spec)
    train = factory.sample(train_size, rng, flat=flat, name="cifar10like/train")
    test = factory.sample(test_size, rng, flat=flat, name="cifar10like/test")
    return train, test
