"""repro — reproduction of "Wait or Not to Wait: Evaluating Trade-Offs
between Speed and Precision in Blockchain-based Federated Aggregation"
(Nguyen et al., ICDCS 2024).

Subpackages
-----------
``repro.chain``
    Simulated private-Ethereum substrate: PoW, gas, mempool, fork choice,
    gossip network, gas-metered Python smart contracts.
``repro.contracts``
    The FL contract suite: participant registry, model commitment store,
    aggregation coordinator, reputation ledger.
``repro.nn``
    From-scratch numpy deep learning: layers, losses, optimizers, the two
    evaluation models (SimpleNN and the EfficientNet-B0 transfer-learning
    analog), weight serialization for on-chain commitment.
``repro.data``
    Synthetic CIFAR-10-like dataset and federated partitioning.
``repro.fl``
    Chain-agnostic FL: local training, FedAvg (+ robust baselines), the
    "consider" combination selection, async waiting policies, poisoning.
``repro.core``
    The paper's contribution — fully coupled blockchain-based FL peers,
    decentralized orchestration, non-repudiation evidence, calibrated
    experiment runners.
``repro.scenarios``
    Declarative scenario API: compose cohort/adversary/heterogeneity/chain
    axes into a ``ScenarioSpec``, run any registered workload by name
    (``paper/table1`` … ``cohort/50``), sweep grids with shared datasets.
``repro.metrics``
    Table/figure formatters reproducing the paper's reporting.
"""

__version__ = "1.0.0"
