"""Plain-text table rendering matching the paper's table layouts.

``format_table1`` reproduces Table I's structure (model x client x
aggregation-type rows, one column per round); ``format_combination_table``
reproduces Tables II-IV (model x combination rows).  Values print with four
decimals, as in the paper.
"""

from __future__ import annotations

from typing import Sequence

#: Display names of the two model families, as the paper's tables print them.
MODEL_LABELS = {"simple_nn": "Simple NN", "efficientnet_b0_sim": "Efficient-B0"}


def series_row(label: str, values: Sequence[float], precision: int = 4) -> list[str]:
    """One table row: label plus formatted per-round values."""
    return [label] + [f"{value:.{precision}f}" for value in values]


def render_table(title: str, header: list[str], rows: list[list[str]]) -> str:
    """Monospace-align a header and rows under a title."""
    widths = [len(cell) for cell in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = [title, fmt(header), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_table1(
    model_name: str,
    client_series: dict[str, dict[str, list[float]]],
    title: str = "Table I: Vanilla FL: Clients' test accuracy on two aggregation types",
) -> str:
    """Render a Table I block.

    ``client_series[client_id][aggregation_type]`` is the per-round
    accuracy list; aggregation types are "consider" and "not_consider".
    """
    rounds = 0
    for agg_map in client_series.values():
        for series in agg_map.values():
            rounds = max(rounds, len(series))
    header = ["Model", "Client", "Params"] + [str(r) for r in range(1, rounds + 1)]
    rows = []
    for client_id in sorted(client_series):
        for agg_type in ("consider", "not_consider"):
            if agg_type not in client_series[client_id]:
                continue
            label = "Consider" if agg_type == "consider" else "Not consider"
            values = client_series[client_id][agg_type]
            rows.append([model_name, client_id, label] + [f"{v:.4f}" for v in values])
    return render_table(title, header, rows)


def format_combination_table(
    model_name: str,
    peer_id: str,
    combination_series: dict[str, list[float]],
    title_prefix: str = "Blockchain-based FL: Test accuracy on different model combinations",
) -> str:
    """Render a Table II/III/IV block for one peer.

    Rows are ordered the way the paper orders them: the peer's solo model,
    pairs containing the peer, the remaining pair, then the full set.
    """
    def row_order(combo: str) -> tuple:
        members = combo.split(",")
        return (len(members), 0 if peer_id in members else 1, combo)

    rounds = max((len(series) for series in combination_series.values()), default=0)
    header = ["Model", "Params from"] + [str(r) for r in range(1, rounds + 1)]
    rows = []
    for combo in sorted(combination_series, key=row_order):
        rows.append([model_name, combo] + [f"{v:.4f}" for v in combination_series[combo]])
    title = f"{title_prefix} - Client {peer_id}"
    return render_table(title, header, rows)


def format_sweep_table(title: str, rows: Sequence[dict]) -> str:
    """Render sweep-driver rows (list of uniform dicts) as one table.

    Column order follows the first row's key order; floats print with four
    decimals, everything else via ``str``.
    """
    if not rows:
        return render_table(title, ["(empty sweep)"], [])
    header = list(rows[0])
    formatted = [
        [f"{row[key]:.4f}" if isinstance(row[key], float) else str(row[key]) for key in header]
        for row in rows
    ]
    return render_table(title, header, formatted)
