"""Timing summaries for the speed side of the trade-off."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class TimingSummary:
    """Five-number-ish summary of a duration sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p95: float
    maximum: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "median": self.median,
            "p95": self.p95,
            "max": self.maximum,
        }


def summarize_durations(durations: Sequence[float]) -> TimingSummary:
    """Summarize a sequence of durations (seconds)."""
    if not durations:
        return TimingSummary(0, float("nan"), float("nan"), float("nan"), float("nan"), float("nan"), float("nan"))
    array = np.asarray(durations, dtype=np.float64)
    return TimingSummary(
        count=len(array),
        mean=float(array.mean()),
        std=float(array.std()),
        minimum=float(array.min()),
        median=float(np.median(array)),
        p95=float(np.percentile(array, 95)),
        maximum=float(array.max()),
    )
