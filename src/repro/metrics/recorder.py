"""Generic round-metric recorder used by examples and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np


@dataclass
class RoundRecord:
    """One (round, entity) measurement row."""

    round_id: int
    entity: str
    metrics: dict[str, float] = field(default_factory=dict)
    tags: dict[str, Any] = field(default_factory=dict)


class RoundRecorder:
    """Accumulates round records and answers series/summary queries."""

    def __init__(self, name: str = "recorder") -> None:
        self.name = name
        self.records: list[RoundRecord] = []

    def record(self, round_id: int, entity: str, **metrics: float) -> RoundRecord:
        """Append one measurement row."""
        rec = RoundRecord(round_id=round_id, entity=entity, metrics=dict(metrics))
        self.records.append(rec)
        return rec

    def series(self, entity: str, metric: str) -> list[float]:
        """Metric values for one entity ordered by round."""
        rows = [r for r in self.records if r.entity == entity and metric in r.metrics]
        rows.sort(key=lambda r: r.round_id)
        return [r.metrics[metric] for r in rows]

    def entities(self) -> list[str]:
        """Distinct entities seen so far."""
        return sorted({r.entity for r in self.records})

    def rounds(self) -> list[int]:
        """Distinct round ids seen so far."""
        return sorted({r.round_id for r in self.records})

    def last(self, entity: str, metric: str) -> Optional[float]:
        """Most recent value of a metric for an entity."""
        series = self.series(entity, metric)
        return series[-1] if series else None

    def mean(self, entity: str, metric: str) -> Optional[float]:
        """Mean of a metric over rounds."""
        series = self.series(entity, metric)
        return float(np.mean(series)) if series else None

    def as_rows(self) -> list[dict]:
        """Flat dict rows (for CSV-ish dumping in benchmarks)."""
        return [
            {"round_id": r.round_id, "entity": r.entity, **r.metrics}
            for r in sorted(self.records, key=lambda r: (r.round_id, r.entity))
        ]
