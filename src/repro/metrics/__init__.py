"""Reporting: table formatters (Tables I-IV), figure series (Figs 3-4),
round recorders, and timing summaries."""

from repro.metrics.recorder import RoundRecorder, RoundRecord
from repro.metrics.tables import (
    format_table1,
    format_combination_table,
    render_table,
    series_row,
)
from repro.metrics.figures import FigureSeries, vanilla_figure_series, combination_figure_series, render_ascii_chart
from repro.metrics.timing import TimingSummary, summarize_durations

__all__ = [
    "RoundRecorder",
    "RoundRecord",
    "format_table1",
    "format_combination_table",
    "render_table",
    "series_row",
    "FigureSeries",
    "vanilla_figure_series",
    "combination_figure_series",
    "render_ascii_chart",
    "TimingSummary",
    "summarize_durations",
]
