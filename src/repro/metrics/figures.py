"""Figure-series extraction and terminal rendering for Figs 3 and 4.

A "figure" here is the underlying data series (what matplotlib would plot)
plus an ASCII sparkline renderer so benchmark output shows the curve shapes
directly in the terminal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class FigureSeries:
    """One plotted line: a label and per-round values."""

    label: str
    values: list[float] = field(default_factory=list)

    def final(self) -> float:
        """Last value (the usual summary statistic)."""
        return self.values[-1] if self.values else float("nan")


def vanilla_figure_series(
    client_series: dict[str, dict[str, list[float]]],
) -> dict[str, list[FigureSeries]]:
    """Figure 3 data: per client, the consider / not-consider curves."""
    figures: dict[str, list[FigureSeries]] = {}
    for client_id in sorted(client_series):
        figures[f"Client {client_id}"] = [
            FigureSeries(label=agg_type, values=list(series))
            for agg_type, series in sorted(client_series[client_id].items())
        ]
    return figures


def combination_figure_series(
    combination_series: dict[str, dict[str, list[float]]],
) -> dict[str, list[FigureSeries]]:
    """Figure 4 data: per peer, one curve per model combination."""
    figures: dict[str, list[FigureSeries]] = {}
    for peer_id in sorted(combination_series):
        figures[f"Client {peer_id}"] = [
            FigureSeries(label=combo, values=list(series))
            for combo, series in sorted(
                combination_series[peer_id].items(), key=lambda kv: (len(kv[0]), kv[0])
            )
        ]
    return figures


_BLOCKS = " .:-=+*#%@"


def render_ascii_chart(series_list: Sequence[FigureSeries], width: int = 40, title: str = "") -> str:
    """Render each series as a sparkline row scaled to the common range."""
    lines = [title] if title else []
    all_values = [v for s in series_list for v in s.values]
    if not all_values:
        return "\n".join(lines + ["(no data)"])
    lo, hi = min(all_values), max(all_values)
    span = (hi - lo) or 1.0
    label_width = max((len(s.label) for s in series_list), default=0)
    for s in series_list:
        cells = []
        for value in s.values[:width]:
            level = int((value - lo) / span * (len(_BLOCKS) - 1))
            cells.append(_BLOCKS[level])
        lines.append(
            f"{s.label.ljust(label_width)} |{''.join(cells)}| "
            f"{s.values[0]:.3f}->{s.final():.3f}"
        )
    lines.append(f"scale: {lo:.3f} (' ') .. {hi:.3f} ('@')")
    return "\n".join(lines)
