"""Proof-of-work consensus: hash puzzle, mining, difficulty retargeting.

The paper's private Ethereum runs PoW ("the computation cost from PoW
consensus cannot be avoided; however, Ethereum enables openness").  We model
the standard hash puzzle: a header is sealed when
``H(header_payload || nonce) < 2**256 / difficulty``.

Mining in the simulator is *instantaneous in wall-clock* but consumes
*simulated time* drawn from the exponential distribution that real PoW
follows (memoryless trials), so block intervals and leader election are
statistically faithful without burning CPU.  ``mine_header`` also supports a
bounded real nonce search for tests that validate the puzzle end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chain.block import BlockHeader
from repro.utils.hashing import sha256_bytes

_MAX_TARGET = 2**256


def pow_target(difficulty: int) -> int:
    """Numeric target: a sealed hash must be strictly below this."""
    if difficulty < 1:
        raise ValueError(f"difficulty must be >= 1, got {difficulty}")
    return _MAX_TARGET // difficulty


def _seal_value(header: BlockHeader, nonce: int) -> int:
    digest = sha256_bytes(header.sealing_payload() + int(nonce).to_bytes(8, "big"))
    return int.from_bytes(digest, "big")


def check_pow(header: BlockHeader) -> bool:
    """Verify the header's nonce satisfies its declared difficulty."""
    return _seal_value(header, header.nonce) < pow_target(header.difficulty)


def mine_header(header: BlockHeader, max_attempts: int = 1_000_000, start_nonce: int = 0) -> bool:
    """Search for a sealing nonce by brute force; mutates ``header.nonce``.

    Returns ``True`` on success.  Intended for low difficulties in tests and
    benchmarks; the network simulation uses :class:`ProofOfWork` instead.
    """
    target = pow_target(header.difficulty)
    for nonce in range(start_nonce, start_nonce + max_attempts):
        if _seal_value(header, nonce) < target:
            header.nonce = nonce
            return True
    return False


@dataclass
class RetargetRule:
    """Ethereum-flavoured difficulty adjustment.

    If the parent interval was below ``target_interval``, difficulty rises by
    ``1/adjustment_quotient`` of itself; if above, it falls, bounded below by
    ``min_difficulty``.
    """

    target_interval: float = 13.0
    adjustment_quotient: int = 16
    min_difficulty: int = 1

    def next_difficulty(self, parent_difficulty: int, parent_interval: float) -> int:
        """Difficulty for a child given the parent's difficulty and interval."""
        step = max(parent_difficulty // self.adjustment_quotient, 1)
        if parent_interval < self.target_interval:
            adjusted = parent_difficulty + step
        elif parent_interval > self.target_interval:
            adjusted = parent_difficulty - step
        else:
            adjusted = parent_difficulty
        return max(adjusted, self.min_difficulty)


class ProofOfWork:
    """Statistical PoW used by the network simulation.

    Each miner has a hashrate (hashes per simulated second).  The time to
    find a block at difficulty ``d`` is exponential with mean
    ``d / hashrate`` in expectation (success probability per hash is
    ``1/d``).  ``sample_mining_time`` draws that time; the event engine
    schedules block discovery accordingly, which makes leader election
    proportional to hashrate — exactly the property the paper's three equal
    VMs rely on for fairness.
    """

    def __init__(self, rng: np.random.Generator, retarget: RetargetRule | None = None) -> None:
        self.rng = rng
        self.retarget = retarget if retarget is not None else RetargetRule()

    def expected_time(self, difficulty: int, hashrate: float) -> float:
        """Mean simulated seconds to seal at ``difficulty`` with ``hashrate``."""
        if hashrate <= 0:
            raise ValueError("hashrate must be positive")
        return difficulty / hashrate

    def sample_mining_time(self, difficulty: int, hashrate: float) -> float:
        """Draw one exponential mining duration."""
        return float(self.rng.exponential(self.expected_time(difficulty, hashrate)))

    def sample_nonce(self) -> int:
        """Draw a pseudo-nonce recorded in simulated-sealed headers."""
        return int(self.rng.integers(0, 2**63))

    def next_difficulty(self, parent_difficulty: int, parent_interval: float) -> int:
        """Delegate to the retarget rule."""
        return self.retarget.next_difficulty(parent_difficulty, parent_interval)
