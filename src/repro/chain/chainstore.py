"""Block tree with total-difficulty fork choice.

Stores every valid block (including uncles/side branches), tracks cumulative
difficulty per tip, and answers "what is the canonical head?" — heaviest
chain wins, ties broken by earlier arrival (first-seen rule, as in Geth).
Reorg detection reports the common ancestor plus the blocks rolled back and
applied, so the node can rebuild its executed state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.chain.block import Block, GENESIS_PARENT
from repro.errors import InvalidBlockError, UnknownBlockError


@dataclass
class ReorgInfo:
    """Result of a head switch."""

    old_head: str
    new_head: str
    common_ancestor: str
    rolled_back: list[str]   # block hashes leaving the canonical chain, tip first
    applied: list[str]       # block hashes joining the canonical chain, ancestor-side first

    @property
    def depth(self) -> int:
        """How many canonical blocks were undone."""
        return len(self.rolled_back)


class ChainStore:
    """Append-only block DAG plus canonical-head bookkeeping."""

    def __init__(self, genesis: Block) -> None:
        if genesis.header.parent_hash != GENESIS_PARENT or genesis.number != 0:
            raise InvalidBlockError("genesis must have number 0 and null parent")
        self._blocks: dict[str, Block] = {genesis.block_hash: genesis}
        self._total_difficulty: dict[str, int] = {genesis.block_hash: genesis.header.difficulty}
        self._arrival: dict[str, int] = {genesis.block_hash: 0}
        self._arrival_counter = 0
        # height -> canonical block hash, maintained on every head switch,
        # so height lookups (and the node's log range queries) are O(1).
        self._canonical_by_number: dict[int, str] = {0: genesis.block_hash}
        self.genesis_hash = genesis.block_hash
        self.head_hash = genesis.block_hash

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __contains__(self, block_hash: str) -> bool:
        return block_hash in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, block_hash: str) -> Block:
        """Fetch a block or raise :class:`UnknownBlockError`."""
        try:
            return self._blocks[block_hash]
        except KeyError:
            raise UnknownBlockError(block_hash) from None

    @property
    def head(self) -> Block:
        """Current canonical head block."""
        return self._blocks[self.head_hash]

    @property
    def height(self) -> int:
        """Height of the canonical head."""
        return self.head.number

    def total_difficulty(self, block_hash: str) -> int:
        """Cumulative difficulty from genesis to ``block_hash``."""
        try:
            return self._total_difficulty[block_hash]
        except KeyError:
            raise UnknownBlockError(block_hash) from None

    def canonical_chain(self) -> list[Block]:
        """Genesis-to-head block list."""
        chain: list[Block] = []
        cursor: Optional[str] = self.head_hash
        while cursor is not None:
            block = self._blocks[cursor]
            chain.append(block)
            cursor = None if block.number == 0 else block.header.parent_hash
        chain.reverse()
        return chain

    def block_at_height(self, number: int) -> Optional[Block]:
        """Canonical block at ``number`` (None if above the head); O(1)."""
        if number < 0 or number > self.height:
            return None
        block_hash = self._canonical_by_number.get(number)
        if block_hash is not None:
            return self._blocks[block_hash]
        # Defensive fallback: walk down from the head.
        cursor = self.head
        while cursor.number > number:
            cursor = self._blocks[cursor.header.parent_hash]
        return cursor

    def is_canonical(self, block_hash: str) -> bool:
        """True iff the block lies on the canonical chain."""
        block = self.get(block_hash)
        at_height = self.block_at_height(block.number)
        return at_height is not None and at_height.block_hash == block_hash

    # ------------------------------------------------------------------
    # Insertion and fork choice
    # ------------------------------------------------------------------

    def add(self, block: Block) -> Optional[ReorgInfo]:
        """Insert a block whose parent is known.

        Returns a :class:`ReorgInfo` when the canonical head changed (even
        for the trivial extend-head case, where ``rolled_back`` is empty),
        or ``None`` when the block landed on a losing side branch.
        """
        block_hash = block.block_hash
        if block_hash in self._blocks:
            return None
        parent_hash = block.header.parent_hash
        if parent_hash not in self._blocks:
            raise UnknownBlockError(f"parent {parent_hash} of block {block_hash}")
        parent = self._blocks[parent_hash]
        if block.number != parent.number + 1:
            raise InvalidBlockError(
                f"block number {block.number} != parent number {parent.number} + 1"
            )
        self._blocks[block_hash] = block
        self._arrival_counter += 1
        self._arrival[block_hash] = self._arrival_counter
        self._total_difficulty[block_hash] = (
            self._total_difficulty[parent_hash] + block.header.difficulty
        )

        # First-seen tie-break: strictly greater total difficulty wins.
        if self._total_difficulty[block_hash] > self._total_difficulty[self.head_hash]:
            return self._switch_head(block_hash)
        return None

    def _switch_head(self, new_head: str) -> ReorgInfo:
        old_head = self.head_hash
        ancestor = self._common_ancestor(old_head, new_head)
        rolled_back = self._path_down(old_head, ancestor)
        applied = list(reversed(self._path_down(new_head, ancestor)))
        for block_hash in rolled_back:
            self._canonical_by_number.pop(self._blocks[block_hash].number, None)
        for block_hash in applied:
            self._canonical_by_number[self._blocks[block_hash].number] = block_hash
        self.head_hash = new_head
        return ReorgInfo(
            old_head=old_head,
            new_head=new_head,
            common_ancestor=ancestor,
            rolled_back=rolled_back,
            applied=applied,
        )

    def revert_head(self, reorg: ReorgInfo) -> None:
        """Undo a head switch whose blocks failed post-fork-choice checks.

        The node calls this when an ``applied`` block's state root does not
        match execution: the blocks stay in the store (they are valid as
        data), but the canonical head and height index return to the old
        branch.  A later, heavier descendant re-enters fork choice and gets
        re-checked then.
        """
        for block_hash in reorg.applied:
            self._canonical_by_number.pop(self._blocks[block_hash].number, None)
        for block_hash in reorg.rolled_back:
            self._canonical_by_number[self._blocks[block_hash].number] = block_hash
        self.head_hash = reorg.old_head

    def _path_down(self, tip: str, ancestor: str) -> list[str]:
        """Hashes from ``tip`` down to (excluding) ``ancestor``."""
        path = []
        cursor = tip
        while cursor != ancestor:
            path.append(cursor)
            cursor = self._blocks[cursor].header.parent_hash
        return path

    def _common_ancestor(self, a: str, b: str) -> str:
        block_a, block_b = self._blocks[a], self._blocks[b]
        while block_a.number > block_b.number:
            block_a = self._blocks[block_a.header.parent_hash]
        while block_b.number > block_a.number:
            block_b = self._blocks[block_b.header.parent_hash]
        while block_a.block_hash != block_b.block_hash:
            block_a = self._blocks[block_a.header.parent_hash]
            block_b = self._blocks[block_b.header.parent_hash]
        return block_a.block_hash
