"""Block tree with total-difficulty fork choice.

Stores every valid block (including uncles/side branches), tracks cumulative
difficulty per tip, and answers "what is the canonical head?" — heaviest
chain wins, ties broken by earlier arrival (first-seen rule, as in Geth).
Reorg detection reports the common ancestor plus the blocks rolled back and
applied, so the node can rebuild its executed state.

The store can optionally *spill*: given a :class:`~repro.chain.scale.ColdStore`
and a hot window, the node demotes old canonical blocks out of the hot map
into the cold store, keeping the resident set O(hot window) instead of
O(chain length).  Spilling is transparent to readers — ``get``,
``block_at_height``, ``canonical_chain``, and ``__contains__`` read through
to cold storage — while fork choice and height bookkeeping run entirely on
two per-hash scalar indices (``number`` and ``parent hash``), so reorgs and
pruning never decode a cold block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.chain.block import Block, GENESIS_PARENT
from repro.errors import InvalidBlockError, UnknownBlockError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scale -> errors only)
    from repro.chain.scale import ColdStore


@dataclass
class ReorgInfo:
    """Result of a head switch."""

    old_head: str
    new_head: str
    common_ancestor: str
    rolled_back: list[str]   # block hashes leaving the canonical chain, tip first
    applied: list[str]       # block hashes joining the canonical chain, ancestor-side first

    @property
    def depth(self) -> int:
        """How many canonical blocks were undone."""
        return len(self.rolled_back)


class ChainStore:
    """Append-only block DAG plus canonical-head bookkeeping."""

    def __init__(
        self,
        genesis: Block,
        cold: Optional["ColdStore"] = None,
        hot_window: Optional[int] = None,
    ) -> None:
        if genesis.header.parent_hash != GENESIS_PARENT or genesis.number != 0:
            raise InvalidBlockError("genesis must have number 0 and null parent")
        if hot_window is not None and hot_window < 1:
            raise ValueError("hot_window must be >= 1")
        genesis_hash = genesis.block_hash
        self._blocks: dict[str, Block] = {genesis_hash: genesis}
        self._total_difficulty: dict[str, int] = {genesis_hash: genesis.header.difficulty}
        self._arrival: dict[str, int] = {genesis_hash: 0}
        self._arrival_counter = 0
        # height -> canonical block hash, maintained on every head switch,
        # so height lookups (and the node's log range queries) are O(1).
        self._canonical_by_number: dict[int, str] = {0: genesis_hash}
        # Per-hash scalar indices covering hot AND spilled blocks: fork
        # choice, reorg paths, and pruning walk these, never block bodies.
        self._numbers: dict[str, int] = {genesis_hash: 0}
        self._parents: dict[str, str] = {genesis_hash: GENESIS_PARENT}
        self._spilled: set[str] = set()
        self.cold = cold
        self.hot_window = hot_window
        self.genesis_hash = genesis_hash
        self.head_hash = genesis_hash

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __contains__(self, block_hash: str) -> bool:
        return block_hash in self._numbers

    def __len__(self) -> int:
        return len(self._numbers)

    def hot_count(self) -> int:
        """Blocks currently resident in the hot map."""
        return len(self._blocks)

    def spilled_count(self) -> int:
        """Blocks demoted to cold storage."""
        return len(self._spilled)

    def get(self, block_hash: str) -> Block:
        """Fetch a block (reviving it from cold storage if spilled) or
        raise :class:`UnknownBlockError`."""
        block = self._blocks.get(block_hash)
        if block is not None:
            return block
        if block_hash in self._spilled:
            return Block.from_dict(self.cold.get(block_hash))
        raise UnknownBlockError(block_hash)

    def number_of(self, block_hash: str) -> int:
        """Height of a block, hot or spilled, without decoding it."""
        try:
            return self._numbers[block_hash]
        except KeyError:
            raise UnknownBlockError(block_hash) from None

    def parent_of(self, block_hash: str) -> str:
        """Parent hash of a block, hot or spilled, without decoding it."""
        try:
            return self._parents[block_hash]
        except KeyError:
            raise UnknownBlockError(block_hash) from None

    def canonical_hash(self, number: int) -> Optional[str]:
        """Canonical block hash at ``number`` (None outside the chain)."""
        return self._canonical_by_number.get(number)

    @property
    def head(self) -> Block:
        """Current canonical head block (never spilled)."""
        return self._blocks[self.head_hash]

    @property
    def height(self) -> int:
        """Height of the canonical head."""
        return self.head.number

    def total_difficulty(self, block_hash: str) -> int:
        """Cumulative difficulty from genesis to ``block_hash``."""
        try:
            return self._total_difficulty[block_hash]
        except KeyError:
            raise UnknownBlockError(block_hash) from None

    def canonical_chain(self) -> list[Block]:
        """Genesis-to-head block list (revives spilled blocks in passing,
        through the cold store's bounded decode cache)."""
        chain: list[Block] = []
        cursor: Optional[str] = self.head_hash
        while cursor is not None:
            block = self.get(cursor)
            chain.append(block)
            cursor = None if block.number == 0 else block.header.parent_hash
        chain.reverse()
        return chain

    def block_at_height(self, number: int) -> Optional[Block]:
        """Canonical block at ``number`` (None if above the head); O(1)."""
        if number < 0 or number > self.height:
            return None
        block_hash = self._canonical_by_number.get(number)
        if block_hash is not None:
            return self.get(block_hash)
        # Defensive fallback: walk down from the head on the scalar index.
        cursor = self.head_hash
        while self._numbers[cursor] > number:
            cursor = self._parents[cursor]
        return self.get(cursor)

    def is_canonical(self, block_hash: str) -> bool:
        """True iff the block lies on the canonical chain."""
        number = self.number_of(block_hash)
        return self._canonical_by_number.get(number) == block_hash

    # ------------------------------------------------------------------
    # Insertion and fork choice
    # ------------------------------------------------------------------

    def add(self, block: Block) -> Optional[ReorgInfo]:
        """Insert a block whose parent is known.

        Returns a :class:`ReorgInfo` when the canonical head changed (even
        for the trivial extend-head case, where ``rolled_back`` is empty),
        or ``None`` when the block landed on a losing side branch.
        """
        block_hash = block.block_hash
        if block_hash in self._numbers:
            return None
        parent_hash = block.header.parent_hash
        if parent_hash not in self._numbers:
            raise UnknownBlockError(f"parent {parent_hash} of block {block_hash}")
        parent_number = self._numbers[parent_hash]
        if block.number != parent_number + 1:
            raise InvalidBlockError(
                f"block number {block.number} != parent number {parent_number} + 1"
            )
        self._blocks[block_hash] = block
        self._numbers[block_hash] = block.number
        self._parents[block_hash] = parent_hash
        self._arrival_counter += 1
        self._arrival[block_hash] = self._arrival_counter
        self._total_difficulty[block_hash] = (
            self._total_difficulty[parent_hash] + block.header.difficulty
        )

        # First-seen tie-break: strictly greater total difficulty wins.
        if self._total_difficulty[block_hash] > self._total_difficulty[self.head_hash]:
            return self._switch_head(block_hash)
        return None

    def demote(self, block_hash: str) -> bool:
        """Move one block from the hot map into the cold store.

        Only non-head blocks can be demoted; the scalar indices keep
        answering number/parent/fork-choice queries, and :meth:`get`
        revives the body on demand.  Returns ``True`` if the block was
        resident and is now cold.
        """
        if self.cold is None:
            raise ValueError("demote() requires a cold store")
        if block_hash == self.head_hash:
            raise ValueError("cannot demote the canonical head")
        block = self._blocks.get(block_hash)
        if block is None:
            return False
        self.cold.put(block_hash, block.to_dict())
        del self._blocks[block_hash]
        self._spilled.add(block_hash)
        return True

    def _switch_head(self, new_head: str) -> ReorgInfo:
        old_head = self.head_hash
        ancestor = self._common_ancestor(old_head, new_head)
        rolled_back = self._path_down(old_head, ancestor)
        applied = list(reversed(self._path_down(new_head, ancestor)))
        for block_hash in rolled_back:
            self._canonical_by_number.pop(self._numbers[block_hash], None)
        for block_hash in applied:
            self._canonical_by_number[self._numbers[block_hash]] = block_hash
        self.head_hash = new_head
        return ReorgInfo(
            old_head=old_head,
            new_head=new_head,
            common_ancestor=ancestor,
            rolled_back=rolled_back,
            applied=applied,
        )

    def revert_head(self, reorg: ReorgInfo) -> None:
        """Undo a head switch whose blocks failed post-fork-choice checks.

        The node calls this when an ``applied`` block's state root does not
        match execution: the blocks stay in the store (they are valid as
        data), but the canonical head and height index return to the old
        branch.  A later, heavier descendant re-enters fork choice and gets
        re-checked then.
        """
        for block_hash in reorg.applied:
            self._canonical_by_number.pop(self._numbers[block_hash], None)
        for block_hash in reorg.rolled_back:
            self._canonical_by_number[self._numbers[block_hash]] = block_hash
        self.head_hash = reorg.old_head

    def _path_down(self, tip: str, ancestor: str) -> list[str]:
        """Hashes from ``tip`` down to (excluding) ``ancestor``."""
        path = []
        cursor = tip
        while cursor != ancestor:
            path.append(cursor)
            cursor = self._parents[cursor]
        return path

    def _common_ancestor(self, a: str, b: str) -> str:
        while self._numbers[a] > self._numbers[b]:
            a = self._parents[a]
        while self._numbers[b] > self._numbers[a]:
            b = self._parents[b]
        while a != b:
            a = self._parents[a]
            b = self._parents[b]
        return a
