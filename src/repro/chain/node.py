"""A full blockchain node: validate, execute, mine, and serve reads.

Equivalent of one Geth process in the paper's deployment.  Each node keeps:

* a :class:`ChainStore` of all known blocks,
* the executed :class:`WorldState` at the canonical head (plus per-block
  journal marks so reorgs roll back in O(touched entries), Geth-journal
  style, instead of restoring deep snapshots),
* a :class:`Mempool`, and
* the shared :class:`ContractRuntime` class registry.

Transaction execution follows Ethereum's recipe: charge intrinsic gas,
buy gas up front, run the transfer/deployment/call, refund unused gas, pay
the miner fee.  Failed executions (revert / out-of-gas) still consume gas
and bump the nonce but roll back their state effects — via a journal
checkpoint, so the rollback cost is proportional to what the transaction
touched.  Block candidates execute on a copy-on-write overlay of the head
state, and state roots are incremental (only accounts a block touched are
re-hashed when its root is computed or verified).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.chain.block import Block, BlockHeader, make_genesis
from repro.chain.chainstore import ChainStore, ReorgInfo
from repro.chain.crypto import Address, KeyPair
from repro.chain.gas import GasMeter, GasSchedule, DEFAULT_SCHEDULE, UNBOUNDED_BLOCK_GAS, intrinsic_gas
from repro.chain.mempool import Mempool
from repro.chain.pow import RetargetRule, check_pow
from repro.chain.runtime import ContractRuntime
from repro.chain.scale import (
    ColdStore,
    ExecutionStats,
    SnapshotError,
    encode_snapshot,
    execute_block_transactions,
    install_snapshot,
    snapshot_key,
)
from repro.chain.state import WorldState
from repro.chain.transaction import Receipt, Transaction
from repro.errors import (
    ChainError,
    ContractRevertError,
    InsufficientFundsError,
    InvalidBlockError,
    InvalidTransactionError,
    MempoolError,
    NonceError,
    OutOfGasError,
)
from repro.utils.serialization import SerializationError

#: Valid values for :attr:`NodeConfig.execution`.
EXECUTION_MODES = ("serial", "parallel")


@dataclass
class NodeConfig:
    """Node parameters.

    ``verify_pow`` distinguishes the two sealing modes: real nonce search
    (tests, small difficulty) versus statistically simulated sealing driven
    by the network simulator (``verify_pow=False``).

    ``keep_state_snapshots`` keeps per-block journal marks so reorgs roll
    back cheaply; ``state_history`` bounds how many blocks of undo history
    the journal retains (deeper reorgs fall back to replay — from the
    nearest cold snapshot when one exists, else from genesis, like a Geth
    node asked to reorg past its snapshot window).

    The scale-out knobs (all off by default, byte-neutral when on):

    ``execution``
        ``"serial"`` runs block transactions in order; ``"parallel"``
        routes blocks with at least ``parallel_min_txs`` transactions
        through the speculate/merge scheduler
        (:mod:`repro.chain.scale.executor`) with ``execution_workers``
        processes (``0`` = speculate inline, same byte path).
    ``cold_store`` / ``hot_window``
        A shared :class:`~repro.chain.scale.ColdStore` plus a bound on
        resident canonical blocks: older blocks and their receipts spill
        to the segment file and are revived on demand.
    ``snapshot_interval``
        Every N canonical blocks, persist a root-verified world-state
        checkpoint to the cold store (requires ``cold_store``); deep
        reorgs and rejoining peers replay from a checkpoint instead of
        genesis.
    """

    block_gas_limit: int = UNBOUNDED_BLOCK_GAS
    verify_pow: bool = False
    block_reward: int = 2_000_000_000
    max_txs_per_block: Optional[int] = None
    retarget: RetargetRule = field(default_factory=RetargetRule)
    keep_state_snapshots: bool = True
    state_history: int = 128
    schedule: GasSchedule = DEFAULT_SCHEDULE
    execution: str = "serial"
    execution_workers: int = 0
    parallel_min_txs: int = 64
    cold_store: Optional[ColdStore] = None
    hot_window: Optional[int] = None
    snapshot_interval: int = 0


@dataclass
class GenesisSpec:
    """Initial allocation shared by every node of a network."""

    allocations: dict[Address, int] = field(default_factory=dict)
    timestamp: float = 0.0
    difficulty: int = 1

    def build_state(self) -> WorldState:
        """World state implied by the allocation."""
        state = WorldState()
        for address, balance in sorted(self.allocations.items()):
            state.credit(address, balance)
        return state

    def build_genesis(self) -> Block:
        """Genesis block committing to the allocation state."""
        return make_genesis(
            self.build_state().state_root(),
            timestamp=self.timestamp,
            difficulty=self.difficulty,
        )


class Node:
    """One blockchain participant (validator + miner + RPC surface)."""

    def __init__(
        self,
        keypair: KeyPair,
        genesis_spec: GenesisSpec,
        runtime: ContractRuntime,
        config: Optional[NodeConfig] = None,
    ) -> None:
        self.keypair = keypair
        self.address: Address = keypair.address
        self.config = config if config is not None else NodeConfig()
        self.runtime = runtime
        self.genesis_spec = genesis_spec
        if self.config.execution not in EXECUTION_MODES:
            raise ValueError(f"execution must be one of {EXECUTION_MODES}")
        if self.config.execution_workers < 0:
            raise ValueError("execution_workers must be >= 0")
        if self.config.parallel_min_txs < 1:
            raise ValueError("parallel_min_txs must be >= 1")
        if self.config.snapshot_interval < 0:
            raise ValueError("snapshot_interval must be >= 0")
        if self.config.hot_window is not None and self.config.cold_store is None:
            raise ValueError("hot_window requires a cold_store")
        if self.config.snapshot_interval > 0 and self.config.cold_store is None:
            raise ValueError("snapshot_interval requires a cold_store")

        genesis = genesis_spec.build_genesis()
        self.store = ChainStore(
            genesis,
            cold=self.config.cold_store,
            hot_window=self.config.hot_window,
        )
        self.state = genesis_spec.build_state()
        self.state.flatten_journal()  # allocation credits never roll back
        self.mempool = Mempool()
        self.receipts: dict[str, Receipt] = {}
        # block hash -> journal mark of self.state right after that block
        # executed; reorgs roll the journal back to the common ancestor's
        # mark instead of restoring a deep snapshot.
        self._state_marks: dict[str, int] = {}
        if self.config.keep_state_snapshots:
            self._state_marks[genesis.block_hash] = self.state.checkpoint()
        # block hash -> receipts in transaction order, for executed
        # canonical blocks (the eth_getLogs range index).
        self._receipts_by_block: dict[str, list[Receipt]] = {}
        self._orphans: dict[str, list[Block]] = {}
        # tx hash -> block hash, for receipts spilled to cold storage.
        self._receipt_location: dict[str, str] = {}
        # Next canonical height _spill_cold() will consider demoting.
        self._spill_floor = 1
        self.execution_stats = ExecutionStats()
        self.snapshots_taken = 0
        self.snapshots_skipped = 0
        self.snapshot_replays = 0
        self.last_replay_blocks = 0
        self.snap_syncs = 0
        self.snap_skipped_blocks = 0
        self.blocks_mined = 0
        self.reorgs_seen = 0

    # ------------------------------------------------------------------
    # RPC-style reads
    # ------------------------------------------------------------------

    @property
    def head(self) -> Block:
        """Canonical head block."""
        return self.store.head

    @property
    def height(self) -> int:
        """Canonical chain height."""
        return self.store.height

    def balance_of(self, address: Address) -> int:
        """Balance at the canonical head."""
        return self.state.balance_of(address)

    def nonce_of(self, address: Address) -> int:
        """Account nonce at the canonical head."""
        return self.state.nonce_of(address)

    def receipt_of(self, tx_hash: str) -> Optional[Receipt]:
        """Receipt for a mined transaction, if this node executed it.

        Reads through to cold storage for receipts whose block has been
        spilled out of the hot window.
        """
        receipt = self.receipts.get(tx_hash)
        if receipt is not None:
            return receipt
        block_hash = self._receipt_location.get(tx_hash)
        if block_hash is None:
            return None
        for payload in self.config.cold_store.get(f"receipts:{block_hash}"):
            if payload["tx_hash"] == tx_hash:
                return Receipt.from_dict(payload)
        return None

    def has_contract(self, address: Address) -> bool:
        """True iff a contract is deployed at ``address`` in head state."""
        return self.state.is_contract(address)

    def get_logs(
        self,
        address: Optional[Address] = None,
        topic: Optional[str] = None,
        from_block: int = 0,
        to_block: Optional[int] = None,
    ) -> list:
        """Query contract events from canonical receipts (``eth_getLogs``).

        Filters by emitting contract ``address`` and/or event ``topic`` over
        the canonical block range.  The walk covers only the requested
        range: canonical blocks resolve by height in O(1) and each block's
        receipts come from the per-block execution index, so a narrow query
        near the tip of a long chain no longer scans the whole chain.  Only
        transactions this node executed (i.e. whose blocks it imported) are
        visible — the same property a real node has.
        """
        upper = self.height if to_block is None else min(to_block, self.height)
        matches = []
        for number in range(max(from_block, 0), upper + 1):
            block_hash = self.store.canonical_hash(number)
            if block_hash is None:
                continue
            for receipt in self._block_receipts(block_hash):
                if not receipt.success:
                    continue
                for entry in receipt.logs:
                    if address is not None and entry.address != address:
                        continue
                    if topic is not None and entry.topic != topic:
                        continue
                    matches.append(entry)
        return matches

    def _block_receipts(self, block_hash: str) -> list[Receipt]:
        """Execution receipts of a canonical block, hot or spilled."""
        receipts = self._receipts_by_block.get(block_hash)
        if receipts is not None:
            return receipts
        cold = self.config.cold_store
        if cold is not None and f"receipts:{block_hash}" in cold:
            return [Receipt.from_dict(payload) for payload in cold.get(f"receipts:{block_hash}")]
        return []

    def call_contract(self, contract_address: Address, method: str, **args: Any) -> Any:
        """Read-only contract call against head state (``eth_call``)."""
        return self.runtime.read_only_call(
            self.state,
            contract_address,
            method,
            caller=self.address,
            block_number=self.height,
            timestamp=self.head.header.timestamp,
            **args,
        )

    # ------------------------------------------------------------------
    # Transaction intake
    # ------------------------------------------------------------------

    def submit_transaction(self, tx: Transaction) -> bool:
        """Admit a signed transaction into the mempool."""
        return self.mempool.add(tx, state=self.state)

    def next_nonce_for(self, sender: Address) -> int:
        """Nonce a wallet should use next: head nonce plus pending count."""
        return self.state.nonce_of(sender) + self.mempool.pending_count(sender)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute_transaction(
        self,
        state: WorldState,
        tx: Transaction,
        block_number: int,
        timestamp: float,
        miner: Address,
        credit_miner: bool = True,
    ) -> Receipt:
        """Execute one transaction against ``state`` (mutates it).

        ``credit_miner=False`` suppresses the miner fee credit: the
        parallel scheduler speculates with it off (fee credits do not
        commute with balance reads) and pays the exact fee at merge time.
        """
        if not tx.verify_signature():
            raise InvalidTransactionError(f"bad signature on {tx.tx_hash[:10]}")
        if state.nonce_of(tx.sender) != tx.nonce:
            raise NonceError(
                f"tx nonce {tx.nonce} != account nonce {state.nonce_of(tx.sender)}"
            )
        base_cost = intrinsic_gas(tx.data, is_create=tx.is_create, schedule=self.config.schedule)
        if base_cost > tx.gas_limit:
            raise InvalidTransactionError(
                f"gas limit {tx.gas_limit} below intrinsic gas {base_cost}"
            )
        if state.balance_of(tx.sender) < tx.max_cost():
            raise InsufficientFundsError(
                f"{tx.sender} cannot cover {tx.max_cost()}"
            )

        # Buy gas up front, as Ethereum does.
        state.debit(tx.sender, tx.gas_limit * tx.gas_price)
        state.bump_nonce(tx.sender)

        meter = GasMeter(tx.gas_limit, self.config.schedule)
        meter.charge(base_cost, "intrinsic")
        mark = state.checkpoint()
        receipt = Receipt(tx_hash=tx.tx_hash, success=True, gas_used=0, block_number=block_number)
        try:
            if tx.value:
                state.transfer(tx.sender, tx.to if tx.to else tx.sender, tx.value)
            if tx.is_create:
                address, logs = self.runtime.deploy(state, meter, tx, block_number, timestamp)
                receipt.contract_address = address
                receipt.logs = logs
            elif tx.is_call:
                result, logs = self.runtime.execute_call(state, meter, tx, block_number, timestamp)
                receipt.return_value = result
                receipt.logs = logs
        except (ContractRevertError, OutOfGasError, InsufficientFundsError, ChainError) as exc:
            state.rollback(mark)
            receipt.success = False
            receipt.revert_reason = str(exc)
            if isinstance(exc, OutOfGasError):
                meter.used = meter.limit
        else:
            state.commit(mark)

        receipt.gas_used = meter.used
        # Refund unused gas; fee goes to the miner.
        state.credit(tx.sender, (tx.gas_limit - meter.used) * tx.gas_price)
        if credit_miner:
            state.credit(miner, meter.used * tx.gas_price)
        return receipt

    def _execute_block(self, state: WorldState, block: Block) -> list[Receipt]:
        """Execute every transaction of ``block`` plus the coinbase reward.

        In ``execution="parallel"`` mode, blocks with at least
        ``parallel_min_txs`` transactions run through the speculate/merge
        scheduler — byte-identical to the serial order at any worker
        count (the import-time state-root check independently enforces
        this); smaller blocks stay on the serial path.
        """
        if (
            self.config.execution == "parallel"
            and len(block.transactions) >= self.config.parallel_min_txs
        ):
            def execute(st: WorldState, tx: Transaction, credit_miner: bool) -> Receipt:
                return self._execute_transaction(
                    st,
                    tx,
                    block_number=block.number,
                    timestamp=block.header.timestamp,
                    miner=block.header.miner,
                    credit_miner=credit_miner,
                )

            receipts = execute_block_transactions(
                execute,
                state,
                block.transactions,
                block.header.miner,
                workers=self.config.execution_workers,
                stats=self.execution_stats,
            )
            self.execution_stats.parallel_blocks += 1
            for receipt in receipts:
                receipt.block_hash = block.block_hash
        else:
            if self.config.execution == "parallel":
                self.execution_stats.serial_blocks += 1
            receipts = []
            for tx in block.transactions:
                receipt = self._execute_transaction(
                    state,
                    tx,
                    block_number=block.number,
                    timestamp=block.header.timestamp,
                    miner=block.header.miner,
                )
                receipt.block_hash = block.block_hash
                receipts.append(receipt)
        state.credit(block.header.miner, self.config.block_reward)
        return receipts

    # ------------------------------------------------------------------
    # Block building (mining)
    # ------------------------------------------------------------------

    def build_block_candidate(self, timestamp: float, difficulty: Optional[int] = None) -> Block:
        """Assemble and execute a block candidate on top of the head.

        The candidate's header commits to the post-execution state root; the
        caller (test or network simulator) seals it with a nonce.  Execution
        runs on a copy-on-write overlay of the head state — only accounts
        the candidate touches are cloned, and its state root re-hashes only
        those accounts (untouched ones reuse the head's cached hashes).
        """
        parent = self.head
        if difficulty is None:
            parent_interval = max(timestamp - parent.header.timestamp, 0.0)
            difficulty = self.config.retarget.next_difficulty(
                parent.header.difficulty, parent_interval
            )
        txs = self.mempool.select(
            self.state,
            max_count=self.config.max_txs_per_block,
            max_gas=self.config.block_gas_limit,
        )
        scratch = self.state.overlay()
        header = BlockHeader(
            parent_hash=parent.block_hash,
            number=parent.number + 1,
            timestamp=max(timestamp, parent.header.timestamp + 1e-9),
            miner=self.address,
            difficulty=difficulty,
            tx_root="",
            state_root="",
            gas_limit=self.config.block_gas_limit,
        )
        block = Block(header=header, transactions=txs)
        receipts = self._execute_block(scratch, block)
        header.gas_used = sum(receipt.gas_used for receipt in receipts)
        header.tx_root = block.compute_tx_root()
        header.state_root = scratch.state_root()
        return block

    # ------------------------------------------------------------------
    # Block import
    # ------------------------------------------------------------------

    def validate_block(self, block: Block) -> None:
        """Stateless checks + PoW check (if enabled); raises on failure."""
        if not block.body_matches_header():
            raise InvalidBlockError("tx root mismatch")
        if block.header.parent_hash not in self.store:
            raise InvalidBlockError(f"unknown parent {block.header.parent_hash}")
        parent = self.store.get(block.header.parent_hash)
        if block.header.timestamp <= parent.header.timestamp:
            raise InvalidBlockError("timestamp not after parent")
        if self.config.verify_pow and not check_pow(block.header):
            raise InvalidBlockError("PoW seal invalid")
        for tx in block.transactions:
            if not tx.verify_signature():
                raise InvalidBlockError(f"block contains forged tx {tx.tx_hash[:10]}")

    def import_block(self, block: Block) -> Optional[ReorgInfo]:
        """Validate, store, and (if canonical) execute ``block``.

        Returns the reorg info when the head moved.  Unknown-parent blocks
        are parked as orphans and retried when the parent arrives.
        """
        if block.block_hash in self.store:
            return None
        if block.header.parent_hash not in self.store:
            self._orphans.setdefault(block.header.parent_hash, []).append(block)
            return None
        self.validate_block(block)
        reorg = self.store.add(block)
        if reorg is not None:
            self._apply_head_change(reorg)
            if reorg.rolled_back:
                self.reorgs_seen += 1
        self._adopt_orphans(block.block_hash)
        return reorg

    def _adopt_orphans(self, parent_hash: str) -> None:
        for orphan in self._orphans.pop(parent_hash, []):
            try:
                self.import_block(orphan)
            except InvalidBlockError:
                continue

    def _apply_head_change(self, reorg: ReorgInfo) -> None:
        """Re-execute state along the new canonical branch.

        The head state rolls back to the common ancestor's journal mark in
        O(entries the rolled-back blocks touched); only when the mark has
        been pruned (reorg deeper than ``state_history``) does the node
        fall back to a replay from genesis.  Transactions from rolled-back
        blocks are re-injected into the mempool (as Geth does) so work
        mined on a losing branch is not silently dropped; stale ones are
        purged after the new state is in.
        """
        rolled_back_txs = [
            tx
            for block_hash in reorg.rolled_back
            for tx in self.store.get(block_hash).transactions
        ]
        base_hash = reorg.common_ancestor
        base_mark = self._state_marks.get(base_hash)
        if base_mark is not None and self.state.can_rollback_to(base_mark):
            state = self.state
            if state.checkpoint() != base_mark:
                state.rollback(base_mark)
            for block_hash in reorg.rolled_back:
                self._state_marks.pop(block_hash, None)
                self._receipts_by_block.pop(block_hash, None)
        else:
            state = self._replay_to(base_hash)
        ancestor_mark = state.checkpoint()
        for position, block_hash in enumerate(reorg.applied):
            block = self.store.get(block_hash)
            receipts = self._execute_block(state, block)
            if block.header.state_root != state.state_root():
                self._abort_head_change(reorg, state, ancestor_mark, reorg.applied[:position])
                raise InvalidBlockError(
                    f"state root mismatch executing {block_hash[:10]}"
                )
            for receipt in receipts:
                self.receipts[receipt.tx_hash] = receipt
            self._receipts_by_block[block_hash] = receipts
            if self.config.keep_state_snapshots:
                self._state_marks[block_hash] = state.checkpoint()
            else:
                state.flatten_journal()
            self._maybe_snapshot(block, state)
            self.mempool.remove(tx.tx_hash for tx in block.transactions)
        if state.can_rollback_to(ancestor_mark):
            state.commit(ancestor_mark)  # abort window closed; mark retired
        self.state = state
        self._prune_state_history()
        for tx in rolled_back_txs:
            try:
                self.mempool.add(tx, state=self.state)
            except MempoolError:
                continue  # already mined on the new branch, or stale
        self.mempool.drop_stale(self.state)
        if reorg.rolled_back:
            # Heights below the spill floor may have new canonical blocks
            # now; re-walk them (demote/spill are idempotent).
            ancestor_number = self.store.number_of(reorg.common_ancestor)
            self._spill_floor = min(self._spill_floor, ancestor_number + 1)
        self._spill_cold()

    def _abort_head_change(
        self,
        reorg: ReorgInfo,
        state: WorldState,
        ancestor_mark: int,
        applied_so_far: list[str],
    ) -> None:
        """Restore the pre-reorg canonical view after an applied block
        failed its state-root check.

        State rolls back to the common ancestor, the losing-branch blocks
        that fork choice rolled back are re-executed (they validated when
        first applied), and the store's head switch is reverted — so the
        node keeps serving and mining the old branch instead of diverging
        from its own chain store.
        """
        state.rollback(ancestor_mark)
        for block_hash in applied_so_far:
            self._state_marks.pop(block_hash, None)
            self._receipts_by_block.pop(block_hash, None)
        for block_hash in reversed(reorg.rolled_back):  # ancestor-side first
            block = self.store.get(block_hash)
            receipts = self._execute_block(state, block)
            for receipt in receipts:
                self.receipts[receipt.tx_hash] = receipt
            self._receipts_by_block[block_hash] = receipts
            if self.config.keep_state_snapshots:
                self._state_marks[block_hash] = state.checkpoint()
            else:
                state.flatten_journal()
        self.store.revert_head(reorg)
        self.state = state

    def _prune_state_history(self) -> None:
        """Bound journal memory: drop marks (and their undo records) for
        blocks more than ``state_history`` below the head."""
        history = self.config.state_history
        if not self.config.keep_state_snapshots or history is None:
            return
        cutoff = self.height - history
        if cutoff <= 0:
            return
        for block_hash in [
            bh for bh in self._state_marks if self.store.number_of(bh) < cutoff
        ]:
            del self._state_marks[block_hash]
        if self._state_marks:
            floor = min(self._state_marks.values())
            if self.state.can_rollback_to(floor):
                self.state.prune_journal(floor)

    def _replay_to(self, block_hash: str) -> WorldState:
        """Rebuild state by replaying the lineage ending at ``block_hash``.

        The walk down the lineage stops at the first block with a
        root-verified snapshot in the cold store, so a reorg deeper than
        the journal horizon replays ``snapshot..target`` instead of
        ``genesis..target`` (spilled blocks revive through the cold store
        either way).  Resets the per-block journal marks to the replayed
        lineage (marks into the abandoned state object would be
        meaningless).
        """
        cold = self.config.cold_store
        path: list[Block] = []
        cursor = block_hash
        state: Optional[WorldState] = None
        base_hash = self.store.genesis_hash
        while self.store.number_of(cursor) > 0:
            if cold is not None and snapshot_key(cursor) in cold:
                block = self.store.get(cursor)
                try:
                    state = install_snapshot(
                        cold.get(snapshot_key(cursor)),
                        expected_state_root=block.header.state_root,
                    )
                except SnapshotError:
                    pass  # corrupt checkpoint: keep walking toward genesis
                else:
                    base_hash = cursor
                    self.snapshot_replays += 1
                    break
            path.append(self.store.get(cursor))
            cursor = self.store.parent_of(cursor)
        if state is None:
            state = self.genesis_spec.build_state()
        state.flatten_journal()
        self._state_marks = {}
        if self.config.keep_state_snapshots:
            self._state_marks[base_hash] = state.checkpoint()
        self.last_replay_blocks = len(path)
        for block in reversed(path):
            receipts = self._execute_block(state, block)
            self._receipts_by_block[block.block_hash] = receipts
            if self.config.keep_state_snapshots:
                self._state_marks[block.block_hash] = state.checkpoint()
            else:
                state.flatten_journal()
            self._maybe_snapshot(block, state)
        return state

    # ------------------------------------------------------------------
    # Scale-out: cold spilling, snapshots, fast sync
    # ------------------------------------------------------------------

    def _maybe_snapshot(self, block: Block, state: WorldState) -> None:
        """Persist a world-state checkpoint if ``block`` is on the grid.

        The cold store is content-addressed and shared across a cohort, so
        the first node to execute the block pays the encode and every
        other node's call is a dedup hit.
        """
        interval = self.config.snapshot_interval
        cold = self.config.cold_store
        if cold is None or interval <= 0 or block.number == 0 or block.number % interval:
            return
        key = snapshot_key(block.block_hash)
        if key in cold:
            return
        try:
            cold.put(key, encode_snapshot(state, block))
        except SerializationError:
            self.snapshots_skipped += 1
            return
        self.snapshots_taken += 1

    def _spill_cold(self) -> None:
        """Demote canonical blocks (and their receipts) below the hot
        window into the cold store; resident set stays O(hot window)."""
        cold = self.config.cold_store
        window = self.config.hot_window
        if cold is None or window is None:
            return
        target = self.height - window
        while self._spill_floor <= target:
            number = self._spill_floor
            block_hash = self.store.canonical_hash(number)
            if block_hash is not None:
                try:
                    self._spill_receipts(block_hash)
                    self.store.demote(block_hash)
                except SerializationError:
                    pass  # non-canonical payload: keep this block hot
            self._spill_floor = number + 1

    def _spill_receipts(self, block_hash: str) -> None:
        """Move one block's receipts to cold storage (idempotent)."""
        receipts = self._receipts_by_block.get(block_hash)
        if receipts is None:
            return
        self.config.cold_store.put(
            f"receipts:{block_hash}", [receipt.to_dict() for receipt in receipts]
        )
        del self._receipts_by_block[block_hash]
        for receipt in receipts:
            self.receipts.pop(receipt.tx_hash, None)
            self._receipt_location[receipt.tx_hash] = block_hash

    def sync_from(
        self,
        snapshot_payload: dict,
        pre_blocks: list[Block],
        tail_blocks: list[Block],
    ) -> int:
        """Fast-forward sync: adopt a snapshot instead of replaying history.

        ``pre_blocks`` is the ancestor-first lineage from just above this
        node's head through the snapshot's block; ``tail_blocks`` continue
        from there to the provider's head.  The pre blocks are validated
        structurally (header/body commitment, linkage, PoW when enabled)
        and stored *without execution* — the snapshot replaces their
        effects, and it is trusted only after the rebuilt state hashes to
        the ``state_root`` the last pre block's header commits to.  The
        tail imports through the normal execution path.  Receipts for the
        skipped range are not materialized (a real snap-synced node has
        the same property).

        Returns the number of tail blocks imported (i.e. executed);
        raises :class:`InvalidBlockError` or :class:`SnapshotError` —
        leaving local state untouched — when the payloads do not line up.
        """
        if not pre_blocks:
            raise InvalidBlockError("snapshot sync requires at least one pre block")
        if pre_blocks[0].header.parent_hash != self.store.head_hash:
            raise InvalidBlockError(
                "snapshot sync must fast-forward the current head"
            )
        if snapshot_payload.get("block_hash") != pre_blocks[-1].block_hash:
            raise InvalidBlockError("snapshot does not match the last pre block")
        parent = self.head
        for block in pre_blocks:
            if block.header.parent_hash != parent.block_hash:
                raise InvalidBlockError("pre blocks are not a linked lineage")
            if block.number != parent.number + 1:
                raise InvalidBlockError("pre block number out of sequence")
            if block.header.timestamp <= parent.header.timestamp:
                raise InvalidBlockError("pre block timestamp not after parent")
            if not block.body_matches_header():
                raise InvalidBlockError("pre block tx root mismatch")
            if self.config.verify_pow and not check_pow(block.header):
                raise InvalidBlockError("pre block PoW seal invalid")
            parent = block
        pivot = pre_blocks[-1]
        state = install_snapshot(
            snapshot_payload, expected_state_root=pivot.header.state_root
        )
        # Structure is verified and the snapshot root-checked: commit.
        for block in pre_blocks:
            self.store.add(block)
        state.flatten_journal()
        self.state = state
        self._state_marks = {}
        if self.config.keep_state_snapshots:
            self._state_marks[pivot.block_hash] = state.checkpoint()
        self.snap_syncs += 1
        self.snap_skipped_blocks += len(pre_blocks)
        executed = 0
        for block in tail_blocks:
            if block.block_hash in self.store:
                continue
            self.import_block(block)
            executed += 1
        self.mempool.drop_stale(self.state)
        self._spill_cold()
        return executed

    def scale_stats(self) -> dict:
        """Storage and execution counters for ``chain_stats()``."""
        return {
            "storage": {
                "hot_blocks": self.store.hot_count(),
                "spilled_blocks": self.store.spilled_count(),
                "hot_receipt_blocks": len(self._receipts_by_block),
                "cold_receipt_txs": len(self._receipt_location),
                "snapshots_taken": self.snapshots_taken,
                "snapshots_skipped": self.snapshots_skipped,
                "snapshot_replays": self.snapshot_replays,
                "last_replay_blocks": self.last_replay_blocks,
                "snap_syncs": self.snap_syncs,
                "snap_skipped_blocks": self.snap_skipped_blocks,
            },
            "execution": self.execution_stats.as_dict(),
        }

    def seal_and_import(self, block: Block, nonce: int) -> Optional[ReorgInfo]:
        """Attach a nonce to a locally built candidate and import it."""
        block.header.nonce = nonce
        self.blocks_mined += 1
        return self.import_block(block)
