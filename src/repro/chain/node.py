"""A full blockchain node: validate, execute, mine, and serve reads.

Equivalent of one Geth process in the paper's deployment.  Each node keeps:

* a :class:`ChainStore` of all known blocks,
* the executed :class:`WorldState` at the canonical head (plus per-block
  journal marks so reorgs roll back in O(touched entries), Geth-journal
  style, instead of restoring deep snapshots),
* a :class:`Mempool`, and
* the shared :class:`ContractRuntime` class registry.

Transaction execution follows Ethereum's recipe: charge intrinsic gas,
buy gas up front, run the transfer/deployment/call, refund unused gas, pay
the miner fee.  Failed executions (revert / out-of-gas) still consume gas
and bump the nonce but roll back their state effects — via a journal
checkpoint, so the rollback cost is proportional to what the transaction
touched.  Block candidates execute on a copy-on-write overlay of the head
state, and state roots are incremental (only accounts a block touched are
re-hashed when its root is computed or verified).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.chain.block import Block, BlockHeader, make_genesis
from repro.chain.chainstore import ChainStore, ReorgInfo
from repro.chain.crypto import Address, KeyPair
from repro.chain.gas import GasMeter, GasSchedule, DEFAULT_SCHEDULE, UNBOUNDED_BLOCK_GAS, intrinsic_gas
from repro.chain.mempool import Mempool
from repro.chain.pow import RetargetRule, check_pow
from repro.chain.runtime import ContractRuntime
from repro.chain.state import WorldState
from repro.chain.transaction import Receipt, Transaction
from repro.errors import (
    ChainError,
    ContractRevertError,
    InsufficientFundsError,
    InvalidBlockError,
    InvalidTransactionError,
    MempoolError,
    NonceError,
    OutOfGasError,
)


@dataclass
class NodeConfig:
    """Node parameters.

    ``verify_pow`` distinguishes the two sealing modes: real nonce search
    (tests, small difficulty) versus statistically simulated sealing driven
    by the network simulator (``verify_pow=False``).

    ``keep_state_snapshots`` keeps per-block journal marks so reorgs roll
    back cheaply; ``state_history`` bounds how many blocks of undo history
    the journal retains (deeper reorgs fall back to replay-from-genesis,
    like a Geth node asked to reorg past its snapshot window).
    """

    block_gas_limit: int = UNBOUNDED_BLOCK_GAS
    verify_pow: bool = False
    block_reward: int = 2_000_000_000
    max_txs_per_block: Optional[int] = None
    retarget: RetargetRule = field(default_factory=RetargetRule)
    keep_state_snapshots: bool = True
    state_history: int = 128
    schedule: GasSchedule = DEFAULT_SCHEDULE


@dataclass
class GenesisSpec:
    """Initial allocation shared by every node of a network."""

    allocations: dict[Address, int] = field(default_factory=dict)
    timestamp: float = 0.0
    difficulty: int = 1

    def build_state(self) -> WorldState:
        """World state implied by the allocation."""
        state = WorldState()
        for address, balance in sorted(self.allocations.items()):
            state.credit(address, balance)
        return state

    def build_genesis(self) -> Block:
        """Genesis block committing to the allocation state."""
        return make_genesis(
            self.build_state().state_root(),
            timestamp=self.timestamp,
            difficulty=self.difficulty,
        )


class Node:
    """One blockchain participant (validator + miner + RPC surface)."""

    def __init__(
        self,
        keypair: KeyPair,
        genesis_spec: GenesisSpec,
        runtime: ContractRuntime,
        config: Optional[NodeConfig] = None,
    ) -> None:
        self.keypair = keypair
        self.address: Address = keypair.address
        self.config = config if config is not None else NodeConfig()
        self.runtime = runtime
        self.genesis_spec = genesis_spec

        genesis = genesis_spec.build_genesis()
        self.store = ChainStore(genesis)
        self.state = genesis_spec.build_state()
        self.state.flatten_journal()  # allocation credits never roll back
        self.mempool = Mempool()
        self.receipts: dict[str, Receipt] = {}
        # block hash -> journal mark of self.state right after that block
        # executed; reorgs roll the journal back to the common ancestor's
        # mark instead of restoring a deep snapshot.
        self._state_marks: dict[str, int] = {}
        if self.config.keep_state_snapshots:
            self._state_marks[genesis.block_hash] = self.state.checkpoint()
        # block hash -> receipts in transaction order, for executed
        # canonical blocks (the eth_getLogs range index).
        self._receipts_by_block: dict[str, list[Receipt]] = {}
        self._orphans: dict[str, list[Block]] = {}
        self.blocks_mined = 0
        self.reorgs_seen = 0

    # ------------------------------------------------------------------
    # RPC-style reads
    # ------------------------------------------------------------------

    @property
    def head(self) -> Block:
        """Canonical head block."""
        return self.store.head

    @property
    def height(self) -> int:
        """Canonical chain height."""
        return self.store.height

    def balance_of(self, address: Address) -> int:
        """Balance at the canonical head."""
        return self.state.balance_of(address)

    def nonce_of(self, address: Address) -> int:
        """Account nonce at the canonical head."""
        return self.state.nonce_of(address)

    def receipt_of(self, tx_hash: str) -> Optional[Receipt]:
        """Receipt for a mined transaction, if this node executed it."""
        return self.receipts.get(tx_hash)

    def has_contract(self, address: Address) -> bool:
        """True iff a contract is deployed at ``address`` in head state."""
        return self.state.is_contract(address)

    def get_logs(
        self,
        address: Optional[Address] = None,
        topic: Optional[str] = None,
        from_block: int = 0,
        to_block: Optional[int] = None,
    ) -> list:
        """Query contract events from canonical receipts (``eth_getLogs``).

        Filters by emitting contract ``address`` and/or event ``topic`` over
        the canonical block range.  The walk covers only the requested
        range: canonical blocks resolve by height in O(1) and each block's
        receipts come from the per-block execution index, so a narrow query
        near the tip of a long chain no longer scans the whole chain.  Only
        transactions this node executed (i.e. whose blocks it imported) are
        visible — the same property a real node has.
        """
        upper = self.height if to_block is None else min(to_block, self.height)
        matches = []
        for number in range(max(from_block, 0), upper + 1):
            block = self.store.block_at_height(number)
            if block is None:
                continue
            for receipt in self._receipts_by_block.get(block.block_hash, ()):
                if not receipt.success:
                    continue
                for entry in receipt.logs:
                    if address is not None and entry.address != address:
                        continue
                    if topic is not None and entry.topic != topic:
                        continue
                    matches.append(entry)
        return matches

    def call_contract(self, contract_address: Address, method: str, **args: Any) -> Any:
        """Read-only contract call against head state (``eth_call``)."""
        return self.runtime.read_only_call(
            self.state,
            contract_address,
            method,
            caller=self.address,
            block_number=self.height,
            timestamp=self.head.header.timestamp,
            **args,
        )

    # ------------------------------------------------------------------
    # Transaction intake
    # ------------------------------------------------------------------

    def submit_transaction(self, tx: Transaction) -> bool:
        """Admit a signed transaction into the mempool."""
        return self.mempool.add(tx, state=self.state)

    def next_nonce_for(self, sender: Address) -> int:
        """Nonce a wallet should use next: head nonce plus pending count."""
        return self.state.nonce_of(sender) + self.mempool.pending_count(sender)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute_transaction(
        self,
        state: WorldState,
        tx: Transaction,
        block_number: int,
        timestamp: float,
        miner: Address,
    ) -> Receipt:
        """Execute one transaction against ``state`` (mutates it)."""
        if not tx.verify_signature():
            raise InvalidTransactionError(f"bad signature on {tx.tx_hash[:10]}")
        if state.nonce_of(tx.sender) != tx.nonce:
            raise NonceError(
                f"tx nonce {tx.nonce} != account nonce {state.nonce_of(tx.sender)}"
            )
        base_cost = intrinsic_gas(tx.data, is_create=tx.is_create, schedule=self.config.schedule)
        if base_cost > tx.gas_limit:
            raise InvalidTransactionError(
                f"gas limit {tx.gas_limit} below intrinsic gas {base_cost}"
            )
        if state.balance_of(tx.sender) < tx.max_cost():
            raise InsufficientFundsError(
                f"{tx.sender} cannot cover {tx.max_cost()}"
            )

        # Buy gas up front, as Ethereum does.
        state.debit(tx.sender, tx.gas_limit * tx.gas_price)
        state.bump_nonce(tx.sender)

        meter = GasMeter(tx.gas_limit, self.config.schedule)
        meter.charge(base_cost, "intrinsic")
        mark = state.checkpoint()
        receipt = Receipt(tx_hash=tx.tx_hash, success=True, gas_used=0, block_number=block_number)
        try:
            if tx.value:
                state.transfer(tx.sender, tx.to if tx.to else tx.sender, tx.value)
            if tx.is_create:
                address, logs = self.runtime.deploy(state, meter, tx, block_number, timestamp)
                receipt.contract_address = address
                receipt.logs = logs
            elif tx.is_call:
                result, logs = self.runtime.execute_call(state, meter, tx, block_number, timestamp)
                receipt.return_value = result
                receipt.logs = logs
        except (ContractRevertError, OutOfGasError, InsufficientFundsError, ChainError) as exc:
            state.rollback(mark)
            receipt.success = False
            receipt.revert_reason = str(exc)
            if isinstance(exc, OutOfGasError):
                meter.used = meter.limit
        else:
            state.commit(mark)

        receipt.gas_used = meter.used
        # Refund unused gas; fee goes to the miner.
        state.credit(tx.sender, (tx.gas_limit - meter.used) * tx.gas_price)
        state.credit(miner, meter.used * tx.gas_price)
        return receipt

    def _execute_block(self, state: WorldState, block: Block) -> list[Receipt]:
        """Execute every transaction of ``block`` plus the coinbase reward."""
        receipts = []
        for tx in block.transactions:
            receipt = self._execute_transaction(
                state,
                tx,
                block_number=block.number,
                timestamp=block.header.timestamp,
                miner=block.header.miner,
            )
            receipt.block_hash = block.block_hash
            receipts.append(receipt)
        state.credit(block.header.miner, self.config.block_reward)
        return receipts

    # ------------------------------------------------------------------
    # Block building (mining)
    # ------------------------------------------------------------------

    def build_block_candidate(self, timestamp: float, difficulty: Optional[int] = None) -> Block:
        """Assemble and execute a block candidate on top of the head.

        The candidate's header commits to the post-execution state root; the
        caller (test or network simulator) seals it with a nonce.  Execution
        runs on a copy-on-write overlay of the head state — only accounts
        the candidate touches are cloned, and its state root re-hashes only
        those accounts (untouched ones reuse the head's cached hashes).
        """
        parent = self.head
        if difficulty is None:
            parent_interval = max(timestamp - parent.header.timestamp, 0.0)
            difficulty = self.config.retarget.next_difficulty(
                parent.header.difficulty, parent_interval
            )
        txs = self.mempool.select(
            self.state,
            max_count=self.config.max_txs_per_block,
            max_gas=self.config.block_gas_limit,
        )
        scratch = self.state.overlay()
        header = BlockHeader(
            parent_hash=parent.block_hash,
            number=parent.number + 1,
            timestamp=max(timestamp, parent.header.timestamp + 1e-9),
            miner=self.address,
            difficulty=difficulty,
            tx_root="",
            state_root="",
            gas_limit=self.config.block_gas_limit,
        )
        block = Block(header=header, transactions=txs)
        receipts = self._execute_block(scratch, block)
        header.gas_used = sum(receipt.gas_used for receipt in receipts)
        header.tx_root = block.compute_tx_root()
        header.state_root = scratch.state_root()
        return block

    # ------------------------------------------------------------------
    # Block import
    # ------------------------------------------------------------------

    def validate_block(self, block: Block) -> None:
        """Stateless checks + PoW check (if enabled); raises on failure."""
        if not block.body_matches_header():
            raise InvalidBlockError("tx root mismatch")
        if block.header.parent_hash not in self.store:
            raise InvalidBlockError(f"unknown parent {block.header.parent_hash}")
        parent = self.store.get(block.header.parent_hash)
        if block.header.timestamp <= parent.header.timestamp:
            raise InvalidBlockError("timestamp not after parent")
        if self.config.verify_pow and not check_pow(block.header):
            raise InvalidBlockError("PoW seal invalid")
        for tx in block.transactions:
            if not tx.verify_signature():
                raise InvalidBlockError(f"block contains forged tx {tx.tx_hash[:10]}")

    def import_block(self, block: Block) -> Optional[ReorgInfo]:
        """Validate, store, and (if canonical) execute ``block``.

        Returns the reorg info when the head moved.  Unknown-parent blocks
        are parked as orphans and retried when the parent arrives.
        """
        if block.block_hash in self.store:
            return None
        if block.header.parent_hash not in self.store:
            self._orphans.setdefault(block.header.parent_hash, []).append(block)
            return None
        self.validate_block(block)
        reorg = self.store.add(block)
        if reorg is not None:
            self._apply_head_change(reorg)
            if reorg.rolled_back:
                self.reorgs_seen += 1
        self._adopt_orphans(block.block_hash)
        return reorg

    def _adopt_orphans(self, parent_hash: str) -> None:
        for orphan in self._orphans.pop(parent_hash, []):
            try:
                self.import_block(orphan)
            except InvalidBlockError:
                continue

    def _apply_head_change(self, reorg: ReorgInfo) -> None:
        """Re-execute state along the new canonical branch.

        The head state rolls back to the common ancestor's journal mark in
        O(entries the rolled-back blocks touched); only when the mark has
        been pruned (reorg deeper than ``state_history``) does the node
        fall back to a replay from genesis.  Transactions from rolled-back
        blocks are re-injected into the mempool (as Geth does) so work
        mined on a losing branch is not silently dropped; stale ones are
        purged after the new state is in.
        """
        rolled_back_txs = [
            tx
            for block_hash in reorg.rolled_back
            for tx in self.store.get(block_hash).transactions
        ]
        base_hash = reorg.common_ancestor
        base_mark = self._state_marks.get(base_hash)
        if base_mark is not None and self.state.can_rollback_to(base_mark):
            state = self.state
            if state.checkpoint() != base_mark:
                state.rollback(base_mark)
            for block_hash in reorg.rolled_back:
                self._state_marks.pop(block_hash, None)
                self._receipts_by_block.pop(block_hash, None)
        else:
            state = self._replay_to(base_hash)
        ancestor_mark = state.checkpoint()
        for position, block_hash in enumerate(reorg.applied):
            block = self.store.get(block_hash)
            receipts = self._execute_block(state, block)
            if block.header.state_root != state.state_root():
                self._abort_head_change(reorg, state, ancestor_mark, reorg.applied[:position])
                raise InvalidBlockError(
                    f"state root mismatch executing {block_hash[:10]}"
                )
            for receipt in receipts:
                self.receipts[receipt.tx_hash] = receipt
            self._receipts_by_block[block_hash] = receipts
            if self.config.keep_state_snapshots:
                self._state_marks[block_hash] = state.checkpoint()
            else:
                state.flatten_journal()
            self.mempool.remove(tx.tx_hash for tx in block.transactions)
        if state.can_rollback_to(ancestor_mark):
            state.commit(ancestor_mark)  # abort window closed; mark retired
        self.state = state
        self._prune_state_history()
        for tx in rolled_back_txs:
            try:
                self.mempool.add(tx, state=self.state)
            except MempoolError:
                continue  # already mined on the new branch, or stale
        self.mempool.drop_stale(self.state)

    def _abort_head_change(
        self,
        reorg: ReorgInfo,
        state: WorldState,
        ancestor_mark: int,
        applied_so_far: list[str],
    ) -> None:
        """Restore the pre-reorg canonical view after an applied block
        failed its state-root check.

        State rolls back to the common ancestor, the losing-branch blocks
        that fork choice rolled back are re-executed (they validated when
        first applied), and the store's head switch is reverted — so the
        node keeps serving and mining the old branch instead of diverging
        from its own chain store.
        """
        state.rollback(ancestor_mark)
        for block_hash in applied_so_far:
            self._state_marks.pop(block_hash, None)
            self._receipts_by_block.pop(block_hash, None)
        for block_hash in reversed(reorg.rolled_back):  # ancestor-side first
            block = self.store.get(block_hash)
            receipts = self._execute_block(state, block)
            for receipt in receipts:
                self.receipts[receipt.tx_hash] = receipt
            self._receipts_by_block[block_hash] = receipts
            if self.config.keep_state_snapshots:
                self._state_marks[block_hash] = state.checkpoint()
            else:
                state.flatten_journal()
        self.store.revert_head(reorg)
        self.state = state

    def _prune_state_history(self) -> None:
        """Bound journal memory: drop marks (and their undo records) for
        blocks more than ``state_history`` below the head."""
        history = self.config.state_history
        if not self.config.keep_state_snapshots or history is None:
            return
        cutoff = self.height - history
        if cutoff <= 0:
            return
        for block_hash in [
            bh for bh in self._state_marks if self.store.get(bh).number < cutoff
        ]:
            del self._state_marks[block_hash]
        if self._state_marks:
            floor = min(self._state_marks.values())
            if self.state.can_rollback_to(floor):
                self.state.prune_journal(floor)

    def _replay_to(self, block_hash: str) -> WorldState:
        """Rebuild state by replaying from genesis to ``block_hash``.

        Resets the per-block journal marks to the replayed lineage (marks
        into the abandoned state object would be meaningless).
        """
        path: list[Block] = []
        cursor = self.store.get(block_hash)
        while cursor.number > 0:
            path.append(cursor)
            cursor = self.store.get(cursor.header.parent_hash)
        state = self.genesis_spec.build_state()
        state.flatten_journal()
        self._state_marks = {}
        if self.config.keep_state_snapshots:
            self._state_marks[self.store.genesis_hash] = state.checkpoint()
        for block in reversed(path):
            receipts = self._execute_block(state, block)
            self._receipts_by_block[block.block_hash] = receipts
            if self.config.keep_state_snapshots:
                self._state_marks[block.block_hash] = state.checkpoint()
            else:
                state.flatten_journal()
        return state

    def seal_and_import(self, block: Block, nonce: int) -> Optional[ReorgInfo]:
        """Attach a nonce to a locally built candidate and import it."""
        block.header.nonce = nonce
        self.blocks_mined += 1
        return self.import_block(block)
