"""Blocks and block headers.

Headers carry the PoW fields (difficulty, nonce), chain linkage (parent
hash, number), the transaction Merkle root, and a post-execution state root
— the pieces Figure 2 of the paper exercises: a leader forms a block
candidate, broadcasts it, and other peers verify it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.crypto import Address
from repro.chain.merkle import merkle_root
from repro.chain.transaction import Transaction
from repro.utils.hashing import keccak_like
from repro.utils.serialization import canonical_dumps

#: Parent hash of the genesis block.
GENESIS_PARENT = "0x" + "00" * 32


@dataclass
class BlockHeader:
    """Consensus-relevant block metadata."""

    parent_hash: str
    number: int
    timestamp: float
    miner: Address
    difficulty: int
    tx_root: str
    state_root: str
    gas_used: int = 0
    gas_limit: int = 10**15
    nonce: int = 0
    extra: str = ""

    def sealing_payload(self) -> bytes:
        """Canonical bytes hashed by the PoW puzzle (everything but nonce)."""
        return canonical_dumps(
            {
                "parent_hash": self.parent_hash,
                "number": self.number,
                "timestamp": self.timestamp,
                "miner": self.miner,
                "difficulty": self.difficulty,
                "tx_root": self.tx_root,
                "state_root": self.state_root,
                "gas_used": self.gas_used,
                "gas_limit": self.gas_limit,
                "extra": self.extra,
            }
        )

    @property
    def block_hash(self) -> str:
        """Hash over the sealed header (payload + nonce)."""
        return keccak_like(self.sealing_payload() + self.nonce.to_bytes(8, "big"))

    def to_dict(self) -> dict:
        """Canonical-serializable form (cold storage and sync payloads)."""
        return {
            "parent_hash": self.parent_hash,
            "number": self.number,
            "timestamp": self.timestamp,
            "miner": self.miner,
            "difficulty": self.difficulty,
            "tx_root": self.tx_root,
            "state_root": self.state_root,
            "gas_used": self.gas_used,
            "gas_limit": self.gas_limit,
            "nonce": self.nonce,
            "extra": self.extra,
        }

    @staticmethod
    def from_dict(payload: dict) -> "BlockHeader":
        """Inverse of :meth:`to_dict`."""
        return BlockHeader(**payload)


@dataclass
class Block:
    """A full block: header plus ordered transaction list."""

    header: BlockHeader
    transactions: list[Transaction] = field(default_factory=list)

    @property
    def block_hash(self) -> str:
        """Hash of the sealed header."""
        return self.header.block_hash

    @property
    def number(self) -> int:
        """Height of this block."""
        return self.header.number

    def tx_hashes(self) -> list[bytes]:
        """Raw transaction-hash leaves for the Merkle tree."""
        return [bytes.fromhex(tx.tx_hash[2:]) for tx in self.transactions]

    def compute_tx_root(self) -> str:
        """Merkle root over the block's transactions."""
        return "0x" + merkle_root(self.tx_hashes()).hex()

    def body_matches_header(self) -> bool:
        """True iff the header's tx_root commits to the actual body."""
        return self.header.tx_root == self.compute_tx_root()

    def to_dict(self) -> dict:
        """Canonical-serializable form (cold storage and sync payloads)."""
        return {
            "header": self.header.to_dict(),
            "transactions": [tx.to_dict() for tx in self.transactions],
        }

    @staticmethod
    def from_dict(payload: dict) -> "Block":
        """Inverse of :meth:`to_dict`."""
        return Block(
            header=BlockHeader.from_dict(payload["header"]),
            transactions=[Transaction.from_dict(tx) for tx in payload["transactions"]],
        )


def make_genesis(state_root: str, timestamp: float = 0.0, difficulty: int = 1) -> Block:
    """Construct the genesis block for a given initial state root."""
    header = BlockHeader(
        parent_hash=GENESIS_PARENT,
        number=0,
        timestamp=timestamp,
        miner="0x" + "00" * 20,
        difficulty=difficulty,
        tx_root="0x" + merkle_root([]).hex(),
        state_root=state_root,
        extra="genesis",
    )
    return Block(header=header, transactions=[])
