"""Ethereum-style blockchain substrate (simulated).

The paper deploys a private PoW Ethereum (Geth) network of three peers; this
package provides the equivalent substrate in-process:

* :mod:`repro.chain.crypto` — deterministic keypairs, signing, addresses.
* :mod:`repro.chain.transaction` — signed transactions with gas accounting.
* :mod:`repro.chain.block` / :mod:`repro.chain.merkle` — blocks and roots.
* :mod:`repro.chain.pow` — hash-puzzle proof of work with retargeting.
* :mod:`repro.chain.state` — world state (balances, nonces, storage).
* :mod:`repro.chain.mempool` — pending transaction pool.
* :mod:`repro.chain.chainstore` — block tree with total-difficulty fork choice.
* :mod:`repro.chain.runtime` — gas-metered Python smart-contract runtime.
* :mod:`repro.chain.node` — a full node (validate, execute, mine).
* :mod:`repro.chain.network` — gossip network with latency and partitions.
* :mod:`repro.chain.gateway` — the transport-agnostic ledger service API
  the FL layer programs against (in-process and batching backends).
* :mod:`repro.chain.scale` — scale-out machinery: deterministic parallel
  transaction execution, spillable cold block/receipt storage, and
  root-verified snapshot state-sync.
"""

from repro.chain.crypto import KeyPair, Address, sign, verify, recover_check
from repro.chain.transaction import Transaction, Receipt, VALIDATION_STATS
from repro.chain.block import Block, BlockHeader, GENESIS_PARENT
from repro.chain.merkle import merkle_root, merkle_proof, verify_proof
from repro.chain.gas import GasSchedule, intrinsic_gas
from repro.chain.pow import ProofOfWork, mine_header, pow_target, check_pow
from repro.chain.state import WorldState, AccountState, StateError, STATE_STATS
from repro.chain.mempool import Mempool
from repro.chain.chainstore import ChainStore
from repro.chain.runtime import ContractRuntime, Contract, CallContext
from repro.chain.scale import ColdStore, ColdStoreStats, ExecutionStats
from repro.chain.node import GenesisSpec, Node, NodeConfig
from repro.chain.network import P2PNetwork, LatencyModel
from repro.chain.gateway import (
    BatchingGateway,
    CallRequest,
    ChainGateway,
    GatewayStats,
    InProcessGateway,
    transport_stats,
)

__all__ = [
    "KeyPair",
    "Address",
    "sign",
    "verify",
    "recover_check",
    "Transaction",
    "Receipt",
    "Block",
    "BlockHeader",
    "GENESIS_PARENT",
    "merkle_root",
    "merkle_proof",
    "verify_proof",
    "GasSchedule",
    "intrinsic_gas",
    "ProofOfWork",
    "mine_header",
    "pow_target",
    "check_pow",
    "WorldState",
    "AccountState",
    "StateError",
    "STATE_STATS",
    "VALIDATION_STATS",
    "Mempool",
    "ChainStore",
    "ContractRuntime",
    "Contract",
    "CallContext",
    "ColdStore",
    "ColdStoreStats",
    "ExecutionStats",
    "GenesisSpec",
    "Node",
    "NodeConfig",
    "P2PNetwork",
    "LatencyModel",
    "BatchingGateway",
    "CallRequest",
    "ChainGateway",
    "GatewayStats",
    "InProcessGateway",
    "transport_stats",
]
