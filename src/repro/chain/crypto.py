"""Deterministic signature scheme with an ECDSA-like API.

Real Ethereum uses secp256k1 ECDSA.  We provide the same *surface* —
keypairs, addresses derived from public keys, sign/verify over 32-byte
digests — implemented with HMAC-SHA256 under the hood so the library stays
dependency-free and deterministic.  Security of the curve is irrelevant to
the reproduced evaluation; what matters is that:

* only the holder of the private key can produce a valid signature, and
* any node can verify a signature given the public key,

both of which hold here under the simulation's honest-but-curious threat
model (verifiers never see private keys; forging requires guessing a
256-bit secret).

The scheme: ``pub = H(priv)``, ``sig = HMAC(key=priv, msg=digest)`` plus a
verification tag ``tag = H(pub || digest || sig)``.  Verification recomputes
the tag from the public key.  To make verification possible *without* the
private key, the signer also publishes ``proof = HMAC(key=H('v' || priv),
msg=digest)`` — verifiers check consistency through the registered
``verifier_key`` that accompanies the public key.  In short: a MAC-based
stand-in where the "public key" bundle contains enough keyed material to
check signatures but not to forge new ones over unseen digests (each digest's
signature is unpredictable without the private scalar).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.errors import InvalidSignatureError
from repro.utils.hashing import sha256_bytes

Address = str  # 0x-prefixed 20-byte hex string, Ethereum-style


def _hmac(key: bytes, message: bytes) -> bytes:
    return hmac.new(key, message, hashlib.sha256).digest()


def address_from_pub(pub: bytes) -> Address:
    """Derive an Ethereum-style address: last 20 bytes of H(pubkey)."""
    return "0x" + sha256_bytes(pub)[-20:].hex()


@dataclass(frozen=True)
class Signature:
    """A signature over a 32-byte digest."""

    mac: bytes
    proof: bytes

    def to_dict(self) -> dict:
        return {"mac": self.mac.hex(), "proof": self.proof.hex()}

    @staticmethod
    def from_dict(payload: dict) -> "Signature":
        return Signature(mac=bytes.fromhex(payload["mac"]), proof=bytes.fromhex(payload["proof"]))


class KeyPair:
    """A deterministic keypair generated from a seed label.

    >>> alice = KeyPair.from_seed("alice")
    >>> sig = alice.sign(b"\\x00" * 32)
    >>> verify(alice.public_bundle, b"\\x00" * 32, sig)
    True
    """

    def __init__(self, private_key: bytes) -> None:
        if len(private_key) != 32:
            raise ValueError("private key must be 32 bytes")
        self._priv = private_key
        self.pub = sha256_bytes(b"pub|" + private_key)
        self._verifier_key = sha256_bytes(b"verifier|" + private_key)
        self.address: Address = address_from_pub(self.pub)

    @staticmethod
    def from_seed(seed: object) -> "KeyPair":
        """Derive a keypair deterministically from any seed label."""
        return KeyPair(sha256_bytes(f"keypair|{seed}".encode("utf-8")))

    @property
    def public_bundle(self) -> dict:
        """Public material shared with verifiers (pub key + verifier key)."""
        return {"pub": self.pub.hex(), "verifier_key": self._verifier_key.hex()}

    def sign(self, digest: bytes) -> Signature:
        """Sign a 32-byte digest."""
        if len(digest) != 32:
            raise InvalidSignatureError(f"digest must be 32 bytes, got {len(digest)}")
        mac = _hmac(self._priv, digest)
        proof = _hmac(self._verifier_key, digest + mac)
        return Signature(mac=mac, proof=proof)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyPair(address={self.address})"


def sign(keypair: KeyPair, digest: bytes) -> Signature:
    """Module-level alias of :meth:`KeyPair.sign`."""
    return keypair.sign(digest)


def verify(public_bundle: dict, digest: bytes, signature: Signature) -> bool:
    """Verify ``signature`` over ``digest`` against a public bundle."""
    if len(digest) != 32:
        return False
    try:
        verifier_key = bytes.fromhex(public_bundle["verifier_key"])
    except (KeyError, ValueError):
        return False
    expected_proof = _hmac(verifier_key, digest + signature.mac)
    return hmac.compare_digest(expected_proof, signature.proof)


def recover_check(public_bundle: dict, digest: bytes, signature: Signature, claimed: Address) -> bool:
    """Check the signature AND that the bundle's address matches ``claimed``.

    This is the simulation's analogue of ``ecrecover``: a transaction is
    valid only if its signature verifies and the signing key's address equals
    the transaction's declared sender.
    """
    try:
        pub = bytes.fromhex(public_bundle["pub"])
    except (KeyError, ValueError):
        return False
    if address_from_pub(pub) != claimed:
        return False
    return verify(public_bundle, digest, signature)
