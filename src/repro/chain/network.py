"""Simulated p2p gossip network binding nodes, PoW, and the event engine.

This is the stand-in for the paper's three-VM VirtualBox LAN: nodes exchange
transactions and blocks over links with configurable latency; miners run
statistically sampled PoW (exponential inter-block times proportional to
difficulty / hashrate); partitions and message drops can be injected for
fault experiments.

Gossip delivery is batched: every destination has one outbox and at most
one scheduled flush event at a time, and messages whose sampled arrivals
fall inside the configurable ``batch_window`` are delivered together (in
arrival order, never early).  Burst traffic — the deployment phase, a
cohort submitting in the same instant, block storms during fork races —
costs one simulator event per destination instead of one per message.

The combination reproduces Figure 2's workflow: (a) clients submit
transactions, (b) PoW selects a leader, (c) the leader forms a block
candidate, (d) the others verify and adopt it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.chain.block import Block
from repro.chain.node import Node
from repro.chain.pow import ProofOfWork
from repro.chain.scale import snapshot_key
from repro.chain.transaction import Transaction
from repro.errors import ChainError, InvalidBlockError, MempoolError, NetworkError
from repro.utils.events import Simulator


@dataclass
class LatencyModel:
    """Per-link delay: ``base + uniform(0, jitter)`` seconds."""

    base: float = 0.05
    jitter: float = 0.02

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one link delay."""
        if self.jitter <= 0:
            return self.base
        return self.base + float(rng.uniform(0.0, self.jitter))


@dataclass
class _MinerState:
    node: Node
    hashrate: float
    current_job: Optional[object] = None  # scheduled Event for block discovery
    enabled: bool = True


@dataclass
class _Outbox:
    """Per-destination delivery queue behind a single scheduled flush.

    Each queued message keeps its own sampled arrival time; one event per
    destination delivers every message due by the flush time in arrival
    order, instead of one simulator event per message.  Gossip bursts
    (contract deployment, simultaneous submissions, block storms) collapse
    from O(messages) heap traffic to O(destinations).
    """

    pending: list[tuple[float, int, str, object]]  # (arrival, seq, kind, payload)
    event: Optional[object] = None  # scheduled flush Event
    due: float = float("inf")       # when that flush fires
    seq: int = 0


@dataclass
class NetworkStats:
    """Counters the chain benchmarks report."""

    txs_broadcast: int = 0
    blocks_broadcast: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_delayed: int = 0
    batches_delivered: int = 0
    blocks_mined: int = 0
    reorgs: int = 0
    syncs: int = 0
    snap_syncs: int = 0            # syncs served as snapshot + tail
    snap_skipped_blocks: int = 0   # blocks adopted without execution
    snap_executed_blocks: int = 0  # tail blocks executed after a snapshot

    def as_dict(self) -> dict:
        return {
            "txs_broadcast": self.txs_broadcast,
            "blocks_broadcast": self.blocks_broadcast,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "messages_delayed": self.messages_delayed,
            "batches_delivered": self.batches_delivered,
            "blocks_mined": self.blocks_mined,
            "reorgs": self.reorgs,
            "syncs": self.syncs,
            "snap_syncs": self.snap_syncs,
            "snap_skipped_blocks": self.snap_skipped_blocks,
            "snap_executed_blocks": self.snap_executed_blocks,
        }


class P2PNetwork:
    """Fully connected gossip network of :class:`Node` objects."""

    def __init__(
        self,
        simulator: Simulator,
        pow_engine: ProofOfWork,
        latency: Optional[LatencyModel] = None,
        rng: Optional[np.random.Generator] = None,
        drop_rate: float = 0.0,
        batch_window: float = 0.01,
        drop_rng: Optional[np.random.Generator] = None,
    ) -> None:
        if batch_window < 0:
            raise NetworkError(f"batch_window must be >= 0, got {batch_window}")
        self.sim = simulator
        self.pow = pow_engine
        self.latency = latency if latency is not None else LatencyModel()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        # Drop decisions draw from their own stream: sharing ``rng`` with
        # the latency model would let a drop_rate change perturb every
        # latency draw and break A/B determinism across fault intensities.
        self.drop_rng = drop_rng if drop_rng is not None else np.random.default_rng(0)
        self.drop_rate = float(drop_rate)
        self.batch_window = float(batch_window)
        self._miners: dict[str, _MinerState] = {}
        self._outboxes: dict[str, _Outbox] = {}
        self._partitioned: set[frozenset[str]] = set()
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add_node(self, node: Node, hashrate: float = 1000.0) -> None:
        """Register a node; equal hashrates model the paper's equal VMs."""
        if node.address in self._miners:
            raise NetworkError(f"node {node.address} already registered")
        self._miners[node.address] = _MinerState(node=node, hashrate=hashrate)

    def node(self, address: str) -> Node:
        """Lookup a registered node."""
        try:
            return self._miners[address].node
        except KeyError:
            raise NetworkError(f"unknown node {address}") from None

    def nodes(self) -> list[Node]:
        """All registered nodes, address-sorted for determinism."""
        return [self._miners[addr].node for addr in sorted(self._miners)]

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def partition(self, addr_a: str, addr_b: str) -> None:
        """Cut the link between two nodes (both directions)."""
        self._partitioned.add(frozenset((addr_a, addr_b)))

    def heal(self, addr_a: str, addr_b: str) -> None:
        """Restore a previously cut link."""
        self._partitioned.discard(frozenset((addr_a, addr_b)))

    def heal_all(self) -> None:
        """Remove every partition."""
        self._partitioned.clear()

    def _link_up(self, src: str, dst: str) -> bool:
        return frozenset((src, dst)) not in self._partitioned

    def _should_drop(self) -> bool:
        return self.drop_rate > 0 and float(self.drop_rng.random()) < self.drop_rate

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------

    def broadcast_transaction(self, origin: str, tx: Transaction) -> bool:
        """Submit locally then gossip to every peer with link latency.

        Returns ``False`` when the origin node's mempool rejected the
        transaction (nothing is gossiped), ``True`` otherwise — the ledger
        gateway turns a rejection into a typed error instead of silence.
        """
        origin_node = self.node(origin)
        try:
            origin_node.submit_transaction(tx)
        except MempoolError:
            return False
        self.stats.txs_broadcast += 1
        for address in sorted(self._miners):
            if address == origin:
                continue
            self._send(origin, address, "tx", tx)
        return True

    def broadcast_block(self, origin: str, block: Block) -> None:
        """Gossip a newly sealed block."""
        self.stats.blocks_broadcast += 1
        for address in sorted(self._miners):
            if address == origin:
                continue
            self._send(origin, address, "block", block)

    def _send(self, src: str, dst: str, kind: str, payload: object) -> None:
        """Queue one message for ``dst``; delivery rides a batched flush.

        Link and drop faults are evaluated per message at send time (as
        before).  The message keeps its own sampled arrival time; messages
        bound for the same destination whose arrivals fall inside the open
        ``batch_window`` share one simulator event instead of one each.
        A message is never delivered before its sampled arrival.
        """
        if not self._link_up(src, dst):
            self.stats.messages_dropped += 1
            return
        if self._should_drop():
            self.stats.messages_dropped += 1
            return
        delay = self.latency.sample(self.rng)
        arrival = self.sim.now + delay
        outbox = self._outboxes.setdefault(dst, _Outbox(pending=[]))
        outbox.pending.append((arrival, outbox.seq, kind, payload))
        outbox.seq += 1
        if outbox.event is None:
            self._schedule_flush(dst, arrival)
        elif arrival + self.batch_window < outbox.due:
            # This message beats the scheduled flush (smaller sampled
            # latency): pull the flush forward so no message ever waits
            # more than batch_window past its own arrival.
            outbox.event.cancel()
            self._schedule_flush(dst, arrival)

    def _schedule_flush(self, dst: str, earliest_arrival: float) -> None:
        outbox = self._outboxes[dst]
        outbox.due = earliest_arrival + self.batch_window
        outbox.event = self.sim.schedule_at(
            outbox.due, lambda: self._flush(dst), label=f"gossip->{dst[:8]}"
        )

    def _flush(self, dst: str) -> None:
        """Deliver every queued message due by now, in arrival order."""
        outbox = self._outboxes[dst]
        outbox.event = None
        outbox.due = float("inf")
        now = self.sim.now
        ready = sorted(
            (message for message in outbox.pending if message[0] <= now),
            key=lambda message: (message[0], message[1]),
        )
        outbox.pending = [message for message in outbox.pending if message[0] > now]
        if ready:
            self.stats.batches_delivered += 1
        for _arrival, _seq, kind, payload in ready:
            self._deliver(dst, kind, payload)
        if outbox.pending:
            self._schedule_flush(dst, min(message[0] for message in outbox.pending))

    def _deliver(self, dst: str, kind: str, payload: object) -> None:
        self.stats.messages_delivered += 1
        node = self.node(dst)
        if kind == "tx":
            try:
                node.submit_transaction(payload)  # type: ignore[arg-type]
            except MempoolError:
                pass
        elif kind == "block":
            block: Block = payload  # type: ignore[assignment]
            parent_known = block.header.parent_hash in node.store
            try:
                reorg = node.import_block(block)
            except InvalidBlockError:
                return
            if not parent_known and block.block_hash not in node.store:
                # Orphan parked: the node missed ancestors (e.g. it was
                # partitioned).  Request a chain sync from whoever can
                # serve the missing range — real clients do the same with
                # GetBlockHeaders/GetBlockBodies.
                self._schedule_sync(dst, block)
            if reorg is not None and reorg.rolled_back:
                self.stats.reorgs += 1
            # A head change invalidates this node's in-flight mining job.
            if reorg is not None:
                self._restart_miner(dst)

    def _snapshot_pivot(
        self, provider_node: Node, dst_node: Node, lineage: list[Block]
    ) -> Optional[int]:
        """Index of the best snapshot block in an ancestor-first lineage.

        Snapshot sync only applies to a pure fast-forward — the lineage
        must extend ``dst``'s current head directly (the shape a peer
        rejoining after downtime sees).  Divergent histories take the
        block-by-block replay path, which handles reorgs.
        """
        cold = provider_node.config.cold_store
        if cold is None or not lineage:
            return None
        if lineage[0].header.parent_hash != dst_node.store.head_hash:
            return None
        for index in range(len(lineage) - 1, -1, -1):
            if snapshot_key(lineage[index].block_hash) in cold:
                return index
        return None

    def _schedule_sync(self, dst: str, orphan: Block) -> None:
        """Ship the canonical ancestry of ``orphan`` to ``dst`` from any
        reachable peer that has it, with one link latency for the batch.

        When the provider has a cold snapshot inside the missing range and
        the range fast-forwards ``dst``'s head, the batch ships as
        *snapshot + tail*: ``dst`` adopts the root-verified checkpoint and
        executes only the blocks above it (:meth:`Node.sync_from`) instead
        of replaying the whole gap."""
        provider = None
        for address in sorted(self._miners):
            if address == dst or not self._link_up(address, dst):
                continue
            if orphan.header.parent_hash in self._miners[address].node.store:
                provider = address
                break
        if provider is None:
            return
        provider_node = self.node(provider)
        missing: list[Block] = []
        cursor = orphan.header.parent_hash
        dst_node = self.node(dst)
        while cursor not in dst_node.store and cursor in provider_node.store:
            block = provider_node.store.get(cursor)
            missing.append(block)
            if block.number == 0:
                break
            cursor = block.header.parent_hash
        if not missing:
            return
        self.stats.syncs += 1
        delay = self.latency.sample(self.rng)
        lineage = list(reversed(missing))  # ancestor-first
        pivot_index = self._snapshot_pivot(provider_node, dst_node, lineage)

        def deliver_batch() -> None:
            self.stats.messages_delivered += 1
            if pivot_index is not None:
                pivot = lineage[pivot_index]
                try:
                    payload = provider_node.config.cold_store.get(
                        snapshot_key(pivot.block_hash)
                    )
                    executed = dst_node.sync_from(
                        payload,
                        lineage[: pivot_index + 1],
                        lineage[pivot_index + 1 :],
                    )
                except ChainError:
                    pass  # sync_from commits nothing on failure: replay below
                else:
                    self.stats.snap_syncs += 1
                    self.stats.snap_skipped_blocks += pivot_index + 1
                    self.stats.snap_executed_blocks += executed
                    self._restart_miner(dst)
                    return
            for block in lineage:
                try:
                    reorg = dst_node.import_block(block)
                except InvalidBlockError:
                    return
                if reorg is not None and reorg.rolled_back:
                    self.stats.reorgs += 1
            self._restart_miner(dst)

        self.sim.schedule_in(delay, deliver_batch, label=f"sync->{dst[:8]}")

    # ------------------------------------------------------------------
    # Mining loop
    # ------------------------------------------------------------------

    def start_mining(self, addresses: Optional[list[str]] = None) -> None:
        """Schedule the first mining job for the given (or all) nodes."""
        targets = addresses if addresses is not None else sorted(self._miners)
        for address in targets:
            self._miners[address].enabled = True
            self._schedule_mining_job(address)

    def stop_mining(self, addresses: Optional[list[str]] = None) -> None:
        """Cancel outstanding jobs and stop rescheduling."""
        targets = addresses if addresses is not None else sorted(self._miners)
        for address in targets:
            miner = self._miners[address]
            miner.enabled = False
            if miner.current_job is not None:
                miner.current_job.cancel()
                miner.current_job = None

    def _restart_miner(self, address: str) -> None:
        miner = self._miners[address]
        if not miner.enabled:
            return
        if miner.current_job is not None:
            miner.current_job.cancel()
        self._schedule_mining_job(address)

    def _schedule_mining_job(self, address: str) -> None:
        miner = self._miners[address]
        parent = miner.node.head
        interval = max(self.sim.now - parent.header.timestamp, 0.0)
        difficulty = self.pow.next_difficulty(parent.header.difficulty, interval)
        duration = self.pow.sample_mining_time(difficulty, miner.hashrate)
        head_at_schedule = parent.block_hash

        def on_found() -> None:
            miner.current_job = None
            if not miner.enabled:
                return
            # Stale job: head changed while "hashing".
            if miner.node.head.block_hash != head_at_schedule:
                self._schedule_mining_job(address)
                return
            block = miner.node.build_block_candidate(self.sim.now, difficulty=difficulty)
            reorg = miner.node.seal_and_import(block, nonce=self.pow.sample_nonce())
            self.stats.blocks_mined += 1
            if reorg is not None and reorg.rolled_back:
                self.stats.reorgs += 1
            self.broadcast_block(address, block)
            self._schedule_mining_job(address)

        miner.current_job = self.sim.schedule_in(duration, on_found, label=f"mine@{address[:8]}")

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------

    def run_until_height(self, height: int, max_time: float = 1e7) -> float:
        """Advance simulation until every node's head reaches ``height``.

        Returns the simulated time when the condition held.  Raises
        :class:`NetworkError` if the deadline passes first.
        """
        while self.sim.now < max_time:
            if all(node.height >= height for node in self.nodes()):
                return self.sim.now
            if not self.sim.step():
                break
        if all(node.height >= height for node in self.nodes()):
            return self.sim.now
        raise NetworkError(
            f"height {height} not reached by t={self.sim.now:.1f}"
        )

    def run_for(self, duration: float) -> None:
        """Advance the simulation by ``duration`` simulated seconds."""
        self.sim.run(until=self.sim.now + duration)

    def sync_check(self) -> bool:
        """True iff every node agrees on the head hash."""
        heads = {node.head.block_hash for node in self.nodes()}
        return len(heads) == 1
